//! The sim-vs-real correlation artifact: schema, rows and validation.
//!
//! The committed `BENCH_proc_corr.json` pins, for every lab scenario
//! family × placement policy, the cluster simulator's *predicted*
//! inter-node byte count against the multi-process backend's *measured*
//! one (grant payload bytes crossing the fabric).  Both backends shard
//! tasks over nodes through the same
//! [`policy_placement`](orwl_cluster::policy_placement), so the two
//! figures must agree up to payload rounding — the artifact regenerating
//! with every row inside [`CORR_TOLERANCE`] is the acceptance gate of the
//! backend.  Generation lives in `orwl_bench` (it needs the lab scenario
//! catalog); this module owns the schema so workers of both sides agree.
//!
//! Every byte figure is a pure function of the matrices and the
//! placement, so the regenerated document must match the committed one
//! byte for byte — except the [`CORR_NONDETERMINISTIC`] columns
//! (`wall_seconds`, the median wall clock of the measured runs), which
//! the document itself declares and [`deterministic_view`] strips before
//! the comparison.

use orwl_obs::json::Json;

/// Schema identifier of the correlation artifact.
pub const CORR_SCHEMA: &str = "orwl-proc-corr/v1";

/// Maximum relative |measured − predicted| / max(predicted, 1) any row may
/// show.  Covers the one deliberate divergence between the two pipelines:
/// grant payloads are whole bytes, predictions are exact `f64` sums.
pub const CORR_TOLERANCE: f64 = 0.02;

/// Row fields whose values legitimately vary run to run (wall-clock
/// timing).  The document lists them under `nondeterministic` and the
/// byte-comparison gate strips them via [`deterministic_view`].
pub const CORR_NONDETERMINISTIC: &[&str] = &["wall_seconds"];

/// One (scenario, policy) correlation row.
#[derive(Debug, Clone, PartialEq)]
pub struct CorrRow {
    /// Scenario label (`{family}-t{tasks}-s{seed}`).
    pub scenario: String,
    /// Placement policy name.
    pub policy: String,
    /// Nodes in the run.
    pub n_nodes: usize,
    /// Tasks in the run.
    pub tasks: usize,
    /// The cluster simulator's predicted inter-node bytes.
    pub predicted_inter_node_bytes: f64,
    /// The multi-process backend's measured inter-node bytes.
    pub measured_inter_node_bytes: f64,
    /// Median wall-clock seconds across the measured backend's repeats.
    /// The one timing-dependent column: declared nondeterministic in the
    /// document and excluded from the byte-identity gate.
    pub wall_seconds: f64,
}

impl CorrRow {
    /// Relative deviation of measured from predicted.
    #[must_use]
    pub fn relative_error(&self) -> f64 {
        (self.measured_inter_node_bytes - self.predicted_inter_node_bytes).abs()
            / self.predicted_inter_node_bytes.max(1.0)
    }

    fn to_json(&self) -> Json {
        let mut row = Json::obj();
        row.push("scenario", self.scenario.as_str());
        row.push("policy", self.policy.as_str());
        row.push("n_nodes", self.n_nodes);
        row.push("tasks", self.tasks);
        row.push("predicted_inter_node_bytes", self.predicted_inter_node_bytes);
        row.push("measured_inter_node_bytes", self.measured_inter_node_bytes);
        row.push("relative_error", self.relative_error());
        row.push("wall_seconds", self.wall_seconds);
        row
    }
}

/// Builds the full artifact document from its rows.
#[must_use]
pub fn corr_document(rows: &[CorrRow]) -> Json {
    let mut doc = Json::obj();
    doc.push("schema", CORR_SCHEMA);
    doc.push("tolerance", CORR_TOLERANCE);
    doc.push(
        "nondeterministic",
        Json::Arr(CORR_NONDETERMINISTIC.iter().map(|f| Json::Str((*f).to_string())).collect()),
    );
    doc.push("rows", Json::Arr(rows.iter().map(CorrRow::to_json).collect()));
    doc
}

/// The document with every field the document itself declares
/// nondeterministic stripped from every row.  Two captures of the same
/// battery must agree on this view byte for byte; `wall_seconds` may
/// differ.
#[must_use]
pub fn deterministic_view(doc: &Json) -> Json {
    let strip: Vec<String> = doc
        .get("nondeterministic")
        .and_then(Json::as_arr)
        .map(|fields| fields.iter().filter_map(|f| f.as_str().map(str::to_string)).collect())
        .unwrap_or_default();
    let mut view = doc.clone();
    if let Json::Obj(pairs) = &mut view {
        if let Some((_, Json::Arr(rows))) = pairs.iter_mut().find(|(key, _)| key == "rows") {
            for row in rows {
                if let Json::Obj(fields) = row {
                    fields.retain(|(key, _)| !strip.iter().any(|s| s == key));
                }
            }
        }
    }
    view
}

/// Validates an artifact document: schema, row structure, and every row
/// inside the documented tolerance.  This is what CI runs against the
/// committed artifact.
pub fn validate_corr(doc: &Json) -> Result<(), String> {
    let schema = doc.get("schema").and_then(Json::as_str).ok_or("missing schema field")?;
    if schema != CORR_SCHEMA {
        return Err(format!("schema is {schema:?}, expected {CORR_SCHEMA:?}"));
    }
    let tolerance = doc.get("tolerance").and_then(Json::as_f64).ok_or("missing numeric tolerance")?;
    let declared: Vec<&str> = doc
        .get("nondeterministic")
        .and_then(Json::as_arr)
        .ok_or("missing nondeterministic array")?
        .iter()
        .filter_map(Json::as_str)
        .collect();
    if declared != CORR_NONDETERMINISTIC {
        return Err(format!("nondeterministic columns are {declared:?}, expected {CORR_NONDETERMINISTIC:?}"));
    }
    let rows = doc.get("rows").and_then(Json::as_arr).ok_or("missing rows array")?;
    if rows.is_empty() {
        return Err("rows array is empty".to_string());
    }
    for (k, row) in rows.iter().enumerate() {
        for field in ["scenario", "policy"] {
            if row.get(field).and_then(Json::as_str).is_none() {
                return Err(format!("row {k}: missing string field {field:?}"));
            }
        }
        for field in
            ["n_nodes", "tasks", "predicted_inter_node_bytes", "measured_inter_node_bytes", "relative_error"]
        {
            let Some(value) = row.get(field).and_then(Json::as_f64) else {
                return Err(format!("row {k}: missing numeric field {field:?}"));
            };
            if !value.is_finite() || value < 0.0 {
                return Err(format!("row {k}: field {field:?} is {value}, not a valid magnitude"));
            }
        }
        match row.get("wall_seconds").and_then(Json::as_f64) {
            Some(wall) if wall.is_finite() && wall > 0.0 => {}
            Some(wall) => {
                return Err(format!("row {k}: wall_seconds is {wall}, expected a positive duration"));
            }
            None => return Err(format!("row {k}: missing numeric field \"wall_seconds\"")),
        }
        let relative = row.get("relative_error").and_then(Json::as_f64).unwrap_or(f64::INFINITY);
        if relative > tolerance {
            let scenario = row.get("scenario").and_then(Json::as_str).unwrap_or("?");
            let policy = row.get("policy").and_then(Json::as_str).unwrap_or("?");
            return Err(format!(
                "row {k} ({scenario}, {policy}): relative error {relative} exceeds tolerance {tolerance}"
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(predicted: f64, measured: f64) -> CorrRow {
        CorrRow {
            scenario: "dense-stencil-t36-s1".to_string(),
            policy: "hierarchical".to_string(),
            n_nodes: 2,
            tasks: 36,
            predicted_inter_node_bytes: predicted,
            measured_inter_node_bytes: measured,
            wall_seconds: 0.125,
        }
    }

    #[test]
    fn document_roundtrips_through_text_and_validates() {
        let doc = corr_document(&[row(100_000.0, 100_100.0), row(0.0, 0.0)]);
        let text = doc.pretty();
        let parsed = Json::parse(&text).unwrap();
        validate_corr(&parsed).unwrap();
        assert_eq!(parsed, doc);
    }

    #[test]
    fn out_of_tolerance_rows_fail_validation() {
        let doc = corr_document(&[row(100_000.0, 140_000.0)]);
        let err = validate_corr(&doc).unwrap_err();
        assert!(err.contains("exceeds tolerance"), "{err}");
    }

    #[test]
    fn structural_defects_are_reported() {
        assert!(validate_corr(&Json::obj()).unwrap_err().contains("schema"));
        let empty = corr_document(&[]);
        assert!(validate_corr(&empty).unwrap_err().contains("empty"));
        let mut doc = corr_document(&[row(1.0, 1.0)]);
        if let Json::Obj(pairs) = &mut doc {
            pairs[0].1 = Json::Str("bogus/v0".to_string());
        }
        assert!(validate_corr(&doc).unwrap_err().contains("expected"));
    }

    #[test]
    fn wall_seconds_must_be_a_positive_duration() {
        let mut bad = row(1.0, 1.0);
        bad.wall_seconds = 0.0;
        let err = validate_corr(&corr_document(&[bad])).unwrap_err();
        assert!(err.contains("wall_seconds"), "{err}");
        let mut doc = corr_document(&[row(1.0, 1.0)]);
        if let Json::Obj(pairs) = &mut doc {
            pairs.retain(|(key, _)| key != "nondeterministic");
        }
        assert!(validate_corr(&doc).unwrap_err().contains("nondeterministic"));
    }

    #[test]
    fn deterministic_view_strips_only_the_declared_columns() {
        let mut fast = row(100_000.0, 100_100.0);
        let mut slow = fast.clone();
        fast.wall_seconds = 0.050;
        slow.wall_seconds = 1.700;
        let (fast_doc, slow_doc) = (corr_document(&[fast]), corr_document(&[slow]));
        assert_ne!(fast_doc.pretty(), slow_doc.pretty());
        let view = deterministic_view(&fast_doc);
        assert_eq!(view.pretty(), deterministic_view(&slow_doc).pretty());
        let rows = view.get("rows").and_then(Json::as_arr).unwrap();
        assert!(rows[0].get("wall_seconds").is_none(), "the timing column must be stripped");
        assert!(rows[0].get("measured_inter_node_bytes").is_some(), "byte columns must survive");
    }

    #[test]
    fn zero_predicted_rows_use_the_absolute_floor() {
        // Scatter on a colocatable pattern can predict 0; a few bytes of
        // measured noise must not divide by zero.
        let r = row(0.0, 0.01);
        assert!(r.relative_error() <= CORR_TOLERANCE);
    }
}
