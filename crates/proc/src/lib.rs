//! # orwl-proc — multi-process cluster backend with the ORWL lock
//! protocol over the wire
//!
//! The other backends run in one address space (threads) or none at all
//! (discrete-event simulation).  This crate runs an ORWL program as
//! actual operating-system processes: a coordinator spawns one worker per
//! simulated cluster node, workers rendezvous over Unix-domain sockets,
//! and every remote ORWL section — request, FIFO grant, data payload,
//! release — travels as a versioned frame of the [`wire`] codec.  The
//! framing is plain length-prefixed bytes, so the same protocol runs over
//! TCP between real hosts; only the connect calls are socket-family
//! specific.
//!
//! The backend reuses the whole placement stack: node sharding comes from
//! [`orwl_cluster::policy_placement`] — the exact
//! function the cluster simulator uses, so `Policy::Hierarchical` lays
//! the same tasks on the same nodes in both worlds — and each worker
//! drives its local tasks through a real `orwl_core` session.  Reports
//! carry wall time, the plan's hop-bytes (identical to `ThreadBackend`
//! on the same communication matrix), and a
//! [`ClusterTraffic`] split whose inter-node component is *measured*
//! from transport accounting rather than modelled — the committed
//! `BENCH_proc_corr.json` artifact pins measured against predicted per
//! lab scenario family (see [`corr`]).
//!
//! Any binary or test harness that drives [`ProcBackend`] must call
//! [`maybe_worker`] as the first statement of `main` (or expose a test
//! named in [`ProcBackend::with_worker_args`]): workers are the current
//! executable re-exec'd with the worker-role environment.

pub mod assignment;
pub mod coordinator;
pub mod corr;
pub mod fault;
pub mod metrics;
pub mod transport;
pub mod wire;
pub mod worker;

pub use assignment::{Assignment, ReAssignment, REASSIGN_SCHEMA};
pub use coordinator::{Polled, WorkerFailure, WorkerPool};
pub use corr::{
    corr_document, deterministic_view, validate_corr, CorrRow, CORR_NONDETERMINISTIC, CORR_SCHEMA,
    CORR_TOLERANCE,
};
pub use fault::{Fault, FaultParseError, FaultPlan, ENV_FAULTS};
pub use metrics::{WorkerMetrics, METRICS_SCHEMA};
pub use worker::maybe_worker;

use crate::assignment::{ObsSpec, PhasePlan, ReadEdge};
use crate::wire::Message;
use orwl_cluster::{
    inter_node_bytes, policy_placement, reshard_after_node_loss, split_hop_bytes, ClusterMachine,
};
use orwl_core::error::{ConfigError, OrwlError};
use orwl_core::placement::PlacementPlan;
use orwl_core::runtime::AdaptReport;
use orwl_core::session::{ClusterTraffic, ExecutionBackend, Mode, Report, RunTime, SessionConfig, Workload};
use orwl_numasim::workload::PhasedWorkload;
use orwl_obs::json::Json;
use orwl_obs::merge::merge_run;
use orwl_obs::{
    fold_deltas, ClockKind, EventKind, FabricLane, IntervalStats, LiveAggregator, ObsConfig, Recorder,
    TelemetryDelta, TelemetrySnapshot,
};
use orwl_treematch::mapping::Placement;
use orwl_treematch::policies::Policy;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Configuration of live telemetry: while the run executes, every worker
/// streams a heartbeat and an interval delta per `interval`, and the
/// coordinator folds them into a [`LiveAggregator`], surfaces each
/// arrival through `on_event`, and flags any node silent for more than
/// `straggler_intervals` intervals as a straggler — *before* the run's
/// recv deadline turns the silence into a hard failure.
///
/// Live streaming requires an observed run (`SessionConfig::observe`):
/// the deltas are drained from the worker's recorder, so a dark run has
/// nothing to stream and the config is ignored.
#[derive(Clone)]
pub struct LiveConfig {
    /// Streaming interval: one heartbeat (plus one delta, when anything
    /// happened) per worker per interval.
    pub interval: Duration,
    /// Heartbeat intervals a node may miss before it is flagged.
    pub straggler_intervals: u32,
    /// Observer invoked on the coordinator thread for every live event.
    pub on_event: Option<LiveObserver>,
}

/// The live-event observer callback: invoked on the coordinator thread
/// for every [`LiveEvent`] as it arrives.
pub type LiveObserver = Arc<dyn Fn(&LiveEvent) + Send + Sync>;

impl LiveConfig {
    /// Streams on `interval`, flagging after 4 missed intervals.
    #[must_use]
    pub fn new(interval: Duration) -> Self {
        LiveConfig { interval, straggler_intervals: 4, on_event: None }
    }

    /// Replaces the missed-interval budget before a straggler flag.
    #[must_use]
    pub fn with_straggler_intervals(mut self, straggler_intervals: u32) -> Self {
        self.straggler_intervals = straggler_intervals;
        self
    }

    /// Installs the live-event observer (the `--live` ticker, a test's
    /// heartbeat counter, ...).
    #[must_use]
    pub fn with_on_event(mut self, on_event: impl Fn(&LiveEvent) + Send + Sync + 'static) -> Self {
        self.on_event = Some(Arc::new(on_event));
        self
    }
}

impl std::fmt::Debug for LiveConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LiveConfig")
            .field("interval", &self.interval)
            .field("straggler_intervals", &self.straggler_intervals)
            .field("on_event", &self.on_event.as_ref().map(|_| "<fn>"))
            .finish()
    }
}

/// One observation of the live monitor, as delivered to
/// [`LiveConfig::on_event`].
#[derive(Debug, Clone)]
pub enum LiveEvent {
    /// A worker's liveness beacon arrived.
    Heartbeat {
        /// The reporting node.
        node: usize,
        /// The worker's beat counter.
        seq: u64,
    },
    /// A worker's interval delta arrived and was folded into the
    /// aggregator.
    Delta {
        /// The reporting node.
        node: usize,
        /// Encoded size of the delta on the wire.
        bytes: usize,
        /// The delta's folded rates.
        stats: IntervalStats,
    },
    /// A node exceeded its missed-heartbeat budget — the typed warning
    /// that precedes the eventual `WorkerFailed` if the silence persists
    /// to the recv deadline.
    Straggler {
        /// The silent node.
        node: usize,
        /// How long the node has been silent.
        silent_for: Duration,
        /// Whole heartbeat intervals that silence spans.
        missed: u64,
    },
    /// A previously-flagged straggler resumed heartbeating.
    Recovered {
        /// The recovered node.
        node: usize,
    },
    /// A worker reported all local tasks finished.
    Done {
        /// The finishing node.
        node: usize,
    },
}

/// The coordinator-side live monitor: consumes streaming frames during
/// the done-wait, rebases deltas onto the coordinator clock (each delta
/// carries its track's NTP-midpoint offset), aggregates them, tracks
/// per-node liveness and keeps every delta for the post-run fold.
struct LiveMonitor<'a> {
    cfg: &'a LiveConfig,
    aggregator: LiveAggregator,
    deltas: Vec<Vec<TelemetryDelta>>,
    last_beat: Vec<Instant>,
    flagged: Vec<bool>,
    heartbeats: u64,
    delta_bytes: u64,
    stragglers_flagged: u64,
    node_losses: u64,
    reshards: u64,
    tasks_migrated: u64,
}

impl<'a> LiveMonitor<'a> {
    fn new(n_nodes: usize, cfg: &'a LiveConfig) -> LiveMonitor<'a> {
        LiveMonitor {
            cfg,
            aggregator: LiveAggregator::new(cfg.interval.as_secs_f64().max(1e-3) * 1e6),
            deltas: vec![Vec::new(); n_nodes],
            last_beat: vec![Instant::now(); n_nodes],
            flagged: vec![false; n_nodes],
            heartbeats: 0,
            delta_bytes: 0,
            stragglers_flagged: 0,
            node_losses: 0,
            reshards: 0,
            tasks_migrated: 0,
        }
    }

    fn emit(&self, event: &LiveEvent) {
        if let Some(observer) = &self.cfg.on_event {
            observer(event);
        }
    }

    fn heartbeat(&mut self, node: usize, seq: u64) {
        self.heartbeats += 1;
        self.last_beat[node] = Instant::now();
        if std::mem::take(&mut self.flagged[node]) {
            self.emit(&LiveEvent::Recovered { node });
        }
        self.emit(&LiveEvent::Heartbeat { node, seq });
    }

    fn delta(&mut self, node: usize, bytes: &[u8]) -> Result<(), String> {
        let delta = TelemetryDelta::decode(bytes).map_err(|e| format!("bad telemetry delta: {e}"))?;
        self.delta_bytes += bytes.len() as u64;
        // Workers merge onto track node+1 (track 0 is the coordinator);
        // the aggregator's series use the same numbering.
        self.aggregator.ingest(node as u32 + 1, &delta);
        let stats = IntervalStats::of_delta(&delta);
        self.deltas[node].push(delta);
        self.emit(&LiveEvent::Delta { node, bytes: bytes.len(), stats });
        Ok(())
    }

    fn done(&mut self, node: usize) {
        self.emit(&LiveEvent::Done { node });
    }

    /// Flags any not-yet-done node whose silence exceeds the budget; a
    /// node is flagged once per silence episode (a heartbeat clears it).
    fn check_stragglers(&mut self, done: &[bool]) {
        let budget = self.cfg.interval * self.cfg.straggler_intervals.max(1);
        for (node, &node_done) in done.iter().enumerate().take(self.flagged.len()) {
            if node_done || self.flagged[node] {
                continue;
            }
            let silent_for = self.last_beat[node].elapsed();
            if silent_for >= budget {
                self.flagged[node] = true;
                self.stragglers_flagged += 1;
                let missed = (silent_for.as_secs_f64() / self.cfg.interval.as_secs_f64()) as u64;
                self.emit(&LiveEvent::Straggler { node, silent_for, missed });
            }
        }
    }

    /// Streams the run summary into the coordinator recorder's metrics,
    /// so the merged telemetry records that (and how much) the run was
    /// watched live.
    fn record_summary(&self, recorder: &Recorder) {
        let metrics = recorder.metrics();
        metrics.counter("live.heartbeats").add(self.heartbeats);
        metrics.counter("live.deltas").add(self.deltas.iter().map(|d| d.len() as u64).sum());
        metrics.counter("live.delta_bytes").add(self.delta_bytes);
        metrics.counter("live.stragglers_flagged").add(self.stragglers_flagged);
        metrics.counter("live.duplicate_deltas").add(self.aggregator.duplicates());
        // Recovery counters appear only when a loss actually happened, so
        // a fault-free run's telemetry is identical to a build without
        // recovery enabled.
        if self.node_losses > 0 {
            metrics.counter("live.node_losses").add(self.node_losses);
            metrics.counter("live.reshards").add(self.reshards);
            metrics.counter("live.tasks_migrated").add(self.tasks_migrated);
        }
    }
}

/// Configuration of failure-driven recovery: when a worker is confirmed
/// lost mid-run (its process exited, its control socket closed, or it
/// stayed silent past the kill-confirmation budget), the coordinator
/// quiesces the survivors at their next iteration boundary, re-shards
/// the lost node's tasks onto them ([`orwl_cluster::reshard_after_node_loss`] —
/// only the affected shard moves) and resumes the run degraded.
///
/// Recovery requires live telemetry on an observed run
/// ([`ProcBackend::with_live`] + `SessionConfig::observe`): loss
/// detection rides the heartbeat stream, so a dark run has no liveness
/// signal to act on and the config is ignored.
#[derive(Debug, Clone)]
pub struct RecoveryConfig {
    /// Heartbeat silence after which a node is declared dead (capped by
    /// the backend's io timeout).  Process exit and socket closure are
    /// confirmed immediately; the budget only gates the silent-hang case.
    pub kill_confirmation: Duration,
    /// Losses tolerated before the run fails anyway.  A loss *during*
    /// recovery is always fatal, whatever the budget says.
    pub max_node_losses: usize,
}

impl RecoveryConfig {
    /// Replaces the heartbeat-silence budget before a node is declared
    /// dead.
    #[must_use]
    pub fn with_kill_confirmation(mut self, kill_confirmation: Duration) -> Self {
        self.kill_confirmation = kill_confirmation;
        self
    }

    /// Replaces the number of node losses survived before failing.
    #[must_use]
    pub fn with_max_node_losses(mut self, max_node_losses: usize) -> Self {
        self.max_node_losses = max_node_losses;
        self
    }
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig { kill_confirmation: Duration::from_secs(10), max_node_losses: 1 }
    }
}

/// What the protocol's recovery machinery did, folded into the report's
/// [`AdaptReport`] when any re-shard happened.  (The per-episode task
/// counts travel as [`EventKind::Recovery`] events and `live.*` counters
/// instead.)
#[derive(Debug, Clone, Copy, Default)]
struct RecoverySummary {
    node_reshards: u64,
}

/// The coordinator's mutable recovery state across one run: the current
/// routing table (updated by every re-shard) and the casualty list.
struct RecoveryState {
    cfg: RecoveryConfig,
    node_of_task: Vec<usize>,
    down: Vec<usize>,
    round: u32,
}

/// What a completed control protocol hands back: the wall-clocked
/// execution span, one metrics document per worker, (observed runs
/// only) the per-node telemetry snapshots, and the recovery summary.
type ProtocolOutcome = (Duration, Vec<WorkerMetrics>, Vec<(u32, TelemetrySnapshot)>, RecoverySummary);

/// The multi-process cluster executor as a `Session` backend: one OS
/// process per node of the wrapped [`ClusterMachine`], the ORWL lock
/// protocol over sockets between them.
#[derive(Debug, Clone)]
pub struct ProcBackend {
    machine: ClusterMachine,
    nobind_seed: u64,
    io_timeout: Duration,
    worker_args: Vec<String>,
    worker_env: Vec<(String, String)>,
    live: Option<LiveConfig>,
    faults: FaultPlan,
    recovery: Option<RecoveryConfig>,
}

impl ProcBackend {
    /// Wraps a cluster machine: one worker process per node.
    #[must_use]
    pub fn new(machine: ClusterMachine) -> Self {
        ProcBackend {
            machine,
            nobind_seed: 0xC0FFEE,
            io_timeout: Duration::from_secs(30),
            worker_args: Vec::new(),
            worker_env: Vec::new(),
            live: None,
            faults: FaultPlan::new(),
            recovery: None,
        }
    }

    /// The paper's cluster shape with `n_nodes` nodes.
    #[must_use]
    pub fn paper(n_nodes: usize) -> Self {
        ProcBackend::new(ClusterMachine::paper(n_nodes))
    }

    /// Arguments appended when re-exec'ing the current binary as a
    /// worker.  Test harnesses must pin their worker-entry hook here
    /// (e.g. `["proc_worker_entry", "--exact", "--nocapture"]`) so the
    /// re-exec'd test binary runs only the hook instead of recursing
    /// into the whole suite.
    #[must_use]
    pub fn with_worker_args(mut self, args: Vec<String>) -> Self {
        self.worker_args = args;
        self
    }

    /// Adds an environment variable to every spawned worker.
    #[must_use]
    pub fn with_worker_env(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.worker_env.push((key.into(), value.into()));
        self
    }

    /// Installs a fault-injection plan: the typed chaos knob the
    /// robustness tests turn.  The plan ships to every worker through the
    /// [`ENV_FAULTS`] environment variable; each clause names the node it
    /// hits, so one plan describes the whole cluster's chaos.
    #[must_use]
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Enables failure-driven recovery: a confirmed node loss re-shards
    /// the lost tasks onto the survivors instead of failing the run.
    /// Takes effect only on live observed runs (see [`RecoveryConfig`]).
    #[must_use]
    pub fn with_recovery(mut self, recovery: RecoveryConfig) -> Self {
        self.recovery = Some(recovery);
        self
    }

    /// Replaces the deadline applied to every blocking protocol step.
    #[must_use]
    pub fn with_io_timeout(mut self, io_timeout: Duration) -> Self {
        self.io_timeout = io_timeout;
        self
    }

    /// Enables live telemetry on observed runs: workers stream heartbeats
    /// and interval deltas on [`LiveConfig::interval`], the coordinator
    /// aggregates them mid-run and flags stragglers.  Ignored unless the
    /// session asks for observation (`SessionConfig::observe`), because
    /// the stream is drained from the run's recorder.
    #[must_use]
    pub fn with_live(mut self, live: LiveConfig) -> Self {
        self.live = Some(live);
        self
    }

    /// Replaces the seed of the `NoBind` OS-spread placement model
    /// (shared with [`ClusterBackend`](orwl_cluster::ClusterBackend)).
    #[must_use]
    pub fn with_nobind_seed(mut self, seed: u64) -> Self {
        self.nobind_seed = seed;
        self
    }

    /// The cluster machine the processes emulate.
    #[must_use]
    pub fn machine(&self) -> &ClusterMachine {
        &self.machine
    }

    /// Builds each worker's assignment from the node sharding and the
    /// phase schedule: every positive off-diagonal matrix entry
    /// `m[src][dst]` becomes one read of that many bytes by task `dst`
    /// from task `src`'s location per iteration, filtered to the readers
    /// hosted on each node.  This is the same ordered-pair traversal the
    /// cluster simulator prices, which is what makes measured and
    /// predicted inter-node bytes comparable.
    fn assignments(
        &self,
        workload: &PhasedWorkload,
        node_of_task: &[usize],
        pool: &WorkerPool,
        recovering: bool,
    ) -> Vec<Assignment> {
        let cluster = self.machine.cluster();
        let n_nodes = cluster.n_nodes();
        let n_tasks = workload.n_tasks();
        let node_topo = cluster.node_topology();
        let levels: Vec<(String, usize)> = node_topo
            .level_spec()
            .iter()
            .map(|level| (level.obj_type.short_name().to_string(), level.count))
            .collect();
        let rack_of_node: Vec<usize> = (0..n_nodes).map(|k| cluster.rack_of_node(k)).collect();
        let peer_listen: Vec<String> =
            (0..n_nodes).map(|k| pool.peer_socket(k).to_string_lossy().into_owned()).collect();

        (0..n_nodes)
            .map(|node| Assignment {
                node,
                n_nodes,
                n_tasks,
                io_timeout_ms: self.io_timeout.as_millis() as u64,
                topo_name: node_topo.name().to_string(),
                levels: levels.clone(),
                rack_of_node: rack_of_node.clone(),
                node_of_task: node_of_task.to_vec(),
                listen: peer_listen[node].clone(),
                peer_listen: peer_listen.clone(),
                recovery: recovering,
                phases: workload
                    .phases
                    .iter()
                    .map(|phase| {
                        let m = phase.graph.comm_matrix();
                        let mut reads = Vec::new();
                        for src in 0..n_tasks {
                            for (dst, &dst_node) in node_of_task.iter().enumerate() {
                                let bytes = m.get(src, dst);
                                if src != dst && bytes > 0.0 && dst_node == node {
                                    reads.push(ReadEdge { reader: dst, src, bytes });
                                }
                            }
                        }
                        PhasePlan { iterations: phase.iterations, reads }
                    })
                    .collect(),
                obs: None, // stamped per node at send time when observed
            })
            .collect()
    }

    /// Drives the coordinator side of the control protocol to completion:
    /// handshake, assignments, synchronized start, the wall-clocked
    /// execution span, telemetry collection (observed runs), shutdown,
    /// and one metrics document per worker.
    fn run_protocol(
        &self,
        mut pool: WorkerPool,
        workload: &PhasedWorkload,
        node_of_task: &[usize],
        observe: Option<&ObsConfig>,
        recorder: Option<&Recorder>,
    ) -> Result<ProtocolOutcome, WorkerFailure> {
        // Live streaming needs a worker recorder to drain, so the live
        // config takes effect only on observed runs.  Recovery in turn
        // needs the heartbeat stream as its liveness signal, so it takes
        // effect only on live runs.
        let live = self.live.as_ref().filter(|_| observe.is_some());
        let mut recovery = live.and(self.recovery.as_ref()).map(|cfg| RecoveryState {
            cfg: cfg.clone(),
            node_of_task: node_of_task.to_vec(),
            down: Vec::new(),
            round: 0,
        });
        let mut assignments = self.assignments(workload, node_of_task, &pool, recovery.is_some());
        let n_nodes = assignments.len();
        pool.accept_controls()?;
        for (node, assignment) in assignments.iter_mut().enumerate() {
            // The obs spec is stamped per node at send time: it carries
            // the two coordinator-side handshake timestamps the worker
            // needs for its clock-offset estimate, and the send stamp
            // must be taken as late as possible.
            if let Some(cfg) = observe {
                let mut spec = ObsSpec::new(cfg, pool.hello_recv_us(node), orwl_obs::process_clock_us());
                if let Some(live) = live {
                    spec = spec.with_stream_interval_ms((live.interval.as_millis() as u64).max(1));
                }
                assignment.obs = Some(spec);
            }
            pool.send_to(node, &Message::Assignment { json: assignment.to_json().pretty() })?;
        }
        for node in 0..n_nodes {
            pool.recv_from(node, "ready")?;
        }
        let started = Instant::now();
        pool.broadcast(&Message::Start)?;
        let mut monitor = live.map(|cfg| LiveMonitor::new(n_nodes, cfg));
        match monitor.as_mut() {
            None => {
                for node in 0..n_nodes {
                    pool.recv_from(node, "done")?;
                }
            }
            Some(monitor) => {
                self.monitor_run(&mut pool, monitor, n_nodes, workload, &mut recovery, recorder)?;
            }
        }
        let elapsed = started.elapsed();
        // Shutdown is broadcast *before* collecting telemetry: once every
        // node has reported Done, every section anywhere has been granted
        // and released, so a worker that drains its recorder after seeing
        // Shutdown misses no owner-side events.  (Draining at Done would
        // race a slow peer's read storm against the drain.)
        pool.broadcast(&Message::Shutdown)?;
        let mut uploads = Vec::new();
        if observe.is_some() {
            // A lost node uploads nothing: its telemetry died with it.
            // (Its pre-loss streamed deltas have no snapshot to fold
            // into, so they survive only as live counters — documented
            // in DESIGN.md's recovery limits.)
            let alive: Vec<usize> = (0..n_nodes).filter(|&node| !pool.is_dead(node)).collect();
            for node in alive {
                let Message::TelemetryUpload { node: from, snapshot } =
                    pool.recv_from(node, "telemetry_upload")?
                else {
                    unreachable!("recv_from returns the requested kind");
                };
                match TelemetrySnapshot::decode(&snapshot) {
                    Ok(snap) => uploads.push((from, snap)),
                    Err(e) => {
                        return Err(pool.fail(Some(node), format!("bad telemetry snapshot: {e}")));
                    }
                }
            }
        }
        if let Some(monitor) = monitor.as_mut() {
            // Streaming frames can race any protocol step (a worker's last
            // interval fires while its Done or upload is in flight);
            // `recv_from` stashed them instead of failing, so no delta is
            // lost.  A worker stops streaming before it uploads, so by now
            // the stash is complete.
            for (node, message) in pool.take_stray() {
                match message {
                    Message::Heartbeat { seq, .. } => monitor.heartbeat(node, seq),
                    Message::TelemetryDelta { delta, .. } => {
                        monitor.delta(node, &delta).map_err(|e| pool.fail(Some(node), e))?;
                    }
                    _ => unreachable!("recv_from stashes only streaming frames"),
                }
            }
            // Mid-run deltas drained events the final snapshots no longer
            // hold: fold them back so the merged timeline is identical to
            // a non-streaming observed run (delta events dedup by seq;
            // metric state needs no fold — registry snapshots are
            // cumulative, so the final snapshot subsumes every delta).
            for (from, snap) in &mut uploads {
                fold_deltas(snap, &monitor.deltas[*from as usize]);
            }
            if let Some(recorder) = recorder {
                monitor.record_summary(recorder);
            }
        }
        let mut metrics = Vec::with_capacity(n_nodes);
        let alive: Vec<usize> = (0..n_nodes).filter(|&node| !pool.is_dead(node)).collect();
        for node in alive {
            let Message::Metrics { json, .. } = pool.recv_from(node, "metrics")? else {
                unreachable!("recv_from returns the requested kind");
            };
            let parsed = Json::parse(&json)
                .map_err(|e| format!("metrics document is not valid JSON: {e}"))
                .and_then(|doc| WorkerMetrics::from_json(&doc));
            match parsed {
                Ok(m) => metrics.push(m),
                Err(e) => return Err(pool.fail(Some(node), format!("bad metrics report: {e}"))),
            }
        }
        pool.wait_all()?;
        let summary = recovery
            .map(|state| RecoverySummary { node_reshards: state.down.len() as u64 })
            .unwrap_or_default();
        Ok((elapsed, metrics, uploads, summary))
    }

    /// The live done-wait: round-robins a short-slice poll over every
    /// worker's control connection, dispatching heartbeats and deltas to
    /// the monitor as they stream in, until every node reports `Done`.
    /// Silence on one node never parks the coordinator — each cycle ends
    /// with a straggler sweep, and a node with no control traffic for the
    /// whole io timeout (heartbeats reset the clock) fails the run.
    ///
    /// With recovery enabled, a confirmed loss (socket closed + process
    /// reaped, observed exit, or silence past the kill-confirmation
    /// budget) triggers [`ProcBackend::recover`] instead of failing,
    /// while the loss budget lasts.
    #[allow(clippy::too_many_lines)]
    fn monitor_run(
        &self,
        pool: &mut WorkerPool,
        monitor: &mut LiveMonitor<'_>,
        n_nodes: usize,
        workload: &PhasedWorkload,
        recovery: &mut Option<RecoveryState>,
        recorder: Option<&Recorder>,
    ) -> Result<(), WorkerFailure> {
        let mut done = vec![false; n_nodes];
        let mut last_activity = vec![Instant::now(); n_nodes];
        while (0..n_nodes).any(|node| !done[node] && !pool.is_dead(node)) {
            for node in 0..n_nodes {
                if done[node] || pool.is_dead(node) {
                    continue;
                }
                // Drain what this node has buffered, then move on.  Both
                // bounds matter: a short poll slice so an idle peer never
                // parks the loop for long, and a message cap so a chatty
                // peer beating faster than the slice cannot capture it —
                // either way every node is visited (and the straggler
                // clock consulted) several times per heartbeat interval.
                let mut lost: Option<String> = None;
                let mut drained = 0;
                while drained < 64 {
                    match pool.poll_from_lossy(node, Duration::from_millis(5))? {
                        Polled::Silence => break,
                        Polled::Lost(detail) => {
                            lost = Some(detail);
                            break;
                        }
                        Polled::Message(message) => {
                            drained += 1;
                            last_activity[node] = Instant::now();
                            match message {
                                Message::Done { .. } => {
                                    done[node] = true;
                                    monitor.done(node);
                                    break;
                                }
                                Message::Heartbeat { seq, .. } => monitor.heartbeat(node, seq),
                                Message::TelemetryDelta { delta, .. } => {
                                    monitor.delta(node, &delta).map_err(|e| pool.fail(Some(node), e))?;
                                }
                                other => {
                                    return Err(
                                        pool.fail(Some(node), format!("expected done, got {}", other.name()))
                                    );
                                }
                            }
                        }
                    }
                }
                if done[node] {
                    continue;
                }
                let can_recover = recovery.as_ref().is_some_and(|s| s.down.len() < s.cfg.max_node_losses);
                // Loss is confirmed three ways, cheapest signal first:
                // the control socket closed under a read, the child
                // process is observably gone, or the node stayed silent
                // past the confirmation budget.
                if lost.is_none() {
                    if let Some(status) = pool.worker_exited(node) {
                        lost = Some(format!("worker exited ({status}) while the coordinator awaited done"));
                    }
                }
                if lost.is_none() {
                    let budget = match recovery.as_ref() {
                        Some(state) if can_recover => state.cfg.kill_confirmation.min(self.io_timeout),
                        _ => self.io_timeout,
                    };
                    if last_activity[node].elapsed() >= budget {
                        if can_recover {
                            lost = Some(format!(
                                "no control traffic for {budget:?} (the kill-confirmation budget)"
                            ));
                        } else {
                            return Err(pool.fail(
                                Some(node),
                                "timed out waiting for done (no heartbeat within the io timeout)",
                            ));
                        }
                    }
                }
                if let Some(detail) = lost {
                    if !can_recover {
                        return Err(pool.fail_cascade(node, detail));
                    }
                    let state = recovery.as_mut().expect("can_recover implies recovery state");
                    self.recover(
                        pool,
                        monitor,
                        state,
                        workload,
                        node,
                        &detail,
                        &mut done,
                        &mut last_activity,
                        recorder,
                    )?;
                }
            }
            let settled: Vec<bool> = (0..n_nodes).map(|n| done[n] || pool.is_dead(n)).collect();
            monitor.check_stragglers(&settled);
        }
        Ok(())
    }

    /// One recovery episode: confirm the loss, quiesce the survivors at
    /// their next iteration boundary, re-shard the dead node's tasks onto
    /// them (only the affected shard moves), ship each survivor its
    /// [`ReAssignment`], and resume.  The quiesce/ack/ready/resume
    /// exchange is a barrier: no survivor computes while the routing
    /// table is inconsistent.
    #[allow(clippy::too_many_arguments)]
    fn recover(
        &self,
        pool: &mut WorkerPool,
        monitor: &mut LiveMonitor<'_>,
        state: &mut RecoveryState,
        workload: &PhasedWorkload,
        dead: usize,
        detail: &str,
        done: &mut [bool],
        last_activity: &mut [Instant],
        recorder: Option<&Recorder>,
    ) -> Result<(), WorkerFailure> {
        let n_nodes = done.len();
        let tasks_lost = state.node_of_task.iter().filter(|&&n| n == dead).count();
        // Confirm first: reap (or kill) the child and drop its control
        // connection, so nothing below can block on the dead node.
        let (_status, _stderr_tail) = pool.confirm_loss(dead);
        if let Some(recorder) = recorder {
            recorder.record(EventKind::NodeLoss { node: dead as u32, tasks_lost });
        }
        let alive: Vec<usize> = (0..n_nodes).filter(|&n| !pool.is_dead(n)).collect();
        if alive.is_empty() {
            return Err(
                pool.fail(Some(dead), format!("node lost with no survivors to re-shard onto ({detail})"))
            );
        }
        state.round += 1;
        let round = state.round;
        pool.broadcast(&Message::Quiesce { round })?;
        for &node in &alive {
            self.await_recovery_frame(pool, monitor, node, "quiesce_ack", round, done)?;
        }
        // The same shard-migration step the simulator and the unit tests
        // exercise: survivors keep their tasks, orphans follow their
        // traffic partners under the capacity bound.
        let m = workload.phases[0].graph.comm_matrix();
        let plan = reshard_after_node_loss(&self.machine, &m, &state.node_of_task, dead, &state.down);
        let n_tasks = state.node_of_task.len();
        for &node in &alive {
            let adopted: Vec<usize> =
                plan.migrated_tasks.iter().copied().filter(|&t| plan.node_of_task[t] == node).collect();
            let phases = workload
                .phases
                .iter()
                .map(|phase| {
                    let pm = phase.graph.comm_matrix();
                    let mut reads = Vec::new();
                    for src in 0..n_tasks {
                        for &dst in &adopted {
                            let bytes = pm.get(src, dst);
                            if src != dst && bytes > 0.0 {
                                reads.push(ReadEdge { reader: dst, src, bytes });
                            }
                        }
                    }
                    PhasePlan { iterations: phase.iterations, reads }
                })
                .collect();
            let reassign =
                ReAssignment { node, round, dead, node_of_task: plan.node_of_task.clone(), adopted, phases };
            pool.send_to(node, &Message::ReAssignment { json: reassign.to_json().pretty() })?;
        }
        for &node in &alive {
            self.await_recovery_frame(pool, monitor, node, "ready", round, done)?;
        }
        let migrated = plan.migrated_tasks.len();
        state.node_of_task = plan.node_of_task;
        state.down.push(dead);
        monitor.node_losses += 1;
        monitor.reshards += 1;
        monitor.tasks_migrated += migrated as u64;
        if let Some(recorder) = recorder {
            recorder.record(EventKind::Recovery { node: dead as u32, tasks_migrated: migrated });
        }
        pool.broadcast(&Message::Resume { round })?;
        // Survivors go back to work (possibly with adopted tasks), so
        // their done flags and silence clocks restart.
        for &node in &alive {
            done[node] = false;
            last_activity[node] = Instant::now();
        }
        Ok(())
    }

    /// Waits for one survivor's recovery frame (`quiesce_ack` or
    /// `ready`), dispatching the streaming frames that keep arriving in
    /// the meantime.  A `Done` here is the quiesce racing the worker's
    /// natural finish — recorded, not an error (the worker still acks).
    /// Any loss during recovery is fatal: the routing table is mid-flight
    /// and a second re-shard on top of it has no consistent base.
    fn await_recovery_frame(
        &self,
        pool: &mut WorkerPool,
        monitor: &mut LiveMonitor<'_>,
        node: usize,
        expect: &'static str,
        round: u32,
        done: &mut [bool],
    ) -> Result<(), WorkerFailure> {
        let deadline = Instant::now() + self.io_timeout;
        loop {
            match pool.poll_from_lossy(node, Duration::from_millis(50))? {
                Polled::Message(message) => match message {
                    Message::QuiesceAck { round: acked, .. } if expect == "quiesce_ack" => {
                        if acked != round {
                            return Err(pool.fail(
                                Some(node),
                                format!("quiesce_ack for round {acked}, expected round {round}"),
                            ));
                        }
                        return Ok(());
                    }
                    Message::Ready { .. } if expect == "ready" => return Ok(()),
                    Message::Done { .. } => {
                        done[node] = true;
                        monitor.done(node);
                    }
                    Message::Heartbeat { seq, .. } => monitor.heartbeat(node, seq),
                    Message::TelemetryDelta { delta, .. } => {
                        monitor.delta(node, &delta).map_err(|e| pool.fail(Some(node), e))?;
                    }
                    other => {
                        return Err(pool.fail(
                            Some(node),
                            format!("expected {expect} during recovery, got {}", other.name()),
                        ));
                    }
                },
                Polled::Silence => {
                    if pool.worker_exited(node).is_some() || Instant::now() >= deadline {
                        return Err(pool.fail_cascade(
                            node,
                            format!(
                                "worker lost while the coordinator awaited {expect} (recovery round {round})"
                            ),
                        ));
                    }
                }
                Polled::Lost(detail) => {
                    return Err(
                        pool.fail_cascade(node, format!("second node loss during recovery: {detail}"))
                    );
                }
            }
        }
    }

    /// Tree hops a byte pays on each fabric lane of this machine, probed
    /// from representative cross-node PU pairs (constant per lane in the
    /// balanced trees the machines model): `(same_rack, cross_rack)`.
    fn lane_hops(&self) -> (f64, f64) {
        let cluster = self.machine.cluster();
        let per_node = cluster.pus_per_node();
        let mut same_rack = 0.0;
        let mut cross_rack = 0.0;
        for node in 1..cluster.n_nodes() {
            let hops = cluster.hop_distance(0, node * per_node) as f64;
            if cluster.rack_of_node(node) == cluster.rack_of_node(0) {
                same_rack = hops;
            } else {
                cross_rack = hops;
            }
        }
        (same_rack, cross_rack)
    }
}

impl ExecutionBackend for ProcBackend {
    fn name(&self) -> &'static str {
        "proc"
    }

    fn run(&self, config: &SessionConfig, workload: Workload) -> Result<Report, OrwlError> {
        if std::env::var(coordinator::ENV_ROLE).is_ok() {
            // A worker must never spawn grand-workers: reaching this
            // point means a harness forgot `maybe_worker()` or its
            // worker-args filter, and recursing would fork-bomb.
            return Err(OrwlError::WorkerFailed {
                node: 0,
                detail: "ProcBackend invoked inside a worker process (recursive spawn guard)".to_string(),
            });
        }
        let Workload::Phased(workload) = workload else {
            return Err(ConfigError::WorkloadMismatch {
                backend: self.name().to_string(),
                expected: "phased".to_string(),
            }
            .into());
        };
        let modelled = self.machine.topology();
        if config.topology.name() != modelled.name()
            || config.topology.nb_pus() != modelled.nb_pus()
            || config.topology.level_spec() != modelled.level_spec()
        {
            return Err(ConfigError::TopologyMismatch {
                backend: self.name().to_string(),
                expected: modelled.name().to_string(),
                got: config.topology.name().to_string(),
            }
            .into());
        }
        if !matches!(config.mode, Mode::Static) {
            return Err(ConfigError::UnsupportedMode {
                backend: self.name().to_string(),
                mode: config.mode.name().to_string(),
            }
            .into());
        }

        // The coordinator's recorder anchors the merged timeline's clock:
        // created before any worker spawns so every handshake and worker
        // event lands after its origin.
        let recorder = config.observe.map(|cfg| Recorder::new(ClockKind::Wall, cfg));

        // The same sharding step as the cluster simulator, from the same
        // symmetrized first-phase matrix — the keystone of sim-vs-real
        // comparability.
        let cp = policy_placement(
            &self.machine,
            config.policy,
            config.control_threads,
            self.nobind_seed,
            &workload.phases[0].graph.comm_matrix().symmetrized(),
        );
        let mapping = cp.global_mapping(&self.machine);
        let cluster = self.machine.cluster();

        // Intra-node traffic never touches a socket (it stays inside one
        // worker's address space), so its hop-bytes and the same-node
        // telemetry lane come from the plan, exactly as the simulator
        // prices them; only the inter-node side is measured.
        let mut intra_hop_model = 0.0;
        let mut same_node_bytes_model = 0.0;
        for phase in &workload.phases {
            let m = phase.graph.comm_matrix();
            let iters = phase.iterations as f64;
            let (intra, _) = split_hop_bytes(cluster, &m, &mapping);
            intra_hop_model += iters * intra;
            let mut off_diagonal = 0.0;
            for src in 0..m.order() {
                for dst in 0..m.order() {
                    if src != dst {
                        off_diagonal += m.get(src, dst);
                    }
                }
            }
            same_node_bytes_model += iters * (off_diagonal - inter_node_bytes(cluster, &m, &mapping));
        }

        let mut worker_env = self.worker_env.clone();
        if !self.faults.is_empty() {
            worker_env.push((fault::ENV_FAULTS.to_string(), self.faults.to_env_value()));
        }
        let pool = WorkerPool::spawn(cluster.n_nodes(), &self.worker_args, &worker_env, self.io_timeout)
            .map_err(|e| OrwlError::WorkerFailed { node: 0, detail: format!("spawning workers: {e}") })?;
        let (elapsed, metrics, uploads, recovery) = self
            .run_protocol(pool, &workload, &cp.node_of_task, config.observe.as_ref(), recorder.as_deref())
            .map_err(|f| OrwlError::WorkerFailed { node: f.node, detail: f.detail })?;

        let mut same_rack_bytes = 0u64;
        let mut cross_rack_bytes = 0u64;
        for m in &metrics {
            same_rack_bytes += m.same_rack_payload_bytes;
            cross_rack_bytes += m.cross_rack_payload_bytes;
        }
        let measured_inter_bytes = (same_rack_bytes + cross_rack_bytes) as f64;
        let (hops_same_rack, hops_cross_rack) = self.lane_hops();

        if let Some(obs) = recorder.as_ref() {
            // The coordinator's own track carries the run-level fabric
            // summary; per-section lock telemetry now arrives from the
            // workers as first-class events in the uploads.
            for (lane, bytes) in [
                (FabricLane::SameNode, same_node_bytes_model),
                (FabricLane::SameRack, same_rack_bytes as f64),
                (FabricLane::CrossRack, cross_rack_bytes as f64),
            ] {
                if bytes > 0.0 {
                    obs.record(EventKind::FabricTransfer { lane, bytes });
                }
            }
        }

        // The plan mirrors `ThreadBackend`'s: raw first-phase matrix plus
        // the policy's compute placement, so `report.hop_bytes` is
        // directly comparable across the two executors on one program.
        let matrix = workload.phases[0].graph.comm_matrix();
        let placement = match config.policy {
            Policy::NoBind => Placement::unbound(matrix.order(), config.control_threads),
            _ => {
                let mut p = cp.placement;
                p.control = vec![None; config.control_threads];
                p
            }
        };
        let plan = PlacementPlan::new(config.policy, matrix, placement);
        let breakdown = plan.breakdown(&config.topology);
        let hop_bytes = plan.hop_bytes(&config.topology);
        Ok(Report {
            backend: self.name().to_string(),
            mode: config.mode.name(),
            time: RunTime::Wall(elapsed),
            plan,
            breakdown,
            hop_bytes,
            // Present only when a loss actually re-sharded something, so
            // fault-free reports stay byte-identical to builds without
            // recovery wired in.
            adapt: (recovery.node_reshards > 0)
                .then(|| AdaptReport { node_reshards: recovery.node_reshards, ..AdaptReport::default() }),
            thread: None,
            fabric: Some(ClusterTraffic {
                n_nodes: self.machine.n_nodes(),
                intra_node_hop_bytes: intra_hop_model,
                inter_node_hop_bytes: same_rack_bytes as f64 * hops_same_rack
                    + cross_rack_bytes as f64 * hops_cross_rack,
                inter_node_bytes: measured_inter_bytes,
            }),
            obs: recorder.map(|r| {
                let origin_us = r.origin_us() as f64;
                merge_run(r.finish(self.name()), origin_us, &uploads)
            }),
        })
    }
}
