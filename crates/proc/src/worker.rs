//! The worker side of the multi-process backend.
//!
//! A worker is the current binary re-exec'd with the worker-role
//! environment set.  Binaries and test harnesses that drive
//! [`ProcBackend`](crate::ProcBackend) call [`maybe_worker`] as their
//! first statement: in the parent it is a no-op, in a spawned worker it
//! runs the whole worker lifecycle and exits the process.
//!
//! Lifecycle: connect to the coordinator → `Hello` → receive the
//! [`Assignment`] → bind the peer listener and start the serving thread →
//! `Ready` → `Start` → run the local tasks through a real
//! `orwl_core` session (one-shot ORWL handles for local sections, the
//! wire protocol for remote ones) → `Done` → keep serving peers until
//! `Shutdown` → drain and upload telemetry (observed runs) → report
//! [`WorkerMetrics`] → exit.
//!
//! On recovery-enabled runs the execution span is a *loop of rounds*: a
//! coordinator `Quiesce` (a peer died) interrupts the running round at
//! the next iteration boundary, the worker acks, adopts whatever orphans
//! the [`ReAssignment`] routes here (fresh locations, zero progress —
//! the dead node's state died with it), and `Resume` starts the next
//! round on the remaining work.  Surviving tasks keep their iteration
//! progress across rounds.
//!
//! Fault injection comes exclusively from the typed plan in
//! [`ENV_FAULTS`](crate::fault::ENV_FAULTS) (see [`crate::fault`]); a
//! malformed plan fails the worker at startup rather than silently
//! running a different experiment.
//!
//! Remote sections run the ORWL FIFO discipline over the wire: the
//! reader's `LockRequest` enters the owner's local FIFO (a one-shot read
//! handle on the owned location), the `LockGrant` carries the location
//! buffer back, and the reader's `Release` closes the section.  Each
//! (reader, owner) pair shares one connection and the reader holds it for
//! the whole request→grant→release exchange, so a connection never
//! interleaves two sections and the server side needs no demultiplexer.

use crate::assignment::{Assignment, ReAssignment};
use crate::coordinator::{ENV_COORD, ENV_NODE, ENV_ROLE};
use crate::fault::FaultPlan;
use crate::metrics::{WorkerMetrics, MAX_WAIT_SAMPLES};
use crate::transport::{FramedStream, RecvError};
use crate::wire::{Message, WireAccess, MAX_DATA};
use orwl_core::location::Location;
use orwl_core::request::AccessMode;
use orwl_core::session::{Session, ThreadBackend};
use orwl_core::task::{LocationLink, OrwlProgram, TaskSpec};
use orwl_obs::json::Json;
use orwl_obs::{ClockKind, DeltaSampler, EventKind, ObsEvent, Recorder, RunTelemetry, TelemetrySnapshot};
use orwl_topo::binding::RecordingBinder;
use orwl_topo::object::ObjectType;
use orwl_topo::topology::{LevelSpec, Topology};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::os::unix::net::UnixListener;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

/// Events kept in an uploaded snapshot (newest win; the remainder joins
/// the drop counter).  Keeps the upload well under the wire's
/// `MAX_SNAPSHOT` budget.
const MAX_UPLOAD_EVENTS: usize = 100_000;

/// Events kept in one streamed interval delta (newest win; the remainder
/// joins the delta's drop counter).  Keeps every delta well under the
/// wire's `MAX_DELTA` budget however bursty the interval was.
const MAX_DELTA_EVENTS: usize = 50_000;

/// The owned-locations map, shared by the serving threads, the task
/// bodies and the recovery path (which inserts adopted locations between
/// rounds).  Readers clone the `Arc` out and drop the guard before any
/// blocking FIFO work, so a between-rounds write never deadlocks against
/// a section in flight.
type SharedLocations = Arc<RwLock<HashMap<u64, Arc<Location<u64>>>>>;

/// Process-local `LocationId` → global task index, shared with the
/// telemetry streamer and grown by every adoption.
type SharedGlobals = Arc<RwLock<HashMap<u64, u64>>>;

/// Runs the worker lifecycle and exits iff this process was spawned as an
/// `orwl-proc` worker; returns immediately otherwise.  Call first thing
/// in `main` of any binary that drives `ProcBackend`.
pub fn maybe_worker() {
    if std::env::var(ENV_ROLE).as_deref() != Ok("worker") {
        return;
    }
    match worker_main() {
        Ok(()) => std::process::exit(0),
        Err(e) => {
            eprintln!("orwl-proc worker failed: {e}");
            std::process::exit(1);
        }
    }
}

fn env_usize(key: &str) -> Result<usize, String> {
    std::env::var(key)
        .map_err(|_| format!("{key} is not set"))?
        .parse()
        .map_err(|e| format!("{key} is not a number: {e}"))
}

fn worker_main() -> Result<(), String> {
    let node = env_usize(ENV_NODE)?;
    let coord = std::env::var(ENV_COORD).map_err(|_| format!("{ENV_COORD} is not set"))?;
    // The control stream is shared between the main protocol thread and
    // (on live runs) the telemetry streamer, so it lives behind a mutex
    // from the start; every receive takes the lock in short slices so a
    // blocked wait never starves the streamer's sends.  The connect
    // retries under a bounded budget: the coordinator binds the
    // rendezvous socket before spawning, but a loaded machine can still
    // delay the listener's backlog.
    let control = Arc::new(Mutex::new(
        FramedStream::connect_retry(std::path::Path::new(&coord), Duration::from_secs(10))
            .map_err(|e| format!("connecting to coordinator: {e}"))?,
    ));
    // The two worker-side timestamps of the clock-offset handshake: the
    // coordinator stamps the matching receive/send instants into the
    // assignment's obs spec, and the midpoint of the two one-way legs
    // estimates this process's clock offset (see `orwl_obs::merge`).
    let hello_send_us = orwl_obs::process_clock_us();
    send_ctl(&control, &Message::Hello { node: node as u32 }).map_err(|e| format!("sending hello: {e}"))?;
    let Message::Assignment { json } = recv_ctl(&control, "assignment", Duration::from_secs(30))? else {
        unreachable!("recv_ctl returns the expected kind");
    };
    let assign_recv_us = orwl_obs::process_clock_us();
    let doc = Json::parse(&json).map_err(|e| format!("assignment is not valid JSON: {e}"))?;
    let assignment = Assignment::from_json(&doc).map_err(|e| format!("bad assignment: {e}"))?;
    if assignment.node != node {
        return Err(format!("assignment for node {} delivered to node {node}", assignment.node));
    }
    match run_worker(&control, &assignment, hello_send_us, assign_recv_us) {
        Ok(()) => Ok(()),
        Err(e) => {
            let _ = send_ctl(&control, &Message::Error { message: e.clone() });
            Err(e)
        }
    }
}

/// Sends one control message under the shared-stream lock.
fn send_ctl(control: &Arc<Mutex<FramedStream>>, message: &Message) -> Result<(), String> {
    control
        .lock()
        .map_err(|_| "control stream poisoned".to_string())?
        .send(message)
        .map_err(|e| e.to_string())
}

/// `recv_expect` against the shared control stream, holding the lock only
/// in 50 ms slices so the streamer thread can interleave its sends while
/// the main thread waits out a long protocol step.
fn recv_ctl(
    control: &Arc<Mutex<FramedStream>>,
    expect: &'static str,
    deadline: Duration,
) -> Result<Message, String> {
    recv_ctl_any(control, &[expect], deadline)
}

/// [`recv_ctl`] accepting any of several kinds — the post-`Done` wait can
/// legitimately see either `Shutdown` (run over) or `Quiesce` (a peer
/// died and this worker is being pulled into a recovery round).
fn recv_ctl_any(
    control: &Arc<Mutex<FramedStream>>,
    expect: &[&'static str],
    deadline: Duration,
) -> Result<Message, String> {
    let start = Instant::now();
    loop {
        let outcome = control
            .lock()
            .map_err(|_| "control stream poisoned".to_string())?
            .recv(Some(Duration::from_millis(50)));
        match outcome {
            Ok(message) if expect.contains(&message.name()) => return Ok(message),
            Ok(Message::Error { message }) => return Err(format!("peer reported: {message}")),
            Ok(other) => {
                return Err(format!("expected {}, got {}", expect.join(" or "), other.name()));
            }
            Err(RecvError::Timeout) => {
                if start.elapsed() >= deadline {
                    return Err(format!("while waiting for {}: timed out", expect.join(" or ")));
                }
            }
            Err(e) => return Err(format!("while waiting for {}: {e}", expect.join(" or "))),
        }
    }
}

/// Shared tallies of the reader side (remote sections this worker opened).
#[derive(Default)]
struct ReaderTallies {
    same_rack_payload_bytes: AtomicU64,
    cross_rack_payload_bytes: AtomicU64,
    remote_reads: AtomicU64,
    lock_wait_count: AtomicU64,
    lock_wait_total_ns: AtomicU64,
    lock_wait_samples: Mutex<Vec<(u64, u64)>>,
}

/// The reader-side gateway: one serialized connection per owner peer.
/// Recovery rewrites the routing table and drops the dead peer's
/// connection between rounds; connections to new owners open lazily on
/// first use.
struct PeerGateway {
    conns: RwLock<BTreeMap<usize, Arc<Mutex<FramedStream>>>>,
    routing: RwLock<Vec<usize>>,
    peer_listen: Vec<String>,
    rack_of_node: Vec<usize>,
    my_node: usize,
    my_rack: usize,
    io_timeout: Duration,
    wire_delay: Duration,
    seq: AtomicU64,
    tallies: ReaderTallies,
}

impl PeerGateway {
    fn connect(assignment: &Assignment, faults: &FaultPlan) -> Result<PeerGateway, String> {
        let gateway = PeerGateway {
            conns: RwLock::new(BTreeMap::new()),
            routing: RwLock::new(assignment.node_of_task.clone()),
            peer_listen: assignment.peer_listen.clone(),
            rack_of_node: assignment.rack_of_node.clone(),
            my_node: assignment.node,
            my_rack: assignment.rack_of_node[assignment.node],
            io_timeout: Duration::from_millis(assignment.io_timeout_ms),
            wire_delay: Duration::from_millis(faults.wire_delay_ms(assignment.node).unwrap_or(0)),
            // Seqs are namespaced by node (high 32 bits) so a request id
            // is unique across every reader process of the run — the
            // merged timeline matches requests to grants by this id.
            seq: AtomicU64::new((assignment.node as u64) << 32),
            tallies: ReaderTallies::default(),
        };
        // Eagerly dial every owner the initial schedule names; peers
        // adopted into the routing later connect lazily on first read.
        let mut peers = BTreeSet::new();
        for phase in &assignment.phases {
            for read in &phase.reads {
                let owner = assignment.node_of_task[read.src];
                if owner != assignment.node {
                    peers.insert(owner);
                }
            }
        }
        for peer in peers {
            gateway.conn_for(peer)?;
        }
        Ok(gateway)
    }

    /// The serialized connection to `owner`, dialling it (bounded retry:
    /// peers bind their listeners concurrently) on first use.
    fn conn_for(&self, owner: usize) -> Result<Arc<Mutex<FramedStream>>, String> {
        if let Some(conn) = self.conns.read().ok().and_then(|map| map.get(&owner).cloned()) {
            return Ok(conn);
        }
        let mut map = self.conns.write().map_err(|_| "gateway connection map poisoned".to_string())?;
        if let Some(conn) = map.get(&owner) {
            return Ok(Arc::clone(conn));
        }
        let path = std::path::Path::new(&self.peer_listen[owner]);
        let stream = FramedStream::connect_retry(path, self.io_timeout)
            .map_err(|e| format!("connecting to peer {owner}: {e}"))?;
        let conn = Arc::new(Mutex::new(stream));
        map.insert(owner, Arc::clone(&conn));
        Ok(conn)
    }

    /// Swaps in the post-loss routing table and hangs up on the dead
    /// peer.  Runs between rounds only (the quiesce barrier guarantees no
    /// section is in flight).
    fn apply_reassignment(&self, node_of_task: &[usize], dead: usize) {
        if let Ok(mut routing) = self.routing.write() {
            node_of_task.clone_into(&mut routing);
        }
        if let Ok(mut conns) = self.conns.write() {
            conns.remove(&dead);
        }
    }

    /// One remote read section: request → grant (with payload) → release.
    fn remote_read(&self, src: usize, bytes: f64) -> Result<(), String> {
        let owner = self
            .routing
            .read()
            .map_err(|_| "gateway routing table poisoned".to_string())?
            .get(src)
            .copied()
            .ok_or_else(|| format!("task {src} is not in the routing table"))?;
        if owner == self.my_node {
            return Err(format!("task {src} is routed here but its location is absent"));
        }
        let conn = self.conn_for(owner)?;
        if !self.wire_delay.is_zero() {
            // Injected link latency (fault plans only; zero in production
            // runs), paid before the section opens.
            std::thread::sleep(self.wire_delay);
        }
        let mut stream = conn.lock().map_err(|_| "gateway connection poisoned".to_string())?;
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let want = (bytes.round().max(0.0) as u64).min(MAX_DATA as u64);
        let location = src as u64;
        orwl_obs::emit(EventKind::LockRequest { rseq: seq, location, owner: owner as u32 });
        stream
            .send(&Message::LockRequest { seq, location, access: WireAccess::Read, bytes: want })
            .map_err(|e| format!("lock request to peer {owner}: {e}"))?;
        let requested = Instant::now();
        let granted = match stream.recv(Some(self.io_timeout)) {
            Ok(Message::LockGrant { seq: s, location: l, data }) if s == seq && l == location => data,
            Ok(Message::Error { message }) => return Err(format!("peer {owner}: {message}")),
            Ok(other) => {
                return Err(format!("peer {owner}: expected lock_grant, got {}", other.name()));
            }
            Err(e) => return Err(format!("peer {owner}: waiting for grant: {e}")),
        };
        let wait_ns = requested.elapsed().as_nanos() as u64;
        let granted_at = Instant::now();
        stream
            .send(&Message::Release { seq, location })
            .map_err(|e| format!("release to peer {owner}: {e}"))?;
        orwl_obs::emit(EventKind::LockRelease {
            rseq: seq,
            location,
            held_ns: granted_at.elapsed().as_nanos() as u64,
        });
        drop(stream);

        let lane = if self.rack_of_node[owner] == self.my_rack {
            &self.tallies.same_rack_payload_bytes
        } else {
            &self.tallies.cross_rack_payload_bytes
        };
        lane.fetch_add(granted.len() as u64, Ordering::Relaxed);
        self.tallies.remote_reads.fetch_add(1, Ordering::Relaxed);
        self.tallies.lock_wait_count.fetch_add(1, Ordering::Relaxed);
        self.tallies.lock_wait_total_ns.fetch_add(wait_ns, Ordering::Relaxed);
        if let Ok(mut samples) = self.tallies.lock_wait_samples.lock() {
            if samples.len() < MAX_WAIT_SAMPLES {
                samples.push((location, wait_ns));
            }
        }
        Ok(())
    }

    /// Tears the gateway apart for the teardown accounting.
    fn into_parts(self) -> (BTreeMap<usize, Arc<Mutex<FramedStream>>>, ReaderTallies) {
        let conns = self.conns.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner);
        (conns, self.tallies)
    }
}

/// Serves one inbound peer connection: each `LockRequest` runs a one-shot
/// handle through the owned location's ORWL FIFO, the grant ships the
/// buffer, and the section stays open until the peer's `Release`.
fn serve_connection(
    mut stream: FramedStream,
    locations: SharedLocations,
    shutdown: Arc<AtomicBool>,
    io_timeout: Duration,
) -> (u64, u64, u64, u64) {
    loop {
        match stream.recv(Some(Duration::from_millis(200))) {
            Ok(Message::LockRequest { seq, location, access, bytes }) => {
                // Clone the Arc out and release the map guard before any
                // FIFO work: a blocked acquire must not hold the map
                // against the recovery path's adoption write.
                let loc = locations.read().ok().and_then(|map| map.get(&location).cloned());
                let Some(loc) = loc else {
                    let _ = stream
                        .send(&Message::Error { message: format!("location {location} is not hosted here") });
                    break;
                };
                let mode = match access {
                    WireAccess::Read => AccessMode::Read,
                    WireAccess::Write => AccessMode::Write,
                };
                let mut handle = loc.handle(mode);
                let entered_fifo = Instant::now();
                if let Err(e) = handle.request() {
                    let _ = stream.send(&Message::Error { message: format!("lock request: {e}") });
                    break;
                }
                let guard = match handle.acquire() {
                    Ok(guard) => guard,
                    Err(e) => {
                        let _ = stream.send(&Message::Error { message: format!("lock acquisition: {e}") });
                        break;
                    }
                };
                let len = (bytes.min(MAX_DATA as u64)) as usize;
                let mut data = vec![0u8; len];
                let value = (*guard).to_le_bytes();
                let head = len.min(value.len());
                data[..head].copy_from_slice(&value[..head]);
                orwl_obs::emit(EventKind::LockGrant {
                    rseq: seq,
                    location,
                    wait_ns: entered_fifo.elapsed().as_nanos() as u64,
                });
                if stream.send(&Message::LockGrant { seq, location, data }).is_err() {
                    break;
                }
                match stream.recv(Some(io_timeout)) {
                    Ok(Message::Release { seq: s, location: l }) if s == seq && l == location => {
                        drop(guard);
                    }
                    _ => break, // broken section: the guard drops with the loop
                }
            }
            Ok(_) => break,
            Err(RecvError::Timeout) => {
                if shutdown.load(Ordering::Relaxed) {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    (stream.frames_sent(), stream.frames_received(), stream.bytes_sent(), stream.bytes_received())
}

/// The accept loop: hands every inbound connection to its own serving
/// thread and, once shut down, joins them and returns the summed socket
/// counters as `(frames_sent, frames_received, bytes_sent, bytes_received)`.
fn accept_loop(
    listener: UnixListener,
    locations: SharedLocations,
    shutdown: Arc<AtomicBool>,
    io_timeout: Duration,
) -> (u64, u64, u64, u64) {
    let mut handlers = Vec::new();
    while !shutdown.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                let locations = Arc::clone(&locations);
                let shutdown = Arc::clone(&shutdown);
                handlers.push(std::thread::spawn(move || {
                    serve_connection(FramedStream::new(stream), locations, shutdown, io_timeout)
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => break,
        }
    }
    let mut totals = (0, 0, 0, 0);
    for handler in handlers {
        if let Ok((fs, fr, bs, br)) = handler.join() {
            totals = (totals.0 + fs, totals.1 + fr, totals.2 + bs, totals.3 + br);
        }
    }
    totals
}

/// Why one iteration failed: a broken peer exchange (the worker-side
/// symptom of a node loss — recoverable) or anything local (never).
enum IterError {
    Remote(String),
    Local(String),
}

/// The park-on-peer-failure switch shared by every task body of a round.
/// On recovery-enabled runs a remote failure (or a coordinator `Quiesce`
/// relayed by the watcher) flips it, and every task breaks out at its
/// next iteration boundary instead of failing the worker.
struct Interrupt {
    enabled: bool,
    quiesce: AtomicBool,
    reason: Mutex<Option<String>>,
}

impl Interrupt {
    fn new(enabled: bool) -> Interrupt {
        Interrupt { enabled, quiesce: AtomicBool::new(false), reason: Mutex::new(None) }
    }

    fn enabled(&self) -> bool {
        self.enabled
    }

    fn parked(&self) -> bool {
        self.enabled && self.quiesce.load(Ordering::Relaxed)
    }

    /// A task hit a broken peer: remember the first cause and park.
    fn park(&self, reason: String) {
        if let Ok(mut slot) = self.reason.lock() {
            slot.get_or_insert(reason);
        }
        self.quiesce.store(true, Ordering::Relaxed);
    }

    /// The coordinator asked for a quiesce (no local symptom needed).
    fn interrupt(&self) {
        self.quiesce.store(true, Ordering::Relaxed);
    }

    fn clear(&self) {
        self.quiesce.store(false, Ordering::Relaxed);
        if let Ok(mut slot) = self.reason.lock() {
            *slot = None;
        }
    }

    fn parked_reason(&self) -> Option<String> {
        self.reason.lock().ok().and_then(|slot| slot.clone())
    }
}

/// Listens for the coordinator's `Quiesce` while a round runs, so a
/// worker whose own tasks never touch the dead node still parks promptly.
/// The main thread joins the watcher *before* its next control receive,
/// so the two never contend for a frame.
struct QuiesceWatcher {
    stop: Arc<AtomicBool>,
    handle: std::thread::JoinHandle<Option<u32>>,
}

impl QuiesceWatcher {
    fn spawn(control: Arc<Mutex<FramedStream>>, interrupt: Arc<Interrupt>) -> QuiesceWatcher {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::spawn(move || loop {
            if stop_flag.load(Ordering::Relaxed) {
                return None;
            }
            // Short lock slices with an unlocked sleep between them: the
            // telemetry streamer shares this stream and must get the lock
            // once per interval.
            let outcome = {
                let Ok(mut stream) = control.lock() else { return None };
                stream.recv(Some(Duration::from_millis(10)))
            };
            match outcome {
                Ok(Message::Quiesce { round }) => {
                    interrupt.interrupt();
                    return Some(round);
                }
                // Mid-round the coordinator sends nothing else; an
                // unexpected frame is left to the main thread's own
                // post-round receive to diagnose.
                Ok(_) => {}
                Err(RecvError::Timeout) => std::thread::sleep(Duration::from_millis(5)),
                Err(_) => return None,
            }
        });
        QuiesceWatcher { stop, handle }
    }

    /// Joins the watcher; `Some(round)` if it consumed a `Quiesce`.
    fn stop(self) -> Option<u32> {
        self.stop.store(true, Ordering::Relaxed);
        self.handle.join().unwrap_or(None)
    }
}

/// One task's plan: per phase, `(iterations, reads as (src, bytes))`.
type PhaseSchedule = Vec<(usize, Vec<(usize, f64)>)>;

/// A [`PhaseSchedule`] with each read's locality resolved for the
/// current round: `Some(location)` when the source lives on this node.
type ResolvedSchedule = Vec<(usize, Vec<(usize, f64, Option<Arc<Location<u64>>>)>)>;

/// The worker's mutable work ledger across rounds: per-task phase
/// schedules and completed-iteration progress.  Surviving tasks carry
/// their progress into the next round; adopted tasks enter at zero (the
/// run is checkpoint-free — the dead node's progress died with it).
struct WorkState {
    /// Per task: for each phase, `(iterations, reads as (src, bytes))`.
    schedules: HashMap<usize, PhaseSchedule>,
    /// Per task: completed iterations per phase, shared with the round's
    /// task closure.
    progress: HashMap<usize, Arc<Vec<AtomicUsize>>>,
}

impl WorkState {
    fn new(assignment: &Assignment) -> WorkState {
        let local_tasks = assignment.local_tasks();
        let n_phases = assignment.phases.len();
        let mut schedules: HashMap<usize, PhaseSchedule> = HashMap::new();
        for phase in &assignment.phases {
            let mut per_task: HashMap<usize, Vec<(usize, f64)>> = HashMap::new();
            for read in &phase.reads {
                per_task.entry(read.reader).or_default().push((read.src, read.bytes));
            }
            for &t in &local_tasks {
                schedules
                    .entry(t)
                    .or_default()
                    .push((phase.iterations, per_task.remove(&t).unwrap_or_default()));
            }
        }
        let progress = local_tasks
            .iter()
            .map(|&t| (t, Arc::new((0..n_phases).map(|_| AtomicUsize::new(0)).collect::<Vec<_>>())))
            .collect();
        WorkState { schedules, progress }
    }

    /// Enters the adopted orphans into the ledger at zero progress.
    fn adopt(&mut self, reassign: &ReAssignment) {
        for &t in &reassign.adopted {
            let schedule: PhaseSchedule = reassign
                .phases
                .iter()
                .map(|phase| {
                    let reads = phase
                        .reads
                        .iter()
                        .filter(|read| read.reader == t)
                        .map(|read| (read.src, read.bytes))
                        .collect();
                    (phase.iterations, reads)
                })
                .collect();
            let n_phases = schedule.len();
            self.schedules.insert(t, schedule);
            self.progress.insert(t, Arc::new((0..n_phases).map(|_| AtomicUsize::new(0)).collect()));
        }
    }

    /// The tasks with any iterations left, in deterministic order.
    fn tasks_with_work(&self) -> Vec<usize> {
        let mut tasks: Vec<usize> =
            self.schedules
                .iter()
                .filter(|(t, schedule)| {
                    schedule.iter().enumerate().any(|(k, (iterations, _))| {
                        self.progress[*t][k].load(Ordering::Relaxed) < *iterations
                    })
                })
                .map(|(&t, _)| t)
                .collect();
        tasks.sort_unstable();
        tasks
    }
}

#[allow(clippy::too_many_lines)]
fn run_worker(
    control: &Arc<Mutex<FramedStream>>,
    assignment: &Assignment,
    hello_send_us: u64,
    assign_recv_us: u64,
) -> Result<(), String> {
    let io_timeout = Duration::from_millis(assignment.io_timeout_ms);
    let faults = FaultPlan::from_env().map_err(|e| format!("fault plan: {e}"))?;
    let local_tasks = assignment.local_tasks();

    // When the assignment asks for observation, install a wall-clock
    // recorder process-wide: the core session's lock-wait hooks, the
    // gateway's request/release events and the serving threads' grant
    // events all land in it.  The offset estimate is the NTP midpoint of
    // the Hello→Assignment handshake's two one-way legs, in coordinator
    // clock minus worker clock.
    let obs = assignment.obs.as_ref().map(|spec| {
        let offset_us = ((spec.hello_recv_us as f64 - hello_send_us as f64)
            + (spec.assign_send_us as f64 - assign_recv_us as f64))
            / 2.0;
        let recorder = Arc::new(Recorder::new(ClockKind::Wall, spec.config()));
        let registration = orwl_obs::install(&recorder);
        (recorder, registration, offset_us)
    });

    // The locations this worker owns, keyed by global task index.  The
    // serving thread and the local task bodies share the same Arcs, so
    // remote and local sections contend in the same ORWL FIFO.
    let locations: SharedLocations = Arc::new(RwLock::new(HashMap::new()));
    {
        let mut map = locations.write().map_err(|_| "location map poisoned".to_string())?;
        for &t in &local_tasks {
            map.insert(t as u64, Location::new(format!("loc-{t}"), 0u64));
        }
    }

    let listener = UnixListener::bind(&assignment.listen)
        .map_err(|e| format!("binding peer listener at {}: {e}", assignment.listen))?;
    listener.set_nonblocking(true).map_err(|e| format!("peer listener: {e}"))?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let server = {
        let locations = Arc::clone(&locations);
        let shutdown = Arc::clone(&shutdown);
        std::thread::spawn(move || accept_loop(listener, locations, shutdown, io_timeout))
    };

    send_ctl(control, &Message::Ready { node: assignment.node as u32 })?;
    recv_ctl(control, "start", io_timeout)?;

    if faults.panics_after_start(assignment.node) {
        panic!("injected failure on node {} (for robustness tests)", assignment.node);
    }
    if let Some(after_ms) = faults.sigkill_after_ms(assignment.node) {
        // The hard-crash fault: this process disappears mid-run with no
        // goodbye of any kind — exactly what a powered-off host looks
        // like to the survivors.
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(after_ms));
            // SAFETY: raising a signal against our own pid.
            unsafe {
                libc::kill(std::process::id() as libc::pid_t, libc::SIGKILL);
            }
        });
    }

    // Maps the process-local `LocationId` of every owned location to its
    // global task index — both the streamed deltas and the final snapshot
    // must speak the global location namespace.
    let global_of: SharedGlobals = Arc::new(RwLock::new(
        locations
            .read()
            .map_err(|_| "location map poisoned".to_string())?
            .iter()
            .map(|(&task, loc)| (loc.id().0, task))
            .collect(),
    ));

    let gateway = Arc::new(PeerGateway::connect(assignment, &faults)?);

    // Live runs stream telemetry from `Start` until `Shutdown`: one
    // heartbeat (and, when anything happened, one interval delta) per
    // configured interval, interleaved on the shared control stream.
    let streamer = obs.as_ref().and_then(|(recorder, _, offset_us)| {
        let interval_ms = assignment.obs.as_ref().map_or(0, |spec| spec.stream_interval_ms);
        let stall = Duration::from_millis(faults.stall_ms(assignment.node).unwrap_or(0));
        let drop_first = faults.drop_heartbeats(assignment.node);
        (interval_ms > 0).then(|| {
            Streamer::spawn(
                Arc::clone(control),
                Arc::clone(recorder),
                Arc::clone(&global_of),
                assignment.node as u32,
                Duration::from_millis(interval_ms),
                *offset_us,
                stall,
                drop_first,
            )
        })
    });

    let mut work = WorkState::new(assignment);
    let interrupt = Arc::new(Interrupt::new(assignment.recovery));
    let mut wall_seconds = 0.0;

    // The execution span: one round on a fault-free run; on recovery
    // rounds, quiesce → ack → adopt → resume and go again until the
    // coordinator is satisfied and sends Shutdown.
    let run_outcome = (|| -> Result<(), String> {
        loop {
            let watcher = assignment
                .recovery
                .then(|| QuiesceWatcher::spawn(Arc::clone(control), Arc::clone(&interrupt)));
            let started = Instant::now();
            let round_outcome = run_round(assignment, &work, &locations, &gateway, &interrupt);
            wall_seconds += started.elapsed().as_secs_f64();
            // Join before any receive: the watcher and the main thread
            // must never race for a control frame.
            let quiesce_round = watcher.and_then(QuiesceWatcher::stop);
            round_outcome?;
            if interrupt.parked() {
                // Parked on a peer failure (or the watcher's quiesce).
                // The coordinator's Quiesce is either already consumed by
                // the watcher or still in flight.
                let round = match quiesce_round {
                    Some(round) => round,
                    None => {
                        let message =
                            recv_ctl(control, "quiesce", io_timeout).map_err(|e| {
                                match interrupt.parked_reason() {
                                    Some(cause) => {
                                        format!(
                                        "parked on a peer failure ({cause}) but recovery never arrived: {e}"
                                    )
                                    }
                                    None => e,
                                }
                            })?;
                        let Message::Quiesce { round } = message else {
                            unreachable!("recv_ctl returns the expected kind");
                        };
                        round
                    }
                };
                apply_recovery(
                    control, assignment, round, io_timeout, &mut work, &locations, &global_of, &gateway,
                )?;
                interrupt.clear();
                continue;
            }
            send_ctl(control, &Message::Done { node: assignment.node as u32 })?;
            if let Some(round) = quiesce_round {
                // The quiesce raced our natural finish: the Done above is
                // tolerated by the coordinator, and we still join the
                // recovery round (we may adopt orphans).
                apply_recovery(
                    control, assignment, round, io_timeout, &mut work, &locations, &global_of, &gateway,
                )?;
                interrupt.clear();
                continue;
            }
            match recv_ctl_any(control, &["shutdown", "quiesce"], io_timeout)? {
                Message::Quiesce { round } => {
                    apply_recovery(
                        control, assignment, round, io_timeout, &mut work, &locations, &global_of, &gateway,
                    )?;
                    interrupt.clear();
                }
                _ => break, // shutdown
            }
        }
        Ok(())
    })();

    // The streamer owns a recorder Arc and the drain below needs the
    // recorder unique, so the join happens before any telemetry work —
    // and before bailing on a failed run.
    if let Some(streamer) = streamer {
        streamer.stop();
    }
    run_outcome?;

    // Drain and ship the telemetry after the Shutdown barrier: the
    // coordinator only broadcasts it once *every* node has reported Done,
    // at which point every section anywhere has been granted and released
    // — so the serving threads' grant events are all in the rings by now
    // and the drain loses nothing.  (Draining at Done instead would race
    // a slow peer's read storm against our own early finish.)
    if let Some((recorder, registration, offset_us)) = obs {
        drop(registration); // stop the hooks before draining
        let origin_us = recorder.origin_us() as f64;
        let recorder = Arc::try_unwrap(recorder).map_err(|_| "recorder still shared at drain".to_string())?;
        let mut telemetry = recorder.finish("proc");
        {
            let globals = global_of.read().map_err(|_| "location namespace map poisoned".to_string())?;
            remap_lock_wait_locations(&mut telemetry.events, &globals);
        }
        cap_events(&mut telemetry, MAX_UPLOAD_EVENTS);
        let snapshot = TelemetrySnapshot::from_telemetry(telemetry, origin_us, offset_us).encode();
        send_ctl(control, &Message::TelemetryUpload { node: assignment.node as u32, snapshot })
            .map_err(|e| format!("uploading telemetry: {e}"))?;
    }

    // Order matters: every task body has returned by now (the session run
    // joined them), so the gateway Arc is unique again; closing its
    // connections makes every peer's serving thread observe the hangup,
    // and only then is joining our own server deadlock-free (peers close
    // their gateways at the same protocol step).
    let gateway = Arc::try_unwrap(gateway).map_err(|_| "gateway still shared after the run".to_string())?;
    let (conns, tallies) = gateway.into_parts();
    let mut gateway_counters = (0u64, 0u64, 0u64, 0u64);
    for conn in conns.values() {
        if let Ok(stream) = conn.lock() {
            gateway_counters.0 += stream.frames_sent();
            gateway_counters.1 += stream.frames_received();
            gateway_counters.2 += stream.bytes_sent();
            gateway_counters.3 += stream.bytes_received();
        }
    }
    drop(conns); // hang up on every owner peer
    shutdown.store(true, Ordering::Relaxed);
    let server_counters = server.join().unwrap_or_default();

    let metrics = compose_metrics(assignment, wall_seconds, &tallies, gateway_counters, server_counters);
    send_ctl(control, &Message::Metrics { node: assignment.node as u32, json: metrics.to_json().pretty() })?;
    Ok(())
}

/// One recovery exchange, entered after the round stopped (parked or
/// finished): ack the quiesce, receive and validate this node's
/// [`ReAssignment`], adopt the orphans routed here (fresh locations at
/// zero progress), swap the gateway's routing table, signal `Ready` and
/// wait out the `Resume` barrier.
#[allow(clippy::too_many_arguments)]
fn apply_recovery(
    control: &Arc<Mutex<FramedStream>>,
    assignment: &Assignment,
    round: u32,
    io_timeout: Duration,
    work: &mut WorkState,
    locations: &SharedLocations,
    global_of: &SharedGlobals,
    gateway: &PeerGateway,
) -> Result<(), String> {
    let node = assignment.node as u32;
    send_ctl(control, &Message::QuiesceAck { node, round })?;
    let Message::ReAssignment { json } = recv_ctl(control, "reassignment", io_timeout)? else {
        unreachable!("recv_ctl returns the expected kind");
    };
    let doc = Json::parse(&json).map_err(|e| format!("re-assignment is not valid JSON: {e}"))?;
    let reassign = ReAssignment::from_json(&doc).map_err(|e| format!("bad re-assignment: {e}"))?;
    if reassign.node != assignment.node {
        return Err(format!(
            "re-assignment for node {} delivered to node {}",
            reassign.node, assignment.node
        ));
    }
    if reassign.round != round {
        return Err(format!("re-assignment answers round {}, quiesce was round {round}", reassign.round));
    }
    // Adopt the orphans: fresh locations (the dead node's state is gone)
    // entering the same maps the serving threads and the streamer read.
    {
        let mut map = locations.write().map_err(|_| "location map poisoned".to_string())?;
        let mut globals = global_of.write().map_err(|_| "location namespace map poisoned".to_string())?;
        for &t in &reassign.adopted {
            let loc = Location::new(format!("loc-{t}"), 0u64);
            globals.insert(loc.id().0, t as u64);
            map.insert(t as u64, loc);
        }
    }
    work.adopt(&reassign);
    gateway.apply_reassignment(&reassign.node_of_task, reassign.dead);
    send_ctl(control, &Message::Ready { node })?;
    let Message::Resume { round: resumed } = recv_ctl(control, "resume", io_timeout)? else {
        unreachable!("recv_ctl returns the expected kind");
    };
    if resumed != round {
        return Err(format!("resume for round {resumed}, expected round {round}"));
    }
    Ok(())
}

/// The worker's live-telemetry streamer: one background thread sampling
/// the recorder into interval deltas and interleaving `Heartbeat` /
/// `TelemetryDelta` frames on the shared control stream, from `Start`
/// until [`Streamer::stop`].
struct Streamer {
    stop: Arc<AtomicBool>,
    handle: std::thread::JoinHandle<()>,
}

impl Streamer {
    #[allow(clippy::too_many_arguments)]
    fn spawn(
        control: Arc<Mutex<FramedStream>>,
        recorder: Arc<Recorder>,
        global_of: SharedGlobals,
        node: u32,
        interval: Duration,
        offset_us: f64,
        stall: Duration,
        drop_first: u64,
    ) -> Streamer {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            let mut sampler = DeltaSampler::new(recorder, offset_us);
            let mut seq = 0u64;
            // Injected initial silence (straggler tests only; zero in
            // production runs), waited out in stop-aware ticks.
            let stalled = Instant::now();
            while stalled.elapsed() < stall {
                if stop_flag.load(Ordering::Relaxed) {
                    return;
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            'beats: loop {
                // Sleep out the interval in short ticks so a stop request
                // never waits out a long interval.
                let tick_started = Instant::now();
                while tick_started.elapsed() < interval {
                    if stop_flag.load(Ordering::Relaxed) {
                        break 'beats;
                    }
                    std::thread::sleep(Duration::from_millis(5).min(interval));
                }
                if stop_flag.load(Ordering::Relaxed) {
                    break;
                }
                let mut delta = sampler.sample();
                if let Ok(globals) = global_of.read() {
                    remap_lock_wait_locations(&mut delta.events, &globals);
                }
                if delta.events.len() > MAX_DELTA_EVENTS {
                    let excess = delta.events.len() - MAX_DELTA_EVENTS;
                    delta.events.drain(..excess);
                    delta.dropped += excess as u64;
                }
                let Ok(mut stream) = control.lock() else { break };
                // The heartbeat-drop fault swallows the first `drop_first`
                // beats (the seq keeps counting, deltas keep flowing) —
                // the minimal signal loss that trips straggler detection.
                if seq >= drop_first && stream.send(&Message::Heartbeat { node, seq }).is_err() {
                    break; // coordinator gone: the main thread will fail too
                }
                if !delta.is_empty()
                    && stream.send(&Message::TelemetryDelta { node, delta: delta.encode() }).is_err()
                {
                    break;
                }
                drop(stream);
                seq += 1;
            }
        });
        Streamer { stop, handle }
    }

    /// Signals the streaming thread and joins it, releasing its recorder
    /// Arc so the caller can drain.
    fn stop(self) {
        self.stop.store(true, Ordering::Relaxed);
        let _ = self.handle.join();
    }
}

/// Rewrites the `location` of core-emitted `LockWait` events from the
/// process-local `LocationId` to the global task index, so merged
/// timelines speak one location namespace.  (The wire-level
/// request/grant/release events already carry global indices.)
fn remap_lock_wait_locations(events: &mut [ObsEvent], global_of: &HashMap<u64, u64>) {
    for ev in events {
        if let EventKind::LockWait { location, .. } = &mut ev.kind {
            if let Some(&task) = global_of.get(location) {
                *location = task;
            }
        }
    }
}

/// Keeps the newest `max` events (by sequence), folding the remainder
/// into the drop counter — bounds the upload independent of ring sizing.
fn cap_events(t: &mut RunTelemetry, max: usize) {
    if t.events.len() > max {
        let excess = t.events.len() - max;
        t.events.drain(..excess);
        t.dropped += excess as u64;
    }
}

fn compose_metrics(
    assignment: &Assignment,
    wall_seconds: f64,
    t: &ReaderTallies,
    gateway_counters: (u64, u64, u64, u64),
    server_counters: (u64, u64, u64, u64),
) -> WorkerMetrics {
    WorkerMetrics {
        node: assignment.node,
        wall_seconds,
        same_rack_payload_bytes: t.same_rack_payload_bytes.load(Ordering::Relaxed),
        cross_rack_payload_bytes: t.cross_rack_payload_bytes.load(Ordering::Relaxed),
        frames_sent: gateway_counters.0 + server_counters.0,
        frames_received: gateway_counters.1 + server_counters.1,
        bytes_sent: gateway_counters.2 + server_counters.2,
        bytes_received: gateway_counters.3 + server_counters.3,
        remote_reads: t.remote_reads.load(Ordering::Relaxed),
        lock_wait_count: t.lock_wait_count.load(Ordering::Relaxed),
        lock_wait_total_ns: t.lock_wait_total_ns.load(Ordering::Relaxed),
        lock_wait_samples: t.lock_wait_samples.lock().map(|samples| samples.clone()).unwrap_or_default(),
    }
}

/// Runs one round of this worker's unfinished tasks through a real
/// `orwl_core` session on the reconstructed node topology.  Each
/// iteration of each task writes its own location under a one-shot write
/// section, then reads its in-edges one section at a time — locally
/// through the shared FIFO, remotely through the gateway.  At most one
/// lock is ever held, so the schedule cannot deadlock whatever the
/// interleaving across processes.  Locality is resolved against the
/// location map at round start: it only changes at the quiesce barrier,
/// where a re-shard can adopt a source here and turn its reads local.
#[allow(clippy::too_many_lines)]
fn run_round(
    assignment: &Assignment,
    work: &WorkState,
    locations: &SharedLocations,
    gateway: &Arc<PeerGateway>,
    interrupt: &Arc<Interrupt>,
) -> Result<(), String> {
    let tasks = work.tasks_with_work();
    if tasks.is_empty() {
        return Ok(());
    }
    let levels: Vec<LevelSpec> = assignment
        .levels
        .iter()
        .map(|(name, count)| ObjectType::parse(name).map(|obj_type| LevelSpec::new(obj_type, *count)))
        .collect::<Result<_, String>>()?;
    let topology = Topology::from_levels(&assignment.topo_name, &levels)
        .map_err(|e| format!("reconstructing the node topology: {e}"))?;

    let failure: Arc<Mutex<Option<String>>> = Arc::new(Mutex::new(None));
    let mut program = OrwlProgram::new();
    for &t in &tasks {
        let map = locations.read().map_err(|_| "location map poisoned".to_string())?;
        let own = map
            .get(&(t as u64))
            .cloned()
            .ok_or_else(|| format!("task {t} is scheduled here but owns no location"))?;
        // Resolve each read's locality for this round and build the
        // session's link structure from the local ones.
        let schedule: ResolvedSchedule = work.schedules[&t]
            .iter()
            .map(|(iterations, reads)| {
                let reads =
                    reads.iter().map(|&(src, bytes)| (src, bytes, map.get(&(src as u64)).cloned())).collect();
                (*iterations, reads)
            })
            .collect();
        drop(map);
        let mut links = vec![LocationLink::write(own.id(), 8.0)];
        let mut local_read_bytes: BTreeMap<usize, (f64, Arc<Location<u64>>)> = BTreeMap::new();
        for (_, reads) in &schedule {
            for (src, bytes, loc) in reads {
                if let Some(loc) = loc {
                    let entry = local_read_bytes.entry(*src).or_insert_with(|| (0.0, Arc::clone(loc)));
                    entry.0 += bytes;
                }
            }
        }
        for (_, (bytes, loc)) in local_read_bytes {
            links.push(LocationLink::read(loc.id(), bytes));
        }

        let progress = Arc::clone(&work.progress[&t]);
        let gateway = Arc::clone(gateway);
        let failure = Arc::clone(&failure);
        let interrupt = Arc::clone(interrupt);
        program.add_task(TaskSpec::new(format!("task-{t}"), links), move |ctx| {
            let mut acquisitions = 0u64;
            'phases: for (k, (iterations, reads)) in schedule.iter().enumerate() {
                while progress[k].load(Ordering::Relaxed) < *iterations {
                    if interrupt.parked() || failure.lock().map(|f| f.is_some()).unwrap_or(true) {
                        break 'phases;
                    }
                    let outcome = (|| -> Result<(), IterError> {
                        let mut write = own.handle(AccessMode::Write);
                        write.request().map_err(|e| IterError::Local(e.to_string()))?;
                        *write.acquire().map_err(|e| IterError::Local(e.to_string()))? += 1;
                        drop(write);
                        acquisitions += 1;
                        for (src, bytes, loc) in reads {
                            match loc {
                                Some(src_loc) => {
                                    let mut read = src_loc.handle(AccessMode::Read);
                                    read.request().map_err(|e| IterError::Local(e.to_string()))?;
                                    let guard =
                                        read.acquire().map_err(|e| IterError::Local(e.to_string()))?;
                                    std::hint::black_box(*guard);
                                    drop(guard);
                                }
                                None => {
                                    gateway.remote_read(*src, *bytes).map_err(IterError::Remote)?;
                                }
                            }
                            acquisitions += 1;
                        }
                        Ok(())
                    })();
                    match outcome {
                        Ok(()) => {
                            progress[k].fetch_add(1, Ordering::Relaxed);
                        }
                        Err(IterError::Remote(e)) if interrupt.enabled() => {
                            // A broken peer exchange is the worker-side
                            // symptom of a node loss: park and wait for
                            // the coordinator's quiesce instead of
                            // failing the whole worker.
                            interrupt.park(format!("task {t}: {e}"));
                            break 'phases;
                        }
                        Err(IterError::Remote(e) | IterError::Local(e)) => {
                            if let Ok(mut slot) = failure.lock() {
                                slot.get_or_insert(format!("task {t}: {e}"));
                            }
                            break 'phases;
                        }
                    }
                }
            }
            ctx.stats.record_acquisitions(acquisitions);
        });
    }

    let session = Session::builder()
        .topology(topology)
        .control_threads(0)
        .binder(Arc::new(RecordingBinder::new()))
        .backend(ThreadBackend)
        .build()
        .map_err(|e| format!("building the worker session: {e}"))?;
    let _report = session.run(program).map_err(|e| format!("worker session run: {e}"))?;

    let mut slot = failure.lock().map_err(|_| "failure flag poisoned".to_string())?;
    match slot.take() {
        Some(e) => Err(e),
        None => Ok(()),
    }
}
