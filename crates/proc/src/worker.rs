//! The worker side of the multi-process backend.
//!
//! A worker is the current binary re-exec'd with the worker-role
//! environment set.  Binaries and test harnesses that drive
//! [`ProcBackend`](crate::ProcBackend) call [`maybe_worker`] as their
//! first statement: in the parent it is a no-op, in a spawned worker it
//! runs the whole worker lifecycle and exits the process.
//!
//! Lifecycle: connect to the coordinator → `Hello` → receive the
//! [`Assignment`] → bind the peer listener and start the serving thread →
//! `Ready` → `Start` → run the local tasks through a real
//! `orwl_core` session (one-shot ORWL handles for local sections, the
//! wire protocol for remote ones) → `Done` → keep serving peers until
//! `Shutdown` → drain and upload telemetry (observed runs) → report
//! [`WorkerMetrics`] → exit.
//!
//! Remote sections run the ORWL FIFO discipline over the wire: the
//! reader's `LockRequest` enters the owner's local FIFO (a one-shot read
//! handle on the owned location), the `LockGrant` carries the location
//! buffer back, and the reader's `Release` closes the section.  Each
//! (reader, owner) pair shares one connection and the reader holds it for
//! the whole request→grant→release exchange, so a connection never
//! interleaves two sections and the server side needs no demultiplexer.

use crate::assignment::Assignment;
use crate::coordinator::{ENV_COORD, ENV_NODE, ENV_ROLE};
use crate::metrics::{WorkerMetrics, MAX_WAIT_SAMPLES};
use crate::transport::{FramedStream, RecvError};
use crate::wire::{Message, WireAccess, MAX_DATA};
use orwl_core::location::Location;
use orwl_core::request::AccessMode;
use orwl_core::session::{Session, ThreadBackend};
use orwl_core::task::{LocationLink, OrwlProgram, TaskSpec};
use orwl_obs::json::Json;
use orwl_obs::{ClockKind, DeltaSampler, EventKind, ObsEvent, Recorder, RunTelemetry, TelemetrySnapshot};
use orwl_topo::binding::RecordingBinder;
use orwl_topo::object::ObjectType;
use orwl_topo::topology::{LevelSpec, Topology};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::os::unix::net::UnixListener;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Environment variable that makes the named worker panic right after
/// `Start` — the failure-injection hook of the robustness tests.
pub const ENV_PANIC_NODE: &str = "ORWL_PROC_PANIC_NODE";

/// Environment variable naming the worker whose telemetry streamer holds
/// its first heartbeat back by [`ENV_STALL_MS`] milliseconds — the
/// straggler-injection hook of the live-telemetry tests.  Only the
/// streamer stalls; the worker's tasks keep running, so a healthy run
/// exercises the flagged→recovered straggler path end to end.
pub const ENV_STALL_NODE: &str = "ORWL_PROC_STALL_NODE";

/// Milliseconds of initial heartbeat silence for [`ENV_STALL_NODE`].
pub const ENV_STALL_MS: &str = "ORWL_PROC_STALL_MS";

/// Events kept in an uploaded snapshot (newest win; the remainder joins
/// the drop counter).  Keeps the upload well under the wire's
/// `MAX_SNAPSHOT` budget.
const MAX_UPLOAD_EVENTS: usize = 100_000;

/// Events kept in one streamed interval delta (newest win; the remainder
/// joins the delta's drop counter).  Keeps every delta well under the
/// wire's `MAX_DELTA` budget however bursty the interval was.
const MAX_DELTA_EVENTS: usize = 50_000;

/// Runs the worker lifecycle and exits iff this process was spawned as an
/// `orwl-proc` worker; returns immediately otherwise.  Call first thing
/// in `main` of any binary that drives `ProcBackend`.
pub fn maybe_worker() {
    if std::env::var(ENV_ROLE).as_deref() != Ok("worker") {
        return;
    }
    match worker_main() {
        Ok(()) => std::process::exit(0),
        Err(e) => {
            eprintln!("orwl-proc worker failed: {e}");
            std::process::exit(1);
        }
    }
}

fn env_usize(key: &str) -> Result<usize, String> {
    std::env::var(key)
        .map_err(|_| format!("{key} is not set"))?
        .parse()
        .map_err(|e| format!("{key} is not a number: {e}"))
}

fn worker_main() -> Result<(), String> {
    let node = env_usize(ENV_NODE)?;
    let coord = std::env::var(ENV_COORD).map_err(|_| format!("{ENV_COORD} is not set"))?;
    // The control stream is shared between the main protocol thread and
    // (on live runs) the telemetry streamer, so it lives behind a mutex
    // from the start; every receive takes the lock in short slices so a
    // blocked wait never starves the streamer's sends.
    let control = Arc::new(Mutex::new(
        FramedStream::connect(std::path::Path::new(&coord))
            .map_err(|e| format!("connecting to coordinator at {coord}: {e}"))?,
    ));
    // The two worker-side timestamps of the clock-offset handshake: the
    // coordinator stamps the matching receive/send instants into the
    // assignment's obs spec, and the midpoint of the two one-way legs
    // estimates this process's clock offset (see `orwl_obs::merge`).
    let hello_send_us = orwl_obs::process_clock_us();
    send_ctl(&control, &Message::Hello { node: node as u32 }).map_err(|e| format!("sending hello: {e}"))?;
    let Message::Assignment { json } = recv_ctl(&control, "assignment", Duration::from_secs(30))? else {
        unreachable!("recv_ctl returns the expected kind");
    };
    let assign_recv_us = orwl_obs::process_clock_us();
    let doc = Json::parse(&json).map_err(|e| format!("assignment is not valid JSON: {e}"))?;
    let assignment = Assignment::from_json(&doc).map_err(|e| format!("bad assignment: {e}"))?;
    if assignment.node != node {
        return Err(format!("assignment for node {} delivered to node {node}", assignment.node));
    }
    match run_worker(&control, &assignment, hello_send_us, assign_recv_us) {
        Ok(()) => Ok(()),
        Err(e) => {
            let _ = send_ctl(&control, &Message::Error { message: e.clone() });
            Err(e)
        }
    }
}

/// Sends one control message under the shared-stream lock.
fn send_ctl(control: &Arc<Mutex<FramedStream>>, message: &Message) -> Result<(), String> {
    control
        .lock()
        .map_err(|_| "control stream poisoned".to_string())?
        .send(message)
        .map_err(|e| e.to_string())
}

/// `recv_expect` against the shared control stream, holding the lock only
/// in 50 ms slices so the streamer thread can interleave its sends while
/// the main thread waits out a long protocol step.
fn recv_ctl(
    control: &Arc<Mutex<FramedStream>>,
    expect: &'static str,
    deadline: Duration,
) -> Result<Message, String> {
    let start = Instant::now();
    loop {
        let outcome = control
            .lock()
            .map_err(|_| "control stream poisoned".to_string())?
            .recv(Some(Duration::from_millis(50)));
        match outcome {
            Ok(message) if message.name() == expect => return Ok(message),
            Ok(Message::Error { message }) => return Err(format!("peer reported: {message}")),
            Ok(other) => return Err(format!("expected {expect}, got {}", other.name())),
            Err(RecvError::Timeout) => {
                if start.elapsed() >= deadline {
                    return Err(format!("while waiting for {expect}: timed out"));
                }
            }
            Err(e) => return Err(format!("while waiting for {expect}: {e}")),
        }
    }
}

/// Shared tallies of the reader side (remote sections this worker opened).
#[derive(Default)]
struct ReaderTallies {
    same_rack_payload_bytes: AtomicU64,
    cross_rack_payload_bytes: AtomicU64,
    remote_reads: AtomicU64,
    lock_wait_count: AtomicU64,
    lock_wait_total_ns: AtomicU64,
    lock_wait_samples: Mutex<Vec<(u64, u64)>>,
}

/// The reader-side gateway: one serialized connection per owner peer.
struct PeerGateway {
    conns: BTreeMap<usize, Mutex<FramedStream>>,
    node_of_task: Vec<usize>,
    rack_of_node: Vec<usize>,
    my_rack: usize,
    io_timeout: Duration,
    seq: AtomicU64,
    tallies: ReaderTallies,
}

impl PeerGateway {
    fn connect(assignment: &Assignment) -> Result<PeerGateway, String> {
        let mut peers = BTreeSet::new();
        for phase in &assignment.phases {
            for read in &phase.reads {
                let owner = assignment.node_of_task[read.src];
                if owner != assignment.node {
                    peers.insert(owner);
                }
            }
        }
        let mut conns = BTreeMap::new();
        for peer in peers {
            let path = std::path::Path::new(&assignment.peer_listen[peer]);
            let stream =
                FramedStream::connect(path).map_err(|e| format!("connecting to peer {peer}: {e}"))?;
            conns.insert(peer, Mutex::new(stream));
        }
        Ok(PeerGateway {
            conns,
            node_of_task: assignment.node_of_task.clone(),
            rack_of_node: assignment.rack_of_node.clone(),
            my_rack: assignment.rack_of_node[assignment.node],
            io_timeout: Duration::from_millis(assignment.io_timeout_ms),
            // Seqs are namespaced by node (high 32 bits) so a request id
            // is unique across every reader process of the run — the
            // merged timeline matches requests to grants by this id.
            seq: AtomicU64::new((assignment.node as u64) << 32),
            tallies: ReaderTallies::default(),
        })
    }

    /// One remote read section: request → grant (with payload) → release.
    fn remote_read(&self, src: usize, bytes: f64) -> Result<(), String> {
        let owner = self.node_of_task[src];
        let conn =
            self.conns.get(&owner).ok_or_else(|| format!("no connection to peer {owner} for task {src}"))?;
        let mut stream = conn.lock().map_err(|_| "gateway connection poisoned".to_string())?;
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let want = (bytes.round().max(0.0) as u64).min(MAX_DATA as u64);
        let location = src as u64;
        orwl_obs::emit(EventKind::LockRequest { rseq: seq, location, owner: owner as u32 });
        stream
            .send(&Message::LockRequest { seq, location, access: WireAccess::Read, bytes: want })
            .map_err(|e| format!("lock request to peer {owner}: {e}"))?;
        let requested = Instant::now();
        let granted = match stream.recv(Some(self.io_timeout)) {
            Ok(Message::LockGrant { seq: s, location: l, data }) if s == seq && l == location => data,
            Ok(Message::Error { message }) => return Err(format!("peer {owner}: {message}")),
            Ok(other) => {
                return Err(format!("peer {owner}: expected lock_grant, got {}", other.name()));
            }
            Err(e) => return Err(format!("peer {owner}: waiting for grant: {e}")),
        };
        let wait_ns = requested.elapsed().as_nanos() as u64;
        let granted_at = Instant::now();
        stream
            .send(&Message::Release { seq, location })
            .map_err(|e| format!("release to peer {owner}: {e}"))?;
        orwl_obs::emit(EventKind::LockRelease {
            rseq: seq,
            location,
            held_ns: granted_at.elapsed().as_nanos() as u64,
        });
        drop(stream);

        let lane = if self.rack_of_node[owner] == self.my_rack {
            &self.tallies.same_rack_payload_bytes
        } else {
            &self.tallies.cross_rack_payload_bytes
        };
        lane.fetch_add(granted.len() as u64, Ordering::Relaxed);
        self.tallies.remote_reads.fetch_add(1, Ordering::Relaxed);
        self.tallies.lock_wait_count.fetch_add(1, Ordering::Relaxed);
        self.tallies.lock_wait_total_ns.fetch_add(wait_ns, Ordering::Relaxed);
        if let Ok(mut samples) = self.tallies.lock_wait_samples.lock() {
            if samples.len() < MAX_WAIT_SAMPLES {
                samples.push((location, wait_ns));
            }
        }
        Ok(())
    }
}

/// Serves one inbound peer connection: each `LockRequest` runs a one-shot
/// handle through the owned location's ORWL FIFO, the grant ships the
/// buffer, and the section stays open until the peer's `Release`.
fn serve_connection(
    mut stream: FramedStream,
    locations: Arc<HashMap<u64, Arc<Location<u64>>>>,
    shutdown: Arc<AtomicBool>,
    io_timeout: Duration,
) -> (u64, u64, u64, u64) {
    loop {
        match stream.recv(Some(Duration::from_millis(200))) {
            Ok(Message::LockRequest { seq, location, access, bytes }) => {
                let Some(loc) = locations.get(&location) else {
                    let _ = stream
                        .send(&Message::Error { message: format!("location {location} is not hosted here") });
                    break;
                };
                let mode = match access {
                    WireAccess::Read => AccessMode::Read,
                    WireAccess::Write => AccessMode::Write,
                };
                let mut handle = loc.handle(mode);
                let entered_fifo = Instant::now();
                if let Err(e) = handle.request() {
                    let _ = stream.send(&Message::Error { message: format!("lock request: {e}") });
                    break;
                }
                let guard = match handle.acquire() {
                    Ok(guard) => guard,
                    Err(e) => {
                        let _ = stream.send(&Message::Error { message: format!("lock acquisition: {e}") });
                        break;
                    }
                };
                let len = (bytes.min(MAX_DATA as u64)) as usize;
                let mut data = vec![0u8; len];
                let value = (*guard).to_le_bytes();
                let head = len.min(value.len());
                data[..head].copy_from_slice(&value[..head]);
                orwl_obs::emit(EventKind::LockGrant {
                    rseq: seq,
                    location,
                    wait_ns: entered_fifo.elapsed().as_nanos() as u64,
                });
                if stream.send(&Message::LockGrant { seq, location, data }).is_err() {
                    break;
                }
                match stream.recv(Some(io_timeout)) {
                    Ok(Message::Release { seq: s, location: l }) if s == seq && l == location => {
                        drop(guard);
                    }
                    _ => break, // broken section: the guard drops with the loop
                }
            }
            Ok(_) => break,
            Err(RecvError::Timeout) => {
                if shutdown.load(Ordering::Relaxed) {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    (stream.frames_sent(), stream.frames_received(), stream.bytes_sent(), stream.bytes_received())
}

/// The accept loop: hands every inbound connection to its own serving
/// thread and, once shut down, joins them and returns the summed socket
/// counters as `(frames_sent, frames_received, bytes_sent, bytes_received)`.
fn accept_loop(
    listener: UnixListener,
    locations: Arc<HashMap<u64, Arc<Location<u64>>>>,
    shutdown: Arc<AtomicBool>,
    io_timeout: Duration,
) -> (u64, u64, u64, u64) {
    let mut handlers = Vec::new();
    while !shutdown.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                let locations = Arc::clone(&locations);
                let shutdown = Arc::clone(&shutdown);
                handlers.push(std::thread::spawn(move || {
                    serve_connection(FramedStream::new(stream), locations, shutdown, io_timeout)
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => break,
        }
    }
    let mut totals = (0, 0, 0, 0);
    for handler in handlers {
        if let Ok((fs, fr, bs, br)) = handler.join() {
            totals = (totals.0 + fs, totals.1 + fr, totals.2 + bs, totals.3 + br);
        }
    }
    totals
}

/// The per-task schedule: for every phase, the iterations and this task's
/// read list as `(src, bytes, src_is_local)`.
type TaskSchedule = Vec<(usize, Vec<(usize, f64, bool)>)>;

fn run_worker(
    control: &Arc<Mutex<FramedStream>>,
    assignment: &Assignment,
    hello_send_us: u64,
    assign_recv_us: u64,
) -> Result<(), String> {
    let io_timeout = Duration::from_millis(assignment.io_timeout_ms);
    let local_tasks = assignment.local_tasks();

    // When the assignment asks for observation, install a wall-clock
    // recorder process-wide: the core session's lock-wait hooks, the
    // gateway's request/release events and the serving threads' grant
    // events all land in it.  The offset estimate is the NTP midpoint of
    // the Hello→Assignment handshake's two one-way legs, in coordinator
    // clock minus worker clock.
    let obs = assignment.obs.as_ref().map(|spec| {
        let offset_us = ((spec.hello_recv_us as f64 - hello_send_us as f64)
            + (spec.assign_send_us as f64 - assign_recv_us as f64))
            / 2.0;
        let recorder = Arc::new(Recorder::new(ClockKind::Wall, spec.config()));
        let registration = orwl_obs::install(&recorder);
        (recorder, registration, offset_us)
    });

    // The locations this worker owns, keyed by global task index.  The
    // serving thread and the local task bodies share the same Arcs, so
    // remote and local sections contend in the same ORWL FIFO.
    let mut locations: HashMap<u64, Arc<Location<u64>>> = HashMap::new();
    for &t in &local_tasks {
        locations.insert(t as u64, Location::new(format!("loc-{t}"), 0u64));
    }
    let locations = Arc::new(locations);

    let listener = UnixListener::bind(&assignment.listen)
        .map_err(|e| format!("binding peer listener at {}: {e}", assignment.listen))?;
    listener.set_nonblocking(true).map_err(|e| format!("peer listener: {e}"))?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let server = {
        let locations = Arc::clone(&locations);
        let shutdown = Arc::clone(&shutdown);
        std::thread::spawn(move || accept_loop(listener, locations, shutdown, io_timeout))
    };

    send_ctl(control, &Message::Ready { node: assignment.node as u32 })?;
    recv_ctl(control, "start", io_timeout)?;

    if std::env::var(ENV_PANIC_NODE).ok().and_then(|v| v.parse::<usize>().ok()) == Some(assignment.node) {
        panic!("injected failure on node {} (for robustness tests)", assignment.node);
    }

    // Maps the process-local `LocationId` of every owned location to its
    // global task index — both the streamed deltas and the final snapshot
    // must speak the global location namespace.
    let global_of: Arc<HashMap<u64, u64>> =
        Arc::new(locations.iter().map(|(&task, loc)| (loc.id().0, task)).collect());

    let gateway = Arc::new(PeerGateway::connect(assignment)?);

    // Live runs stream telemetry from `Start` until `Shutdown`: one
    // heartbeat (and, when anything happened, one interval delta) per
    // configured interval, interleaved on the shared control stream.
    let streamer = obs.as_ref().and_then(|(recorder, _, offset_us)| {
        let interval_ms = assignment.obs.as_ref().map_or(0, |spec| spec.stream_interval_ms);
        let stall = if std::env::var(ENV_STALL_NODE).ok().and_then(|v| v.parse::<usize>().ok())
            == Some(assignment.node)
        {
            let ms = std::env::var(ENV_STALL_MS).ok().and_then(|v| v.parse::<u64>().ok()).unwrap_or(0);
            Duration::from_millis(ms)
        } else {
            Duration::ZERO
        };
        (interval_ms > 0).then(|| {
            Streamer::spawn(
                Arc::clone(control),
                Arc::clone(recorder),
                Arc::clone(&global_of),
                assignment.node as u32,
                Duration::from_millis(interval_ms),
                *offset_us,
                stall,
            )
        })
    });
    let started = Instant::now();
    let task_outcome = run_local_tasks(assignment, &local_tasks, &locations, &gateway);
    let wall_seconds = started.elapsed().as_secs_f64();
    if let Err(e) = task_outcome {
        // Stop the streamer before reporting: the error send and the
        // coordinator's teardown must not race interval deltas.
        if let Some(streamer) = streamer {
            streamer.stop();
        }
        return Err(e);
    }

    send_ctl(control, &Message::Done { node: assignment.node as u32 })?;

    let shutdown_outcome = recv_ctl(control, "shutdown", io_timeout);
    // The streamer owns a recorder Arc and the drain below needs the
    // recorder unique, so the join happens before any telemetry work —
    // and before bailing on a failed shutdown wait.
    if let Some(streamer) = streamer {
        streamer.stop();
    }
    shutdown_outcome?;

    // Drain and ship the telemetry after the Shutdown barrier: the
    // coordinator only broadcasts it once *every* node has reported Done,
    // at which point every section anywhere has been granted and released
    // — so the serving threads' grant events are all in the rings by now
    // and the drain loses nothing.  (Draining at Done instead would race
    // a slow peer's read storm against our own early finish.)
    if let Some((recorder, registration, offset_us)) = obs {
        drop(registration); // stop the hooks before draining
        let origin_us = recorder.origin_us() as f64;
        let recorder = Arc::try_unwrap(recorder).map_err(|_| "recorder still shared at drain".to_string())?;
        let mut telemetry = recorder.finish("proc");
        remap_lock_wait_locations(&mut telemetry.events, &global_of);
        cap_events(&mut telemetry, MAX_UPLOAD_EVENTS);
        let snapshot = TelemetrySnapshot::from_telemetry(telemetry, origin_us, offset_us).encode();
        send_ctl(control, &Message::TelemetryUpload { node: assignment.node as u32, snapshot })
            .map_err(|e| format!("uploading telemetry: {e}"))?;
    }

    // Order matters: every task body has returned by now (the session run
    // joined them), so the gateway Arc is unique again; closing its
    // connections makes every peer's serving thread observe the hangup,
    // and only then is joining our own server deadlock-free (peers close
    // their gateways at the same protocol step).
    let gateway = Arc::try_unwrap(gateway).map_err(|_| "gateway still shared after the run".to_string())?;
    let mut gateway_counters = (0u64, 0u64, 0u64, 0u64);
    for conn in gateway.conns.values() {
        if let Ok(stream) = conn.lock() {
            gateway_counters.0 += stream.frames_sent();
            gateway_counters.1 += stream.frames_received();
            gateway_counters.2 += stream.bytes_sent();
            gateway_counters.3 += stream.bytes_received();
        }
    }
    let PeerGateway { conns, tallies, .. } = gateway;
    drop(conns); // hang up on every owner peer
    shutdown.store(true, Ordering::Relaxed);
    let server_counters = server.join().unwrap_or_default();

    let metrics = compose_metrics(assignment, wall_seconds, &tallies, gateway_counters, server_counters);
    send_ctl(control, &Message::Metrics { node: assignment.node as u32, json: metrics.to_json().pretty() })?;
    Ok(())
}

/// The worker's live-telemetry streamer: one background thread sampling
/// the recorder into interval deltas and interleaving `Heartbeat` /
/// `TelemetryDelta` frames on the shared control stream, from `Start`
/// until [`Streamer::stop`].
struct Streamer {
    stop: Arc<AtomicBool>,
    handle: std::thread::JoinHandle<()>,
}

impl Streamer {
    fn spawn(
        control: Arc<Mutex<FramedStream>>,
        recorder: Arc<Recorder>,
        global_of: Arc<HashMap<u64, u64>>,
        node: u32,
        interval: Duration,
        offset_us: f64,
        stall: Duration,
    ) -> Streamer {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            let mut sampler = DeltaSampler::new(recorder, offset_us);
            let mut seq = 0u64;
            // Injected initial silence (straggler tests only; zero in
            // production runs), waited out in stop-aware ticks.
            let stalled = Instant::now();
            while stalled.elapsed() < stall {
                if stop_flag.load(Ordering::Relaxed) {
                    return;
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            'beats: loop {
                // Sleep out the interval in short ticks so a stop request
                // never waits out a long interval.
                let tick_started = Instant::now();
                while tick_started.elapsed() < interval {
                    if stop_flag.load(Ordering::Relaxed) {
                        break 'beats;
                    }
                    std::thread::sleep(Duration::from_millis(5).min(interval));
                }
                if stop_flag.load(Ordering::Relaxed) {
                    break;
                }
                let mut delta = sampler.sample();
                remap_lock_wait_locations(&mut delta.events, &global_of);
                if delta.events.len() > MAX_DELTA_EVENTS {
                    let excess = delta.events.len() - MAX_DELTA_EVENTS;
                    delta.events.drain(..excess);
                    delta.dropped += excess as u64;
                }
                let Ok(mut stream) = control.lock() else { break };
                if stream.send(&Message::Heartbeat { node, seq }).is_err() {
                    break; // coordinator gone: the main thread will fail too
                }
                if !delta.is_empty()
                    && stream.send(&Message::TelemetryDelta { node, delta: delta.encode() }).is_err()
                {
                    break;
                }
                drop(stream);
                seq += 1;
            }
        });
        Streamer { stop, handle }
    }

    /// Signals the streaming thread and joins it, releasing its recorder
    /// Arc so the caller can drain.
    fn stop(self) {
        self.stop.store(true, Ordering::Relaxed);
        let _ = self.handle.join();
    }
}

/// Rewrites the `location` of core-emitted `LockWait` events from the
/// process-local `LocationId` to the global task index, so merged
/// timelines speak one location namespace.  (The wire-level
/// request/grant/release events already carry global indices.)
fn remap_lock_wait_locations(events: &mut [ObsEvent], global_of: &HashMap<u64, u64>) {
    for ev in events {
        if let EventKind::LockWait { location, .. } = &mut ev.kind {
            if let Some(&task) = global_of.get(location) {
                *location = task;
            }
        }
    }
}

/// Keeps the newest `max` events (by sequence), folding the remainder
/// into the drop counter — bounds the upload independent of ring sizing.
fn cap_events(t: &mut RunTelemetry, max: usize) {
    if t.events.len() > max {
        let excess = t.events.len() - max;
        t.events.drain(..excess);
        t.dropped += excess as u64;
    }
}

fn compose_metrics(
    assignment: &Assignment,
    wall_seconds: f64,
    t: &ReaderTallies,
    gateway_counters: (u64, u64, u64, u64),
    server_counters: (u64, u64, u64, u64),
) -> WorkerMetrics {
    WorkerMetrics {
        node: assignment.node,
        wall_seconds,
        same_rack_payload_bytes: t.same_rack_payload_bytes.load(Ordering::Relaxed),
        cross_rack_payload_bytes: t.cross_rack_payload_bytes.load(Ordering::Relaxed),
        frames_sent: gateway_counters.0 + server_counters.0,
        frames_received: gateway_counters.1 + server_counters.1,
        bytes_sent: gateway_counters.2 + server_counters.2,
        bytes_received: gateway_counters.3 + server_counters.3,
        remote_reads: t.remote_reads.load(Ordering::Relaxed),
        lock_wait_count: t.lock_wait_count.load(Ordering::Relaxed),
        lock_wait_total_ns: t.lock_wait_total_ns.load(Ordering::Relaxed),
        lock_wait_samples: t.lock_wait_samples.lock().map(|samples| samples.clone()).unwrap_or_default(),
    }
}

/// Runs this worker's tasks through a real `orwl_core` session on the
/// reconstructed node topology.  Each iteration of each task writes its
/// own location under a one-shot write section, then reads its in-edges
/// one section at a time — locally through the shared FIFO, remotely
/// through the gateway.  At most one lock is ever held, so the schedule
/// cannot deadlock whatever the interleaving across processes.
fn run_local_tasks(
    assignment: &Assignment,
    local_tasks: &[usize],
    locations: &Arc<HashMap<u64, Arc<Location<u64>>>>,
    gateway: &Arc<PeerGateway>,
) -> Result<(), String> {
    if local_tasks.is_empty() {
        return Ok(());
    }
    let levels: Vec<LevelSpec> = assignment
        .levels
        .iter()
        .map(|(name, count)| ObjectType::parse(name).map(|obj_type| LevelSpec::new(obj_type, *count)))
        .collect::<Result<_, String>>()?;
    let topology = Topology::from_levels(&assignment.topo_name, &levels)
        .map_err(|e| format!("reconstructing the node topology: {e}"))?;

    // Per-task schedules and the local-read link structure for placement.
    let mut schedules: HashMap<usize, TaskSchedule> = HashMap::new();
    for phase in &assignment.phases {
        let mut per_task: HashMap<usize, Vec<(usize, f64, bool)>> = HashMap::new();
        for read in &phase.reads {
            let local = assignment.node_of_task[read.src] == assignment.node;
            per_task.entry(read.reader).or_default().push((read.src, read.bytes, local));
        }
        for &t in local_tasks {
            schedules.entry(t).or_default().push((phase.iterations, per_task.remove(&t).unwrap_or_default()));
        }
    }

    let failure: Arc<Mutex<Option<String>>> = Arc::new(Mutex::new(None));
    let mut program = OrwlProgram::new();
    for &t in local_tasks {
        let own = Arc::clone(&locations[&(t as u64)]);
        let schedule = schedules.remove(&t).unwrap_or_default();
        let mut links = vec![LocationLink::write(own.id(), 8.0)];
        let mut local_read_bytes: BTreeMap<usize, f64> = BTreeMap::new();
        for (_, reads) in &schedule {
            for &(src, bytes, local) in reads {
                if local {
                    *local_read_bytes.entry(src).or_insert(0.0) += bytes;
                }
            }
        }
        for (src, bytes) in local_read_bytes {
            links.push(LocationLink::read(locations[&(src as u64)].id(), bytes));
        }

        let locations = Arc::clone(locations);
        let gateway = Arc::clone(gateway);
        let failure = Arc::clone(&failure);
        program.add_task(TaskSpec::new(format!("task-{t}"), links), move |ctx| {
            let mut acquisitions = 0u64;
            'phases: for (iterations, reads) in &schedule {
                for _ in 0..*iterations {
                    if failure.lock().map(|f| f.is_some()).unwrap_or(true) {
                        break 'phases;
                    }
                    let outcome = (|| -> Result<(), String> {
                        let mut write = own.handle(AccessMode::Write);
                        write.request().map_err(|e| e.to_string())?;
                        *write.acquire().map_err(|e| e.to_string())? += 1;
                        drop(write);
                        acquisitions += 1;
                        for &(src, bytes, local) in reads {
                            if local {
                                let src_loc = &locations[&(src as u64)];
                                let mut read = src_loc.handle(AccessMode::Read);
                                read.request().map_err(|e| e.to_string())?;
                                let guard = read.acquire().map_err(|e| e.to_string())?;
                                std::hint::black_box(*guard);
                                drop(guard);
                            } else {
                                gateway.remote_read(src, bytes)?;
                            }
                            acquisitions += 1;
                        }
                        Ok(())
                    })();
                    if let Err(e) = outcome {
                        if let Ok(mut slot) = failure.lock() {
                            slot.get_or_insert(format!("task {t}: {e}"));
                        }
                        break 'phases;
                    }
                }
            }
            ctx.stats.record_acquisitions(acquisitions);
        });
    }

    let session = Session::builder()
        .topology(topology)
        .control_threads(0)
        .binder(Arc::new(RecordingBinder::new()))
        .backend(ThreadBackend)
        .build()
        .map_err(|e| format!("building the worker session: {e}"))?;
    let _report = session.run(program).map_err(|e| format!("worker session run: {e}"))?;

    let mut slot = failure.lock().map_err(|_| "failure flag poisoned".to_string())?;
    match slot.take() {
        Some(e) => Err(e),
        None => Ok(()),
    }
}
