//! Framed message transport over a stream socket.
//!
//! [`FramedStream`] wraps a connected [`UnixStream`] with the wire codec
//! from [`crate::wire`]: `send` writes one whole frame, `recv` blocks (up
//! to a deadline) until one whole message decoded.  The framing is pure
//! length-prefixed bytes, so the same code works over TCP for inter-host
//! deployment — only the connect/accept calls differ.
//!
//! Every stream counts frames and payload bytes in both directions; the
//! worker folds these tallies into its metrics report, which is where the
//! backend's *measured* hop-bytes come from.

use crate::wire::{FrameReader, Message, WireError};
use std::io::{ErrorKind, Read, Write};
use std::os::unix::net::UnixStream;
use std::time::{Duration, Instant};

/// Why a `recv` failed.
#[derive(Debug)]
pub enum RecvError {
    /// The deadline passed with no complete message.
    Timeout,
    /// The peer closed the connection.
    Closed,
    /// The peer sent a malformed frame.
    Wire(WireError),
    /// The socket itself failed.
    Io(std::io::Error),
}

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecvError::Timeout => write!(f, "timed out waiting for a message"),
            RecvError::Closed => write!(f, "peer closed the connection"),
            RecvError::Wire(e) => write!(f, "protocol error: {e}"),
            RecvError::Io(e) => write!(f, "socket error: {e}"),
        }
    }
}

impl std::error::Error for RecvError {}

/// A connected stream speaking whole [`Message`]s.
pub struct FramedStream {
    stream: UnixStream,
    reader: FrameReader,
    read_buf: [u8; 64 * 1024],
    frames_sent: u64,
    frames_received: u64,
    bytes_sent: u64,
    bytes_received: u64,
}

impl FramedStream {
    /// Wraps a connected socket.
    #[must_use]
    pub fn new(stream: UnixStream) -> Self {
        FramedStream {
            stream,
            reader: FrameReader::new(),
            read_buf: [0; 64 * 1024],
            frames_sent: 0,
            frames_received: 0,
            bytes_sent: 0,
            bytes_received: 0,
        }
    }

    /// Connects to a Unix-domain listener at `path`.
    pub fn connect(path: &std::path::Path) -> std::io::Result<Self> {
        UnixStream::connect(path).map(FramedStream::new)
    }

    /// Frames written so far.
    #[must_use]
    pub fn frames_sent(&self) -> u64 {
        self.frames_sent
    }

    /// Frames decoded so far.
    #[must_use]
    pub fn frames_received(&self) -> u64 {
        self.frames_received
    }

    /// Total bytes written (headers included).
    #[must_use]
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent
    }

    /// Total bytes read (headers included).
    #[must_use]
    pub fn bytes_received(&self) -> u64 {
        self.bytes_received
    }

    /// Writes one message as a single frame.
    pub fn send(&mut self, message: &Message) -> std::io::Result<()> {
        let frame = message.encode();
        self.stream.write_all(&frame)?;
        self.frames_sent += 1;
        self.bytes_sent += frame.len() as u64;
        Ok(())
    }

    /// Blocks until one whole message arrives, up to `deadline` from now.
    ///
    /// The wait is implemented with short socket read timeouts so a hung
    /// peer can never park the caller forever; a `None` deadline still
    /// polls but never gives up (the coordinator always passes `Some`).
    pub fn recv(&mut self, deadline: Option<Duration>) -> Result<Message, RecvError> {
        let start = Instant::now();
        loop {
            if let Some(message) = self.reader.try_next().map_err(RecvError::Wire)? {
                self.frames_received += 1;
                return Ok(message);
            }
            // One socket wait never overshoots the caller's deadline by
            // more than a millisecond, so short deadlines make `recv` a
            // cheap poll — the live monitor and the worker's streaming
            // thread both interleave on sub-100ms slices.
            let mut tick = Duration::from_millis(100);
            if let Some(limit) = deadline {
                let elapsed = start.elapsed();
                if elapsed >= limit {
                    return Err(RecvError::Timeout);
                }
                tick = tick.min(limit - elapsed).max(Duration::from_millis(1));
            }
            self.stream.set_read_timeout(Some(tick)).map_err(RecvError::Io)?;
            match self.stream.read(&mut self.read_buf) {
                Ok(0) => return Err(RecvError::Closed),
                Ok(n) => {
                    self.bytes_received += n as u64;
                    self.reader.push(&self.read_buf[..n]);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(RecvError::Io(e)),
            }
        }
    }

    /// `recv` restricted to one expected kind; anything else — including a
    /// peer-reported [`Message::Error`] — becomes a descriptive error
    /// string for the caller's typed failure.
    pub fn recv_expect(
        &mut self,
        expect: &'static str,
        deadline: Option<Duration>,
    ) -> Result<Message, String> {
        match self.recv(deadline) {
            Ok(message) if message.name() == expect => Ok(message),
            Ok(Message::Error { message }) => Err(format!("peer reported: {message}")),
            Ok(other) => Err(format!("expected {expect}, got {}", other.name())),
            Err(e) => Err(format!("while waiting for {expect}: {e}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::MAX_DATA;
    use std::time::Duration;

    fn pair() -> (FramedStream, FramedStream) {
        let (a, b) = UnixStream::pair().unwrap();
        (FramedStream::new(a), FramedStream::new(b))
    }

    #[test]
    fn send_recv_roundtrip_with_counters() {
        let (mut a, mut b) = pair();
        let msg =
            Message::LockRequest { seq: 1, location: 9, access: crate::wire::WireAccess::Read, bytes: 4096 };
        a.send(&msg).unwrap();
        let got = b.recv(Some(Duration::from_secs(5))).unwrap();
        assert_eq!(got, msg);
        assert_eq!(a.frames_sent(), 1);
        assert_eq!(b.frames_received(), 1);
        assert_eq!(a.bytes_sent(), b.bytes_received());
        assert!(a.bytes_sent() > 0);
    }

    #[test]
    fn large_grant_crosses_the_socket() {
        let (mut a, mut b) = pair();
        let msg = Message::LockGrant { seq: 7, location: 3, data: vec![0xAB; MAX_DATA] };
        let writer = std::thread::spawn(move || {
            a.send(&msg).unwrap();
            (a, msg)
        });
        let got = b.recv(Some(Duration::from_secs(10))).unwrap();
        let (_a, msg) = writer.join().unwrap();
        assert_eq!(got, msg);
    }

    #[test]
    fn recv_times_out_instead_of_hanging() {
        let (_a, mut b) = pair();
        let start = std::time::Instant::now();
        match b.recv(Some(Duration::from_millis(150))) {
            Err(RecvError::Timeout) => {}
            other => panic!("expected timeout, got {other:?}"),
        }
        assert!(start.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn closed_peer_is_not_a_timeout() {
        let (a, mut b) = pair();
        drop(a);
        match b.recv(Some(Duration::from_secs(5))) {
            Err(RecvError::Closed) => {}
            other => panic!("expected closed, got {other:?}"),
        }
    }

    #[test]
    fn recv_expect_names_the_mismatch() {
        let (mut a, mut b) = pair();
        a.send(&Message::Start).unwrap();
        let err = b.recv_expect("ready", Some(Duration::from_secs(5))).unwrap_err();
        assert!(err.contains("expected ready"), "{err}");
        assert!(err.contains("start"), "{err}");

        a.send(&Message::Error { message: "boom".to_string() }).unwrap();
        let err = b.recv_expect("ready", Some(Duration::from_secs(5))).unwrap_err();
        assert!(err.contains("boom"), "{err}");
    }
}
