//! Framed message transport over a stream socket.
//!
//! [`FramedStream`] wraps a connected [`UnixStream`] with the wire codec
//! from [`crate::wire`]: `send` writes one whole frame, `recv` blocks (up
//! to a deadline) until one whole message decoded.  The framing is pure
//! length-prefixed bytes, so the same code works over TCP for inter-host
//! deployment — only the connect/accept calls differ.
//!
//! Every stream counts frames and payload bytes in both directions; the
//! worker folds these tallies into its metrics report, which is where the
//! backend's *measured* hop-bytes come from.

use crate::wire::{FrameReader, Message, WireError};
use std::io::{ErrorKind, Read, Write};
use std::os::unix::net::UnixStream;
use std::time::{Duration, Instant};

/// Rendezvous connect gave up: the listener never appeared (or never
/// accepted) within the budget.
#[derive(Debug)]
pub struct RendezvousTimeout {
    /// The socket path that was tried.
    pub path: std::path::PathBuf,
    /// How many connect attempts were made.
    pub attempts: u32,
    /// The total budget that elapsed.
    pub budget: Duration,
    /// The last io error seen.
    pub last: std::io::Error,
}

impl std::fmt::Display for RendezvousTimeout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "rendezvous with {} timed out after {} attempts over {:?}: {}",
            self.path.display(),
            self.attempts,
            self.budget,
            self.last
        )
    }
}

impl std::error::Error for RendezvousTimeout {}

/// Why a `recv` failed.
#[derive(Debug)]
pub enum RecvError {
    /// The deadline passed with no complete message.
    Timeout,
    /// The peer closed the connection.
    Closed,
    /// The peer sent a malformed frame.
    Wire(WireError),
    /// The socket itself failed.
    Io(std::io::Error),
}

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecvError::Timeout => write!(f, "timed out waiting for a message"),
            RecvError::Closed => write!(f, "peer closed the connection"),
            RecvError::Wire(e) => write!(f, "protocol error: {e}"),
            RecvError::Io(e) => write!(f, "socket error: {e}"),
        }
    }
}

impl std::error::Error for RecvError {}

/// A connected stream speaking whole [`Message`]s.
pub struct FramedStream {
    stream: UnixStream,
    reader: FrameReader,
    read_buf: [u8; 64 * 1024],
    frames_sent: u64,
    frames_received: u64,
    bytes_sent: u64,
    bytes_received: u64,
}

impl FramedStream {
    /// Wraps a connected socket.
    #[must_use]
    pub fn new(stream: UnixStream) -> Self {
        FramedStream {
            stream,
            reader: FrameReader::new(),
            read_buf: [0; 64 * 1024],
            frames_sent: 0,
            frames_received: 0,
            bytes_sent: 0,
            bytes_received: 0,
        }
    }

    /// Connects to a Unix-domain listener at `path`.
    pub fn connect(path: &std::path::Path) -> std::io::Result<Self> {
        UnixStream::connect(path).map(FramedStream::new)
    }

    /// Connects to a Unix-domain listener at `path`, retrying with
    /// jittered backoff until `budget` elapses.
    ///
    /// A worker races the peer it reads from: both bind their listeners
    /// after `Ready`, but nothing orders one worker's connect after
    /// another worker's bind, and under recovery a survivor may dial a
    /// peer that is still re-binding.  A single-attempt connect turns
    /// that race into a raw `ECONNREFUSED`/`ENOENT`; this retries at
    /// ~1–20 ms spacing (deterministic per-path jitter, no RNG state)
    /// and gives up with a typed [`RendezvousTimeout`].
    pub fn connect_retry(path: &std::path::Path, budget: Duration) -> Result<Self, RendezvousTimeout> {
        let start = Instant::now();
        let mut attempts: u32 = 0;
        loop {
            attempts += 1;
            let last = match UnixStream::connect(path) {
                Ok(stream) => return Ok(FramedStream::new(stream)),
                Err(e) => e,
            };
            if start.elapsed() >= budget {
                return Err(RendezvousTimeout { path: path.to_path_buf(), attempts, budget, last });
            }
            // Deterministic jitter off the path bytes and attempt count:
            // spreads simultaneous dialers without pulling in an RNG.
            let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
            for &b in path.as_os_str().as_encoded_bytes() {
                seed = (seed ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
            }
            seed = (seed ^ u64::from(attempts)).wrapping_mul(0x100_0000_01b3);
            let base = 1u64 << attempts.min(4); // 2, 4, 8, 16 ms, then flat
            let pause = Duration::from_millis(base + seed % base);
            let left = budget.saturating_sub(start.elapsed());
            std::thread::sleep(pause.min(left).max(Duration::from_millis(1)));
        }
    }

    /// Frames written so far.
    #[must_use]
    pub fn frames_sent(&self) -> u64 {
        self.frames_sent
    }

    /// Frames decoded so far.
    #[must_use]
    pub fn frames_received(&self) -> u64 {
        self.frames_received
    }

    /// Total bytes written (headers included).
    #[must_use]
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent
    }

    /// Total bytes read (headers included).
    #[must_use]
    pub fn bytes_received(&self) -> u64 {
        self.bytes_received
    }

    /// Writes one message as a single frame.
    pub fn send(&mut self, message: &Message) -> std::io::Result<()> {
        let frame = message.encode();
        self.stream.write_all(&frame)?;
        self.frames_sent += 1;
        self.bytes_sent += frame.len() as u64;
        Ok(())
    }

    /// Writes one message as a single frame, bounded by `deadline`.
    ///
    /// A plain `write_all` against a peer that stopped reading blocks
    /// until the kernel buffer drains — potentially forever.  Control
    /// frames (quiesce, re-assignment, shutdown) must instead fail
    /// within the io budget so the coordinator can blame the wedged
    /// node.  Short write timeouts are retried until the deadline; a
    /// partial frame past the deadline is a hard `TimedOut` (the stream
    /// is unusable after that — framing is broken).
    pub fn send_with_deadline(&mut self, message: &Message, deadline: Duration) -> std::io::Result<()> {
        let frame = message.encode();
        let start = Instant::now();
        let mut written = 0usize;
        while written < frame.len() {
            let left = deadline.saturating_sub(start.elapsed());
            if left.is_zero() {
                self.stream.set_write_timeout(None)?;
                return Err(std::io::Error::new(
                    ErrorKind::TimedOut,
                    format!("send of {} stalled at {written}/{} bytes", message.name(), frame.len()),
                ));
            }
            self.stream.set_write_timeout(Some(left.min(Duration::from_millis(100))))?;
            match self.stream.write(&frame[written..]) {
                Ok(0) => {
                    self.stream.set_write_timeout(None)?;
                    return Err(std::io::Error::new(ErrorKind::WriteZero, "peer closed mid-frame"));
                }
                Ok(n) => written += n,
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => {
                    self.stream.set_write_timeout(None)?;
                    return Err(e);
                }
            }
        }
        self.stream.set_write_timeout(None)?;
        self.frames_sent += 1;
        self.bytes_sent += frame.len() as u64;
        Ok(())
    }

    /// Blocks until one whole message arrives, up to `deadline` from now.
    ///
    /// The wait is implemented with short socket read timeouts so a hung
    /// peer can never park the caller forever; a `None` deadline still
    /// polls but never gives up (the coordinator always passes `Some`).
    pub fn recv(&mut self, deadline: Option<Duration>) -> Result<Message, RecvError> {
        let start = Instant::now();
        loop {
            if let Some(message) = self.reader.try_next().map_err(RecvError::Wire)? {
                self.frames_received += 1;
                return Ok(message);
            }
            // One socket wait never overshoots the caller's deadline by
            // more than a millisecond, so short deadlines make `recv` a
            // cheap poll — the live monitor and the worker's streaming
            // thread both interleave on sub-100ms slices.
            let mut tick = Duration::from_millis(100);
            if let Some(limit) = deadline {
                let elapsed = start.elapsed();
                if elapsed >= limit {
                    return Err(RecvError::Timeout);
                }
                tick = tick.min(limit - elapsed).max(Duration::from_millis(1));
            }
            self.stream.set_read_timeout(Some(tick)).map_err(RecvError::Io)?;
            match self.stream.read(&mut self.read_buf) {
                Ok(0) => return Err(RecvError::Closed),
                Ok(n) => {
                    self.bytes_received += n as u64;
                    self.reader.push(&self.read_buf[..n]);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(RecvError::Io(e)),
            }
        }
    }

    /// `recv` restricted to one expected kind; anything else — including a
    /// peer-reported [`Message::Error`] — becomes a descriptive error
    /// string for the caller's typed failure.
    pub fn recv_expect(
        &mut self,
        expect: &'static str,
        deadline: Option<Duration>,
    ) -> Result<Message, String> {
        match self.recv(deadline) {
            Ok(message) if message.name() == expect => Ok(message),
            Ok(Message::Error { message }) => Err(format!("peer reported: {message}")),
            Ok(other) => Err(format!("expected {expect}, got {}", other.name())),
            Err(e) => Err(format!("while waiting for {expect}: {e}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::MAX_DATA;
    use std::time::Duration;

    fn pair() -> (FramedStream, FramedStream) {
        let (a, b) = UnixStream::pair().unwrap();
        (FramedStream::new(a), FramedStream::new(b))
    }

    #[test]
    fn send_recv_roundtrip_with_counters() {
        let (mut a, mut b) = pair();
        let msg =
            Message::LockRequest { seq: 1, location: 9, access: crate::wire::WireAccess::Read, bytes: 4096 };
        a.send(&msg).unwrap();
        let got = b.recv(Some(Duration::from_secs(5))).unwrap();
        assert_eq!(got, msg);
        assert_eq!(a.frames_sent(), 1);
        assert_eq!(b.frames_received(), 1);
        assert_eq!(a.bytes_sent(), b.bytes_received());
        assert!(a.bytes_sent() > 0);
    }

    #[test]
    fn large_grant_crosses_the_socket() {
        let (mut a, mut b) = pair();
        let msg = Message::LockGrant { seq: 7, location: 3, data: vec![0xAB; MAX_DATA] };
        let writer = std::thread::spawn(move || {
            a.send(&msg).unwrap();
            (a, msg)
        });
        let got = b.recv(Some(Duration::from_secs(10))).unwrap();
        let (_a, msg) = writer.join().unwrap();
        assert_eq!(got, msg);
    }

    #[test]
    fn recv_times_out_instead_of_hanging() {
        let (_a, mut b) = pair();
        let start = std::time::Instant::now();
        match b.recv(Some(Duration::from_millis(150))) {
            Err(RecvError::Timeout) => {}
            other => panic!("expected timeout, got {other:?}"),
        }
        assert!(start.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn closed_peer_is_not_a_timeout() {
        let (a, mut b) = pair();
        drop(a);
        match b.recv(Some(Duration::from_secs(5))) {
            Err(RecvError::Closed) => {}
            other => panic!("expected closed, got {other:?}"),
        }
    }

    #[test]
    fn connect_retry_reaches_a_late_binding_listener() {
        let dir = std::env::temp_dir().join(format!("orwl-rdv-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("late.sock");
        let binder = {
            let path = path.clone();
            std::thread::spawn(move || {
                // Bind only after the dialer has already failed a few
                // attempts against the missing socket.
                std::thread::sleep(Duration::from_millis(60));
                let listener = std::os::unix::net::UnixListener::bind(&path).unwrap();
                let (_stream, _) = listener.accept().unwrap();
            })
        };
        let connected = FramedStream::connect_retry(&path, Duration::from_secs(10));
        assert!(connected.is_ok(), "late bind must be reached: {:?}", connected.err());
        binder.join().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn connect_retry_times_out_with_a_typed_error() {
        let dir = std::env::temp_dir().join(format!("orwl-rdv-none-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("never.sock");
        let start = std::time::Instant::now();
        let err = match FramedStream::connect_retry(&path, Duration::from_millis(120)) {
            Ok(_) => panic!("connected to a socket that never existed"),
            Err(e) => e,
        };
        assert!(err.attempts >= 2, "retried before giving up (attempts {})", err.attempts);
        assert_eq!(err.budget, Duration::from_millis(120));
        assert!(err.to_string().contains("never.sock"), "{err}");
        assert!(start.elapsed() < Duration::from_secs(5), "the budget bounds the wait");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn send_with_deadline_fails_instead_of_blocking_on_a_full_pipe() {
        let (mut a, b) = pair();
        // Never read from `b`: the kernel buffer fills and a plain
        // write_all would park forever.  Keep `b` alive so the failure
        // is a timeout, not a broken pipe.
        let start = std::time::Instant::now();
        let mut hit_deadline = false;
        for _ in 0..256 {
            let msg = Message::LockGrant { seq: 1, location: 1, data: vec![0xEE; MAX_DATA] };
            match a.send_with_deadline(&msg, Duration::from_millis(200)) {
                Ok(()) => {}
                Err(e) => {
                    assert_eq!(e.kind(), ErrorKind::TimedOut, "unexpected error: {e}");
                    hit_deadline = true;
                    break;
                }
            }
        }
        assert!(hit_deadline, "the socket buffer never filled — test needs a bigger payload");
        assert!(start.elapsed() < Duration::from_secs(60), "every send was deadline-bounded");
        drop(b);
    }

    #[test]
    fn send_with_deadline_delivers_when_the_peer_reads() {
        let (mut a, mut b) = pair();
        let msg = Message::QuiesceAck { node: 3, round: 1 };
        a.send_with_deadline(&msg, Duration::from_secs(5)).unwrap();
        assert_eq!(b.recv(Some(Duration::from_secs(5))).unwrap(), msg);
        assert_eq!(a.frames_sent(), 1);
    }

    #[test]
    fn recv_expect_names_the_mismatch() {
        let (mut a, mut b) = pair();
        a.send(&Message::Start).unwrap();
        let err = b.recv_expect("ready", Some(Duration::from_secs(5))).unwrap_err();
        assert!(err.contains("expected ready"), "{err}");
        assert!(err.contains("start"), "{err}");

        a.send(&Message::Error { message: "boom".to_string() }).unwrap();
        let err = b.recv_expect("ready", Some(Duration::from_secs(5))).unwrap_err();
        assert!(err.contains("boom"), "{err}");
    }
}
