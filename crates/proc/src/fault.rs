//! Typed fault injection for the multi-process backend.
//!
//! Robustness tests used to reach for ad-hoc environment knobs
//! (`ORWL_PROC_PANIC_NODE`, `ORWL_PROC_STALL_NODE`/`_MS`) sprinkled
//! through the worker.  A [`FaultPlan`] replaces them with one typed,
//! serializable description of every failure the harness can inject:
//! streamer stalls, post-start panics, delayed self-SIGKILL, per-send
//! wire delays and dropped heartbeats.  The coordinator threads the plan
//! to workers through a single environment variable ([`ENV_FAULTS`]),
//! so the same plan drives a unit test, the chaos e2e and the CI smoke
//! job — every failure mode is reproducible on demand.
//!
//! The serialized form is a `;`-separated list of `kind:node[:arg]`
//! clauses, e.g. `stall:1:500;kill:2:100`, chosen over JSON so a plan
//! stays readable inside `env` output and CI logs.

use std::fmt;

/// Environment variable carrying the serialized plan to workers.
pub const ENV_FAULTS: &str = "ORWL_PROC_FAULTS";

/// One injected failure, targeted at a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Hold the node's telemetry streamer silent for `ms` before its
    /// first heartbeat — the run itself keeps executing, so the live
    /// monitor must flag and then recover the node.
    StallStreamer {
        /// Target node.
        node: usize,
        /// Stall length in milliseconds.
        ms: u64,
    },
    /// Panic right after the `Start` barrier, before any task work.
    /// The coordinator must surface a typed `WorkerFailed` carrying the
    /// panic text from the worker's stderr tail.
    PanicAfterStart {
        /// Target node.
        node: usize,
    },
    /// The worker SIGKILLs itself `after_ms` past the `Start` barrier:
    /// no unwinding, no error frame, no flushed telemetry — the closest
    /// a test gets to yanking a machine's power cord.
    Sigkill {
        /// Target node.
        node: usize,
        /// Delay from `Start` to the self-kill, in milliseconds.
        after_ms: u64,
    },
    /// Sleep `ms` before every remote read the node issues, simulating
    /// a degraded fabric link without touching byte accounting.
    WireDelay {
        /// Target node.
        node: usize,
        /// Added latency per remote read, in milliseconds.
        ms: u64,
    },
    /// Drop the node's first `first_n` heartbeats on the floor (the
    /// interval deltas still flow), simulating a lossy control path.
    DropHeartbeats {
        /// Target node.
        node: usize,
        /// How many leading heartbeats to drop.
        first_n: u64,
    },
}

impl Fault {
    /// The node this fault targets.
    #[must_use]
    pub fn node(&self) -> usize {
        match *self {
            Fault::StallStreamer { node, .. }
            | Fault::PanicAfterStart { node }
            | Fault::Sigkill { node, .. }
            | Fault::WireDelay { node, .. }
            | Fault::DropHeartbeats { node, .. } => node,
        }
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Fault::StallStreamer { node, ms } => write!(f, "stall:{node}:{ms}"),
            Fault::PanicAfterStart { node } => write!(f, "panic:{node}"),
            Fault::Sigkill { node, after_ms } => write!(f, "kill:{node}:{after_ms}"),
            Fault::WireDelay { node, ms } => write!(f, "delay:{node}:{ms}"),
            Fault::DropHeartbeats { node, first_n } => write!(f, "drop:{node}:{first_n}"),
        }
    }
}

/// A malformed serialized plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultParseError {
    /// The clause that failed to parse.
    pub clause: String,
    /// What was wrong with it.
    pub reason: &'static str,
}

impl fmt::Display for FaultParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad fault clause {:?}: {}", self.clause, self.reason)
    }
}

impl std::error::Error for FaultParseError {}

/// The full set of faults injected into one run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// An empty plan: no faults.
    #[must_use]
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Adds one fault (builder style).
    #[must_use]
    pub fn with(mut self, fault: Fault) -> Self {
        self.faults.push(fault);
        self
    }

    /// True when the plan injects nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Every fault in the plan, in insertion order.
    #[must_use]
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Serializes the plan for [`ENV_FAULTS`].
    #[must_use]
    pub fn to_env_value(&self) -> String {
        self.faults.iter().map(ToString::to_string).collect::<Vec<_>>().join(";")
    }

    /// Parses a serialized plan (the inverse of [`Self::to_env_value`]).
    pub fn parse(text: &str) -> Result<Self, FaultParseError> {
        let mut plan = FaultPlan::new();
        for clause in text.split(';').map(str::trim).filter(|c| !c.is_empty()) {
            let err = |reason| FaultParseError { clause: clause.to_string(), reason };
            let mut parts = clause.split(':');
            let kind = parts.next().unwrap_or("");
            let node: usize =
                parts.next().ok_or_else(|| err("missing node"))?.parse().map_err(|_| err("bad node"))?;
            let arg = parts.next();
            if parts.next().is_some() {
                return Err(err("too many fields"));
            }
            let num = |what| -> Result<u64, FaultParseError> {
                arg.ok_or_else(|| err(what))?.parse().map_err(|_| err(what))
            };
            plan.faults.push(match kind {
                "stall" => Fault::StallStreamer { node, ms: num("bad stall ms")? },
                "panic" => {
                    if arg.is_some() {
                        return Err(err("panic takes no argument"));
                    }
                    Fault::PanicAfterStart { node }
                }
                "kill" => Fault::Sigkill { node, after_ms: num("bad kill delay")? },
                "delay" => Fault::WireDelay { node, ms: num("bad delay ms")? },
                "drop" => Fault::DropHeartbeats { node, first_n: num("bad drop count")? },
                _ => return Err(err("unknown fault kind")),
            });
        }
        Ok(plan)
    }

    /// The plan a spawned worker was handed, read from [`ENV_FAULTS`].
    /// A malformed value is a worker-startup error, not a silent no-op —
    /// a chaos test whose plan never applied would pass vacuously.
    pub fn from_env() -> Result<Self, FaultParseError> {
        match std::env::var(ENV_FAULTS) {
            Ok(text) => FaultPlan::parse(&text),
            Err(_) => Ok(FaultPlan::new()),
        }
    }

    /// Streamer stall for `node`, if any.
    #[must_use]
    pub fn stall_ms(&self, node: usize) -> Option<u64> {
        self.faults.iter().find_map(|f| match *f {
            Fault::StallStreamer { node: n, ms } if n == node => Some(ms),
            _ => None,
        })
    }

    /// True when `node` must panic after the start barrier.
    #[must_use]
    pub fn panics_after_start(&self, node: usize) -> bool {
        self.faults.iter().any(|f| matches!(*f, Fault::PanicAfterStart { node: n } if n == node))
    }

    /// Self-SIGKILL delay for `node`, if any.
    #[must_use]
    pub fn sigkill_after_ms(&self, node: usize) -> Option<u64> {
        self.faults.iter().find_map(|f| match *f {
            Fault::Sigkill { node: n, after_ms } if n == node => Some(after_ms),
            _ => None,
        })
    }

    /// Per-remote-read delay for `node`, if any.
    #[must_use]
    pub fn wire_delay_ms(&self, node: usize) -> Option<u64> {
        self.faults.iter().find_map(|f| match *f {
            Fault::WireDelay { node: n, ms } if n == node => Some(ms),
            _ => None,
        })
    }

    /// Leading heartbeats to drop for `node`.
    #[must_use]
    pub fn drop_heartbeats(&self, node: usize) -> u64 {
        self.faults
            .iter()
            .find_map(|f| match *f {
                Fault::DropHeartbeats { node: n, first_n } if n == node => Some(first_n),
                _ => None,
            })
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_roundtrip_through_the_env_encoding() {
        let plan = FaultPlan::new()
            .with(Fault::StallStreamer { node: 1, ms: 500 })
            .with(Fault::PanicAfterStart { node: 0 })
            .with(Fault::Sigkill { node: 2, after_ms: 100 })
            .with(Fault::WireDelay { node: 1, ms: 5 })
            .with(Fault::DropHeartbeats { node: 3, first_n: 4 });
        let text = plan.to_env_value();
        assert_eq!(text, "stall:1:500;panic:0;kill:2:100;delay:1:5;drop:3:4");
        assert_eq!(FaultPlan::parse(&text).unwrap(), plan);
        assert_eq!(FaultPlan::parse("").unwrap(), FaultPlan::new());
        assert_eq!(FaultPlan::parse(" stall:1:500 ; ").unwrap().stall_ms(1), Some(500));
    }

    #[test]
    fn queries_target_only_the_named_node() {
        let plan = FaultPlan::new()
            .with(Fault::Sigkill { node: 2, after_ms: 100 })
            .with(Fault::WireDelay { node: 1, ms: 5 });
        assert_eq!(plan.sigkill_after_ms(2), Some(100));
        assert_eq!(plan.sigkill_after_ms(1), None);
        assert_eq!(plan.wire_delay_ms(1), Some(5));
        assert_eq!(plan.wire_delay_ms(2), None);
        assert!(!plan.panics_after_start(2));
        assert_eq!(plan.drop_heartbeats(0), 0);
        assert_eq!(plan.faults()[0].node(), 2);
        assert!(!plan.is_empty());
        assert!(FaultPlan::new().is_empty());
    }

    #[test]
    fn malformed_clauses_are_typed_errors() {
        for (text, reason) in [
            ("stall", "missing node"),
            ("stall:x:5", "bad node"),
            ("stall:1", "bad stall ms"),
            ("stall:1:x", "bad stall ms"),
            ("panic:1:5", "panic takes no argument"),
            ("kill:1:5:9", "too many fields"),
            ("flood:1:5", "unknown fault kind"),
        ] {
            let err = FaultPlan::parse(text).unwrap_err();
            assert_eq!(err.reason, reason, "for {text:?}");
            assert!(err.to_string().contains(reason));
        }
    }
}
