//! The transport-accounting document each worker reports back.
//!
//! After the coordinator broadcasts shutdown, a worker folds every
//! counter it kept — grant payload bytes split by fabric lane, raw frame
//! and byte tallies of all its sockets, and the request→grant lock-wait
//! distribution — into one `orwl-proc-metrics/v1` document and sends it
//! as [`Message::Metrics`](crate::wire::Message::Metrics).  The
//! coordinator's *measured* inter-node traffic is the sum of the
//! reader-side payload tallies, which is what the sim-vs-real correlation
//! artifact pins against the cluster simulator's prediction.

use orwl_obs::json::Json;

/// Schema identifier of the worker metrics document.
pub const METRICS_SCHEMA: &str = "orwl-proc-metrics/v1";

/// Cap on the lock-wait samples shipped verbatim (the full distribution
/// stays summarised by `count` / `total_ns`).
pub const MAX_WAIT_SAMPLES: usize = 64;

/// One worker's transport and lock-wait accounting.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WorkerMetrics {
    /// The reporting worker's node index.
    pub node: usize,
    /// Wall-clock seconds the worker spent between start and done.
    pub wall_seconds: f64,
    /// Grant payload bytes this worker *received* from same-rack peers.
    pub same_rack_payload_bytes: u64,
    /// Grant payload bytes this worker *received* from cross-rack peers.
    pub cross_rack_payload_bytes: u64,
    /// Frames written on all of this worker's sockets.
    pub frames_sent: u64,
    /// Frames decoded on all of this worker's sockets.
    pub frames_received: u64,
    /// Raw bytes written (headers included).
    pub bytes_sent: u64,
    /// Raw bytes read (headers included).
    pub bytes_received: u64,
    /// Remote read sections this worker completed as the reader.
    pub remote_reads: u64,
    /// Remote lock grants whose wait was measured (request → grant).
    pub lock_wait_count: u64,
    /// Total nanoseconds spent waiting for remote grants.
    pub lock_wait_total_ns: u64,
    /// Up to [`MAX_WAIT_SAMPLES`] individual waits as `(location, ns)`.
    pub lock_wait_samples: Vec<(u64, u64)>,
}

impl WorkerMetrics {
    /// Payload bytes received across the fabric, whatever the lane.
    #[must_use]
    pub fn inter_node_payload_bytes(&self) -> u64 {
        self.same_rack_payload_bytes + self.cross_rack_payload_bytes
    }

    /// Serialises under the `orwl-proc-metrics/v1` schema.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut doc = Json::obj();
        doc.push("schema", METRICS_SCHEMA);
        doc.push("node", self.node);
        doc.push("wall_seconds", self.wall_seconds);
        let mut payload = Json::obj();
        payload.push("same_rack", self.same_rack_payload_bytes);
        payload.push("cross_rack", self.cross_rack_payload_bytes);
        doc.push("payload_bytes", payload);
        doc.push("frames_sent", self.frames_sent);
        doc.push("frames_received", self.frames_received);
        doc.push("bytes_sent", self.bytes_sent);
        doc.push("bytes_received", self.bytes_received);
        doc.push("remote_reads", self.remote_reads);
        let mut wait = Json::obj();
        wait.push("count", self.lock_wait_count);
        wait.push("total_ns", self.lock_wait_total_ns);
        wait.push(
            "samples",
            Json::Arr(
                self.lock_wait_samples
                    .iter()
                    .map(|&(loc, ns)| Json::Arr(vec![Json::from(loc), Json::from(ns)]))
                    .collect(),
            ),
        );
        doc.push("lock_wait", wait);
        doc
    }

    /// Parses a worker metrics document.
    pub fn from_json(doc: &Json) -> Result<Self, String> {
        let schema = doc.get("schema").and_then(Json::as_str).ok_or("missing schema field")?;
        if schema != METRICS_SCHEMA {
            return Err(format!("schema is {schema:?}, expected {METRICS_SCHEMA:?}"));
        }
        let num = |key: &str| -> Result<f64, String> {
            doc.get(key).and_then(Json::as_f64).ok_or_else(|| format!("missing numeric field {key:?}"))
        };
        let payload = doc.get("payload_bytes").ok_or("missing payload_bytes")?;
        let lane = |key: &str| -> Result<u64, String> {
            payload
                .get(key)
                .and_then(Json::as_f64)
                .map(|x| x as u64)
                .ok_or_else(|| format!("missing payload_bytes.{key}"))
        };
        let wait = doc.get("lock_wait").ok_or("missing lock_wait")?;
        let wait_num = |key: &str| -> Result<u64, String> {
            wait.get(key)
                .and_then(Json::as_f64)
                .map(|x| x as u64)
                .ok_or_else(|| format!("missing lock_wait.{key}"))
        };
        let samples = wait
            .get("samples")
            .and_then(Json::as_arr)
            .ok_or("missing lock_wait.samples")?
            .iter()
            .map(|s| {
                let pair = s.as_arr().filter(|p| p.len() == 2).ok_or("samples must be [location, ns]")?;
                Ok((
                    pair[0].as_f64().ok_or("sample location must be a number")? as u64,
                    pair[1].as_f64().ok_or("sample ns must be a number")? as u64,
                ))
            })
            .collect::<Result<_, String>>()?;
        Ok(WorkerMetrics {
            node: num("node")? as usize,
            wall_seconds: num("wall_seconds")?,
            same_rack_payload_bytes: lane("same_rack")?,
            cross_rack_payload_bytes: lane("cross_rack")?,
            frames_sent: num("frames_sent")? as u64,
            frames_received: num("frames_received")? as u64,
            bytes_sent: num("bytes_sent")? as u64,
            bytes_received: num("bytes_received")? as u64,
            remote_reads: num("remote_reads")? as u64,
            lock_wait_count: wait_num("count")?,
            lock_wait_total_ns: wait_num("total_ns")?,
            lock_wait_samples: samples,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_roundtrip_is_lossless() {
        let m = WorkerMetrics {
            node: 3,
            wall_seconds: 0.125,
            same_rack_payload_bytes: 1 << 20,
            cross_rack_payload_bytes: 4096,
            frames_sent: 17,
            frames_received: 19,
            bytes_sent: 90_000,
            bytes_received: 120_000,
            remote_reads: 8,
            lock_wait_count: 8,
            lock_wait_total_ns: 1_500_000,
            lock_wait_samples: vec![(2, 100_000), (5, 200_000)],
        };
        let text = m.to_json().pretty();
        let parsed = WorkerMetrics::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(parsed, m);
        assert_eq!(parsed.inter_node_payload_bytes(), (1 << 20) + 4096);
    }

    #[test]
    fn wrong_schema_is_rejected() {
        let mut doc = WorkerMetrics::default().to_json();
        if let Json::Obj(pairs) = &mut doc {
            pairs[0].1 = Json::Str("something-else".to_string());
        }
        assert!(WorkerMetrics::from_json(&doc).unwrap_err().contains("schema"));
    }
}
