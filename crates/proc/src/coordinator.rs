//! Coordinator-side process management: spawn one worker per node, speak
//! the control protocol, and guarantee cleanup.
//!
//! The pool owns the run's rendezvous directory (under the system temp
//! dir), the control listener, one [`Child`] per node and one bounded
//! stderr-tail collector per child.  Every blocking wait is a short-tick
//! poll against a deadline that also watches for child death, so a worker
//! that crashes, hangs or exits early surfaces as a typed
//! [`WorkerFailure`] carrying the worker's stderr tail — never as a hung
//! coordinator.  Dropping the pool kills and reaps whatever is still
//! running and removes the rendezvous directory.

use crate::transport::{FramedStream, RecvError};
use crate::wire::Message;
use std::collections::VecDeque;
use std::io::{ErrorKind, Read};
use std::os::unix::net::UnixListener;
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStderr, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Bytes of each worker's stderr kept for failure reports.
pub const STDERR_TAIL_BYTES: usize = 4096;

/// Environment variable selecting the worker role in a re-exec'd binary.
pub const ENV_ROLE: &str = "ORWL_PROC_ROLE";
/// Environment variable carrying the worker's node index.
pub const ENV_NODE: &str = "ORWL_PROC_NODE";
/// Environment variable carrying the coordinator socket path.
pub const ENV_COORD: &str = "ORWL_PROC_COORD";

static RUN_COUNTER: AtomicU64 = AtomicU64::new(0);

/// A worker failure attributable to one node.
#[derive(Debug)]
pub struct WorkerFailure {
    /// The failing worker's node index.
    pub node: usize,
    /// What happened, with the worker's stderr tail appended.
    pub detail: String,
}

fn tail_collector(mut stderr: ChildStderr) -> JoinHandle<String> {
    std::thread::spawn(move || {
        let mut kept: VecDeque<u8> = VecDeque::new();
        let mut buf = [0u8; 1024];
        loop {
            match stderr.read(&mut buf) {
                Ok(0) => break,
                Ok(n) => {
                    kept.extend(&buf[..n]);
                    while kept.len() > STDERR_TAIL_BYTES {
                        kept.pop_front();
                    }
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => break,
            }
        }
        String::from_utf8_lossy(kept.make_contiguous()).into_owned()
    })
}

struct WorkerChild {
    child: Child,
    tail: Option<JoinHandle<String>>,
    exit: Option<std::process::ExitStatus>,
}

impl WorkerChild {
    /// Non-blocking exit check, remembering the status once reaped.
    fn poll_exit(&mut self) -> Option<std::process::ExitStatus> {
        if self.exit.is_none() {
            if let Ok(Some(status)) = self.child.try_wait() {
                self.exit = Some(status);
            }
        }
        self.exit
    }

    /// Kills (if still running), reaps, and returns the stderr tail.
    fn kill_and_tail(&mut self) -> String {
        if self.poll_exit().is_none() {
            let _ = self.child.kill();
            if let Ok(status) = self.child.wait() {
                self.exit = Some(status);
            }
        }
        match self.tail.take() {
            Some(handle) => handle.join().unwrap_or_default(),
            None => String::new(),
        }
    }
}

/// What one lossy poll attempt observed on a control connection.
///
/// [`WorkerPool::poll_from`] turns `Lost` into a fatal cascade failure;
/// recovery-enabled coordinators use [`WorkerPool::poll_from_lossy`]
/// directly so a lost node can trigger a re-shard instead of ending the
/// run.
#[derive(Debug)]
pub enum Polled {
    /// A whole message arrived.
    Message(Message),
    /// Nothing whole arrived within the slice; the worker may simply be
    /// busy.
    Silence,
    /// The connection is gone (closed socket or receive error) — the
    /// worker is lost, with the best available diagnosis attached.
    Lost(String),
}

/// One run's worth of worker processes plus their control connections.
pub struct WorkerPool {
    dir: PathBuf,
    listener: UnixListener,
    children: Vec<WorkerChild>,
    controls: Vec<Option<FramedStream>>,
    hello_recv_us: Vec<u64>,
    io_timeout: Duration,
    stray: Vec<(usize, Message)>,
    dead: Vec<bool>,
}

impl WorkerPool {
    /// Creates the rendezvous directory, binds the control listener and
    /// spawns `n_nodes` workers by re-exec'ing the current binary with
    /// `worker_args`, the worker-role environment and `extra_env`.
    pub fn spawn(
        n_nodes: usize,
        worker_args: &[String],
        extra_env: &[(String, String)],
        io_timeout: Duration,
    ) -> std::io::Result<WorkerPool> {
        let dir = std::env::temp_dir().join(format!(
            "orwl-proc-{}-{}",
            std::process::id(),
            RUN_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir)?;
        let coord_sock = dir.join("coord.sock");
        let listener = UnixListener::bind(&coord_sock)?;
        listener.set_nonblocking(true)?;

        let exe = std::env::current_exe()?;
        let mut children = Vec::with_capacity(n_nodes);
        let mut pool_guard = PoolDirGuard { dir: Some(dir.clone()), children: &mut children };
        for node in 0..n_nodes {
            let mut command = Command::new(&exe);
            command
                .args(worker_args)
                .env(ENV_ROLE, "worker")
                .env(ENV_NODE, node.to_string())
                .env(ENV_COORD, &coord_sock)
                .stdin(Stdio::null())
                .stdout(Stdio::null())
                .stderr(Stdio::piped());
            for (key, value) in extra_env {
                command.env(key, value);
            }
            let mut child = command.spawn()?;
            let tail = child.stderr.take().map(tail_collector);
            pool_guard.children.push(WorkerChild { child, tail, exit: None });
        }
        pool_guard.dir = None; // spawns succeeded: the pool takes ownership
        drop(pool_guard);
        let controls = (0..n_nodes).map(|_| None).collect();
        Ok(WorkerPool {
            dir,
            listener,
            children,
            controls,
            hello_recv_us: vec![0; n_nodes],
            io_timeout,
            stray: Vec::new(),
            dead: vec![false; n_nodes],
        })
    }

    /// True once `node` has been confirmed lost and written off — its
    /// control connection dropped, its process reaped.  Dead nodes are
    /// skipped by broadcasts, waits and auto-blame.
    #[must_use]
    pub fn is_dead(&self, node: usize) -> bool {
        self.dead[node]
    }

    /// The OS process id of `node`'s worker (for signal-based tests).
    #[must_use]
    pub fn worker_pid(&self, node: usize) -> u32 {
        self.children[node].child.id()
    }

    /// Writes `node` off as lost: kills and reaps its process, joins its
    /// stderr tail, drops its control connection and marks it dead.
    /// Returns the exit status (when the process already exited) and the
    /// stderr tail, for the recovery telemetry.
    pub fn confirm_loss(&mut self, node: usize) -> (Option<std::process::ExitStatus>, String) {
        let status = self.children[node].poll_exit();
        let tail = self.children[node].kill_and_tail();
        self.controls[node] = None;
        self.dead[node] = true;
        (status.or(self.children[node].exit), tail)
    }

    /// The coordinator's process clock (µs) when `node`'s `Hello` arrived
    /// — one side of the clock-offset handshake (see `orwl_obs::merge`);
    /// `0` until [`WorkerPool::accept_controls`] has seen that node.
    #[must_use]
    pub fn hello_recv_us(&self, node: usize) -> u64 {
        self.hello_recv_us[node]
    }

    /// Path of the peer listener socket assigned to `node`.
    #[must_use]
    pub fn peer_socket(&self, node: usize) -> PathBuf {
        self.dir.join(format!("worker{node}.sock"))
    }

    /// The rendezvous directory (owned by the pool until drop).
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Kills every worker, joins the stderr tails and composes the typed
    /// failure for `node` (or the most informative node when `None`: the
    /// first still-credited child that exited with a failure status, else
    /// node 0).  Nodes already written off by a completed recovery are
    /// never auto-blamed — their deaths were already accounted for.
    pub fn fail(&mut self, node: Option<usize>, reason: impl Into<String>) -> WorkerFailure {
        let statuses: Vec<Option<std::process::ExitStatus>> =
            self.children.iter_mut().map(WorkerChild::poll_exit).collect();
        let node = node
            .or_else(|| {
                statuses
                    .iter()
                    .enumerate()
                    .position(|(n, s)| !self.dead[n] && s.is_some_and(|s| !s.success()))
            })
            .unwrap_or(0);
        let tails: Vec<String> = self.children.iter_mut().map(WorkerChild::kill_and_tail).collect();
        let mut detail = reason.into();
        if let Some(status) = statuses.get(node).copied().flatten() {
            detail.push_str(&format!(" ({status})"));
        }
        let tail = tails.get(node).map(String::as_str).unwrap_or("").trim();
        if tail.is_empty() {
            detail.push_str("; stderr: <empty>");
        } else {
            detail.push_str(&format!("; stderr tail:\n{tail}"));
        }
        WorkerFailure { node, detail }
    }

    /// Like [`WorkerPool::fail`], but for failures observed on `node`
    /// that may be collateral damage: when some *other* worker already
    /// exited with a failure status, that death is the root cause (a
    /// dying peer tears down every connection it serves) and its stderr
    /// tail carries the original panic — blame it instead of `node`.
    pub fn fail_cascade(&mut self, node: usize, reason: impl Into<String>) -> WorkerFailure {
        // A peer's cascade error can race the dying worker's reaping by a
        // few milliseconds, so give the root cause a short grace window
        // to show up as an exited child before settling blame — unless
        // `node` itself already died, which settles it immediately.
        let mut root = None;
        for _ in 0..5 {
            if self.children[node].poll_exit().is_some_and(|s| !s.success()) {
                break;
            }
            root = (0..self.children.len()).find(|&n| {
                n != node && !self.dead[n] && self.children[n].poll_exit().is_some_and(|s| !s.success())
            });
            if root.is_some() {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        match root {
            Some(root) => self.fail(
                Some(root),
                format!("worker exited during the run (a peer then saw: {})", reason.into()),
            ),
            None => self.fail(Some(node), reason),
        }
    }

    /// Accepts one control connection per worker; each must open with
    /// [`Message::Hello`].  Polls for child death while waiting, so a
    /// worker that dies before connecting fails the run immediately.
    pub fn accept_controls(&mut self) -> Result<(), WorkerFailure> {
        let deadline = Instant::now() + self.io_timeout;
        let mut accepted = 0;
        while accepted < self.children.len() {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let mut control = FramedStream::new(stream);
                    match control.recv(Some(self.io_timeout)) {
                        Ok(Message::Hello { node }) => {
                            let hello_us = orwl_obs::process_clock_us();
                            let node = node as usize;
                            if node >= self.children.len() {
                                return Err(self.fail(None, format!("hello from unknown node {node}")));
                            }
                            if self.controls[node].is_some() {
                                return Err(self.fail(Some(node), "duplicate hello"));
                            }
                            self.controls[node] = Some(control);
                            self.hello_recv_us[node] = hello_us;
                            accepted += 1;
                        }
                        Ok(other) => {
                            return Err(self.fail(None, format!("expected hello, got {}", other.name())));
                        }
                        Err(e) => {
                            return Err(self.fail(None, format!("control handshake failed: {e}")));
                        }
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    if let Some(node) = self.first_dead_child() {
                        return Err(
                            self.fail(Some(node), "worker exited before connecting to the coordinator")
                        );
                    }
                    if Instant::now() >= deadline {
                        return Err(self.fail(None, "timed out waiting for workers to connect"));
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => return Err(self.fail(None, format!("control accept failed: {e}"))),
            }
        }
        Ok(())
    }

    fn first_dead_child(&mut self) -> Option<usize> {
        (0..self.children.len()).find(|&k| self.children[k].poll_exit().is_some())
    }

    /// Non-blocking probe: has `node`'s worker process exited?
    #[must_use]
    pub fn worker_exited(&mut self, node: usize) -> Option<std::process::ExitStatus> {
        self.children.get_mut(node).and_then(WorkerChild::poll_exit)
    }

    /// Sends one message to `node`'s control connection.  The write is
    /// deadline-bounded by the pool's io timeout, so a worker whose
    /// socket buffer filled up (e.g. one that was SIGSTOPped mid-run)
    /// stalls the coordinator for at most one timeout, never forever.
    pub fn send_to(&mut self, node: usize, message: &Message) -> Result<(), WorkerFailure> {
        let io_timeout = self.io_timeout;
        let Some(control) = self.controls[node].as_mut() else {
            return Err(self.fail(Some(node), "no control connection"));
        };
        if let Err(e) = control.send_with_deadline(message, io_timeout) {
            return Err(self.fail(Some(node), format!("control send failed: {e}")));
        }
        Ok(())
    }

    /// Broadcasts one message to every live (not written-off) worker.
    pub fn broadcast(&mut self, message: &Message) -> Result<(), WorkerFailure> {
        for node in 0..self.children.len() {
            if !self.dead[node] {
                self.send_to(node, message)?;
            }
        }
        Ok(())
    }

    /// One short-slice receive attempt on `node`'s control connection:
    /// `Ok(None)` when nothing whole arrived within `slice`, the decoded
    /// message otherwise.  A worker-reported error, a closed socket or a
    /// dead worker is still a typed failure — only silence is `None`.
    /// This is the live monitor's building block: round-robin `poll_from`
    /// over every node multiplexes heartbeats, deltas and `Done` reports
    /// without parking the coordinator on any single worker.
    pub fn poll_from(&mut self, node: usize, slice: Duration) -> Result<Option<Message>, WorkerFailure> {
        match self.poll_from_lossy(node, slice)? {
            Polled::Message(message) => Ok(Some(message)),
            Polled::Silence => Ok(None),
            Polled::Lost(detail) => Err(self.fail_cascade(node, detail)),
        }
    }

    /// The loss-tolerant poll underneath [`WorkerPool::poll_from`]: a
    /// vanished connection comes back as [`Polled::Lost`] instead of
    /// tearing the run down, so a recovery-enabled coordinator can
    /// confirm the loss and re-shard.  A worker-*reported* error is still
    /// fatal — the worker chose to fail, and the failure would recur on
    /// any survivor.
    pub fn poll_from_lossy(&mut self, node: usize, slice: Duration) -> Result<Polled, WorkerFailure> {
        let Some(control) = self.controls[node].as_mut() else {
            return Err(self.fail(Some(node), "no control connection"));
        };
        match control.recv(Some(slice)) {
            Ok(Message::Error { message }) => {
                Err(self.fail_cascade(node, format!("worker reported: {message}")))
            }
            Ok(message) => Ok(Polled::Message(message)),
            Err(RecvError::Timeout) => Ok(Polled::Silence),
            Err(RecvError::Closed) => {
                // Drain the exit status first: a crash shows up as a closed
                // socket, and the status is the useful part of the report.
                std::thread::sleep(Duration::from_millis(20));
                let status = self.children[node].poll_exit();
                Ok(Polled::Lost(match status {
                    Some(status) => format!("worker exited ({status}) during the run"),
                    None => "worker closed its control connection during the run".to_string(),
                }))
            }
            Err(e) => Ok(Polled::Lost(format!("control receive failed: {e}"))),
        }
    }

    /// Streaming frames that arrived while a specific kind was awaited —
    /// [`WorkerPool::recv_from`] sets them aside instead of failing, and
    /// the live monitor drains them here so no delta is ever lost to
    /// protocol-step racing.
    pub fn take_stray(&mut self) -> Vec<(usize, Message)> {
        std::mem::take(&mut self.stray)
    }

    /// Waits (deadline-bounded, death-aware) for one message of kind
    /// `expect` from `node`.  Live-streaming frames (heartbeats, interval
    /// deltas) may race any protocol step, so they are set aside for
    /// [`WorkerPool::take_stray`] rather than failing the run; anything
    /// else unexpected — a worker-reported error, an unexpected kind, a
    /// dead or silent worker — fails the whole run.
    pub fn recv_from(&mut self, node: usize, expect: &'static str) -> Result<Message, WorkerFailure> {
        let deadline = Instant::now() + self.io_timeout;
        loop {
            let Some(control) = self.controls[node].as_mut() else {
                return Err(self.fail(Some(node), "no control connection"));
            };
            match control.recv(Some(Duration::from_millis(100))) {
                Ok(message) if message.name() == expect => return Ok(message),
                Ok(Message::Error { message }) => {
                    return Err(self.fail(Some(node), format!("worker reported: {message}")));
                }
                Ok(message @ (Message::Heartbeat { .. } | Message::TelemetryDelta { .. })) => {
                    self.stray.push((node, message));
                }
                Ok(other) => {
                    return Err(self.fail(Some(node), format!("expected {expect}, got {}", other.name())));
                }
                Err(RecvError::Timeout) => {
                    if let Some(status) = self.children[node].poll_exit() {
                        return Err(self.fail(
                            Some(node),
                            format!("worker exited ({status}) while the coordinator awaited {expect}"),
                        ));
                    }
                    if Instant::now() >= deadline {
                        return Err(self.fail(Some(node), format!("timed out waiting for {expect}")));
                    }
                }
                Err(RecvError::Closed) => {
                    // Drain the exit status first: a crash shows up as a
                    // closed socket, and the status plus stderr tail is the
                    // useful part of the report.
                    std::thread::sleep(Duration::from_millis(20));
                    let status = self.children[node].poll_exit();
                    let detail = match status {
                        Some(status) => {
                            format!("worker exited ({status}) while the coordinator awaited {expect}")
                        }
                        None => format!("worker closed its control connection awaiting {expect}"),
                    };
                    return Err(self.fail(Some(node), detail));
                }
                Err(e) => {
                    return Err(self.fail(Some(node), format!("control receive failed: {e}")));
                }
            }
        }
    }

    /// Waits for every live worker to exit cleanly (deadline-bounded); a
    /// non-zero exit or an overdue worker fails the run.  Nodes written
    /// off by recovery were already reaped and are skipped.
    pub fn wait_all(&mut self) -> Result<(), WorkerFailure> {
        let deadline = Instant::now() + self.io_timeout;
        for node in 0..self.children.len() {
            if self.dead[node] {
                continue;
            }
            loop {
                if let Some(status) = self.children[node].poll_exit() {
                    if status.success() {
                        break;
                    }
                    return Err(self.fail(Some(node), format!("worker exited with {status}")));
                }
                if Instant::now() >= deadline {
                    return Err(self.fail(Some(node), "worker did not exit after shutdown"));
                }
                std::thread::sleep(Duration::from_millis(5));
            }
        }
        Ok(())
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Graceful first: SIGTERM everything still running, so a healthy
        // worker gets to unwind (flush stderr, drop sockets) instead of
        // dying mid-write.  A worker that ignores the courtesy — or one
        // that is SIGSTOPped and cannot even see it — is SIGKILLed after
        // a bounded grace, so teardown always completes.
        for child in &mut self.children {
            if child.poll_exit().is_none() {
                unsafe {
                    libc::kill(child.child.id() as libc::pid_t, libc::SIGTERM);
                }
            }
        }
        let grace = Instant::now() + Duration::from_millis(500);
        while Instant::now() < grace && self.children.iter_mut().any(|c| c.poll_exit().is_none()) {
            std::thread::sleep(Duration::from_millis(10));
        }
        for child in &mut self.children {
            child.kill_and_tail();
        }
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

/// Cleans up the rendezvous directory and any already-spawned children if
/// spawning aborts partway.
struct PoolDirGuard<'a> {
    dir: Option<PathBuf>,
    children: &'a mut Vec<WorkerChild>,
}

impl Drop for PoolDirGuard<'_> {
    fn drop(&mut self) {
        if let Some(dir) = self.dir.take() {
            for child in self.children.iter_mut() {
                child.kill_and_tail();
            }
            let _ = std::fs::remove_dir_all(dir);
        }
    }
}
