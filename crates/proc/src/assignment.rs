//! The run assignment a coordinator ships to each worker.
//!
//! An [`Assignment`] is everything a freshly-exec'd worker process needs
//! to reconstruct its slice of the run: the cluster shape (node topology
//! levels, rack layout), the task → node sharding the placement policy
//! chose, the socket rendezvous points, and the per-phase read schedule
//! filtered to the tasks this worker hosts.  It travels as the JSON
//! payload of [`Message::Assignment`](crate::wire::Message::Assignment)
//! under the versioned `orwl-proc-assign/v1` schema, so a worker from a
//! different build fails loudly on schema drift instead of
//! misinterpreting fields.

use orwl_obs::json::Json;

/// Schema identifier of the assignment document.
pub const ASSIGN_SCHEMA: &str = "orwl-proc-assign/v1";

/// One read edge of the protocol: `reader` pulls `bytes` from the
/// location owned by `src`, once per iteration of the enclosing phase.
#[derive(Debug, Clone, PartialEq)]
pub struct ReadEdge {
    /// Global index of the reading task.
    pub reader: usize,
    /// Global index of the task owning the location read.
    pub src: usize,
    /// Bytes transferred per iteration.
    pub bytes: f64,
}

/// One phase of the read schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct PhasePlan {
    /// Iterations of this phase.
    pub iterations: usize,
    /// Every read performed per iteration, filtered to readers hosted on
    /// the receiving worker.
    pub reads: Vec<ReadEdge>,
}

/// The complete per-worker run description.
#[derive(Debug, Clone, PartialEq)]
pub struct Assignment {
    /// This worker's node index.
    pub node: usize,
    /// Total number of nodes in the run.
    pub n_nodes: usize,
    /// Total number of tasks across all nodes.
    pub n_tasks: usize,
    /// Deadline applied to every blocking socket read, in milliseconds.
    pub io_timeout_ms: u64,
    /// Name of the per-node topology (for the worker's local session).
    pub topo_name: String,
    /// The per-node topology as `(object short name, count)` levels.
    pub levels: Vec<(String, usize)>,
    /// Rack index of each node (fabric lane classification).
    pub rack_of_node: Vec<usize>,
    /// Node hosting each task — the placement policy's sharding.
    pub node_of_task: Vec<usize>,
    /// Filesystem path of this worker's peer listener socket.
    pub listen: String,
    /// Peer listener paths, indexed by node.
    pub peer_listen: Vec<String>,
    /// The read schedule (filtered to this worker's tasks).
    pub phases: Vec<PhasePlan>,
}

impl Assignment {
    /// Global indices of the tasks this worker hosts.
    #[must_use]
    pub fn local_tasks(&self) -> Vec<usize> {
        (0..self.n_tasks).filter(|&t| self.node_of_task[t] == self.node).collect()
    }

    /// Serialises under the `orwl-proc-assign/v1` schema.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut doc = Json::obj();
        doc.push("schema", ASSIGN_SCHEMA);
        doc.push("node", self.node);
        doc.push("n_nodes", self.n_nodes);
        doc.push("n_tasks", self.n_tasks);
        doc.push("io_timeout_ms", self.io_timeout_ms);
        doc.push("topo_name", self.topo_name.as_str());
        doc.push(
            "levels",
            Json::Arr(
                self.levels
                    .iter()
                    .map(|(name, count)| Json::Arr(vec![Json::Str(name.clone()), Json::from(*count)]))
                    .collect(),
            ),
        );
        doc.push("rack_of_node", usize_arr(&self.rack_of_node));
        doc.push("node_of_task", usize_arr(&self.node_of_task));
        doc.push("listen", self.listen.as_str());
        doc.push("peer_listen", Json::Arr(self.peer_listen.iter().map(|p| Json::Str(p.clone())).collect()));
        doc.push(
            "phases",
            Json::Arr(
                self.phases
                    .iter()
                    .map(|phase| {
                        let mut p = Json::obj();
                        p.push("iterations", phase.iterations);
                        p.push(
                            "reads",
                            Json::Arr(
                                phase
                                    .reads
                                    .iter()
                                    .map(|r| {
                                        Json::Arr(vec![
                                            Json::from(r.reader),
                                            Json::from(r.src),
                                            Json::from(r.bytes),
                                        ])
                                    })
                                    .collect(),
                            ),
                        );
                        p
                    })
                    .collect(),
            ),
        );
        doc
    }

    /// Parses and validates an assignment document.
    pub fn from_json(doc: &Json) -> Result<Self, String> {
        let schema = req_str(doc, "schema")?;
        if schema != ASSIGN_SCHEMA {
            return Err(format!("schema is {schema:?}, expected {ASSIGN_SCHEMA:?}"));
        }
        let assignment = Assignment {
            node: req_usize(doc, "node")?,
            n_nodes: req_usize(doc, "n_nodes")?,
            n_tasks: req_usize(doc, "n_tasks")?,
            io_timeout_ms: req_usize(doc, "io_timeout_ms")? as u64,
            topo_name: req_str(doc, "topo_name")?.to_string(),
            levels: req_arr(doc, "levels")?
                .iter()
                .map(|level| {
                    let pair = level.as_arr().ok_or("levels entries must be [name, count] pairs")?;
                    match pair {
                        [name, count] => Ok((
                            name.as_str().ok_or("level name must be a string")?.to_string(),
                            count.as_f64().ok_or("level count must be a number")? as usize,
                        )),
                        _ => Err("levels entries must be [name, count] pairs".to_string()),
                    }
                })
                .collect::<Result<_, String>>()?,
            rack_of_node: usize_vec(doc, "rack_of_node")?,
            node_of_task: usize_vec(doc, "node_of_task")?,
            listen: req_str(doc, "listen")?.to_string(),
            peer_listen: req_arr(doc, "peer_listen")?
                .iter()
                .map(|p| {
                    p.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| "peer_listen entries must be strings".to_string())
                })
                .collect::<Result<_, String>>()?,
            phases: req_arr(doc, "phases")?
                .iter()
                .enumerate()
                .map(|(k, phase)| {
                    Ok(PhasePlan {
                        iterations: req_usize(phase, "iterations").map_err(|e| format!("phase {k}: {e}"))?,
                        reads: req_arr(phase, "reads")
                            .map_err(|e| format!("phase {k}: {e}"))?
                            .iter()
                            .map(|r| {
                                let triple =
                                    r.as_arr().ok_or("reads entries must be [reader, src, bytes]")?;
                                match triple {
                                    [reader, src, bytes] => Ok(ReadEdge {
                                        reader: reader.as_f64().ok_or("reader must be a number")? as usize,
                                        src: src.as_f64().ok_or("src must be a number")? as usize,
                                        bytes: bytes.as_f64().ok_or("bytes must be a number")?,
                                    }),
                                    _ => Err("reads entries must be [reader, src, bytes]".to_string()),
                                }
                            })
                            .collect::<Result<_, String>>()?,
                    })
                })
                .collect::<Result<_, String>>()?,
        };
        assignment.validate()?;
        Ok(assignment)
    }

    /// Structural consistency checks beyond field presence.
    pub fn validate(&self) -> Result<(), String> {
        if self.node >= self.n_nodes {
            return Err(format!("node {} out of range for {} nodes", self.node, self.n_nodes));
        }
        if self.rack_of_node.len() != self.n_nodes {
            return Err(format!(
                "rack_of_node has {} entries for {} nodes",
                self.rack_of_node.len(),
                self.n_nodes
            ));
        }
        if self.node_of_task.len() != self.n_tasks {
            return Err(format!(
                "node_of_task has {} entries for {} tasks",
                self.node_of_task.len(),
                self.n_tasks
            ));
        }
        if self.peer_listen.len() != self.n_nodes {
            return Err(format!(
                "peer_listen has {} entries for {} nodes",
                self.peer_listen.len(),
                self.n_nodes
            ));
        }
        if let Some(&bad) = self.node_of_task.iter().find(|&&n| n >= self.n_nodes) {
            return Err(format!("node_of_task references node {bad} of {}", self.n_nodes));
        }
        for (k, phase) in self.phases.iter().enumerate() {
            for r in &phase.reads {
                if r.reader >= self.n_tasks || r.src >= self.n_tasks {
                    return Err(format!(
                        "phase {k}: read edge ({}, {}) out of range for {} tasks",
                        r.reader, r.src, self.n_tasks
                    ));
                }
                if self.node_of_task[r.reader] != self.node {
                    return Err(format!(
                        "phase {k}: read edge for task {} is not local to node {}",
                        r.reader, self.node
                    ));
                }
                if !r.bytes.is_finite() || r.bytes < 0.0 {
                    return Err(format!("phase {k}: read bytes {} are not a valid size", r.bytes));
                }
            }
        }
        Ok(())
    }
}

fn usize_arr(values: &[usize]) -> Json {
    Json::Arr(values.iter().map(|&v| Json::from(v)).collect())
}

fn req<'a>(doc: &'a Json, key: &str) -> Result<&'a Json, String> {
    doc.get(key).ok_or_else(|| format!("missing field {key:?}"))
}

fn req_str<'a>(doc: &'a Json, key: &str) -> Result<&'a str, String> {
    req(doc, key)?.as_str().ok_or_else(|| format!("field {key:?} must be a string"))
}

fn req_usize(doc: &Json, key: &str) -> Result<usize, String> {
    let x = req(doc, key)?.as_f64().ok_or_else(|| format!("field {key:?} must be a number"))?;
    if x < 0.0 || x.fract() != 0.0 {
        return Err(format!("field {key:?} must be a non-negative integer, got {x}"));
    }
    Ok(x as usize)
}

fn req_arr<'a>(doc: &'a Json, key: &str) -> Result<&'a [Json], String> {
    req(doc, key)?.as_arr().ok_or_else(|| format!("field {key:?} must be an array"))
}

fn usize_vec(doc: &Json, key: &str) -> Result<Vec<usize>, String> {
    req_arr(doc, key)?
        .iter()
        .map(|v| {
            v.as_f64()
                .filter(|x| *x >= 0.0 && x.fract() == 0.0)
                .map(|x| x as usize)
                .ok_or_else(|| format!("field {key:?} must hold non-negative integers"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Assignment {
        Assignment {
            node: 1,
            n_nodes: 2,
            n_tasks: 4,
            io_timeout_ms: 30_000,
            topo_name: "cluster2016-node".to_string(),
            levels: vec![("machine".to_string(), 1), ("package".to_string(), 2), ("core".to_string(), 8)],
            rack_of_node: vec![0, 0],
            node_of_task: vec![0, 0, 1, 1],
            listen: "/tmp/w1.sock".to_string(),
            peer_listen: vec!["/tmp/w0.sock".to_string(), "/tmp/w1.sock".to_string()],
            phases: vec![PhasePlan {
                iterations: 3,
                reads: vec![
                    ReadEdge { reader: 2, src: 1, bytes: 4096.0 },
                    ReadEdge { reader: 3, src: 2, bytes: 128.5 },
                ],
            }],
        }
    }

    #[test]
    fn json_roundtrip_is_lossless() {
        let a = sample();
        let text = a.to_json().pretty();
        let parsed = Assignment::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(parsed, a);
        assert_eq!(parsed.local_tasks(), vec![2, 3]);
    }

    #[test]
    fn schema_and_structure_are_enforced() {
        let mut wrong_schema = sample().to_json();
        if let Json::Obj(pairs) = &mut wrong_schema {
            pairs[0].1 = Json::Str("orwl-proc-assign/v999".to_string());
        }
        assert!(Assignment::from_json(&wrong_schema).unwrap_err().contains("schema"));

        let mut bad = sample();
        bad.node_of_task = vec![0, 0, 9, 1];
        assert!(bad.validate().unwrap_err().contains("references node 9"));

        let mut foreign = sample();
        foreign.phases[0].reads[0].reader = 0; // task 0 lives on node 0
        assert!(foreign.validate().unwrap_err().contains("not local"));

        let mut short = sample();
        short.peer_listen.pop();
        assert!(short.validate().unwrap_err().contains("peer_listen"));
    }
}
