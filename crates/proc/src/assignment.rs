//! The run assignment a coordinator ships to each worker.
//!
//! An [`Assignment`] is everything a freshly-exec'd worker process needs
//! to reconstruct its slice of the run: the cluster shape (node topology
//! levels, rack layout), the task → node sharding the placement policy
//! chose, the socket rendezvous points, and the per-phase read schedule
//! filtered to the tasks this worker hosts.  It travels as the JSON
//! payload of [`Message::Assignment`](crate::wire::Message::Assignment)
//! under the versioned `orwl-proc-assign/v1` schema, so a worker from a
//! different build fails loudly on schema drift instead of
//! misinterpreting fields.

use orwl_obs::json::Json;
use orwl_obs::{EventFilter, ObsConfig};

/// Schema identifier of the assignment document.
pub const ASSIGN_SCHEMA: &str = "orwl-proc-assign/v1";

/// Schema identifier of the re-assignment document shipped after a node
/// loss ([`Message::ReAssignment`](crate::wire::Message::ReAssignment)).
pub const REASSIGN_SCHEMA: &str = "orwl-proc-reassign/v1";

/// The observation request riding along in an assignment: the worker's
/// recorder configuration plus the coordinator-side handshake timestamps
/// the worker needs to estimate its clock offset (midpoint method — see
/// `orwl_obs::merge`).  Optional: absent means "run dark", and v1
/// documents (which never carry it) keep parsing.
#[derive(Debug, Clone, PartialEq)]
pub struct ObsSpec {
    /// Recorder ring capacity (events per thread).
    pub ring_capacity: usize,
    /// Lock-wait event threshold, nanoseconds.
    pub lock_wait_threshold_ns: u64,
    /// Event-class filter, as [`EventFilter`] bits.
    pub event_filter_bits: u16,
    /// Keep every n-th event per class.
    pub sample_every: u32,
    /// Coordinator clock (µs) when this worker's `Hello` arrived.
    pub hello_recv_us: u64,
    /// Coordinator clock (µs) when this assignment was sent.
    pub assign_send_us: u64,
    /// Live-streaming interval in milliseconds: every interval the worker
    /// sends a heartbeat and drains an interval delta to the coordinator.
    /// `0` (the default, and what older documents parse to) disables
    /// streaming — the run uploads one post-run snapshot only.
    pub stream_interval_ms: u64,
}

impl ObsSpec {
    /// Builds the spec from a recorder config plus the two
    /// coordinator-side handshake timestamps.
    #[must_use]
    pub fn new(cfg: &ObsConfig, hello_recv_us: u64, assign_send_us: u64) -> Self {
        ObsSpec {
            ring_capacity: cfg.ring_capacity,
            lock_wait_threshold_ns: cfg.lock_wait_threshold_ns,
            event_filter_bits: cfg.event_filter.bits(),
            sample_every: cfg.sample_every,
            hello_recv_us,
            assign_send_us,
            stream_interval_ms: 0,
        }
    }

    /// Asks the worker to stream heartbeats and interval deltas every
    /// `interval_ms` milliseconds during the run.
    #[must_use]
    pub fn with_stream_interval_ms(mut self, interval_ms: u64) -> Self {
        self.stream_interval_ms = interval_ms;
        self
    }

    /// The worker-side recorder configuration this spec describes.
    #[must_use]
    pub fn config(&self) -> ObsConfig {
        ObsConfig {
            ring_capacity: self.ring_capacity,
            lock_wait_threshold_ns: self.lock_wait_threshold_ns,
            event_filter: EventFilter::from_bits(self.event_filter_bits),
            sample_every: self.sample_every,
        }
    }

    fn to_json(&self) -> Json {
        let mut obs = Json::obj();
        obs.push("ring_capacity", self.ring_capacity)
            .push("lock_wait_threshold_ns", self.lock_wait_threshold_ns)
            .push("event_filter_bits", u64::from(self.event_filter_bits))
            .push("sample_every", u64::from(self.sample_every))
            .push("hello_recv_us", self.hello_recv_us)
            .push("assign_send_us", self.assign_send_us)
            .push("stream_interval_ms", self.stream_interval_ms);
        obs
    }

    fn from_json(doc: &Json) -> Result<Self, String> {
        Ok(ObsSpec {
            ring_capacity: req_usize(doc, "ring_capacity")?,
            lock_wait_threshold_ns: req_usize(doc, "lock_wait_threshold_ns")? as u64,
            event_filter_bits: u16::try_from(req_usize(doc, "event_filter_bits")?)
                .map_err(|_| "event_filter_bits out of u16 range".to_string())?,
            sample_every: req_usize(doc, "sample_every")? as u32,
            hello_recv_us: req_usize(doc, "hello_recv_us")? as u64,
            assign_send_us: req_usize(doc, "assign_send_us")? as u64,
            // Absent in documents written before live streaming existed:
            // parse tolerantly to "no streaming" instead of rejecting.
            stream_interval_ms: match doc.get("stream_interval_ms") {
                Some(v) => req_usize(doc, "stream_interval_ms").map_err(|_| {
                    format!("field \"stream_interval_ms\" must be a non-negative integer, got {v:?}")
                })? as u64,
                None => 0,
            },
        })
    }
}

/// One read edge of the protocol: `reader` pulls `bytes` from the
/// location owned by `src`, once per iteration of the enclosing phase.
#[derive(Debug, Clone, PartialEq)]
pub struct ReadEdge {
    /// Global index of the reading task.
    pub reader: usize,
    /// Global index of the task owning the location read.
    pub src: usize,
    /// Bytes transferred per iteration.
    pub bytes: f64,
}

/// One phase of the read schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct PhasePlan {
    /// Iterations of this phase.
    pub iterations: usize,
    /// Every read performed per iteration, filtered to readers hosted on
    /// the receiving worker.
    pub reads: Vec<ReadEdge>,
}

/// The complete per-worker run description.
#[derive(Debug, Clone, PartialEq)]
pub struct Assignment {
    /// This worker's node index.
    pub node: usize,
    /// Total number of nodes in the run.
    pub n_nodes: usize,
    /// Total number of tasks across all nodes.
    pub n_tasks: usize,
    /// Deadline applied to every blocking socket read, in milliseconds.
    pub io_timeout_ms: u64,
    /// Name of the per-node topology (for the worker's local session).
    pub topo_name: String,
    /// The per-node topology as `(object short name, count)` levels.
    pub levels: Vec<(String, usize)>,
    /// Rack index of each node (fabric lane classification).
    pub rack_of_node: Vec<usize>,
    /// Node hosting each task — the placement policy's sharding.
    pub node_of_task: Vec<usize>,
    /// Filesystem path of this worker's peer listener socket.
    pub listen: String,
    /// Peer listener paths, indexed by node.
    pub peer_listen: Vec<String>,
    /// The read schedule (filtered to this worker's tasks).
    pub phases: Vec<PhasePlan>,
    /// The observation request, when the run is observed.
    pub obs: Option<ObsSpec>,
    /// Whether the coordinator may interrupt this run for node-loss
    /// recovery: the worker then executes round-by-round, watching for
    /// `Quiesce` frames between rounds, and parks instead of failing when
    /// a peer read breaks.  `false` (the default, and what documents
    /// written before recovery existed parse to) keeps the original
    /// run-to-completion behaviour.
    pub recovery: bool,
}

impl Assignment {
    /// Global indices of the tasks this worker hosts.
    #[must_use]
    pub fn local_tasks(&self) -> Vec<usize> {
        (0..self.n_tasks).filter(|&t| self.node_of_task[t] == self.node).collect()
    }

    /// Serialises under the `orwl-proc-assign/v1` schema.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut doc = Json::obj();
        doc.push("schema", ASSIGN_SCHEMA);
        doc.push("node", self.node);
        doc.push("n_nodes", self.n_nodes);
        doc.push("n_tasks", self.n_tasks);
        doc.push("io_timeout_ms", self.io_timeout_ms);
        doc.push("topo_name", self.topo_name.as_str());
        doc.push(
            "levels",
            Json::Arr(
                self.levels
                    .iter()
                    .map(|(name, count)| Json::Arr(vec![Json::Str(name.clone()), Json::from(*count)]))
                    .collect(),
            ),
        );
        doc.push("rack_of_node", usize_arr(&self.rack_of_node));
        doc.push("node_of_task", usize_arr(&self.node_of_task));
        doc.push("listen", self.listen.as_str());
        doc.push("peer_listen", Json::Arr(self.peer_listen.iter().map(|p| Json::Str(p.clone())).collect()));
        doc.push("phases", phases_json(&self.phases));
        if let Some(obs) = &self.obs {
            doc.push("obs", obs.to_json());
        }
        doc.push("recovery", self.recovery);
        doc
    }

    /// Parses and validates an assignment document.
    pub fn from_json(doc: &Json) -> Result<Self, String> {
        let schema = req_str(doc, "schema")?;
        if schema != ASSIGN_SCHEMA {
            return Err(format!("schema is {schema:?}, expected {ASSIGN_SCHEMA:?}"));
        }
        let assignment = Assignment {
            node: req_usize(doc, "node")?,
            n_nodes: req_usize(doc, "n_nodes")?,
            n_tasks: req_usize(doc, "n_tasks")?,
            io_timeout_ms: req_usize(doc, "io_timeout_ms")? as u64,
            topo_name: req_str(doc, "topo_name")?.to_string(),
            levels: req_arr(doc, "levels")?
                .iter()
                .map(|level| {
                    let pair = level.as_arr().ok_or("levels entries must be [name, count] pairs")?;
                    match pair {
                        [name, count] => Ok((
                            name.as_str().ok_or("level name must be a string")?.to_string(),
                            count.as_f64().ok_or("level count must be a number")? as usize,
                        )),
                        _ => Err("levels entries must be [name, count] pairs".to_string()),
                    }
                })
                .collect::<Result<_, String>>()?,
            rack_of_node: usize_vec(doc, "rack_of_node")?,
            node_of_task: usize_vec(doc, "node_of_task")?,
            listen: req_str(doc, "listen")?.to_string(),
            peer_listen: req_arr(doc, "peer_listen")?
                .iter()
                .map(|p| {
                    p.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| "peer_listen entries must be strings".to_string())
                })
                .collect::<Result<_, String>>()?,
            phases: phases_from_json(doc)?,
            obs: match doc.get("obs") {
                Some(obs) => Some(ObsSpec::from_json(obs).map_err(|e| format!("obs: {e}"))?),
                None => None,
            },
            // Absent in documents written before recovery existed: parse
            // tolerantly to "not interruptible" instead of rejecting.
            recovery: match doc.get("recovery") {
                Some(Json::Bool(b)) => *b,
                Some(v) => return Err(format!("field \"recovery\" must be a boolean, got {v:?}")),
                None => false,
            },
        };
        assignment.validate()?;
        Ok(assignment)
    }

    /// Structural consistency checks beyond field presence.
    pub fn validate(&self) -> Result<(), String> {
        if self.node >= self.n_nodes {
            return Err(format!("node {} out of range for {} nodes", self.node, self.n_nodes));
        }
        if self.rack_of_node.len() != self.n_nodes {
            return Err(format!(
                "rack_of_node has {} entries for {} nodes",
                self.rack_of_node.len(),
                self.n_nodes
            ));
        }
        if self.node_of_task.len() != self.n_tasks {
            return Err(format!(
                "node_of_task has {} entries for {} tasks",
                self.node_of_task.len(),
                self.n_tasks
            ));
        }
        if self.peer_listen.len() != self.n_nodes {
            return Err(format!(
                "peer_listen has {} entries for {} nodes",
                self.peer_listen.len(),
                self.n_nodes
            ));
        }
        if let Some(&bad) = self.node_of_task.iter().find(|&&n| n >= self.n_nodes) {
            return Err(format!("node_of_task references node {bad} of {}", self.n_nodes));
        }
        for (k, phase) in self.phases.iter().enumerate() {
            for r in &phase.reads {
                if r.reader >= self.n_tasks || r.src >= self.n_tasks {
                    return Err(format!(
                        "phase {k}: read edge ({}, {}) out of range for {} tasks",
                        r.reader, r.src, self.n_tasks
                    ));
                }
                if self.node_of_task[r.reader] != self.node {
                    return Err(format!(
                        "phase {k}: read edge for task {} is not local to node {}",
                        r.reader, self.node
                    ));
                }
                if !r.bytes.is_finite() || r.bytes < 0.0 {
                    return Err(format!("phase {k}: read bytes {} are not a valid size", r.bytes));
                }
            }
        }
        Ok(())
    }
}

/// The per-survivor recovery document a coordinator ships after a node
/// loss is confirmed: the post-loss task routing, the tasks this worker
/// adopts from the dead node, and the remaining read schedule for the
/// adopted tasks.  Travels as the JSON payload of
/// [`Message::ReAssignment`](crate::wire::Message::ReAssignment) under
/// the versioned `orwl-proc-reassign/v1` schema.
#[derive(Debug, Clone, PartialEq)]
pub struct ReAssignment {
    /// The receiving worker's node index.
    pub node: usize,
    /// The recovery round this document answers (matches the `Quiesce`
    /// frame that opened it).
    pub round: u32,
    /// The node whose loss triggered this re-shard.
    pub dead: usize,
    /// The complete post-loss routing: node hosting each task.
    pub node_of_task: Vec<usize>,
    /// Global indices of the tasks this worker adopts from the dead node.
    pub adopted: Vec<usize>,
    /// The remaining read schedule for the adopted tasks only (survivor
    /// tasks keep the schedules they already hold).
    pub phases: Vec<PhasePlan>,
}

impl ReAssignment {
    /// Serialises under the `orwl-proc-reassign/v1` schema.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut doc = Json::obj();
        doc.push("schema", REASSIGN_SCHEMA);
        doc.push("node", self.node);
        doc.push("round", u64::from(self.round));
        doc.push("dead", self.dead);
        doc.push("node_of_task", usize_arr(&self.node_of_task));
        doc.push("adopted", usize_arr(&self.adopted));
        doc.push("phases", phases_json(&self.phases));
        doc
    }

    /// Parses and validates a re-assignment document.
    pub fn from_json(doc: &Json) -> Result<Self, String> {
        let schema = req_str(doc, "schema")?;
        if schema != REASSIGN_SCHEMA {
            return Err(format!("schema is {schema:?}, expected {REASSIGN_SCHEMA:?}"));
        }
        let reassignment = ReAssignment {
            node: req_usize(doc, "node")?,
            round: req_usize(doc, "round")? as u32,
            dead: req_usize(doc, "dead")?,
            node_of_task: usize_vec(doc, "node_of_task")?,
            adopted: usize_vec(doc, "adopted")?,
            phases: phases_from_json(doc)?,
        };
        reassignment.validate()?;
        Ok(reassignment)
    }

    /// Structural consistency checks beyond field presence.
    pub fn validate(&self) -> Result<(), String> {
        let n_tasks = self.node_of_task.len();
        if self.node_of_task.contains(&self.dead) {
            return Err(format!("node_of_task still routes tasks to dead node {}", self.dead));
        }
        for &t in &self.adopted {
            if t >= n_tasks {
                return Err(format!("adopted task {t} out of range for {n_tasks} tasks"));
            }
            if self.node_of_task[t] != self.node {
                return Err(format!(
                    "adopted task {t} is routed to node {}, not the receiving node {}",
                    self.node_of_task[t], self.node
                ));
            }
        }
        for (k, phase) in self.phases.iter().enumerate() {
            for r in &phase.reads {
                if r.reader >= n_tasks || r.src >= n_tasks {
                    return Err(format!(
                        "phase {k}: read edge ({}, {}) out of range for {n_tasks} tasks",
                        r.reader, r.src
                    ));
                }
                if !self.adopted.contains(&r.reader) {
                    return Err(format!("phase {k}: read edge for task {} is not adopted", r.reader));
                }
                if !r.bytes.is_finite() || r.bytes < 0.0 {
                    return Err(format!("phase {k}: read bytes {} are not a valid size", r.bytes));
                }
            }
        }
        Ok(())
    }
}

fn phases_json(phases: &[PhasePlan]) -> Json {
    Json::Arr(
        phases
            .iter()
            .map(|phase| {
                let mut p = Json::obj();
                p.push("iterations", phase.iterations);
                p.push(
                    "reads",
                    Json::Arr(
                        phase
                            .reads
                            .iter()
                            .map(|r| {
                                Json::Arr(vec![Json::from(r.reader), Json::from(r.src), Json::from(r.bytes)])
                            })
                            .collect(),
                    ),
                );
                p
            })
            .collect(),
    )
}

fn phases_from_json(doc: &Json) -> Result<Vec<PhasePlan>, String> {
    req_arr(doc, "phases")?
        .iter()
        .enumerate()
        .map(|(k, phase)| {
            Ok(PhasePlan {
                iterations: req_usize(phase, "iterations").map_err(|e| format!("phase {k}: {e}"))?,
                reads: req_arr(phase, "reads")
                    .map_err(|e| format!("phase {k}: {e}"))?
                    .iter()
                    .map(|r| {
                        let triple = r.as_arr().ok_or("reads entries must be [reader, src, bytes]")?;
                        match triple {
                            [reader, src, bytes] => Ok(ReadEdge {
                                reader: reader.as_f64().ok_or("reader must be a number")? as usize,
                                src: src.as_f64().ok_or("src must be a number")? as usize,
                                bytes: bytes.as_f64().ok_or("bytes must be a number")?,
                            }),
                            _ => Err("reads entries must be [reader, src, bytes]".to_string()),
                        }
                    })
                    .collect::<Result<_, String>>()?,
            })
        })
        .collect()
}

fn usize_arr(values: &[usize]) -> Json {
    Json::Arr(values.iter().map(|&v| Json::from(v)).collect())
}

fn req<'a>(doc: &'a Json, key: &str) -> Result<&'a Json, String> {
    doc.get(key).ok_or_else(|| format!("missing field {key:?}"))
}

fn req_str<'a>(doc: &'a Json, key: &str) -> Result<&'a str, String> {
    req(doc, key)?.as_str().ok_or_else(|| format!("field {key:?} must be a string"))
}

fn req_usize(doc: &Json, key: &str) -> Result<usize, String> {
    let x = req(doc, key)?.as_f64().ok_or_else(|| format!("field {key:?} must be a number"))?;
    if x < 0.0 || x.fract() != 0.0 {
        return Err(format!("field {key:?} must be a non-negative integer, got {x}"));
    }
    Ok(x as usize)
}

fn req_arr<'a>(doc: &'a Json, key: &str) -> Result<&'a [Json], String> {
    req(doc, key)?.as_arr().ok_or_else(|| format!("field {key:?} must be an array"))
}

fn usize_vec(doc: &Json, key: &str) -> Result<Vec<usize>, String> {
    req_arr(doc, key)?
        .iter()
        .map(|v| {
            v.as_f64()
                .filter(|x| *x >= 0.0 && x.fract() == 0.0)
                .map(|x| x as usize)
                .ok_or_else(|| format!("field {key:?} must hold non-negative integers"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Assignment {
        Assignment {
            node: 1,
            n_nodes: 2,
            n_tasks: 4,
            io_timeout_ms: 30_000,
            topo_name: "cluster2016-node".to_string(),
            levels: vec![("machine".to_string(), 1), ("package".to_string(), 2), ("core".to_string(), 8)],
            rack_of_node: vec![0, 0],
            node_of_task: vec![0, 0, 1, 1],
            listen: "/tmp/w1.sock".to_string(),
            peer_listen: vec!["/tmp/w0.sock".to_string(), "/tmp/w1.sock".to_string()],
            phases: vec![PhasePlan {
                iterations: 3,
                reads: vec![
                    ReadEdge { reader: 2, src: 1, bytes: 4096.0 },
                    ReadEdge { reader: 3, src: 2, bytes: 128.5 },
                ],
            }],
            obs: None,
            recovery: false,
        }
    }

    fn sample_reassign() -> ReAssignment {
        ReAssignment {
            node: 0,
            round: 1,
            dead: 1,
            node_of_task: vec![0, 0, 0, 0],
            adopted: vec![2, 3],
            phases: vec![PhasePlan {
                iterations: 2,
                reads: vec![ReadEdge { reader: 2, src: 1, bytes: 4096.0 }],
            }],
        }
    }

    #[test]
    fn json_roundtrip_is_lossless() {
        let a = sample();
        let text = a.to_json().pretty();
        let parsed = Assignment::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(parsed, a);
        assert_eq!(parsed.local_tasks(), vec![2, 3]);
    }

    #[test]
    fn obs_spec_roundtrips_and_stays_optional() {
        // A document without "obs" (every v1 assignment) parses to None —
        // already covered by json_roundtrip_is_lossless; here the observed
        // variant round-trips including the handshake timestamps.
        let mut a = sample();
        a.obs = Some(ObsSpec::new(&ObsConfig::default(), 1234, 5678));
        let parsed = Assignment::from_json(&Json::parse(&a.to_json().pretty()).unwrap()).unwrap();
        assert_eq!(parsed, a);
        let spec = parsed.obs.unwrap();
        assert_eq!(spec.hello_recv_us, 1234);
        assert_eq!(spec.assign_send_us, 5678);
        // The round-tripped config matches what the coordinator asked for.
        let cfg = spec.config();
        assert_eq!(cfg.ring_capacity, ObsConfig::default().ring_capacity);
        assert_eq!(cfg.event_filter.bits(), EventFilter::all().bits());

        // The streaming interval rides along when requested...
        let mut live = sample();
        live.obs = Some(ObsSpec::new(&ObsConfig::default(), 1, 2).with_stream_interval_ms(250));
        let parsed = Assignment::from_json(&Json::parse(&live.to_json().pretty()).unwrap()).unwrap();
        assert_eq!(parsed.obs.unwrap().stream_interval_ms, 250);

        // ...and a document written before live streaming existed (no
        // "stream_interval_ms" key) still parses, to "no streaming".
        let mut old = a.to_json();
        if let Json::Obj(pairs) = &mut old {
            for (k, v) in pairs.iter_mut() {
                if k == "obs" {
                    if let Json::Obj(obs_pairs) = v {
                        obs_pairs.retain(|(key, _)| key != "stream_interval_ms");
                    }
                }
            }
        }
        let parsed = Assignment::from_json(&old).unwrap();
        assert_eq!(parsed.obs.unwrap().stream_interval_ms, 0);

        // A malformed obs object is a loud error, not a silent None.
        let mut bad = a.to_json();
        if let Json::Obj(pairs) = &mut bad {
            for (k, v) in pairs.iter_mut() {
                if k == "obs" {
                    *v = Json::obj();
                }
            }
        }
        assert!(Assignment::from_json(&bad).unwrap_err().contains("obs:"));
    }

    #[test]
    fn schema_and_structure_are_enforced() {
        let mut wrong_schema = sample().to_json();
        if let Json::Obj(pairs) = &mut wrong_schema {
            pairs[0].1 = Json::Str("orwl-proc-assign/v999".to_string());
        }
        assert!(Assignment::from_json(&wrong_schema).unwrap_err().contains("schema"));

        let mut bad = sample();
        bad.node_of_task = vec![0, 0, 9, 1];
        assert!(bad.validate().unwrap_err().contains("references node 9"));

        let mut foreign = sample();
        foreign.phases[0].reads[0].reader = 0; // task 0 lives on node 0
        assert!(foreign.validate().unwrap_err().contains("not local"));

        let mut short = sample();
        short.peer_listen.pop();
        assert!(short.validate().unwrap_err().contains("peer_listen"));
    }

    #[test]
    fn recovery_flag_roundtrips_and_stays_optional() {
        let mut a = sample();
        a.recovery = true;
        let parsed = Assignment::from_json(&Json::parse(&a.to_json().pretty()).unwrap()).unwrap();
        assert!(parsed.recovery);

        // A document written before recovery existed (no "recovery" key)
        // parses to run-to-completion.
        let mut old = sample().to_json();
        if let Json::Obj(pairs) = &mut old {
            pairs.retain(|(k, _)| k != "recovery");
        }
        let parsed = Assignment::from_json(&old).unwrap();
        assert!(!parsed.recovery);

        // A malformed flag is a loud error, not a silent default.
        let mut bad = sample().to_json();
        if let Json::Obj(pairs) = &mut bad {
            for (k, v) in pairs.iter_mut() {
                if k == "recovery" {
                    *v = Json::Str("yes".to_string());
                }
            }
        }
        assert!(Assignment::from_json(&bad).unwrap_err().contains("recovery"));
    }

    #[test]
    fn reassignment_roundtrip_is_lossless() {
        let r = sample_reassign();
        let parsed = ReAssignment::from_json(&Json::parse(&r.to_json().pretty()).unwrap()).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn reassignment_structure_is_enforced() {
        let mut wrong_schema = sample_reassign().to_json();
        if let Json::Obj(pairs) = &mut wrong_schema {
            pairs[0].1 = Json::Str("orwl-proc-reassign/v999".to_string());
        }
        assert!(ReAssignment::from_json(&wrong_schema).unwrap_err().contains("schema"));

        // The post-loss routing must not route anything to the dead node.
        let mut stale = sample_reassign();
        stale.node_of_task[3] = 1;
        assert!(stale.validate().unwrap_err().contains("dead node"));

        // Adopted tasks must be routed to the receiving node.
        let mut foreign = sample_reassign();
        foreign.node_of_task = vec![0, 0, 2, 0];
        assert!(foreign.validate().unwrap_err().contains("not the receiving node"));

        // Read edges must belong to adopted tasks (survivor tasks keep
        // their existing schedules).
        let mut extra = sample_reassign();
        extra.phases[0].reads.push(ReadEdge { reader: 0, src: 1, bytes: 8.0 });
        assert!(extra.validate().unwrap_err().contains("not adopted"));
    }
}
