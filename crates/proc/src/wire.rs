//! The versioned wire codec of the ORWL lock protocol.
//!
//! Every message travels as one frame:
//!
//! ```text
//! | magic "ORWL" (4) | version u16 LE (2) | kind u8 (1) | len u32 LE (4) | payload (len) |
//! ```
//!
//! The framing is transport-agnostic — the backend speaks it over
//! Unix-domain sockets today, and the same length-prefixed frames work
//! over TCP for inter-host deployment later.  Payload fields are
//! little-endian and fixed-layout per kind; variable-length tails
//! (assignment/metrics JSON, grant data) occupy the remainder of the
//! frame, so no field needs its own length prefix.
//!
//! The lock protocol proper is three kinds: [`Message::LockRequest`]
//! enters the owner's FIFO for a location, [`Message::LockGrant`] answers
//! once the FIFO grants the section *and carries the location buffer as
//! its payload*, and [`Message::Release`] closes the section.  The
//! remaining kinds run the coordinator↔worker lifecycle (hello,
//! assignment, ready/start barrier, metrics/done, shutdown) and error
//! reporting.
//!
//! [`FrameReader`] decodes incrementally: push whatever bytes arrived,
//! take out whole messages — partial headers, split payloads and multiple
//! frames per read all work, which the proptests pin.

use std::fmt;

/// Frame magic: `"ORWL"`.
pub const MAGIC: [u8; 4] = *b"ORWL";

/// Protocol version carried in every frame header.
///
/// v2 added [`Message::TelemetryUpload`]; v3 added the live-streaming
/// kinds [`Message::Heartbeat`] and [`Message::TelemetryDelta`]; v4
/// added the recovery kinds [`Message::Quiesce`],
/// [`Message::QuiesceAck`], [`Message::ReAssignment`] and
/// [`Message::Resume`].  Every older frame is still decoded
/// byte-for-byte (released kinds' layouts are frozen), so a v4 peer
/// accepts any version in `MIN_VERSION..=VERSION`.
pub const VERSION: u16 = 4;

/// Oldest protocol version this codec still decodes.
pub const MIN_VERSION: u16 = 1;

/// Frame header length in bytes (magic + version + kind + payload len).
pub const HEADER_LEN: usize = 11;

/// Hard cap on a location buffer carried by a [`Message::LockGrant`].
pub const MAX_DATA: usize = 1 << 20;

/// Hard cap on most frame payloads: the largest grant plus its fixed
/// fields, with headroom for the JSON-bearing kinds.
pub const MAX_PAYLOAD: usize = MAX_DATA + 64;

/// Hard cap on a telemetry snapshot carried by a
/// [`Message::TelemetryUpload`] — event rings are bigger than any single
/// location buffer, so this kind gets its own budget.
pub const MAX_SNAPSHOT: usize = 8 << 20;

/// Hard cap on an encoded interval delta carried by a
/// [`Message::TelemetryDelta`].  One interval drains at most one ring's
/// worth of events, so deltas are far smaller than final snapshots, but
/// the cap stays generous: a blown budget mid-run would kill the stream.
pub const MAX_DELTA: usize = 4 << 20;

/// Access mode of a remote lock request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireAccess {
    /// Shared read section.
    Read,
    /// Exclusive write section.
    Write,
}

impl WireAccess {
    fn code(self) -> u8 {
        match self {
            WireAccess::Read => 0,
            WireAccess::Write => 1,
        }
    }

    fn from_code(code: u8) -> Result<Self, WireError> {
        match code {
            0 => Ok(WireAccess::Read),
            1 => Ok(WireAccess::Write),
            other => Err(WireError::BadField { kind: KIND_LOCK_REQUEST, what: "access mode", got: other }),
        }
    }
}

const KIND_HELLO: u8 = 0;
const KIND_ASSIGNMENT: u8 = 1;
const KIND_READY: u8 = 2;
const KIND_START: u8 = 3;
const KIND_LOCK_REQUEST: u8 = 4;
const KIND_LOCK_GRANT: u8 = 5;
const KIND_RELEASE: u8 = 6;
const KIND_DONE: u8 = 7;
const KIND_METRICS: u8 = 8;
const KIND_ERROR: u8 = 9;
const KIND_SHUTDOWN: u8 = 10;
const KIND_TELEMETRY_UPLOAD: u8 = 11; // v2
const KIND_HEARTBEAT: u8 = 12; // v3
const KIND_TELEMETRY_DELTA: u8 = 13; // v3
const KIND_QUIESCE: u8 = 14; // v4
const KIND_QUIESCE_ACK: u8 = 15; // v4
const KIND_REASSIGNMENT: u8 = 16; // v4
const KIND_RESUME: u8 = 17; // v4

/// One protocol message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// Worker → coordinator: first message on the control connection.
    Hello {
        /// The worker's node index.
        node: u32,
    },
    /// Coordinator → worker: the run assignment (an
    /// `orwl-proc-assign/v1` JSON document, see `assignment`).
    Assignment {
        /// The assignment document text.
        json: String,
    },
    /// Worker → coordinator: the worker's peer listener is bound.
    Ready {
        /// The worker's node index.
        node: u32,
    },
    /// Coordinator → worker: every listener is up; start executing.
    Start,
    /// Peer → owner: enter the FIFO of `location` (the location owned by
    /// the task with that global index).
    LockRequest {
        /// Requester-chosen id echoed by the grant.
        seq: u64,
        /// Global task index owning the location.
        location: u64,
        /// Requested section mode.
        access: WireAccess,
        /// Bytes of the location buffer the requester wants carried back.
        bytes: u64,
    },
    /// Owner → peer: the FIFO granted the section; `data` is the location
    /// buffer (truncated to the requested size, capped at [`MAX_DATA`]).
    LockGrant {
        /// Echo of the request's `seq`.
        seq: u64,
        /// Echo of the request's `location`.
        location: u64,
        /// The location buffer.
        data: Vec<u8>,
    },
    /// Peer → owner: close the granted section.
    Release {
        /// Echo of the grant's `seq`.
        seq: u64,
        /// Echo of the grant's `location`.
        location: u64,
    },
    /// Worker → coordinator: all local tasks finished.
    Done {
        /// The worker's node index.
        node: u32,
    },
    /// Worker → coordinator: transport and lock-wait accounting (an
    /// `orwl-proc-metrics/v1` JSON document), sent just before `Done`.
    Metrics {
        /// The worker's node index.
        node: u32,
        /// The metrics document text.
        json: String,
    },
    /// Either direction: a fatal failure, with a human-readable reason.
    Error {
        /// The failure description.
        message: String,
    },
    /// Coordinator → worker: every worker is done; exit now.
    Shutdown,
    /// Worker → coordinator (v2): the worker's drained telemetry, sent
    /// after `Shutdown` (once every node's sections are served) when the
    /// assignment asked for observation.  The snapshot bytes are the
    /// `orwl-obs` binary
    /// [`TelemetrySnapshot`](orwl_obs::TelemetrySnapshot) encoding —
    /// opaque at this layer.
    TelemetryUpload {
        /// The worker's node index.
        node: u32,
        /// The encoded snapshot.
        snapshot: Vec<u8>,
    },
    /// Worker → coordinator (v3): a liveness beacon sent once per
    /// streaming interval while the run executes.  The coordinator's
    /// monitor flags a node as a straggler when beats stop arriving.
    Heartbeat {
        /// The worker's node index.
        node: u32,
        /// Monotonic beat counter, starting at 0 on `Start`.
        seq: u64,
    },
    /// Worker → coordinator (v3): one interval's drained telemetry — the
    /// `orwl-obs` binary
    /// [`TelemetryDelta`](orwl_obs::TelemetryDelta) encoding, opaque at
    /// this layer.  Sent alongside heartbeats while the run executes;
    /// the final post-run [`Message::TelemetryUpload`] subsumes the
    /// metric state, and delta events are deduplicated by sequence.
    TelemetryDelta {
        /// The worker's node index.
        node: u32,
        /// The encoded interval delta.
        delta: Vec<u8>,
    },
    /// Coordinator → worker (v4): a node died; park at the next
    /// iteration boundary and acknowledge.  `round` numbers the recovery
    /// episode so late acks can never be confused across episodes.
    Quiesce {
        /// Recovery episode counter, starting at 1 on the first loss.
        round: u32,
    },
    /// Worker → coordinator (v4): this worker is parked and will accept
    /// a re-assignment for the echoed `round`.
    QuiesceAck {
        /// The worker's node index.
        node: u32,
        /// Echo of the quiesce's `round`.
        round: u32,
    },
    /// Coordinator → worker (v4): the post-loss work distribution (an
    /// `orwl-proc-reassign/v1` JSON document, see `assignment`).
    ReAssignment {
        /// The re-assignment document text.
        json: String,
    },
    /// Coordinator → worker (v4): every survivor re-acknowledged ready;
    /// resume executing under the new distribution.
    Resume {
        /// Echo of the quiesce's `round`.
        round: u32,
    },
}

impl Message {
    fn kind(&self) -> u8 {
        match self {
            Message::Hello { .. } => KIND_HELLO,
            Message::Assignment { .. } => KIND_ASSIGNMENT,
            Message::Ready { .. } => KIND_READY,
            Message::Start => KIND_START,
            Message::LockRequest { .. } => KIND_LOCK_REQUEST,
            Message::LockGrant { .. } => KIND_LOCK_GRANT,
            Message::Release { .. } => KIND_RELEASE,
            Message::Done { .. } => KIND_DONE,
            Message::Metrics { .. } => KIND_METRICS,
            Message::Error { .. } => KIND_ERROR,
            Message::Shutdown => KIND_SHUTDOWN,
            Message::TelemetryUpload { .. } => KIND_TELEMETRY_UPLOAD,
            Message::Heartbeat { .. } => KIND_HEARTBEAT,
            Message::TelemetryDelta { .. } => KIND_TELEMETRY_DELTA,
            Message::Quiesce { .. } => KIND_QUIESCE,
            Message::QuiesceAck { .. } => KIND_QUIESCE_ACK,
            Message::ReAssignment { .. } => KIND_REASSIGNMENT,
            Message::Resume { .. } => KIND_RESUME,
        }
    }

    /// Stable name of the message kind (diagnostics).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Message::Hello { .. } => "hello",
            Message::Assignment { .. } => "assignment",
            Message::Ready { .. } => "ready",
            Message::Start => "start",
            Message::LockRequest { .. } => "lock_request",
            Message::LockGrant { .. } => "lock_grant",
            Message::Release { .. } => "release",
            Message::Done { .. } => "done",
            Message::Metrics { .. } => "metrics",
            Message::Error { .. } => "error",
            Message::Shutdown => "shutdown",
            Message::TelemetryUpload { .. } => "telemetry_upload",
            Message::Heartbeat { .. } => "heartbeat",
            Message::TelemetryDelta { .. } => "telemetry_delta",
            Message::Quiesce { .. } => "quiesce",
            Message::QuiesceAck { .. } => "quiesce_ack",
            Message::ReAssignment { .. } => "reassignment",
            Message::Resume { .. } => "resume",
        }
    }

    /// Payload budget of one kind; telemetry snapshots and interval
    /// deltas get their own.
    fn max_payload_of(kind: u8) -> usize {
        match kind {
            KIND_TELEMETRY_UPLOAD => MAX_SNAPSHOT + 16,
            KIND_TELEMETRY_DELTA => MAX_DELTA + 16,
            _ => MAX_PAYLOAD,
        }
    }

    /// Encodes the message as one complete frame.
    ///
    /// # Panics
    /// If the payload would exceed its kind's cap ([`MAX_PAYLOAD`], or
    /// [`MAX_SNAPSHOT`] + fixed fields for a telemetry upload); callers
    /// cap grant data at [`MAX_DATA`] and snapshots at [`MAX_SNAPSHOT`].
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut payload = Vec::new();
        match self {
            Message::Hello { node } | Message::Ready { node } | Message::Done { node } => {
                payload.extend_from_slice(&node.to_le_bytes());
            }
            Message::Assignment { json } | Message::Error { message: json } => {
                payload.extend_from_slice(json.as_bytes());
            }
            Message::Start | Message::Shutdown => {}
            Message::LockRequest { seq, location, access, bytes } => {
                payload.extend_from_slice(&seq.to_le_bytes());
                payload.extend_from_slice(&location.to_le_bytes());
                payload.push(access.code());
                payload.extend_from_slice(&bytes.to_le_bytes());
            }
            Message::LockGrant { seq, location, data } => {
                assert!(data.len() <= MAX_DATA, "grant data over MAX_DATA");
                payload.extend_from_slice(&seq.to_le_bytes());
                payload.extend_from_slice(&location.to_le_bytes());
                payload.extend_from_slice(data);
            }
            Message::Release { seq, location } => {
                payload.extend_from_slice(&seq.to_le_bytes());
                payload.extend_from_slice(&location.to_le_bytes());
            }
            Message::Metrics { node, json } => {
                payload.extend_from_slice(&node.to_le_bytes());
                payload.extend_from_slice(json.as_bytes());
            }
            Message::TelemetryUpload { node, snapshot } => {
                assert!(snapshot.len() <= MAX_SNAPSHOT, "snapshot over MAX_SNAPSHOT");
                payload.extend_from_slice(&node.to_le_bytes());
                payload.extend_from_slice(snapshot);
            }
            Message::Heartbeat { node, seq } => {
                payload.extend_from_slice(&node.to_le_bytes());
                payload.extend_from_slice(&seq.to_le_bytes());
            }
            Message::TelemetryDelta { node, delta } => {
                assert!(delta.len() <= MAX_DELTA, "delta over MAX_DELTA");
                payload.extend_from_slice(&node.to_le_bytes());
                payload.extend_from_slice(delta);
            }
            Message::Quiesce { round } | Message::Resume { round } => {
                payload.extend_from_slice(&round.to_le_bytes());
            }
            Message::QuiesceAck { node, round } => {
                payload.extend_from_slice(&node.to_le_bytes());
                payload.extend_from_slice(&round.to_le_bytes());
            }
            Message::ReAssignment { json } => {
                payload.extend_from_slice(json.as_bytes());
            }
        }
        assert!(payload.len() <= Message::max_payload_of(self.kind()), "payload over its kind's cap");
        let mut frame = Vec::with_capacity(HEADER_LEN + payload.len());
        frame.extend_from_slice(&MAGIC);
        frame.extend_from_slice(&VERSION.to_le_bytes());
        frame.push(self.kind());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&payload);
        frame
    }
}

/// A malformed frame or payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The frame does not start with `"ORWL"`.
    BadMagic {
        /// The four bytes found instead.
        got: [u8; 4],
    },
    /// The frame carries an unsupported protocol version.
    BadVersion {
        /// The version found.
        got: u16,
    },
    /// The frame's kind byte names no message.
    UnknownKind(u8),
    /// The declared payload length exceeds [`MAX_PAYLOAD`].
    PayloadTooLarge {
        /// The declared length.
        len: u32,
    },
    /// The payload is shorter than the kind's fixed fields.
    Truncated {
        /// The kind whose payload was short.
        kind: u8,
    },
    /// A JSON-bearing payload is not valid UTF-8.
    BadUtf8 {
        /// The kind whose payload was malformed.
        kind: u8,
    },
    /// A field value outside its domain.
    BadField {
        /// The kind carrying the field.
        kind: u8,
        /// Which field.
        what: &'static str,
        /// The raw value found.
        got: u8,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::BadMagic { got } => write!(f, "bad frame magic {got:?}"),
            WireError::BadVersion { got } => {
                write!(f, "unsupported protocol version {got} (speaking {VERSION})")
            }
            WireError::UnknownKind(kind) => write!(f, "unknown message kind {kind}"),
            WireError::PayloadTooLarge { len } => {
                write!(f, "payload of {len} bytes exceeds the {MAX_PAYLOAD}-byte cap")
            }
            WireError::Truncated { kind } => write!(f, "payload of kind {kind} is truncated"),
            WireError::BadUtf8 { kind } => write!(f, "payload of kind {kind} is not valid UTF-8"),
            WireError::BadField { kind, what, got } => {
                write!(f, "kind {kind}: bad {what} value {got}")
            }
        }
    }
}

impl std::error::Error for WireError {}

fn take_u32(payload: &[u8], at: usize, kind: u8) -> Result<u32, WireError> {
    payload
        .get(at..at + 4)
        .map(|b| u32::from_le_bytes(b.try_into().unwrap()))
        .ok_or(WireError::Truncated { kind })
}

fn take_u64(payload: &[u8], at: usize, kind: u8) -> Result<u64, WireError> {
    payload
        .get(at..at + 8)
        .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
        .ok_or(WireError::Truncated { kind })
}

fn take_string(payload: &[u8], at: usize, kind: u8) -> Result<String, WireError> {
    let tail = payload.get(at..).ok_or(WireError::Truncated { kind })?;
    String::from_utf8(tail.to_vec()).map_err(|_| WireError::BadUtf8 { kind })
}

fn decode_payload(version: u16, kind: u8, payload: &[u8]) -> Result<Message, WireError> {
    // Kinds introduced after v1 are unknown inside an older frame: a peer
    // must not emit them under a version that predates them, and decoding
    // them anyway would mask that bug.
    if kind >= KIND_TELEMETRY_UPLOAD && version < 2 {
        return Err(WireError::UnknownKind(kind));
    }
    if kind >= KIND_HEARTBEAT && version < 3 {
        return Err(WireError::UnknownKind(kind));
    }
    if kind >= KIND_QUIESCE && version < 4 {
        return Err(WireError::UnknownKind(kind));
    }
    Ok(match kind {
        KIND_HELLO => Message::Hello { node: take_u32(payload, 0, kind)? },
        KIND_ASSIGNMENT => Message::Assignment { json: take_string(payload, 0, kind)? },
        KIND_READY => Message::Ready { node: take_u32(payload, 0, kind)? },
        KIND_START => Message::Start,
        KIND_LOCK_REQUEST => {
            let access_code = *payload.get(16).ok_or(WireError::Truncated { kind })?;
            Message::LockRequest {
                seq: take_u64(payload, 0, kind)?,
                location: take_u64(payload, 8, kind)?,
                access: WireAccess::from_code(access_code)?,
                bytes: take_u64(payload, 17, kind)?,
            }
        }
        KIND_LOCK_GRANT => Message::LockGrant {
            seq: take_u64(payload, 0, kind)?,
            location: take_u64(payload, 8, kind)?,
            data: payload.get(16..).ok_or(WireError::Truncated { kind })?.to_vec(),
        },
        KIND_RELEASE => {
            Message::Release { seq: take_u64(payload, 0, kind)?, location: take_u64(payload, 8, kind)? }
        }
        KIND_DONE => Message::Done { node: take_u32(payload, 0, kind)? },
        KIND_METRICS => {
            Message::Metrics { node: take_u32(payload, 0, kind)?, json: take_string(payload, 4, kind)? }
        }
        KIND_ERROR => Message::Error { message: take_string(payload, 0, kind)? },
        KIND_SHUTDOWN => Message::Shutdown,
        KIND_TELEMETRY_UPLOAD => Message::TelemetryUpload {
            node: take_u32(payload, 0, kind)?,
            snapshot: payload.get(4..).ok_or(WireError::Truncated { kind })?.to_vec(),
        },
        KIND_HEARTBEAT => {
            Message::Heartbeat { node: take_u32(payload, 0, kind)?, seq: take_u64(payload, 4, kind)? }
        }
        KIND_TELEMETRY_DELTA => Message::TelemetryDelta {
            node: take_u32(payload, 0, kind)?,
            delta: payload.get(4..).ok_or(WireError::Truncated { kind })?.to_vec(),
        },
        KIND_QUIESCE => Message::Quiesce { round: take_u32(payload, 0, kind)? },
        KIND_QUIESCE_ACK => {
            Message::QuiesceAck { node: take_u32(payload, 0, kind)?, round: take_u32(payload, 4, kind)? }
        }
        KIND_REASSIGNMENT => Message::ReAssignment { json: take_string(payload, 0, kind)? },
        KIND_RESUME => Message::Resume { round: take_u32(payload, 0, kind)? },
        other => return Err(WireError::UnknownKind(other)),
    })
}

/// Incremental frame decoder: push arriving bytes, take whole messages.
///
/// Survives partial headers, split payloads and several frames per push —
/// whatever chunking the socket produces.  Accepts frame versions in
/// `MIN_VERSION..=max_version` (the codec's own [`VERSION`] by default);
/// anything outside that window is a typed [`WireError::BadVersion`], so
/// an old peer fed a newer frame fails fast instead of mis-parsing it.
#[derive(Debug)]
pub struct FrameReader {
    buf: Vec<u8>,
    max_version: u16,
}

impl Default for FrameReader {
    fn default() -> Self {
        FrameReader { buf: Vec::new(), max_version: VERSION }
    }
}

impl FrameReader {
    /// An empty reader speaking the current [`VERSION`].
    #[must_use]
    pub fn new() -> Self {
        FrameReader::default()
    }

    /// An empty reader that tops out at `max_version` — models (and
    /// tests) an older peer receiving newer frames.
    #[must_use]
    pub fn with_max_version(max_version: u16) -> Self {
        FrameReader { buf: Vec::new(), max_version }
    }

    /// Appends bytes read from the transport.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet decoded.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.buf.len()
    }

    /// Decodes the next complete message, if one is buffered.  A decode
    /// error is fatal for the stream: the reader makes no attempt to
    /// resynchronise.
    pub fn try_next(&mut self) -> Result<Option<Message>, WireError> {
        if self.buf.len() < HEADER_LEN {
            return Ok(None);
        }
        let magic: [u8; 4] = self.buf[0..4].try_into().unwrap();
        if magic != MAGIC {
            return Err(WireError::BadMagic { got: magic });
        }
        let version = u16::from_le_bytes(self.buf[4..6].try_into().unwrap());
        if !(MIN_VERSION..=self.max_version).contains(&version) {
            return Err(WireError::BadVersion { got: version });
        }
        let kind = self.buf[6];
        let len = u32::from_le_bytes(self.buf[7..11].try_into().unwrap());
        if len as usize > Message::max_payload_of(kind) {
            return Err(WireError::PayloadTooLarge { len });
        }
        let total = HEADER_LEN + len as usize;
        if self.buf.len() < total {
            return Ok(None);
        }
        let message = decode_payload(version, kind, &self.buf[HEADER_LEN..total])?;
        self.buf.drain(..total);
        Ok(Some(message))
    }
}

/// Decodes exactly one message from a complete frame.
pub fn decode_frame(frame: &[u8]) -> Result<Message, WireError> {
    let mut reader = FrameReader::new();
    reader.push(frame);
    match reader.try_next()? {
        Some(message) if reader.pending() == 0 => Ok(message),
        Some(_) => Err(WireError::Truncated { kind: frame.get(6).copied().unwrap_or(0) }),
        None => Err(WireError::Truncated { kind: frame.get(6).copied().unwrap_or(0) }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip(message: &Message) {
        let frame = message.encode();
        assert_eq!(&decode_frame(&frame).unwrap(), message, "frame {frame:?}");
    }

    #[test]
    fn every_kind_roundtrips() {
        for message in [
            Message::Hello { node: 0 },
            Message::Assignment { json: "{\"schema\":\"orwl-proc-assign/v1\"}".to_string() },
            Message::Ready { node: 7 },
            Message::Start,
            Message::LockRequest { seq: 1, location: 2, access: WireAccess::Read, bytes: 65536 },
            Message::LockRequest { seq: u64::MAX, location: 0, access: WireAccess::Write, bytes: 0 },
            Message::LockGrant { seq: 1, location: 2, data: vec![1, 2, 3] },
            Message::LockGrant { seq: 0, location: 0, data: Vec::new() },
            Message::Release { seq: 9, location: 4 },
            Message::Done { node: 3 },
            Message::Metrics { node: 3, json: "{\"node\":3}".to_string() },
            Message::Error { message: "worker 2 panicked".to_string() },
            Message::Shutdown,
            Message::TelemetryUpload { node: 1, snapshot: vec![0x4f, 0x53, 0x4e, 0x50] },
            Message::TelemetryUpload { node: 0, snapshot: Vec::new() },
            Message::Heartbeat { node: 2, seq: 0 },
            Message::Heartbeat { node: 0, seq: u64::MAX },
            Message::TelemetryDelta { node: 1, delta: vec![0x4f, 0x44, 0x4c, 0x54] },
            Message::TelemetryDelta { node: 3, delta: Vec::new() },
            Message::Quiesce { round: 1 },
            Message::Quiesce { round: u32::MAX },
            Message::QuiesceAck { node: 2, round: 1 },
            Message::ReAssignment { json: "{\"schema\":\"orwl-proc-reassign/v1\"}".to_string() },
            Message::Resume { round: 1 },
        ] {
            roundtrip(&message);
        }
    }

    /// The exact bytes of a telemetry-upload frame, pinned so the layout
    /// can never drift silently: magic, version LE, kind 11, payload
    /// length LE, node LE, snapshot bytes.
    #[test]
    fn telemetry_upload_frame_bytes_are_pinned() {
        let frame = Message::TelemetryUpload { node: 3, snapshot: vec![0xAA, 0xBB] }.encode();
        assert_eq!(
            frame,
            vec![
                b'O', b'R', b'W', b'L', // magic
                0x04, 0x00, // version 4
                0x0B, // kind 11
                0x06, 0x00, 0x00, 0x00, // payload length 6
                0x03, 0x00, 0x00, 0x00, // node 3
                0xAA, 0xBB, // snapshot
            ]
        );
    }

    /// The exact bytes of the v3 streaming frames, pinned the same way.
    #[test]
    fn v3_frame_bytes_are_pinned() {
        let beat = Message::Heartbeat { node: 2, seq: 7 }.encode();
        assert_eq!(
            beat,
            vec![
                b'O', b'R', b'W', b'L', // magic
                0x04, 0x00, // version 4
                0x0C, // kind 12
                0x0C, 0x00, 0x00, 0x00, // payload length 12
                0x02, 0x00, 0x00, 0x00, // node 2
                0x07, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // seq 7
            ]
        );

        let delta = Message::TelemetryDelta { node: 1, delta: vec![0xCC, 0xDD, 0xEE] }.encode();
        assert_eq!(
            delta,
            vec![
                b'O', b'R', b'W', b'L', // magic
                0x04, 0x00, // version 4
                0x0D, // kind 13
                0x07, 0x00, 0x00, 0x00, // payload length 7
                0x01, 0x00, 0x00, 0x00, // node 1
                0xCC, 0xDD, 0xEE, // delta
            ]
        );
    }

    /// The exact bytes of the v4 recovery frames, pinned the same way.
    #[test]
    fn v4_frame_bytes_are_pinned() {
        let quiesce = Message::Quiesce { round: 1 }.encode();
        assert_eq!(
            quiesce,
            vec![
                b'O', b'R', b'W', b'L', // magic
                0x04, 0x00, // version 4
                0x0E, // kind 14
                0x04, 0x00, 0x00, 0x00, // payload length 4
                0x01, 0x00, 0x00, 0x00, // round 1
            ]
        );

        let ack = Message::QuiesceAck { node: 3, round: 2 }.encode();
        assert_eq!(
            ack,
            vec![
                b'O', b'R', b'W', b'L', // magic
                0x04, 0x00, // version 4
                0x0F, // kind 15
                0x08, 0x00, 0x00, 0x00, // payload length 8
                0x03, 0x00, 0x00, 0x00, // node 3
                0x02, 0x00, 0x00, 0x00, // round 2
            ]
        );

        let resume = Message::Resume { round: 2 }.encode();
        assert_eq!(
            resume,
            vec![
                b'O', b'R', b'W', b'L', // magic
                0x04, 0x00, // version 4
                0x11, // kind 17
                0x04, 0x00, 0x00, 0x00, // payload length 4
                0x02, 0x00, 0x00, 0x00, // round 2
            ]
        );

        let reassign = Message::ReAssignment { json: "{}".to_string() }.encode();
        assert_eq!(
            reassign,
            vec![
                b'O', b'R', b'W', b'L', // magic
                0x04, 0x00, // version 4
                0x10, // kind 16
                0x02, 0x00, 0x00, 0x00, // payload length 2
                b'{', b'}', // document
            ]
        );
    }

    #[test]
    fn v1_frames_still_decode() {
        // A v3 codec must accept every v1 frame unchanged: patch the
        // version field of a freshly encoded v1-era kind down to 1.
        for message in [
            Message::Hello { node: 4 },
            Message::LockRequest { seq: 8, location: 2, access: WireAccess::Write, bytes: 64 },
            Message::LockGrant { seq: 8, location: 2, data: vec![9, 9] },
            Message::Shutdown,
        ] {
            let mut frame = message.encode();
            frame[4..6].copy_from_slice(&1u16.to_le_bytes());
            assert_eq!(decode_frame(&frame).unwrap(), message, "v1 frame of {}", message.name());
        }

        // ... but a v2-only kind inside a v1 frame is a protocol bug, not
        // a message.
        let mut frame = Message::TelemetryUpload { node: 0, snapshot: vec![1] }.encode();
        frame[4..6].copy_from_slice(&1u16.to_le_bytes());
        assert!(matches!(decode_frame(&frame), Err(WireError::UnknownKind(11))));
    }

    #[test]
    fn v2_frames_still_decode() {
        // A v3 reader must accept every v2 frame unchanged, including the
        // v2-era telemetry upload.
        for message in [
            Message::TelemetryUpload { node: 1, snapshot: vec![0xAA, 0xBB, 0xCC] },
            Message::Metrics { node: 1, json: "{}".to_string() },
            Message::Done { node: 1 },
        ] {
            let mut frame = message.encode();
            frame[4..6].copy_from_slice(&2u16.to_le_bytes());
            assert_eq!(decode_frame(&frame).unwrap(), message, "v2 frame of {}", message.name());
        }

        // ... but a v3-only kind inside an older frame is a protocol bug,
        // not a message, under both v2 and v1 headers.
        for old_version in [1u16, 2] {
            let mut beat = Message::Heartbeat { node: 0, seq: 1 }.encode();
            beat[4..6].copy_from_slice(&old_version.to_le_bytes());
            assert!(matches!(decode_frame(&beat), Err(WireError::UnknownKind(12))));

            let mut delta = Message::TelemetryDelta { node: 0, delta: vec![1] }.encode();
            delta[4..6].copy_from_slice(&old_version.to_le_bytes());
            assert!(matches!(decode_frame(&delta), Err(WireError::UnknownKind(13))));
        }
    }

    #[test]
    fn v3_frames_still_decode() {
        // A v4 reader must accept every v3 frame unchanged, including the
        // v3-era streaming kinds.
        for message in [
            Message::Heartbeat { node: 1, seq: 9 },
            Message::TelemetryDelta { node: 1, delta: vec![0xAA] },
            Message::TelemetryUpload { node: 1, snapshot: vec![0xBB] },
            Message::Done { node: 1 },
        ] {
            let mut frame = message.encode();
            frame[4..6].copy_from_slice(&3u16.to_le_bytes());
            assert_eq!(decode_frame(&frame).unwrap(), message, "v3 frame of {}", message.name());
        }

        // ... but a v4-only kind inside an older frame is a protocol bug,
        // not a message, under v3, v2 and v1 headers alike.
        for old_version in [1u16, 2, 3] {
            for (message, kind) in [
                (Message::Quiesce { round: 1 }, 14u8),
                (Message::QuiesceAck { node: 0, round: 1 }, 15),
                (Message::ReAssignment { json: "{}".to_string() }, 16),
                (Message::Resume { round: 1 }, 17),
            ] {
                let mut frame = message.encode();
                frame[4..6].copy_from_slice(&old_version.to_le_bytes());
                match decode_frame(&frame) {
                    Err(WireError::UnknownKind(got)) => assert_eq!(got, kind),
                    other => {
                        panic!("v{old_version} frame of kind {kind}: expected UnknownKind, got {other:?}")
                    }
                }
            }
        }
    }

    #[test]
    fn older_peers_reject_v4_frames_with_a_typed_error() {
        // An old binary (max version 1, 2 or 3) fed a current frame must
        // fail fast with BadVersion — never hang waiting for more bytes,
        // never panic, never mis-parse.
        for max_version in [1u16, 2, 3] {
            let mut reader = FrameReader::with_max_version(max_version);
            reader.push(&Message::Heartbeat { node: 2, seq: 5 }.encode());
            assert_eq!(reader.try_next(), Err(WireError::BadVersion { got: 4 }), "max version {max_version}");

            let mut reader = FrameReader::with_max_version(max_version);
            reader.push(&Message::Quiesce { round: 1 }.encode());
            assert_eq!(reader.try_next(), Err(WireError::BadVersion { got: 4 }), "max version {max_version}");
        }

        // A frame at the peer's own version still flows through.
        let mut reader = FrameReader::with_max_version(1);
        let mut frame = Message::Hello { node: 2 }.encode();
        frame[4..6].copy_from_slice(&1u16.to_le_bytes());
        reader.push(&frame);
        assert_eq!(reader.try_next(), Ok(Some(Message::Hello { node: 2 })));

        let mut reader = FrameReader::with_max_version(2);
        let mut frame = Message::TelemetryUpload { node: 2, snapshot: vec![7; 32] }.encode();
        frame[4..6].copy_from_slice(&2u16.to_le_bytes());
        reader.push(&frame);
        assert!(matches!(reader.try_next(), Ok(Some(Message::TelemetryUpload { .. }))));
    }

    #[test]
    fn snapshot_budget_is_enforced_both_ways() {
        // Encode refuses oversize snapshots...
        let caught = std::panic::catch_unwind(|| {
            Message::TelemetryUpload { node: 0, snapshot: vec![0; MAX_SNAPSHOT + 1] }.encode()
        });
        assert!(caught.is_err());
        // ...and decode refuses oversize declared lengths for kind 11,
        // while still allowing it to exceed the ordinary MAX_PAYLOAD.
        let mut over = Message::TelemetryUpload { node: 0, snapshot: Vec::new() }.encode();
        over[7..11].copy_from_slice(&((MAX_SNAPSHOT + 17) as u32).to_le_bytes());
        assert!(matches!(decode_frame(&over), Err(WireError::PayloadTooLarge { .. })));
        let big = Message::TelemetryUpload { node: 0, snapshot: vec![5; MAX_PAYLOAD + 1] }.encode();
        assert!(matches!(decode_frame(&big), Ok(Message::TelemetryUpload { .. })));
    }

    #[test]
    fn delta_budget_is_enforced_both_ways() {
        let caught = std::panic::catch_unwind(|| {
            Message::TelemetryDelta { node: 0, delta: vec![0; MAX_DELTA + 1] }.encode()
        });
        assert!(caught.is_err());
        let mut over = Message::TelemetryDelta { node: 0, delta: Vec::new() }.encode();
        over[7..11].copy_from_slice(&((MAX_DELTA + 17) as u32).to_le_bytes());
        assert!(matches!(decode_frame(&over), Err(WireError::PayloadTooLarge { .. })));
        let big = Message::TelemetryDelta { node: 0, delta: vec![5; MAX_PAYLOAD + 1] }.encode();
        assert!(matches!(decode_frame(&big), Ok(Message::TelemetryDelta { .. })));
    }

    #[test]
    fn max_size_grant_roundtrips() {
        let data: Vec<u8> = (0..MAX_DATA).map(|i| (i % 251) as u8).collect();
        let message = Message::LockGrant { seq: 42, location: 17, data };
        let frame = message.encode();
        assert_eq!(frame.len(), HEADER_LEN + 16 + MAX_DATA);
        assert_eq!(decode_frame(&frame).unwrap(), message);
    }

    #[test]
    #[should_panic(expected = "MAX_DATA")]
    fn oversize_grant_is_refused_at_encode() {
        let _ = Message::LockGrant { seq: 0, location: 0, data: vec![0; MAX_DATA + 1] }.encode();
    }

    #[test]
    fn malformed_frames_are_typed_errors() {
        let good = Message::Start.encode();

        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        assert!(matches!(decode_frame(&bad_magic), Err(WireError::BadMagic { .. })));

        let mut bad_version = good.clone();
        bad_version[4] = 99;
        assert!(matches!(decode_frame(&bad_version), Err(WireError::BadVersion { got: 99 })));

        let mut bad_kind = good.clone();
        bad_kind[6] = 200;
        assert!(matches!(decode_frame(&bad_kind), Err(WireError::UnknownKind(200))));

        let mut huge = good.clone();
        huge[7..11].copy_from_slice(&(u32::MAX).to_le_bytes());
        assert!(matches!(decode_frame(&huge), Err(WireError::PayloadTooLarge { .. })));

        // A hello frame with a short payload.
        let mut short = Message::Hello { node: 1 }.encode();
        short.truncate(HEADER_LEN + 2);
        short[7..11].copy_from_slice(&2u32.to_le_bytes());
        assert!(matches!(decode_frame(&short), Err(WireError::Truncated { .. })));

        // A lock request with an out-of-domain access mode.
        let mut bad_access =
            Message::LockRequest { seq: 1, location: 1, access: WireAccess::Read, bytes: 8 }.encode();
        bad_access[HEADER_LEN + 16] = 9;
        assert!(matches!(decode_frame(&bad_access), Err(WireError::BadField { .. })));

        // Errors render something human-readable.
        for err in [
            WireError::BadMagic { got: *b"XXXX" },
            WireError::BadVersion { got: 9 },
            WireError::UnknownKind(99),
            WireError::PayloadTooLarge { len: u32::MAX },
            WireError::Truncated { kind: 1 },
            WireError::BadUtf8 { kind: 1 },
            WireError::BadField { kind: 4, what: "access mode", got: 9 },
        ] {
            assert!(!err.to_string().is_empty());
        }
    }

    #[test]
    fn reader_survives_byte_at_a_time_delivery() {
        let messages = [Message::Hello { node: 5 }, Message::Start, Message::Release { seq: 3, location: 1 }];
        let stream: Vec<u8> = messages.iter().flat_map(Message::encode).collect();
        let mut reader = FrameReader::new();
        let mut decoded = Vec::new();
        for byte in stream {
            reader.push(&[byte]);
            while let Some(m) = reader.try_next().unwrap() {
                decoded.push(m);
            }
        }
        assert_eq!(decoded.as_slice(), messages.as_slice());
        assert_eq!(reader.pending(), 0);
    }

    /// A strategy-driven arbitrary message: kind selector plus generously
    /// sized field material.
    fn build_message(
        selector: usize,
        a: u64,
        b: u64,
        small: u8,
        text_bytes: Vec<u8>,
        data: Vec<u8>,
    ) -> Message {
        let text: String = text_bytes.iter().map(|&b| char::from(b % 94 + 32)).collect();
        match selector % 18 {
            0 => Message::Hello { node: a as u32 },
            1 => Message::Assignment { json: text },
            2 => Message::Ready { node: b as u32 },
            3 => Message::Start,
            4 => Message::LockRequest {
                seq: a,
                location: b,
                access: if small.is_multiple_of(2) { WireAccess::Read } else { WireAccess::Write },
                bytes: a ^ b,
            },
            5 => Message::LockGrant { seq: a, location: b, data },
            6 => Message::Release { seq: a, location: b },
            7 => Message::Done { node: a as u32 },
            8 => Message::Metrics { node: b as u32, json: text },
            9 => Message::Error { message: text },
            10 => Message::Shutdown,
            11 => Message::TelemetryUpload { node: a as u32, snapshot: data },
            12 => Message::Heartbeat { node: a as u32, seq: b },
            13 => Message::TelemetryDelta { node: b as u32, delta: data },
            14 => Message::Quiesce { round: a as u32 },
            15 => Message::QuiesceAck { node: a as u32, round: b as u32 },
            16 => Message::ReAssignment { json: text },
            _ => Message::Resume { round: b as u32 },
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        #[test]
        fn any_message_roundtrips(
            selector in 0usize..18,
            a in 0u64..u64::MAX,
            b in 0u64..u64::MAX,
            small in 0u8..255,
            text in proptest::collection::vec(0u8..255, 0..200),
            data in proptest::collection::vec(0u8..255, 0..2048),
        ) {
            let message = build_message(selector, a, b, small, text, data);
            let frame = message.encode();
            prop_assert_eq!(decode_frame(&frame).unwrap(), message);
        }

        #[test]
        fn split_reads_reassemble_any_stream(
            selectors in proptest::collection::vec(0usize..18, 1..6),
            a in 0u64..u64::MAX,
            b in 0u64..1_000_000,
            small in 0u8..255,
            data in proptest::collection::vec(0u8..255, 0..512),
            chunk_sizes in proptest::collection::vec(1usize..40, 1..64),
        ) {
            let messages: Vec<Message> = selectors
                .iter()
                .enumerate()
                .map(|(i, &s)| {
                    build_message(s, a.wrapping_add(i as u64), b + i as u64, small, vec![small; i], data.clone())
                })
                .collect();
            let stream: Vec<u8> = messages.iter().flat_map(Message::encode).collect();

            let mut reader = FrameReader::new();
            let mut decoded = Vec::new();
            let mut at = 0usize;
            let mut chunk = 0usize;
            while at < stream.len() {
                let take = chunk_sizes[chunk % chunk_sizes.len()].min(stream.len() - at);
                chunk += 1;
                reader.push(&stream[at..at + take]);
                at += take;
                while let Some(m) = reader.try_next().map_err(|e| TestCaseError(e.to_string()))? {
                    decoded.push(m);
                }
            }
            prop_assert_eq!(decoded, messages);
            prop_assert_eq!(reader.pending(), 0);
        }
    }
}
