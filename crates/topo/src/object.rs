//! Topology objects: the nodes of the hardware tree.
//!
//! Mirrors HWLOC's `hwloc_obj_t`: every object has a type (machine, NUMA
//! node, package, cache, core, processing unit…), a cpuset describing which
//! PUs it spans, and tree links expressed as indices into the owning
//! [`Topology`](crate::topology::Topology) arena.

use crate::bitmap::CpuSet;
use std::fmt;

/// Identifier of an object inside its [`Topology`](crate::topology::Topology)
/// arena.  Stable for the lifetime of the topology.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjId(pub(crate) u32);

impl ObjId {
    /// Raw arena index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for ObjId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ObjId({})", self.0)
    }
}

/// The kind of hardware resource an object describes.
///
/// The ordering of the variants follows the usual containment order of a
/// NUMA machine, from the whole machine down to a single hardware thread
/// (processing unit, "PU" in HWLOC parlance).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ObjectType {
    /// The whole shared-memory machine (root of the tree).
    Machine,
    /// An arbitrary grouping level (e.g. a board or a processor group).
    Group,
    /// A NUMA node: memory plus the cores with local access to it.
    NumaNode,
    /// A physical processor package (socket).
    Package,
    /// Level-3 cache, usually shared by the cores of a package or die.
    L3Cache,
    /// Level-2 cache, usually private per core or shared by a pair.
    L2Cache,
    /// Level-1 cache, private per core.
    L1Cache,
    /// A physical core (may expose several hardware threads).
    Core,
    /// A processing unit: one hardware thread, the leaf the OS schedules on.
    PU,
}

impl ObjectType {
    /// True for the cache levels.
    pub fn is_cache(self) -> bool {
        matches!(self, ObjectType::L1Cache | ObjectType::L2Cache | ObjectType::L3Cache)
    }

    /// True for the leaf level (PU).
    pub fn is_leaf(self) -> bool {
        self == ObjectType::PU
    }

    /// Short lower-case name used by the synthetic-description parser and by
    /// `Display`: `machine`, `group`, `numa`, `package`, `l3`, `l2`, `l1`,
    /// `core`, `pu`.
    pub fn short_name(self) -> &'static str {
        match self {
            ObjectType::Machine => "machine",
            ObjectType::Group => "group",
            ObjectType::NumaNode => "numa",
            ObjectType::Package => "package",
            ObjectType::L3Cache => "l3",
            ObjectType::L2Cache => "l2",
            ObjectType::L1Cache => "l1",
            ObjectType::Core => "core",
            ObjectType::PU => "pu",
        }
    }

    /// Parses the short names accepted by [`ObjectType::short_name`], plus a
    /// few common aliases (`socket`, `node`, `numanode`, `thread`, `smt`).
    pub fn parse(s: &str) -> Result<Self, String> {
        Ok(match s.to_ascii_lowercase().as_str() {
            "machine" => ObjectType::Machine,
            "group" | "board" => ObjectType::Group,
            "numa" | "numanode" | "node" => ObjectType::NumaNode,
            "package" | "socket" | "pack" => ObjectType::Package,
            "l3" | "l3cache" => ObjectType::L3Cache,
            "l2" | "l2cache" => ObjectType::L2Cache,
            "l1" | "l1cache" => ObjectType::L1Cache,
            "core" => ObjectType::Core,
            "pu" | "thread" | "smt" | "hwthread" => ObjectType::PU,
            other => return Err(format!("unknown object type {other:?}")),
        })
    }
}

impl fmt::Display for ObjectType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.short_name())
    }
}

/// Type-specific attributes of an object.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ObjectAttr {
    /// Cache size in bytes (caches only).
    pub cache_size: Option<u64>,
    /// Local memory in bytes (machine and NUMA nodes).
    pub local_memory: Option<u64>,
}

/// One node of the topology tree.
#[derive(Clone, Debug)]
pub struct TopoObject {
    /// Identifier inside the arena.
    pub id: ObjId,
    /// What kind of resource this is.
    pub obj_type: ObjectType,
    /// Depth in the tree; the machine root is at depth 0.
    pub depth: usize,
    /// Index of this object among the objects of the same depth, in
    /// left-to-right tree order ("logical index" in HWLOC terms).
    pub logical_index: usize,
    /// OS-assigned index when known (e.g. the PU number used by
    /// `sched_setaffinity`); equals `logical_index` for synthetic topologies.
    pub os_index: usize,
    /// All PU indices covered by this object.
    pub cpuset: CpuSet,
    /// Parent object, `None` for the root.
    pub parent: Option<ObjId>,
    /// Children in left-to-right order.
    pub children: Vec<ObjId>,
    /// Type-specific attributes.
    pub attr: ObjectAttr,
}

impl TopoObject {
    /// Number of children.
    pub fn arity(&self) -> usize {
        self.children.len()
    }

    /// True for the leaf level (PU).
    pub fn is_leaf(&self) -> bool {
        self.obj_type.is_leaf()
    }

    /// Human-readable one-line description, e.g. `package#3 cpuset=24-31`.
    pub fn describe(&self) -> String {
        format!("{}#{} cpuset={}", self.obj_type, self.logical_index, self.cpuset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_names_roundtrip() {
        for ty in [
            ObjectType::Machine,
            ObjectType::Group,
            ObjectType::NumaNode,
            ObjectType::Package,
            ObjectType::L3Cache,
            ObjectType::L2Cache,
            ObjectType::L1Cache,
            ObjectType::Core,
            ObjectType::PU,
        ] {
            assert_eq!(ObjectType::parse(ty.short_name()).unwrap(), ty);
            assert_eq!(format!("{ty}"), ty.short_name());
        }
    }

    #[test]
    fn type_aliases() {
        assert_eq!(ObjectType::parse("socket").unwrap(), ObjectType::Package);
        assert_eq!(ObjectType::parse("NUMANODE").unwrap(), ObjectType::NumaNode);
        assert_eq!(ObjectType::parse("thread").unwrap(), ObjectType::PU);
        assert!(ObjectType::parse("quux").is_err());
    }

    #[test]
    fn type_predicates() {
        assert!(ObjectType::L2Cache.is_cache());
        assert!(!ObjectType::Core.is_cache());
        assert!(ObjectType::PU.is_leaf());
        assert!(!ObjectType::Machine.is_leaf());
    }

    #[test]
    fn containment_order_matches_variant_order() {
        assert!(ObjectType::Machine < ObjectType::NumaNode);
        assert!(ObjectType::NumaNode < ObjectType::Package);
        assert!(ObjectType::Package < ObjectType::Core);
        assert!(ObjectType::Core < ObjectType::PU);
    }

    #[test]
    fn describe_mentions_type_and_cpuset() {
        let o = TopoObject {
            id: ObjId(0),
            obj_type: ObjectType::Package,
            depth: 1,
            logical_index: 3,
            os_index: 3,
            cpuset: CpuSet::from_range(24..32),
            parent: None,
            children: vec![],
            attr: ObjectAttr::default(),
        };
        assert_eq!(o.describe(), "package#3 cpuset=24-31");
        assert_eq!(o.arity(), 0);
        assert!(!o.is_leaf());
    }
}
