//! # orwl-topo — portable hardware topology modelling
//!
//! This crate is the reproduction's substitute for the **HWLOC** (Hardware
//! Locality) library used by the paper *"Optimizing Locality by
//! Topology-aware Placement for a Task Based Programming Model"*
//! (Gustedt, Jeannot, Mansouri — IEEE CLUSTER 2016).  It provides:
//!
//! * [`bitmap::CpuSet`] — sets of processing-unit indices (HWLOC bitmaps);
//! * [`object`] / [`topology`] — the hardware containment tree (machine →
//!   NUMA node → package → caches → core → PU) with the queries the
//!   placement algorithm needs (levels, arities, common ancestors, the
//!   balanced [`topology::TreeShape`]);
//! * [`synthetic`] — building topologies from description strings and the
//!   named presets used in the evaluation, including the paper's
//!   24-socket × 8-core SMP machine;
//! * [`cluster`] — hierarchical multi-node topologies (cluster → node →
//!   socket/NUMA → core) with rack-aware fabric link classes and a
//!   flattened single-tree view for flat policies and metrics;
//! * [`discover`] — best-effort discovery of the host topology from Linux
//!   sysfs, with a portable fallback;
//! * [`distance`] — PU-to-PU relative cost matrices derived from the tree;
//! * [`binding`] — applying thread → PU placements (`sched_setaffinity` on
//!   Linux, recording and no-op binders everywhere).
//!
//! # Quick example
//!
//! ```
//! use orwl_topo::prelude::*;
//!
//! // The machine used in the paper's evaluation: 24 sockets × 8 cores.
//! let topo = orwl_topo::synthetic::cluster2016_smp192();
//! assert_eq!(topo.nb_pus(), 192);
//!
//! // The balanced tree shape consumed by the TreeMatch algorithm.
//! let shape = topo.shape();
//! assert_eq!(shape.leaves(), 192);
//!
//! // Cores 0 and 1 share a socket; cores 0 and 8 do not.
//! assert!(topo.hop_distance(0, 1) < topo.hop_distance(0, 8));
//! ```

pub mod binding;
pub mod bitmap;
pub mod cluster;
pub mod discover;
pub mod distance;
pub mod object;
pub mod synthetic;
pub mod topology;

pub use binding::{BindError, Binder, NoopBinder, RecordingBinder};
pub use bitmap::CpuSet;
pub use cluster::{ClusterError, ClusterTopology, FabricClass};
pub use object::{ObjId, ObjectType, TopoObject};
pub use topology::{LevelSpec, Topology, TopologyError, TreeShape};

/// Convenient glob import of the most commonly used items.
pub mod prelude {
    pub use crate::binding::{Binder, NoopBinder, RecordingBinder};
    pub use crate::bitmap::CpuSet;
    pub use crate::object::{ObjId, ObjectType};
    pub use crate::topology::{LevelSpec, Topology, TreeShape};
}
