//! Binding threads to processing units.
//!
//! The outcome of the placement algorithm is a thread → PU assignment; this
//! module applies it.  Binding is abstracted behind the [`Binder`] trait so
//! that the same placement code can
//!
//! * really pin threads on Linux ([`LinuxBinder`], via `sched_setaffinity`),
//! * record the requested bindings for inspection and testing
//!   ([`RecordingBinder`]), or
//! * deliberately do nothing ([`NoopBinder`] — the "NoBind" configuration of
//!   the paper).

use crate::bitmap::CpuSet;
use std::collections::HashMap;
use std::sync::Mutex;

/// Error returned when a binding request cannot be applied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BindError(pub String);

impl std::fmt::Display for BindError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cpu binding failed: {}", self.0)
    }
}

impl std::error::Error for BindError {}

/// Applies thread → PU bindings.
///
/// Implementations must be callable from the thread being bound (the usual
/// pattern is for a worker to bind itself right after it starts).
pub trait Binder: Send + Sync {
    /// Restricts the *calling* thread to the PUs in `cpuset`.
    fn bind_current_thread(&self, cpuset: &CpuSet) -> Result<(), BindError>;

    /// Returns the affinity of the calling thread, when the platform can
    /// report it.
    fn current_affinity(&self) -> Option<CpuSet> {
        None
    }

    /// Human-readable name of the binder (used in logs and reports).
    fn name(&self) -> &'static str;
}

/// A binder that ignores every request — the "NoBind" baseline.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopBinder;

impl Binder for NoopBinder {
    fn bind_current_thread(&self, _cpuset: &CpuSet) -> Result<(), BindError> {
        Ok(())
    }

    fn name(&self) -> &'static str {
        "noop"
    }
}

/// A binder that records every request, keyed by an application-chosen
/// label, without touching the OS.  Used in tests and in the simulator,
/// where the recorded placement feeds the cost model.
#[derive(Debug, Default)]
pub struct RecordingBinder {
    bindings: Mutex<HashMap<String, CpuSet>>,
    anonymous: Mutex<Vec<CpuSet>>,
}

impl RecordingBinder {
    /// Creates an empty recording binder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a binding for a named entity (e.g. a task id) instead of the
    /// calling thread.
    pub fn record_named(&self, label: &str, cpuset: &CpuSet) {
        self.bindings.lock().unwrap().insert(label.to_string(), cpuset.clone());
    }

    /// Returns the recorded binding for `label`, if any.
    pub fn get(&self, label: &str) -> Option<CpuSet> {
        self.bindings.lock().unwrap().get(label).cloned()
    }

    /// Number of named bindings recorded so far.
    pub fn len(&self) -> usize {
        self.bindings.lock().unwrap().len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0 && self.anonymous.lock().unwrap().is_empty()
    }

    /// All bindings recorded through [`Binder::bind_current_thread`]
    /// (anonymous, in call order).
    pub fn anonymous_bindings(&self) -> Vec<CpuSet> {
        self.anonymous.lock().unwrap().clone()
    }

    /// All named bindings as `(label, cpuset)` pairs, sorted by label.
    pub fn named_bindings(&self) -> Vec<(String, CpuSet)> {
        let mut v: Vec<_> =
            self.bindings.lock().unwrap().iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }
}

impl Binder for RecordingBinder {
    fn bind_current_thread(&self, cpuset: &CpuSet) -> Result<(), BindError> {
        self.anonymous.lock().unwrap().push(cpuset.clone());
        Ok(())
    }

    fn name(&self) -> &'static str {
        "recording"
    }
}

/// Real binding through `sched_setaffinity(2)`.  Only available on Linux.
#[cfg(target_os = "linux")]
#[derive(Debug, Default, Clone, Copy)]
pub struct LinuxBinder;

#[cfg(target_os = "linux")]
impl Binder for LinuxBinder {
    fn bind_current_thread(&self, cpuset: &CpuSet) -> Result<(), BindError> {
        if cpuset.is_empty() {
            return Err(BindError("cannot bind to an empty cpuset".into()));
        }
        unsafe {
            let mut set: libc::cpu_set_t = std::mem::zeroed();
            libc::CPU_ZERO(&mut set);
            let max = 8 * std::mem::size_of::<libc::cpu_set_t>();
            for pu in cpuset.iter() {
                if pu >= max {
                    return Err(BindError(format!("PU index {pu} exceeds cpu_set_t capacity {max}")));
                }
                libc::CPU_SET(pu, &mut set);
            }
            // tid 0 = calling thread.
            let rc = libc::sched_setaffinity(0, std::mem::size_of::<libc::cpu_set_t>(), &set);
            if rc != 0 {
                return Err(BindError(format!(
                    "sched_setaffinity({cpuset}) returned errno {}",
                    std::io::Error::last_os_error()
                )));
            }
        }
        Ok(())
    }

    fn current_affinity(&self) -> Option<CpuSet> {
        unsafe {
            let mut set: libc::cpu_set_t = std::mem::zeroed();
            let rc = libc::sched_getaffinity(0, std::mem::size_of::<libc::cpu_set_t>(), &mut set);
            if rc != 0 {
                return None;
            }
            let max = 8 * std::mem::size_of::<libc::cpu_set_t>();
            let mut out = CpuSet::new();
            for pu in 0..max {
                if libc::CPU_ISSET(pu, &set) {
                    out.set(pu);
                }
            }
            Some(out)
        }
    }

    fn name(&self) -> &'static str {
        "linux-sched_setaffinity"
    }
}

/// Returns the best real binder for the current platform, or a no-op binder
/// when the platform offers none.
pub fn native_binder() -> Box<dyn Binder> {
    #[cfg(target_os = "linux")]
    {
        Box::new(LinuxBinder)
    }
    #[cfg(not(target_os = "linux"))]
    {
        Box::new(NoopBinder)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_binder_accepts_everything() {
        let b = NoopBinder;
        assert!(b.bind_current_thread(&CpuSet::singleton(0)).is_ok());
        assert!(b.bind_current_thread(&CpuSet::new()).is_ok());
        assert_eq!(b.name(), "noop");
        assert!(b.current_affinity().is_none());
    }

    #[test]
    fn recording_binder_remembers_named_and_anonymous() {
        let b = RecordingBinder::new();
        assert!(b.is_empty());
        b.record_named("task-3", &CpuSet::singleton(7));
        b.bind_current_thread(&CpuSet::from_range(0..2)).unwrap();
        assert_eq!(b.get("task-3"), Some(CpuSet::singleton(7)));
        assert_eq!(b.get("task-9"), None);
        assert_eq!(b.len(), 1);
        assert_eq!(b.anonymous_bindings(), vec![CpuSet::from_range(0..2)]);
        assert!(!b.is_empty());
        let named = b.named_bindings();
        assert_eq!(named.len(), 1);
        assert_eq!(named[0].0, "task-3");
    }

    #[test]
    fn recording_binder_overwrites_same_label() {
        let b = RecordingBinder::new();
        b.record_named("t", &CpuSet::singleton(1));
        b.record_named("t", &CpuSet::singleton(2));
        assert_eq!(b.get("t"), Some(CpuSet::singleton(2)));
        assert_eq!(b.len(), 1);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn linux_binder_binds_to_cpu0() {
        let b = LinuxBinder;
        // CPU 0 always exists.  Save and restore the original mask so other
        // tests in this process are unaffected.
        let original = b.current_affinity().expect("can read affinity");
        assert!(!original.is_empty());
        b.bind_current_thread(&CpuSet::singleton(0)).unwrap();
        let now = b.current_affinity().unwrap();
        assert_eq!(now, CpuSet::singleton(0));
        b.bind_current_thread(&original).unwrap();
        assert!(b.bind_current_thread(&CpuSet::new()).is_err());
    }

    #[test]
    fn native_binder_is_available() {
        let b = native_binder();
        assert!(!b.name().is_empty());
    }
}
