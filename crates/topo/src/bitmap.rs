//! CPU sets represented as growable bitmaps.
//!
//! This is the equivalent of `hwloc_bitmap_t` in the HWLOC library: a set of
//! non-negative integers (processing-unit indices) with the usual set algebra
//! (union, intersection, difference), inclusion tests and iteration.
//!
//! The representation is a vector of 64-bit words; index `i` is stored in
//! word `i / 64`, bit `i % 64`.  Trailing zero words are trimmed so that two
//! bitmaps representing the same set always compare equal.

use std::fmt;

const BITS_PER_WORD: usize = 64;

/// A set of processing-unit indices (the HWLOC "cpuset"/"bitmap" equivalent).
///
/// `CpuSet` is an ordinary value type: cloning it copies the underlying
/// words, and equality is structural (two sets are equal iff they contain
/// exactly the same indices).
///
/// # Examples
///
/// ```
/// use orwl_topo::bitmap::CpuSet;
///
/// let mut a = CpuSet::new();
/// a.set(0);
/// a.set(5);
/// let b = CpuSet::from_range(0..4);
/// assert_eq!(a.and(&b).weight(), 1);
/// assert_eq!(format!("{}", b), "0-3");
/// ```
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct CpuSet {
    words: Vec<u64>,
}

impl CpuSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        CpuSet { words: Vec::new() }
    }

    /// Creates a set containing exactly the indices of `iter`.
    pub fn from_indices<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let mut s = CpuSet::new();
        for i in iter {
            s.set(i);
        }
        s
    }

    /// Creates a set containing every index in the half-open range.
    pub fn from_range(range: std::ops::Range<usize>) -> Self {
        Self::from_indices(range)
    }

    /// Creates a set containing the single index `idx`.
    pub fn singleton(idx: usize) -> Self {
        let mut s = CpuSet::new();
        s.set(idx);
        s
    }

    /// Returns `true` when no index is present.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Number of indices contained in the set.
    pub fn weight(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Adds `idx` to the set.
    pub fn set(&mut self, idx: usize) {
        let word = idx / BITS_PER_WORD;
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
        self.words[word] |= 1u64 << (idx % BITS_PER_WORD);
    }

    /// Removes `idx` from the set (no-op when absent).
    pub fn clear(&mut self, idx: usize) {
        let word = idx / BITS_PER_WORD;
        if word < self.words.len() {
            self.words[word] &= !(1u64 << (idx % BITS_PER_WORD));
            self.trim();
        }
    }

    /// Removes every index from the set.
    pub fn clear_all(&mut self) {
        self.words.clear();
    }

    /// Tests whether `idx` is in the set.
    pub fn is_set(&self, idx: usize) -> bool {
        let word = idx / BITS_PER_WORD;
        word < self.words.len() && (self.words[word] >> (idx % BITS_PER_WORD)) & 1 == 1
    }

    /// Smallest index in the set, or `None` if empty.
    pub fn first(&self) -> Option<usize> {
        for (wi, &w) in self.words.iter().enumerate() {
            if w != 0 {
                return Some(wi * BITS_PER_WORD + w.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Largest index in the set, or `None` if empty.
    pub fn last(&self) -> Option<usize> {
        for (wi, &w) in self.words.iter().enumerate().rev() {
            if w != 0 {
                return Some(wi * BITS_PER_WORD + (BITS_PER_WORD - 1 - w.leading_zeros() as usize));
            }
        }
        None
    }

    /// Keeps only the smallest index (HWLOC's `hwloc_bitmap_singlify`).
    ///
    /// Binding a thread uses a singlified set so that the OS scheduler cannot
    /// migrate it between the PUs of a wider set.
    pub fn singlify(&mut self) {
        if let Some(f) = self.first() {
            self.clear_all();
            self.set(f);
        }
    }

    /// Set union, returning a new set.
    pub fn or(&self, other: &CpuSet) -> CpuSet {
        let n = self.words.len().max(other.words.len());
        let mut words = vec![0u64; n];
        for (i, w) in words.iter_mut().enumerate() {
            let a = self.words.get(i).copied().unwrap_or(0);
            let b = other.words.get(i).copied().unwrap_or(0);
            *w = a | b;
        }
        let mut s = CpuSet { words };
        s.trim();
        s
    }

    /// Set intersection, returning a new set.
    pub fn and(&self, other: &CpuSet) -> CpuSet {
        let n = self.words.len().min(other.words.len());
        let mut words = vec![0u64; n];
        for (i, w) in words.iter_mut().enumerate() {
            *w = self.words[i] & other.words[i];
        }
        let mut s = CpuSet { words };
        s.trim();
        s
    }

    /// Set difference `self \ other`, returning a new set.
    pub fn andnot(&self, other: &CpuSet) -> CpuSet {
        let mut words = self.words.clone();
        for (i, w) in words.iter_mut().enumerate() {
            let b = other.words.get(i).copied().unwrap_or(0);
            *w &= !b;
        }
        let mut s = CpuSet { words };
        s.trim();
        s
    }

    /// Symmetric difference, returning a new set.
    pub fn xor(&self, other: &CpuSet) -> CpuSet {
        let n = self.words.len().max(other.words.len());
        let mut words = vec![0u64; n];
        for (i, w) in words.iter_mut().enumerate() {
            let a = self.words.get(i).copied().unwrap_or(0);
            let b = other.words.get(i).copied().unwrap_or(0);
            *w = a ^ b;
        }
        let mut s = CpuSet { words };
        s.trim();
        s
    }

    /// In-place union.
    pub fn or_assign(&mut self, other: &CpuSet) {
        *self = self.or(other);
    }

    /// Tests whether the two sets have at least one common index.
    pub fn intersects(&self, other: &CpuSet) -> bool {
        let n = self.words.len().min(other.words.len());
        (0..n).any(|i| self.words[i] & other.words[i] != 0)
    }

    /// Tests whether every index of `self` is also in `other`.
    pub fn is_subset_of(&self, other: &CpuSet) -> bool {
        for (i, &w) in self.words.iter().enumerate() {
            let b = other.words.get(i).copied().unwrap_or(0);
            if w & !b != 0 {
                return false;
            }
        }
        true
    }

    /// Iterates over the contained indices in increasing order.
    pub fn iter(&self) -> CpuSetIter<'_> {
        CpuSetIter { set: self, word: 0, mask: self.words.first().copied().unwrap_or(0) }
    }

    /// Collects the contained indices into a vector, in increasing order.
    pub fn to_vec(&self) -> Vec<usize> {
        self.iter().collect()
    }

    /// Index of the `n`-th (0-based) set bit, or `None` when `n >= weight()`.
    pub fn nth(&self, n: usize) -> Option<usize> {
        self.iter().nth(n)
    }

    /// Parses the canonical list syntax produced by [`fmt::Display`], e.g.
    /// `"0-3,8,12-15"`.  The empty string parses to the empty set.
    pub fn parse_list(s: &str) -> Result<CpuSet, String> {
        let mut set = CpuSet::new();
        let s = s.trim();
        if s.is_empty() {
            return Ok(set);
        }
        for part in s.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            if let Some((a, b)) = part.split_once('-') {
                let a: usize = a.trim().parse().map_err(|e| format!("bad index {part:?}: {e}"))?;
                let b: usize = b.trim().parse().map_err(|e| format!("bad index {part:?}: {e}"))?;
                if b < a {
                    return Err(format!("descending range {part:?}"));
                }
                for i in a..=b {
                    set.set(i);
                }
            } else {
                let i: usize = part.parse().map_err(|e| format!("bad index {part:?}: {e}"))?;
                set.set(i);
            }
        }
        Ok(set)
    }

    fn trim(&mut self) {
        while self.words.last() == Some(&0) {
            self.words.pop();
        }
    }
}

impl FromIterator<usize> for CpuSet {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        CpuSet::from_indices(iter)
    }
}

/// Iterator over the indices of a [`CpuSet`] in increasing order.
pub struct CpuSetIter<'a> {
    set: &'a CpuSet,
    word: usize,
    mask: u64,
}

impl Iterator for CpuSetIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.mask != 0 {
                let bit = self.mask.trailing_zeros() as usize;
                self.mask &= self.mask - 1;
                return Some(self.word * BITS_PER_WORD + bit);
            }
            self.word += 1;
            if self.word >= self.set.words.len() {
                return None;
            }
            self.mask = self.set.words[self.word];
        }
    }
}

impl fmt::Display for CpuSet {
    /// Formats as a comma-separated list of indices and inclusive ranges,
    /// HWLOC "list" style: `0-3,8,12-15`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        let mut iter = self.iter().peekable();
        while let Some(start) = iter.next() {
            let mut end = start;
            while iter.peek() == Some(&(end + 1)) {
                end = iter.next().unwrap();
            }
            if !first {
                write!(f, ",")?;
            }
            first = false;
            if end == start {
                write!(f, "{start}")?;
            } else {
                write!(f, "{start}-{end}")?;
            }
        }
        Ok(())
    }
}

impl fmt::Debug for CpuSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CpuSet{{{self}}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_set_has_no_members() {
        let s = CpuSet::new();
        assert!(s.is_empty());
        assert_eq!(s.weight(), 0);
        assert_eq!(s.first(), None);
        assert_eq!(s.last(), None);
        assert!(!s.is_set(0));
        assert_eq!(s.to_vec(), Vec::<usize>::new());
    }

    #[test]
    fn set_and_clear_roundtrip() {
        let mut s = CpuSet::new();
        s.set(3);
        s.set(70);
        assert!(s.is_set(3));
        assert!(s.is_set(70));
        assert_eq!(s.weight(), 2);
        s.clear(3);
        assert!(!s.is_set(3));
        assert_eq!(s.weight(), 1);
        s.clear(70);
        assert!(s.is_empty());
        // After trimming, equal to a freshly created set.
        assert_eq!(s, CpuSet::new());
    }

    #[test]
    fn from_range_and_display() {
        let s = CpuSet::from_range(0..8);
        assert_eq!(s.weight(), 8);
        assert_eq!(format!("{s}"), "0-7");
        let t = CpuSet::from_indices([0, 1, 2, 5, 9, 10]);
        assert_eq!(format!("{t}"), "0-2,5,9-10");
        assert_eq!(format!("{}", CpuSet::new()), "");
    }

    #[test]
    fn parse_list_roundtrip() {
        for text in ["", "0", "0-3", "0-2,5,9-10", "64-130,200"] {
            let s = CpuSet::parse_list(text).unwrap();
            assert_eq!(format!("{s}"), text);
        }
        assert!(CpuSet::parse_list("3-1").is_err());
        assert!(CpuSet::parse_list("x").is_err());
    }

    #[test]
    fn boolean_algebra() {
        let a = CpuSet::from_range(0..10);
        let b = CpuSet::from_range(5..15);
        assert_eq!(a.and(&b), CpuSet::from_range(5..10));
        assert_eq!(a.or(&b), CpuSet::from_range(0..15));
        assert_eq!(a.andnot(&b), CpuSet::from_range(0..5));
        assert_eq!(a.xor(&b), CpuSet::from_range(0..5).or(&CpuSet::from_range(10..15)));
        assert!(a.intersects(&b));
        assert!(!a.intersects(&CpuSet::from_range(20..30)));
        assert!(CpuSet::from_range(2..4).is_subset_of(&a));
        assert!(!b.is_subset_of(&a));
        assert!(CpuSet::new().is_subset_of(&a));
    }

    #[test]
    fn first_last_nth_across_word_boundaries() {
        let s = CpuSet::from_indices([63, 64, 65, 200]);
        assert_eq!(s.first(), Some(63));
        assert_eq!(s.last(), Some(200));
        assert_eq!(s.nth(0), Some(63));
        assert_eq!(s.nth(2), Some(65));
        assert_eq!(s.nth(3), Some(200));
        assert_eq!(s.nth(4), None);
    }

    #[test]
    fn singlify_keeps_lowest() {
        let mut s = CpuSet::from_indices([9, 17, 33]);
        s.singlify();
        assert_eq!(s.to_vec(), vec![9]);
        let mut e = CpuSet::new();
        e.singlify();
        assert!(e.is_empty());
    }

    #[test]
    fn singleton_and_from_iterator() {
        let s = CpuSet::singleton(42);
        assert_eq!(s.to_vec(), vec![42]);
        let t: CpuSet = [1usize, 2, 3].into_iter().collect();
        assert_eq!(t.weight(), 3);
    }

    #[test]
    fn equality_ignores_trailing_capacity() {
        let mut a = CpuSet::new();
        a.set(500);
        a.clear(500);
        a.set(1);
        let b = CpuSet::singleton(1);
        assert_eq!(a, b);
    }
}
