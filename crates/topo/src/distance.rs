//! Distance matrices between processing units.
//!
//! HWLOC exposes optional "distances" objects (usually the ACPI SLIT NUMA
//! latency table).  Here distances are derived from the topology tree: the
//! relative cost of a memory transfer between two PUs depends on the deepest
//! level they share (same core < shared cache < same NUMA node < remote
//! NUMA node).  The simulator and the locality metrics both consume this.

use crate::object::ObjectType;
use crate::topology::Topology;

/// Relative access cost per shared level, from the point of view of a PU
/// reading data produced by another PU.
///
/// The values are unit-less multipliers relative to a same-core transfer
/// (`1.0`); the defaults follow the usual order-of-magnitude ratios of a
/// multi-socket NUMA machine (L2 ≈ 10 cycles, L3 ≈ 40 cycles, local DRAM
/// ≈ 100 ns, remote DRAM ≈ 2–3× local).
#[derive(Debug, Clone, PartialEq)]
pub struct LevelCosts {
    /// Both PUs are hardware threads of the same core (shared L1/L2).
    pub same_core: f64,
    /// Same L2 cache (when L2 is shared between cores).
    pub shared_l2: f64,
    /// Same L3 cache / same die.
    pub shared_l3: f64,
    /// Same NUMA node or package but no shared cache level modelled.
    pub same_numa: f64,
    /// Different NUMA node on the same machine.
    pub remote_numa: f64,
}

impl Default for LevelCosts {
    fn default() -> Self {
        LevelCosts { same_core: 1.0, shared_l2: 2.0, shared_l3: 5.0, same_numa: 12.0, remote_numa: 30.0 }
    }
}

impl LevelCosts {
    /// Cost multiplier for a transfer whose deepest shared object has the
    /// given type.  `None` means the PUs only share the machine root.
    pub fn for_shared_type(&self, ty: Option<ObjectType>) -> f64 {
        match ty {
            Some(ObjectType::Core) | Some(ObjectType::PU) => self.same_core,
            Some(ObjectType::L1Cache) | Some(ObjectType::L2Cache) => self.shared_l2,
            Some(ObjectType::L3Cache) => self.shared_l3,
            Some(ObjectType::NumaNode) | Some(ObjectType::Package) | Some(ObjectType::Group) => {
                self.same_numa
            }
            Some(ObjectType::Machine) | None => self.remote_numa,
        }
    }
}

/// A dense PU × PU relative-cost matrix, indexed by PU OS index.
#[derive(Debug, Clone, PartialEq)]
pub struct DistanceMatrix {
    n: usize,
    values: Vec<f64>,
}

impl DistanceMatrix {
    /// Builds the matrix from a topology and per-level costs.  The diagonal
    /// is zero (no transfer needed).
    pub fn from_topology(topo: &Topology, costs: &LevelCosts) -> Self {
        let pus = topo.pu_os_indices();
        let max_os = pus.iter().copied().max().unwrap_or(0) + 1;
        let mut values = vec![0.0; max_os * max_os];
        for &a in &pus {
            for &b in &pus {
                if a == b {
                    continue;
                }
                let shared_depth = topo.shared_level_of_pus(a, b);
                // Identify the type of the object at the shared depth.
                let ty = topo.objects_at_depth(shared_depth).next().map(|o| o.obj_type);
                values[a * max_os + b] = costs.for_shared_type(ty);
            }
        }
        DistanceMatrix { n: max_os, values }
    }

    /// Number of rows/columns (equal to the largest PU OS index + 1).
    pub fn order(&self) -> usize {
        self.n
    }

    /// Relative cost of a transfer from PU `a` to PU `b`.
    pub fn cost(&self, a: usize, b: usize) -> f64 {
        if a >= self.n || b >= self.n {
            return 0.0;
        }
        self.values[a * self.n + b]
    }

    /// Largest off-diagonal cost in the matrix.
    pub fn max_cost(&self) -> f64 {
        self.values.iter().cloned().fold(0.0, f64::max)
    }

    /// Smallest non-zero cost in the matrix (0.0 when the matrix is all
    /// zeros, e.g. for a uniprocessor).
    pub fn min_nonzero_cost(&self) -> f64 {
        self.values
            .iter()
            .cloned()
            .filter(|&v| v > 0.0)
            .fold(f64::INFINITY, f64::min)
            .min(f64::INFINITY)
            .pipe_finite()
    }
}

trait PipeFinite {
    fn pipe_finite(self) -> f64;
}

impl PipeFinite for f64 {
    fn pipe_finite(self) -> f64 {
        if self.is_finite() {
            self
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic;

    #[test]
    fn level_costs_order_is_monotone() {
        let c = LevelCosts::default();
        assert!(c.same_core < c.shared_l2);
        assert!(c.shared_l2 < c.shared_l3);
        assert!(c.shared_l3 < c.same_numa);
        assert!(c.same_numa < c.remote_numa);
    }

    #[test]
    fn matrix_for_paper_machine() {
        let topo = synthetic::cluster2016_smp192();
        let m = DistanceMatrix::from_topology(&topo, &LevelCosts::default());
        // Diagonal is 0.
        assert_eq!(m.cost(0, 0), 0.0);
        // Cores of the same socket share an L3.
        let same_socket = m.cost(0, 1);
        // Cores of different sockets are remote.
        let cross_socket = m.cost(0, 8);
        assert!(same_socket > 0.0);
        assert!(cross_socket > same_socket);
        assert_eq!(cross_socket, LevelCosts::default().remote_numa);
        assert_eq!(m.max_cost(), LevelCosts::default().remote_numa);
        assert!(m.min_nonzero_cost() > 0.0);
    }

    #[test]
    fn matrix_for_smt_machine_distinguishes_siblings() {
        let topo = synthetic::dual_socket_smt();
        let m = DistanceMatrix::from_topology(&topo, &LevelCosts::default());
        let siblings = m.cost(0, 1); // same core (pu:2)
        let same_socket = m.cost(0, 2); // same L3
        let cross = m.cost(0, 32); // other socket
        assert!(siblings < same_socket);
        assert!(same_socket < cross);
    }

    #[test]
    fn uniprocessor_matrix_is_zero() {
        let topo = synthetic::uniprocessor();
        let m = DistanceMatrix::from_topology(&topo, &LevelCosts::default());
        assert_eq!(m.order(), 1);
        assert_eq!(m.max_cost(), 0.0);
        assert_eq!(m.min_nonzero_cost(), 0.0);
        assert_eq!(m.cost(5, 7), 0.0); // out of range is 0, not a panic
    }

    #[test]
    fn shared_type_costs_cover_all_types() {
        let c = LevelCosts::default();
        assert_eq!(c.for_shared_type(None), c.remote_numa);
        assert_eq!(c.for_shared_type(Some(ObjectType::Machine)), c.remote_numa);
        assert_eq!(c.for_shared_type(Some(ObjectType::NumaNode)), c.same_numa);
        assert_eq!(c.for_shared_type(Some(ObjectType::L3Cache)), c.shared_l3);
        assert_eq!(c.for_shared_type(Some(ObjectType::L2Cache)), c.shared_l2);
        assert_eq!(c.for_shared_type(Some(ObjectType::Core)), c.same_core);
    }
}
