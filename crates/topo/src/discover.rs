//! Best-effort discovery of the host topology from the operating system.
//!
//! On Linux the canonical source is sysfs:
//! `/sys/devices/system/cpu/cpu<N>/topology/{physical_package_id,core_id}`
//! and `/sys/devices/system/node/node<N>/cpulist`.  This module reads those
//! files when they exist and falls back to a flat topology derived from
//! [`std::thread::available_parallelism`] otherwise (containers frequently
//! hide sysfs).  On non-Linux platforms only the fallback is available.
//!
//! Discovery is intentionally conservative: the placement algorithm only
//! needs the containment tree (package → core → PU), so cache levels are
//! not probed here; use a synthetic description when full detail is needed.

use crate::bitmap::CpuSet;
use crate::object::{ObjId, ObjectAttr, ObjectType, TopoObject};
use crate::topology::{LevelSpec, Topology, TopologyError};
use std::collections::BTreeMap;

/// Discovers the host topology, falling back to a flat `package:1 core:N`
/// description when the OS gives no detail.  Never fails: the worst case is
/// a uniprocessor topology.
pub fn discover() -> Topology {
    discover_sysfs(std::path::Path::new("/sys/devices/system/cpu")).unwrap_or_else(|_| fallback_flat())
}

/// Flat topology with one core per available hardware thread.
pub fn fallback_flat() -> Topology {
    let n = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
    Topology::from_levels(
        "discovered-flat",
        &[
            LevelSpec::new(ObjectType::Package, 1),
            LevelSpec::new(ObjectType::Core, n),
            LevelSpec::new(ObjectType::PU, 1),
        ],
    )
    .expect("flat topology is always valid")
}

/// Information about one online CPU as read from sysfs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct CpuInfo {
    os_index: usize,
    package_id: usize,
    core_id: usize,
}

/// Reads the sysfs CPU directory rooted at `base` and assembles a
/// package → core → PU tree.  Public only to the crate so tests can point it
/// at a fabricated directory layout.
pub(crate) fn discover_sysfs(base: &std::path::Path) -> Result<Topology, TopologyError> {
    let entries = std::fs::read_dir(base)
        .map_err(|e| TopologyError::Discovery(format!("cannot read {}: {e}", base.display())))?;

    let mut cpus = Vec::new();
    for entry in entries.flatten() {
        let name = entry.file_name();
        let name = name.to_string_lossy();
        let Some(rest) = name.strip_prefix("cpu") else { continue };
        let Ok(os_index) = rest.parse::<usize>() else { continue };
        let topo_dir = entry.path().join("topology");
        let package_id = read_usize(&topo_dir.join("physical_package_id")).unwrap_or(0);
        let core_id = read_usize(&topo_dir.join("core_id")).unwrap_or(os_index);
        cpus.push(CpuInfo { os_index, package_id, core_id });
    }
    if cpus.is_empty() {
        return Err(TopologyError::Discovery("no cpu* entries found".into()));
    }
    cpus.sort_by_key(|c| c.os_index);
    Ok(build_from_cpuinfo("discovered-sysfs", &cpus))
}

fn read_usize(path: &std::path::Path) -> Option<usize> {
    std::fs::read_to_string(path).ok()?.trim().parse().ok()
}

/// Builds the tree from the (package, core, pu) triples.  Cores with the same
/// `core_id` in the same package host several PUs (hyperthreads).
fn build_from_cpuinfo(name: &str, cpus: &[CpuInfo]) -> Topology {
    // package_id -> core_id -> [os_index]
    let mut packages: BTreeMap<usize, BTreeMap<usize, Vec<usize>>> = BTreeMap::new();
    for c in cpus {
        packages.entry(c.package_id).or_default().entry(c.core_id).or_default().push(c.os_index);
    }

    fn push(
        objects: &mut Vec<TopoObject>,
        obj_type: ObjectType,
        depth: usize,
        logical: usize,
        os_index: usize,
        parent: Option<ObjId>,
    ) -> ObjId {
        let id = ObjId(objects.len() as u32);
        objects.push(TopoObject {
            id,
            obj_type,
            depth,
            logical_index: logical,
            os_index,
            cpuset: CpuSet::new(),
            parent,
            children: Vec::new(),
            attr: ObjectAttr::default(),
        });
        id
    }

    let mut objects: Vec<TopoObject> = Vec::new();
    let root = push(&mut objects, ObjectType::Machine, 0, 0, 0, None);
    let mut core_logical = 0;
    let mut pu_logical = 0;
    for (pkg_logical, (pkg_id, cores)) in packages.iter().enumerate() {
        let pkg = push(&mut objects, ObjectType::Package, 1, pkg_logical, *pkg_id, Some(root));
        for (core_id, pus) in cores {
            let core = push(&mut objects, ObjectType::Core, 2, core_logical, *core_id, Some(pkg));
            core_logical += 1;
            for &pu_os in pus {
                let pu = push(&mut objects, ObjectType::PU, 3, pu_logical, pu_os, Some(core));
                pu_logical += 1;
                // Fill cpusets bottom-up as we go.
                let set = CpuSet::singleton(pu_os);
                objects[pu.index()].cpuset = set.clone();
                objects[core.index()].cpuset.or_assign(&set);
                objects[pkg.index()].cpuset.or_assign(&set);
                objects[root.index()].cpuset.or_assign(&set);
                objects[core.index()].children.push(pu);
            }
            objects[pkg.index()].children.push(core);
        }
        objects[root.index()].children.push(pkg);
    }

    Topology::from_objects(name, objects).expect("sysfs-derived tree is structurally consistent")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fallback_flat_matches_available_parallelism() {
        let t = fallback_flat();
        let n = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
        assert_eq!(t.nb_pus(), n);
        t.validate().unwrap();
    }

    #[test]
    fn discover_never_panics() {
        let t = discover();
        assert!(t.nb_pus() >= 1);
        t.validate().unwrap();
    }

    #[test]
    fn build_from_cpuinfo_groups_hyperthreads() {
        // 1 package, 2 cores, 2 threads per core; sibling threads have
        // non-contiguous OS indices as on real Intel machines.
        let cpus = vec![
            CpuInfo { os_index: 0, package_id: 0, core_id: 0 },
            CpuInfo { os_index: 1, package_id: 0, core_id: 1 },
            CpuInfo { os_index: 2, package_id: 0, core_id: 0 },
            CpuInfo { os_index: 3, package_id: 0, core_id: 1 },
        ];
        let t = build_from_cpuinfo("test", &cpus);
        assert_eq!(t.nb_pus(), 4);
        assert_eq!(t.nb_cores(), 2);
        assert!(t.has_hyperthreading());
        // PUs 0 and 2 are on the same core.
        assert_eq!(t.shared_level_of_pus(0, 2), 2);
        assert_eq!(t.shared_level_of_pus(0, 1), 1);
        t.validate().unwrap();
    }

    #[test]
    fn build_from_cpuinfo_multiple_packages() {
        let mut cpus = Vec::new();
        for pkg in 0..2 {
            for core in 0..4 {
                cpus.push(CpuInfo { os_index: pkg * 4 + core, package_id: pkg, core_id: core });
            }
        }
        let t = build_from_cpuinfo("two-socket", &cpus);
        assert_eq!(t.nb_pus(), 8);
        assert_eq!(t.objects_of_type(ObjectType::Package).len(), 2);
        assert!(!t.has_hyperthreading());
        t.validate().unwrap();
    }

    #[test]
    fn discover_sysfs_from_fabricated_tree() {
        let dir = std::env::temp_dir().join(format!("orwl_topo_test_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        for cpu in 0..4 {
            let topo = dir.join(format!("cpu{cpu}")).join("topology");
            std::fs::create_dir_all(&topo).unwrap();
            std::fs::write(topo.join("physical_package_id"), format!("{}\n", cpu / 2)).unwrap();
            std::fs::write(topo.join("core_id"), format!("{}\n", cpu % 2)).unwrap();
        }
        // A non-cpu entry must be ignored.
        std::fs::create_dir_all(dir.join("cpufreq")).unwrap();
        let t = discover_sysfs(&dir).unwrap();
        assert_eq!(t.nb_pus(), 4);
        assert_eq!(t.objects_of_type(ObjectType::Package).len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn discover_sysfs_missing_dir_errors() {
        assert!(discover_sysfs(std::path::Path::new("/nonexistent/orwl")).is_err());
    }
}
