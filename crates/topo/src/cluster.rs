//! Hierarchical cluster topologies: cluster → node → socket/NUMA → core.
//!
//! The source paper targets *cluster*-scale ORWL; a [`ClusterTopology`]
//! extends the single-machine [`Topology`] tree with one more containment
//! level — compute **nodes** connected by a network fabric — optionally
//! grouped into **racks** (which select the fabric link class, see
//! [`FabricClass`]).  Nodes are homogeneous: every node carries the same
//! synthetic per-node topology, which is what real clusters are provisioned
//! as and what keeps the two-level placement problem well-posed.
//!
//! Processing units get **global** indices: PU `g` lives on node
//! `g / pus_per_node` at local index `g % pus_per_node`.  The whole cluster
//! can also be [`flattened`](ClusterTopology::flatten) into one balanced
//! [`Topology`] whose depth-1 level is a [`Group`](crate::object::ObjectType)
//! per node — the representation the flat placement policies and the
//! locality metrics consume, and the one a `Session` is built with.

use crate::object::ObjectType;
use crate::topology::{LevelSpec, Topology, TopologyError};
use std::fmt;

/// Errors produced while building or validating a cluster topology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// A cluster needs at least one node.
    NoNodes,
    /// The per-node topology carries no synthetic level specification, so
    /// the cluster cannot be flattened into a balanced tree (discovered
    /// topologies are not supported as node templates).
    NonSyntheticNode(String),
    /// A rack id in the rack map is out of range or a rack is empty.
    BadRack {
        /// The offending rack id.
        rack: usize,
        /// Number of racks implied by the map (`max + 1`).
        n_racks: usize,
    },
    /// Flattening the cluster into a single tree failed.
    Flatten(TopologyError),
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::NoNodes => write!(f, "a cluster topology needs at least one node"),
            ClusterError::NonSyntheticNode(name) => {
                write!(f, "node topology {name:?} has no synthetic level spec and cannot be flattened")
            }
            ClusterError::BadRack { rack, n_racks } => {
                write!(f, "rack {rack} is invalid for a rack map with {n_racks} racks")
            }
            ClusterError::Flatten(e) => write!(f, "cannot flatten cluster topology: {e}"),
        }
    }
}

impl std::error::Error for ClusterError {}

/// The class of fabric link between two processing units of a cluster.
///
/// Ordered from cheapest to most expensive; the cost attached to each class
/// lives in the simulator's fabric model (`orwl_numasim::costmodel`), not
/// here — the topology only knows the *structure*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FabricClass {
    /// Both endpoints are on the same node: no fabric is crossed.
    SameNode,
    /// Different nodes of the same rack (one switch hop).
    SameRack,
    /// Different racks (through the spine).
    CrossRack,
}

/// A multi-node cluster: `n_nodes` identical machines joined by a fabric.
#[derive(Debug, Clone)]
pub struct ClusterTopology {
    name: String,
    node: Topology,
    rack_of: Vec<usize>,
    n_racks: usize,
    flat: Topology,
}

impl ClusterTopology {
    /// A single-rack cluster of `n_nodes` identical `node` machines.
    pub fn homogeneous(name: &str, n_nodes: usize, node: Topology) -> Result<Self, ClusterError> {
        Self::with_racks(name, node, vec![0; n_nodes])
    }

    /// A cluster whose node `i` sits in rack `rack_of[i]`.
    ///
    /// Rack ids must be dense: every id in `0..max+1` must appear at least
    /// once ([`ClusterError::BadRack`] otherwise).
    pub fn with_racks(name: &str, node: Topology, rack_of: Vec<usize>) -> Result<Self, ClusterError> {
        if rack_of.is_empty() {
            return Err(ClusterError::NoNodes);
        }
        if node.level_spec().is_empty() {
            return Err(ClusterError::NonSyntheticNode(node.name().to_string()));
        }
        let n_racks = rack_of.iter().max().copied().unwrap_or(0) + 1;
        for r in 0..n_racks {
            if !rack_of.contains(&r) {
                return Err(ClusterError::BadRack { rack: r, n_racks });
            }
        }
        let mut levels = vec![LevelSpec::new(ObjectType::Group, rack_of.len())];
        levels.extend_from_slice(node.level_spec());
        let flat = Topology::from_levels(name, &levels).map_err(ClusterError::Flatten)?;
        Ok(ClusterTopology { name: name.to_string(), node, rack_of, n_racks, flat })
    }

    /// The cluster's name (also the name of the flattened topology).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The per-node topology template (identical for every node).
    pub fn node_topology(&self) -> &Topology {
        &self.node
    }

    /// Number of compute nodes.
    pub fn n_nodes(&self) -> usize {
        self.rack_of.len()
    }

    /// Number of racks.
    pub fn n_racks(&self) -> usize {
        self.n_racks
    }

    /// Rack hosting node `node`.
    pub fn rack_of_node(&self, node: usize) -> usize {
        self.rack_of[node]
    }

    /// Processing units per node.
    pub fn pus_per_node(&self) -> usize {
        self.node.nb_pus()
    }

    /// Total processing units of the cluster.
    pub fn nb_pus(&self) -> usize {
        self.n_nodes() * self.pus_per_node()
    }

    /// Node hosting global PU `g`.
    ///
    /// # Panics
    /// Panics when `g` is out of range.
    pub fn node_of_pu(&self, g: usize) -> usize {
        assert!(g < self.nb_pus(), "global PU {g} out of range ({} PUs)", self.nb_pus());
        g / self.pus_per_node()
    }

    /// Node-local OS index of global PU `g`.
    pub fn local_pu(&self, g: usize) -> usize {
        g % self.pus_per_node()
    }

    /// Global index of node `node`'s local PU `local`.
    pub fn global_pu(&self, node: usize, local: usize) -> usize {
        debug_assert!(node < self.n_nodes() && local < self.pus_per_node());
        node * self.pus_per_node() + local
    }

    /// The fabric link class between two global PUs.
    pub fn link_class(&self, ga: usize, gb: usize) -> FabricClass {
        let (na, nb) = (self.node_of_pu(ga), self.node_of_pu(gb));
        if na == nb {
            FabricClass::SameNode
        } else if self.rack_of[na] == self.rack_of[nb] {
            FabricClass::SameRack
        } else {
            FabricClass::CrossRack
        }
    }

    /// Depth of the deepest level shared by two global PUs in the flattened
    /// tree: `0` (the cluster root) across nodes, `1 + node-local shared
    /// level` within a node.
    pub fn shared_level_of_pus(&self, ga: usize, gb: usize) -> usize {
        if self.node_of_pu(ga) == self.node_of_pu(gb) {
            1 + self.node.shared_level_of_pus(self.local_pu(ga), self.local_pu(gb))
        } else {
            0
        }
    }

    /// Hop distance between two global PUs: the node-local tree distance
    /// within a node, the full up-and-down path through the cluster root
    /// across nodes.  Equals [`Topology::hop_distance`] on the
    /// [`flattened`](ClusterTopology::flatten) tree.
    pub fn hop_distance(&self, ga: usize, gb: usize) -> usize {
        if ga == gb {
            return 0;
        }
        if self.node_of_pu(ga) == self.node_of_pu(gb) {
            self.node.hop_distance(self.local_pu(ga), self.local_pu(gb))
        } else {
            // Up from the leaf to the cluster root and back down: the node
            // subtree is `node.depth()` levels deep in the flattened tree.
            2 * self.node.depth()
        }
    }

    /// The cluster as one balanced [`Topology`]: a `Group` per node at
    /// depth 1, the node levels below.  This is the topology a `Session`
    /// over a cluster backend is built with, and the one flat placement
    /// policies and locality metrics run on.
    pub fn flatten(&self) -> &Topology {
        &self.flat
    }

    /// The cluster with `node` removed — the topology a run degrades to
    /// after a node loss.  Surviving nodes keep their relative order;
    /// rack ids are re-densified (in ascending order of the old ids) when
    /// the loss empties a rack, so the result is always a valid cluster.
    ///
    /// Returns [`ClusterError::NoNodes`] when `node` is the last node.
    ///
    /// # Panics
    /// Panics when `node` is out of range.
    pub fn without_node(&self, node: usize) -> Result<Self, ClusterError> {
        assert!(node < self.n_nodes(), "node {node} out of range ({} nodes)", self.n_nodes());
        let mut racks: Vec<usize> =
            self.rack_of.iter().enumerate().filter(|&(i, _)| i != node).map(|(_, &r)| r).collect();
        if racks.is_empty() {
            return Err(ClusterError::NoNodes);
        }
        let mut surviving: Vec<usize> = racks.clone();
        surviving.sort_unstable();
        surviving.dedup();
        for r in &mut racks {
            *r = surviving.binary_search(r).unwrap();
        }
        Self::with_racks(&self.name, self.node.clone(), racks)
    }
}

/// A small multi-node preset: `n_nodes` nodes, each a 2-socket × 8-core
/// machine (the paper's evaluation machine restricted to 2 sockets), in one
/// rack.
pub fn paper_cluster(n_nodes: usize) -> Result<ClusterTopology, ClusterError> {
    ClusterTopology::homogeneous(
        &format!("cluster2016-{n_nodes}node"),
        n_nodes,
        crate::synthetic::cluster2016_subset(2).expect("preset is valid"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic;

    fn cluster(n: usize) -> ClusterTopology {
        paper_cluster(n).unwrap()
    }

    #[test]
    fn global_pu_indexing_roundtrips() {
        let c = cluster(4); // 4 nodes × 16 PUs
        assert_eq!(c.n_nodes(), 4);
        assert_eq!(c.pus_per_node(), 16);
        assert_eq!(c.nb_pus(), 64);
        for g in [0, 15, 16, 47, 63] {
            assert_eq!(c.global_pu(c.node_of_pu(g), c.local_pu(g)), g);
        }
        assert_eq!(c.node_of_pu(16), 1);
        assert_eq!(c.local_pu(16), 0);
    }

    #[test]
    #[should_panic]
    fn out_of_range_pu_panics() {
        cluster(2).node_of_pu(32);
    }

    #[test]
    fn validation_errors_are_typed() {
        let node = synthetic::cluster2016_subset(1).unwrap();
        assert_eq!(ClusterTopology::homogeneous("c", 0, node.clone()).unwrap_err(), ClusterError::NoNodes);
        // Rack map with a hole: rack 1 missing.
        assert_eq!(
            ClusterTopology::with_racks("c", node.clone(), vec![0, 2, 2]).unwrap_err(),
            ClusterError::BadRack { rack: 1, n_racks: 3 }
        );
        // Non-synthetic node template: discovered topologies carry no level
        // spec (Topology::from_objects leaves it empty) and cannot be
        // flattened into a balanced cluster tree.
        let objects: Vec<_> = synthetic::laptop().objects().cloned().collect();
        let spec_free = Topology::from_objects("spec-free", objects).unwrap();
        assert_eq!(
            ClusterTopology::homogeneous("c", 2, spec_free).unwrap_err(),
            ClusterError::NonSyntheticNode("spec-free".to_string())
        );
        // Error messages are informative.
        assert!(ClusterError::NoNodes.to_string().contains("at least one node"));
        assert!(ClusterError::BadRack { rack: 1, n_racks: 3 }.to_string().contains("rack 1"));
    }

    #[test]
    fn rack_layout_selects_link_classes() {
        let node = synthetic::cluster2016_subset(1).unwrap(); // 8 PUs per node
        let c = ClusterTopology::with_racks("racked", node, vec![0, 0, 1, 1]).unwrap();
        assert_eq!(c.n_racks(), 2);
        assert_eq!(c.rack_of_node(1), 0);
        assert_eq!(c.rack_of_node(2), 1);
        assert_eq!(c.link_class(0, 7), FabricClass::SameNode); // node 0
        assert_eq!(c.link_class(0, 8), FabricClass::SameRack); // nodes 0-1
        assert_eq!(c.link_class(0, 16), FabricClass::CrossRack); // nodes 0-2
        assert!(FabricClass::SameNode < FabricClass::SameRack);
        assert!(FabricClass::SameRack < FabricClass::CrossRack);
    }

    #[test]
    fn hop_distance_matches_flattened_topology() {
        let c = cluster(3);
        let flat = c.flatten();
        assert_eq!(flat.nb_pus(), c.nb_pus());
        for &(a, b) in
            &[(0usize, 0usize), (0, 1), (0, 7), (0, 8), (0, 15), (0, 16), (15, 16), (17, 40), (32, 47)]
        {
            assert_eq!(c.hop_distance(a, b), flat.hop_distance(a, b), "PUs {a},{b}");
            assert_eq!(c.shared_level_of_pus(a, b), flat.shared_level_of_pus(a, b), "PUs {a},{b}");
        }
    }

    #[test]
    fn cross_node_distance_dominates_intra_node() {
        let c = cluster(2);
        // Same socket < cross socket < cross node.
        assert!(c.hop_distance(0, 1) < c.hop_distance(0, 8));
        assert!(c.hop_distance(0, 8) < c.hop_distance(0, 16));
        // Cross-node distance does not depend on which PUs are involved.
        assert_eq!(c.hop_distance(0, 16), c.hop_distance(15, 31));
        // Cross-node pairs share only the cluster root.
        assert_eq!(c.shared_level_of_pus(0, 16), 0);
        assert!(c.shared_level_of_pus(0, 1) > 1);
    }

    #[test]
    fn without_node_shrinks_and_redensifies_racks() {
        let node = synthetic::cluster2016_subset(1).unwrap();
        let c = ClusterTopology::with_racks("racked", node, vec![0, 0, 1, 2, 2]).unwrap();
        // Losing a node from a populated rack keeps every rack.
        let s = c.without_node(0).unwrap();
        assert_eq!(s.n_nodes(), 4);
        assert_eq!(s.n_racks(), 3);
        assert_eq!((0..4).map(|n| s.rack_of_node(n)).collect::<Vec<_>>(), vec![0, 1, 2, 2]);
        // Losing the only node of rack 1 re-densifies the ids.
        let s = c.without_node(2).unwrap();
        assert_eq!(s.n_nodes(), 4);
        assert_eq!(s.n_racks(), 2);
        assert_eq!((0..4).map(|n| s.rack_of_node(n)).collect::<Vec<_>>(), vec![0, 0, 1, 1]);
        // The shrunk cluster flattens like any other.
        assert_eq!(s.flatten().nb_pus(), 4 * s.pus_per_node());
        // Shrinking to nothing is a typed error.
        let one = paper_cluster(1).unwrap();
        assert_eq!(one.without_node(0).unwrap_err(), ClusterError::NoNodes);
    }

    #[test]
    fn flattened_tree_has_a_group_level_per_node() {
        let c = cluster(4);
        let flat = c.flatten();
        assert_eq!(flat.nb_objects_at_depth(1), 4);
        assert!(flat.objects_at_depth(1).all(|o| o.obj_type == ObjectType::Group));
        assert_eq!(flat.name(), c.name());
        flat.validate().unwrap();
        // Node subtrees own contiguous PU ranges in global order.
        for (i, group) in flat.objects_at_depth(1).enumerate() {
            let pus = group.cpuset.to_vec();
            assert_eq!(pus, (i * 16..(i + 1) * 16).collect::<Vec<_>>());
        }
    }
}
