//! Synthetic topology descriptions and named machine presets.
//!
//! HWLOC can instantiate a topology from a "synthetic" description string
//! such as `"package:24 core:8 pu:1"` instead of probing the operating
//! system; this module provides the same facility.  It also ships the named
//! presets used throughout the reproduction, most importantly
//! [`cluster2016_smp192`], the 24-socket × 8-core SMP machine the paper's
//! evaluation ran on.

use crate::object::ObjectType;
use crate::topology::{LevelSpec, Topology, TopologyError};

/// Parses a synthetic description string into level specifications.
///
/// The grammar is a whitespace-separated list of `type:count` items, e.g.
/// `"package:24 core:8 pu:1"`.  Types accept the aliases documented on
/// [`ObjectType::parse`].  A trailing `pu:N` level is required (it describes
/// hardware threads per core); if the description omits it, `pu:1` is
/// appended automatically for convenience.
pub fn parse_synthetic(desc: &str) -> Result<Vec<LevelSpec>, TopologyError> {
    let mut levels = Vec::new();
    for item in desc.split_whitespace() {
        let (ty, count) = item
            .split_once(':')
            .ok_or_else(|| TopologyError::Parse(format!("item {item:?} is not of the form type:count")))?;
        let ty = ObjectType::parse(ty).map_err(TopologyError::Parse)?;
        let count: usize =
            count.parse().map_err(|e| TopologyError::Parse(format!("bad count in {item:?}: {e}")))?;
        levels.push(LevelSpec::new(ty, count));
    }
    if levels.is_empty() {
        return Err(TopologyError::Parse("empty synthetic description".into()));
    }
    if levels.last().unwrap().obj_type != ObjectType::PU {
        levels.push(LevelSpec::new(ObjectType::PU, 1));
    }
    Ok(levels)
}

/// Builds a topology from a synthetic description string (see
/// [`parse_synthetic`] for the grammar).
pub fn from_synthetic(name: &str, desc: &str) -> Result<Topology, TopologyError> {
    let levels = parse_synthetic(desc)?;
    Topology::from_levels(name, &levels)
}

/// Renders the level specification of a topology back into the synthetic
/// string grammar, e.g. `"package:24 core:8 pu:1"`.  Returns `None` for
/// discovered (non-synthetic) topologies.
pub fn to_synthetic(topo: &Topology) -> Option<String> {
    let spec = topo.level_spec();
    if spec.is_empty() {
        return None;
    }
    Some(spec.iter().map(|l| format!("{}:{}", l.obj_type, l.count)).collect::<Vec<_>>().join(" "))
}

/// The evaluation machine of the paper: an SMP system with 24 sockets of
/// 8 cores each (192 cores total), no hyperthreading.  Each socket is a NUMA
/// node with its own L3 cache.
pub fn cluster2016_smp192() -> Topology {
    from_synthetic("cluster2016-smp192", "numa:24 package:1 l3:1 core:8 pu:1").expect("preset is valid")
}

/// The same machine as [`cluster2016_smp192`] but restricted to the first
/// `sockets` sockets — used for the core-count sweep of Figure 1.
pub fn cluster2016_subset(sockets: usize) -> Result<Topology, TopologyError> {
    if sockets == 0 || sockets > 24 {
        return Err(TopologyError::InvalidLevel(format!("socket count {sockets} outside 1..=24")));
    }
    from_synthetic(
        &format!("cluster2016-smp{}", sockets * 8),
        &format!("numa:{sockets} package:1 l3:1 core:8 pu:1"),
    )
}

/// A common dual-socket server with SMT: 2 sockets × 16 cores × 2 hardware
/// threads (64 PUs).
pub fn dual_socket_smt() -> Topology {
    from_synthetic("dual-socket-smt", "numa:2 package:1 l3:1 core:16 pu:2").expect("preset is valid")
}

/// A quad-socket NUMA machine with two L3 groups per socket:
/// 4 × 2 × 8 cores (64 cores, no SMT).
pub fn quad_socket_l3_groups() -> Topology {
    from_synthetic("quad-socket-l3", "numa:4 package:1 l3:2 core:8 pu:1").expect("preset is valid")
}

/// A laptop-class machine: 1 socket, 4 cores, 2 hardware threads per core.
pub fn laptop() -> Topology {
    from_synthetic("laptop", "package:1 l2:4 core:1 pu:2").expect("preset is valid")
}

/// A single-core fallback machine (what discovery reports in minimal
/// containers).
pub fn uniprocessor() -> Topology {
    from_synthetic("uniprocessor", "package:1 core:1 pu:1").expect("preset is valid")
}

/// All named presets, keyed by name.  Useful for command-line tools.
pub fn preset(name: &str) -> Option<Topology> {
    match name {
        "cluster2016-smp192" | "smp192" | "paper" => Some(cluster2016_smp192()),
        "dual-socket-smt" => Some(dual_socket_smt()),
        "quad-socket-l3" => Some(quad_socket_l3_groups()),
        "laptop" => Some(laptop()),
        "uniprocessor" => Some(uniprocessor()),
        _ => None,
    }
}

/// Names of all available presets.
pub fn preset_names() -> &'static [&'static str] {
    &["cluster2016-smp192", "dual-socket-smt", "quad-socket-l3", "laptop", "uniprocessor"]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_basic_description() {
        let levels = parse_synthetic("package:24 core:8 pu:1").unwrap();
        assert_eq!(levels.len(), 3);
        assert_eq!(levels[0], LevelSpec::new(ObjectType::Package, 24));
        assert_eq!(levels[2], LevelSpec::new(ObjectType::PU, 1));
    }

    #[test]
    fn parse_appends_missing_pu_level() {
        let levels = parse_synthetic("socket:2 core:4").unwrap();
        assert_eq!(levels.last().unwrap(), &LevelSpec::new(ObjectType::PU, 1));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_synthetic("").is_err());
        assert!(parse_synthetic("core").is_err());
        assert!(parse_synthetic("core:x").is_err());
        assert!(parse_synthetic("gadget:4 pu:1").is_err());
    }

    #[test]
    fn synthetic_roundtrip() {
        let t = from_synthetic("t", "numa:2 core:4 pu:2").unwrap();
        assert_eq!(to_synthetic(&t).unwrap(), "numa:2 core:4 pu:2");
        assert_eq!(t.nb_pus(), 16);
    }

    #[test]
    fn paper_machine_preset() {
        let t = cluster2016_smp192();
        assert_eq!(t.nb_pus(), 192);
        assert_eq!(t.nb_cores(), 192);
        assert_eq!(t.objects_of_type(ObjectType::NumaNode).len(), 24);
        assert!(!t.has_hyperthreading());
        t.validate().unwrap();
    }

    #[test]
    fn subset_machines_scale_with_sockets() {
        for sockets in [1, 2, 4, 12, 24] {
            let t = cluster2016_subset(sockets).unwrap();
            assert_eq!(t.nb_pus(), sockets * 8);
        }
        assert!(cluster2016_subset(0).is_err());
        assert!(cluster2016_subset(25).is_err());
    }

    #[test]
    fn other_presets_are_valid() {
        assert_eq!(dual_socket_smt().nb_pus(), 64);
        assert!(dual_socket_smt().has_hyperthreading());
        assert_eq!(quad_socket_l3_groups().nb_pus(), 64);
        assert_eq!(laptop().nb_pus(), 8);
        assert_eq!(uniprocessor().nb_pus(), 1);
        for name in preset_names() {
            assert!(preset(name).is_some(), "preset {name} should resolve");
            preset(name).unwrap().validate().unwrap();
        }
        assert!(preset("nonexistent").is_none());
    }
}
