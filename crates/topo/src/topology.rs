//! The hardware topology tree.
//!
//! A [`Topology`] is an arena of [`TopoObject`]s arranged as a rooted tree:
//! the machine at the root, processing units (PUs) at the leaves, and
//! containment levels (NUMA nodes, packages, caches, cores) in between.
//! This is the information the placement algorithm of the paper obtains from
//! HWLOC; here it is built either synthetically (see
//! [`crate::synthetic`]) or from the operating system (see
//! [`crate::discover`]).

use crate::bitmap::CpuSet;
use crate::object::{ObjId, ObjectAttr, ObjectType, TopoObject};
use std::fmt;

/// Errors produced while building or validating a topology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// A level specification was empty or had a zero count.
    InvalidLevel(String),
    /// The tree violated a structural invariant (detail in the message).
    Invariant(String),
    /// A synthetic description string could not be parsed.
    Parse(String),
    /// Operating-system discovery failed (detail in the message).
    Discovery(String),
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::InvalidLevel(m) => write!(f, "invalid topology level: {m}"),
            TopologyError::Invariant(m) => write!(f, "topology invariant violated: {m}"),
            TopologyError::Parse(m) => write!(f, "cannot parse topology description: {m}"),
            TopologyError::Discovery(m) => write!(f, "topology discovery failed: {m}"),
        }
    }
}

impl std::error::Error for TopologyError {}

/// One level of a balanced synthetic topology: `count` children of type
/// `obj_type` under every object of the previous level.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LevelSpec {
    /// Object type instantiated at this level.
    pub obj_type: ObjectType,
    /// Number of children of this type under each parent.
    pub count: usize,
}

impl LevelSpec {
    /// Convenience constructor.
    pub fn new(obj_type: ObjectType, count: usize) -> Self {
        LevelSpec { obj_type, count }
    }
}

/// The "shape" of a balanced topology tree: the arity of every internal
/// level from the root downwards.  This is the only structural information
/// the TreeMatch algorithm consumes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TreeShape {
    /// `arities[d]` is the number of children of every node at depth `d`.
    /// The last entry corresponds to the level right above the leaves.
    pub arities: Vec<usize>,
}

impl TreeShape {
    /// Creates a shape from per-level arities.
    pub fn new(arities: Vec<usize>) -> Self {
        TreeShape { arities }
    }

    /// Number of levels including the leaf level (i.e. `arities.len() + 1`).
    pub fn depth(&self) -> usize {
        self.arities.len() + 1
    }

    /// Total number of leaves of the balanced tree.
    pub fn leaves(&self) -> usize {
        self.arities.iter().product()
    }

    /// Number of nodes at depth `d` (0 = root).
    pub fn nodes_at_depth(&self, d: usize) -> usize {
        self.arities[..d.min(self.arities.len())].iter().product()
    }

    /// Appends a new deepest level with the given arity, returning the
    /// extended shape.  Used by the oversubscription extension of
    /// Algorithm 1 (adding virtual resources below the physical leaves).
    pub fn with_extra_level(&self, arity: usize) -> TreeShape {
        let mut arities = self.arities.clone();
        arities.push(arity);
        TreeShape { arities }
    }
}

/// A complete hardware topology tree.
///
/// Objects are stored in an arena; [`ObjId`]s index into it.  Levels are
/// pre-indexed so that "all objects at depth *d*" and "all PUs" are O(1)
/// lookups, which is what both the placement algorithm and the simulator
/// need on their hot paths.
#[derive(Clone, Debug)]
pub struct Topology {
    objects: Vec<TopoObject>,
    levels: Vec<Vec<ObjId>>,
    /// Levels used to build this topology when it was synthetic.
    spec: Vec<LevelSpec>,
    name: String,
}

impl Topology {
    /// Builds a balanced topology from level specifications.
    ///
    /// `levels` describes the tree below the implicit machine root, e.g.
    /// `[package:24, core:8, pu:1]` is the paper's 192-core SMP machine.
    /// The final level must be of type [`ObjectType::PU`].
    pub fn from_levels(name: &str, levels: &[LevelSpec]) -> Result<Self, TopologyError> {
        if levels.is_empty() {
            return Err(TopologyError::InvalidLevel("no levels given".into()));
        }
        for l in levels {
            if l.count == 0 {
                return Err(TopologyError::InvalidLevel(format!("level {} has count 0", l.obj_type)));
            }
            if l.obj_type == ObjectType::Machine {
                return Err(TopologyError::InvalidLevel(
                    "the machine root is implicit and must not appear in the level list".into(),
                ));
            }
        }
        if levels.last().unwrap().obj_type != ObjectType::PU {
            return Err(TopologyError::InvalidLevel("deepest level must be of type pu".into()));
        }

        let mut topo = Topology {
            objects: Vec::new(),
            levels: Vec::new(),
            spec: levels.to_vec(),
            name: name.to_string(),
        };

        // Root.
        let root = topo.push_object(ObjectType::Machine, 0, 0, None);
        let mut frontier = vec![root];

        // Build level by level, then assign PU indices and propagate cpusets.
        for (depth, spec) in levels.iter().enumerate() {
            let mut next = Vec::with_capacity(frontier.len() * spec.count);
            for &parent in &frontier {
                for _ in 0..spec.count {
                    let logical = next.len();
                    let child = topo.push_object(spec.obj_type, depth + 1, logical, Some(parent));
                    topo.objects[parent.index()].children.push(child);
                    next.push(child);
                }
            }
            frontier = next;
        }

        // The frontier now holds the PUs in left-to-right order: their
        // logical index is also their OS index for a synthetic machine.
        for (i, &pu) in frontier.iter().enumerate() {
            topo.objects[pu.index()].os_index = i;
            topo.objects[pu.index()].cpuset = CpuSet::singleton(i);
        }
        topo.propagate_cpusets(root);
        topo.rebuild_levels();
        topo.validate()?;
        Ok(topo)
    }

    fn push_object(
        &mut self,
        obj_type: ObjectType,
        depth: usize,
        logical_index: usize,
        parent: Option<ObjId>,
    ) -> ObjId {
        let id = ObjId(self.objects.len() as u32);
        self.objects.push(TopoObject {
            id,
            obj_type,
            depth,
            logical_index,
            os_index: logical_index,
            cpuset: CpuSet::new(),
            parent,
            children: Vec::new(),
            attr: ObjectAttr::default(),
        });
        id
    }

    fn propagate_cpusets(&mut self, node: ObjId) -> CpuSet {
        let children = self.objects[node.index()].children.clone();
        if children.is_empty() {
            return self.objects[node.index()].cpuset.clone();
        }
        let mut acc = CpuSet::new();
        for c in children {
            let cs = self.propagate_cpusets(c);
            acc.or_assign(&cs);
        }
        self.objects[node.index()].cpuset = acc.clone();
        acc
    }

    fn rebuild_levels(&mut self) {
        let max_depth = self.objects.iter().map(|o| o.depth).max().unwrap_or(0);
        self.levels = vec![Vec::new(); max_depth + 1];
        for o in &self.objects {
            self.levels[o.depth].push(o.id);
        }
        // Keep each level sorted by logical index (left-to-right order).
        for level in &mut self.levels {
            let objs = &self.objects;
            level.sort_by_key(|id| objs[id.index()].logical_index);
        }
    }

    /// Constructs a topology directly from pre-built objects.  Used by the
    /// OS discovery code; the objects must already form a consistent tree.
    pub(crate) fn from_objects(name: &str, objects: Vec<TopoObject>) -> Result<Self, TopologyError> {
        let mut topo = Topology { objects, levels: Vec::new(), spec: Vec::new(), name: name.to_string() };
        topo.rebuild_levels();
        topo.validate()?;
        Ok(topo)
    }

    /// Human-readable name of this topology (e.g. `"cluster2016-smp192"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The level specification this topology was synthesised from, empty for
    /// discovered topologies.
    pub fn level_spec(&self) -> &[LevelSpec] {
        &self.spec
    }

    /// The root (machine) object.
    pub fn root(&self) -> &TopoObject {
        &self.objects[0]
    }

    /// Total number of objects in the tree.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// True when the topology holds no objects (never the case for a
    /// successfully built topology).
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Access an object by id.
    pub fn object(&self, id: ObjId) -> &TopoObject {
        &self.objects[id.index()]
    }

    /// Iterates over all objects in arena order.
    pub fn objects(&self) -> impl Iterator<Item = &TopoObject> {
        self.objects.iter()
    }

    /// Depth of the tree: number of levels including machine and PU levels.
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// Objects at the given depth, in left-to-right order.
    pub fn objects_at_depth(&self, depth: usize) -> impl Iterator<Item = &TopoObject> {
        self.levels.get(depth).into_iter().flatten().map(move |id| self.object(*id))
    }

    /// Number of objects at the given depth.
    pub fn nb_objects_at_depth(&self, depth: usize) -> usize {
        self.levels.get(depth).map_or(0, |l| l.len())
    }

    /// Depth of the first level whose objects have the given type, if any.
    pub fn depth_of_type(&self, ty: ObjectType) -> Option<usize> {
        (0..self.depth()).find(|&d| self.levels[d].first().map(|id| self.object(*id).obj_type) == Some(ty))
    }

    /// All objects of a given type, in left-to-right order.
    pub fn objects_of_type(&self, ty: ObjectType) -> Vec<&TopoObject> {
        match self.depth_of_type(ty) {
            Some(d) => self.objects_at_depth(d).collect(),
            None => Vec::new(),
        }
    }

    /// The processing units (leaves), in left-to-right order.
    pub fn pus(&self) -> Vec<&TopoObject> {
        self.objects_of_type(ObjectType::PU)
    }

    /// Number of processing units.
    pub fn nb_pus(&self) -> usize {
        self.nb_objects_at_depth(self.depth() - 1)
    }

    /// Number of physical cores (falls back to the PU count when the
    /// topology has no explicit core level).
    pub fn nb_cores(&self) -> usize {
        match self.depth_of_type(ObjectType::Core) {
            Some(d) => self.nb_objects_at_depth(d),
            None => self.nb_pus(),
        }
    }

    /// True when cores expose more than one hardware thread.
    pub fn has_hyperthreading(&self) -> bool {
        self.nb_pus() > self.nb_cores()
    }

    /// Returns the PU object with the given OS index, if any.
    pub fn pu_by_os_index(&self, os_index: usize) -> Option<&TopoObject> {
        self.pus().into_iter().find(|pu| pu.os_index == os_index)
    }

    /// Walks up from `id` to the root, yielding every ancestor (excluding
    /// `id` itself, including the root).
    pub fn ancestors(&self, id: ObjId) -> Vec<ObjId> {
        let mut v = Vec::new();
        let mut cur = self.object(id).parent;
        while let Some(p) = cur {
            v.push(p);
            cur = self.object(p).parent;
        }
        v
    }

    /// Deepest common ancestor of two objects.
    pub fn common_ancestor(&self, a: ObjId, b: ObjId) -> ObjId {
        let mut pa = Some(a);
        let mut pb = Some(b);
        // Equalise depths first.
        while let (Some(x), Some(y)) = (pa, pb) {
            let (da, db) = (self.object(x).depth, self.object(y).depth);
            if da > db {
                pa = self.object(x).parent;
            } else if db > da {
                pb = self.object(y).parent;
            } else if x == y {
                return x;
            } else {
                pa = self.object(x).parent;
                pb = self.object(y).parent;
            }
        }
        self.root().id
    }

    /// Depth of the deepest common ancestor of two PUs given by OS index.
    /// The larger the value, the "closer" the PUs are in the hierarchy
    /// (higher values mean a more deeply shared resource, e.g. an L2 cache).
    pub fn shared_level_of_pus(&self, pu_a: usize, pu_b: usize) -> usize {
        let a = self.pu_by_os_index(pu_a).map(|o| o.id);
        let b = self.pu_by_os_index(pu_b).map(|o| o.id);
        match (a, b) {
            (Some(a), Some(b)) => self.object(self.common_ancestor(a, b)).depth,
            _ => 0,
        }
    }

    /// Hop distance between two PUs: the number of tree edges on the path
    /// between them (0 for the same PU).  This is the structural distance
    /// used by the locality metrics.
    pub fn hop_distance(&self, pu_a: usize, pu_b: usize) -> usize {
        if pu_a == pu_b {
            return 0;
        }
        let leaf_depth = self.depth() - 1;
        let shared = self.shared_level_of_pus(pu_a, pu_b);
        2 * (leaf_depth - shared)
    }

    /// The balanced tree shape consumed by the TreeMatch algorithm.
    ///
    /// For irregular (discovered) trees the arity of each level is the
    /// *maximum* arity observed at that level; TreeMatch then works on the
    /// virtualised balanced tree, which is the standard approach.
    pub fn shape(&self) -> TreeShape {
        let mut arities = Vec::new();
        for d in 0..self.depth() - 1 {
            let max_arity = self.objects_at_depth(d).map(|o| o.arity()).max().unwrap_or(0).max(1);
            arities.push(max_arity);
        }
        TreeShape { arities }
    }

    /// OS indices of all PUs in left-to-right (locality-preserving) order.
    pub fn pu_os_indices(&self) -> Vec<usize> {
        self.pus().iter().map(|pu| pu.os_index).collect()
    }

    /// Checks structural invariants; returns the first violation found.
    pub fn validate(&self) -> Result<(), TopologyError> {
        if self.objects.is_empty() {
            return Err(TopologyError::Invariant("empty topology".into()));
        }
        if self.root().parent.is_some() {
            return Err(TopologyError::Invariant("root has a parent".into()));
        }
        for o in &self.objects {
            for &c in &o.children {
                let child = self.object(c);
                if child.parent != Some(o.id) {
                    return Err(TopologyError::Invariant(format!(
                        "child {} of {} has wrong parent link",
                        child.describe(),
                        o.describe()
                    )));
                }
                if child.depth != o.depth + 1 {
                    return Err(TopologyError::Invariant(format!(
                        "child {} of {} has depth {} (expected {})",
                        child.describe(),
                        o.describe(),
                        child.depth,
                        o.depth + 1
                    )));
                }
                if !child.cpuset.is_subset_of(&o.cpuset) {
                    return Err(TopologyError::Invariant(format!(
                        "cpuset of child {} is not contained in parent {}",
                        child.describe(),
                        o.describe()
                    )));
                }
            }
            if !o.children.is_empty() {
                let union = o.children.iter().fold(CpuSet::new(), |acc, c| acc.or(&self.object(*c).cpuset));
                if union != o.cpuset {
                    return Err(TopologyError::Invariant(format!(
                        "cpuset of {} is not the union of its children",
                        o.describe()
                    )));
                }
            }
            if o.is_leaf() && o.cpuset.weight() != 1 {
                return Err(TopologyError::Invariant(format!(
                    "PU {} does not have a singleton cpuset",
                    o.describe()
                )));
            }
        }
        // PUs must have distinct OS indices.
        let mut seen = std::collections::HashSet::new();
        for pu in self.pus() {
            if !seen.insert(pu.os_index) {
                return Err(TopologyError::Invariant(format!("duplicate PU os_index {}", pu.os_index)));
            }
        }
        Ok(())
    }

    /// Renders the tree as an indented ASCII outline (one object per line),
    /// similar to `lstopo --of console`.
    pub fn render_ascii(&self) -> String {
        let mut out = String::new();
        self.render_rec(self.root().id, 0, &mut out);
        out
    }

    fn render_rec(&self, id: ObjId, indent: usize, out: &mut String) {
        let o = self.object(id);
        out.push_str(&" ".repeat(indent * 2));
        out.push_str(&o.describe());
        out.push('\n');
        // Collapse long runs of identical leaves for readability.
        if o.children.len() > 8 && self.object(o.children[0]).is_leaf() {
            let first = self.object(o.children[0]);
            let last = self.object(*o.children.last().unwrap());
            out.push_str(&" ".repeat((indent + 1) * 2));
            out.push_str(&format!(
                "{} .. {} ({} PUs)\n",
                first.describe(),
                last.describe(),
                o.children.len()
            ));
            return;
        }
        for &c in &o.children {
            self.render_rec(c, indent + 1, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smp(packages: usize, cores: usize) -> Topology {
        Topology::from_levels(
            "test",
            &[
                LevelSpec::new(ObjectType::Package, packages),
                LevelSpec::new(ObjectType::Core, cores),
                LevelSpec::new(ObjectType::PU, 1),
            ],
        )
        .unwrap()
    }

    #[test]
    fn build_paper_machine() {
        let t = smp(24, 8);
        assert_eq!(t.nb_pus(), 192);
        assert_eq!(t.nb_cores(), 192);
        assert!(!t.has_hyperthreading());
        assert_eq!(t.depth(), 4); // machine, package, core, pu
        assert_eq!(t.nb_objects_at_depth(1), 24);
        assert_eq!(t.nb_objects_at_depth(2), 192);
        assert_eq!(t.root().cpuset.weight(), 192);
        t.validate().unwrap();
    }

    #[test]
    fn shape_matches_levels() {
        let t = smp(24, 8);
        let shape = t.shape();
        assert_eq!(shape.arities, vec![24, 8, 1]);
        assert_eq!(shape.leaves(), 192);
        assert_eq!(shape.depth(), 4);
        assert_eq!(shape.nodes_at_depth(0), 1);
        assert_eq!(shape.nodes_at_depth(1), 24);
        assert_eq!(shape.nodes_at_depth(2), 192);
        let extended = shape.with_extra_level(2);
        assert_eq!(extended.leaves(), 384);
    }

    #[test]
    fn rejects_bad_levels() {
        assert!(Topology::from_levels("x", &[]).is_err());
        assert!(Topology::from_levels("x", &[LevelSpec::new(ObjectType::Core, 0)]).is_err());
        assert!(Topology::from_levels("x", &[LevelSpec::new(ObjectType::Core, 4)]).is_err());
        assert!(Topology::from_levels(
            "x",
            &[LevelSpec::new(ObjectType::Machine, 1), LevelSpec::new(ObjectType::PU, 2)]
        )
        .is_err());
    }

    #[test]
    fn pu_cpusets_are_singletons_in_order() {
        let t = smp(2, 3);
        let pus = t.pus();
        assert_eq!(pus.len(), 6);
        for (i, pu) in pus.iter().enumerate() {
            assert_eq!(pu.os_index, i);
            assert_eq!(pu.cpuset, CpuSet::singleton(i));
        }
    }

    #[test]
    fn ancestors_and_common_ancestor() {
        let t = smp(2, 2);
        let pus = t.pus();
        let p0 = pus[0].id;
        let p1 = pus[1].id;
        let p2 = pus[2].id;
        // Same package → common ancestor is that package.
        let ca01 = t.object(t.common_ancestor(p0, p1));
        assert_eq!(ca01.obj_type, ObjectType::Package);
        // Different packages → machine.
        let ca02 = t.object(t.common_ancestor(p0, p2));
        assert_eq!(ca02.obj_type, ObjectType::Machine);
        // Self → self.
        assert_eq!(t.common_ancestor(p0, p0), p0);
        let anc = t.ancestors(p0);
        assert_eq!(anc.len(), 3); // core, package, machine
        assert_eq!(t.object(*anc.last().unwrap()).obj_type, ObjectType::Machine);
    }

    #[test]
    fn shared_level_and_hop_distance() {
        let t = Topology::from_levels(
            "smt",
            &[
                LevelSpec::new(ObjectType::Package, 2),
                LevelSpec::new(ObjectType::Core, 2),
                LevelSpec::new(ObjectType::PU, 2),
            ],
        )
        .unwrap();
        // PUs 0 and 1 share a core (depth 2 within machine/package/core/pu).
        assert_eq!(t.shared_level_of_pus(0, 1), 2);
        // PUs 0 and 2 share only the package (depth 1).
        assert_eq!(t.shared_level_of_pus(0, 2), 1);
        // PUs 0 and 4 share only the machine (depth 0).
        assert_eq!(t.shared_level_of_pus(0, 4), 0);
        assert_eq!(t.hop_distance(0, 0), 0);
        assert!(t.hop_distance(0, 1) < t.hop_distance(0, 2));
        assert!(t.hop_distance(0, 2) < t.hop_distance(0, 4));
    }

    #[test]
    fn depth_of_type_queries() {
        let t = smp(4, 2);
        assert_eq!(t.depth_of_type(ObjectType::Machine), Some(0));
        assert_eq!(t.depth_of_type(ObjectType::Package), Some(1));
        assert_eq!(t.depth_of_type(ObjectType::Core), Some(2));
        assert_eq!(t.depth_of_type(ObjectType::PU), Some(3));
        assert_eq!(t.depth_of_type(ObjectType::L3Cache), None);
        assert_eq!(t.objects_of_type(ObjectType::Package).len(), 4);
    }

    #[test]
    fn pu_by_os_index_lookup() {
        let t = smp(2, 2);
        assert_eq!(t.pu_by_os_index(3).unwrap().os_index, 3);
        assert!(t.pu_by_os_index(99).is_none());
    }

    #[test]
    fn hyperthreading_detection() {
        let smt = Topology::from_levels(
            "smt",
            &[
                LevelSpec::new(ObjectType::Package, 1),
                LevelSpec::new(ObjectType::Core, 4),
                LevelSpec::new(ObjectType::PU, 2),
            ],
        )
        .unwrap();
        assert!(smt.has_hyperthreading());
        assert_eq!(smt.nb_cores(), 4);
        assert_eq!(smt.nb_pus(), 8);
        assert!(!smp(2, 4).has_hyperthreading());
    }

    #[test]
    fn render_ascii_contains_root_and_levels() {
        let t = smp(2, 2);
        let txt = t.render_ascii();
        assert!(txt.contains("machine#0"));
        assert!(txt.contains("package#1"));
    }

    #[test]
    fn deep_hierarchy_with_caches_and_numa() {
        let t = Topology::from_levels(
            "deep",
            &[
                LevelSpec::new(ObjectType::NumaNode, 4),
                LevelSpec::new(ObjectType::Package, 1),
                LevelSpec::new(ObjectType::L3Cache, 1),
                LevelSpec::new(ObjectType::L2Cache, 4),
                LevelSpec::new(ObjectType::Core, 2),
                LevelSpec::new(ObjectType::PU, 2),
            ],
        )
        .unwrap();
        assert_eq!(t.nb_pus(), 4 * 4 * 2 * 2);
        assert_eq!(t.shape().arities, vec![4, 1, 1, 4, 2, 2]);
        assert_eq!(t.nb_cores(), 32);
        t.validate().unwrap();
    }
}
