//! Property-based tests for the topology crate: bitmap algebra laws and
//! structural invariants of synthetically generated topologies.

use orwl_topo::bitmap::CpuSet;
use orwl_topo::object::ObjectType;
use orwl_topo::topology::{LevelSpec, Topology};
use proptest::prelude::*;

fn cpuset_strategy() -> impl Strategy<Value = CpuSet> {
    proptest::collection::vec(0usize..256, 0..32).prop_map(CpuSet::from_indices)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn union_weight_bounds(a in cpuset_strategy(), b in cpuset_strategy()) {
        let u = a.or(&b);
        prop_assert!(u.weight() >= a.weight().max(b.weight()));
        prop_assert!(u.weight() <= a.weight() + b.weight());
        prop_assert!(a.is_subset_of(&u));
        prop_assert!(b.is_subset_of(&u));
    }

    #[test]
    fn intersection_is_subset_of_both(a in cpuset_strategy(), b in cpuset_strategy()) {
        let i = a.and(&b);
        prop_assert!(i.is_subset_of(&a));
        prop_assert!(i.is_subset_of(&b));
        prop_assert_eq!(i.weight() + a.or(&b).weight(), a.weight() + b.weight());
    }

    #[test]
    fn demorgan_difference(a in cpuset_strategy(), b in cpuset_strategy()) {
        // a \ b and a ∩ b partition a.
        let diff = a.andnot(&b);
        let inter = a.and(&b);
        prop_assert_eq!(diff.or(&inter), a.clone());
        prop_assert!(diff.and(&inter).is_empty());
    }

    #[test]
    fn xor_is_symmetric_difference(a in cpuset_strategy(), b in cpuset_strategy()) {
        let x = a.xor(&b);
        let expected = a.andnot(&b).or(&b.andnot(&a));
        prop_assert_eq!(x, expected);
    }

    #[test]
    fn display_parse_roundtrip(a in cpuset_strategy()) {
        let text = format!("{a}");
        let parsed = CpuSet::parse_list(&text).unwrap();
        prop_assert_eq!(parsed, a);
    }

    #[test]
    fn iteration_is_sorted_and_unique(a in cpuset_strategy()) {
        let v = a.to_vec();
        prop_assert_eq!(v.len(), a.weight());
        for w in v.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
        for &i in &v {
            prop_assert!(a.is_set(i));
        }
    }

    #[test]
    fn synthetic_topology_invariants(
        packages in 1usize..6,
        l3 in 1usize..3,
        cores in 1usize..6,
        pus in 1usize..3,
    ) {
        let topo = Topology::from_levels(
            "prop",
            &[
                LevelSpec::new(ObjectType::Package, packages),
                LevelSpec::new(ObjectType::L3Cache, l3),
                LevelSpec::new(ObjectType::Core, cores),
                LevelSpec::new(ObjectType::PU, pus),
            ],
        ).unwrap();

        // Structural invariants hold.
        topo.validate().unwrap();
        // Leaf count equals the product of level counts.
        prop_assert_eq!(topo.nb_pus(), packages * l3 * cores * pus);
        // The shape reproduces the level counts.
        prop_assert_eq!(topo.shape().arities, vec![packages, l3, cores, pus]);
        prop_assert_eq!(topo.shape().leaves(), topo.nb_pus());
        // Root spans every PU.
        prop_assert_eq!(topo.root().cpuset.weight(), topo.nb_pus());
        // Hop distance is a metric-ish: symmetric, zero on diagonal.
        let n = topo.nb_pus();
        for a in 0..n.min(6) {
            for b in 0..n.min(6) {
                prop_assert_eq!(topo.hop_distance(a, b), topo.hop_distance(b, a));
                if a == b {
                    prop_assert_eq!(topo.hop_distance(a, b), 0);
                }
            }
        }
    }

    #[test]
    fn hyperthreading_flag_matches_pu_per_core(cores in 1usize..5, pus in 1usize..4) {
        let topo = Topology::from_levels(
            "prop-smt",
            &[
                LevelSpec::new(ObjectType::Package, 2),
                LevelSpec::new(ObjectType::Core, cores),
                LevelSpec::new(ObjectType::PU, pus),
            ],
        ).unwrap();
        prop_assert_eq!(topo.has_hyperthreading(), pus > 1);
        prop_assert_eq!(topo.nb_cores() * pus, topo.nb_pus());
    }
}
