//! Experiment A4 — ORWL runtime micro-benchmarks: request/acquire/release
//! throughput on a single location, FIFO fairness under contention, and the
//! end-to-end cost of running a small real ORWL program.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use orwl_core::prelude::*;
use orwl_core::Location;
use std::sync::Arc;

fn bench_lock_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("orwl_lock");
    group.sample_size(20);

    group.bench_function("uncontended_write_cycle", |b| {
        let loc = Location::new("bench", 0u64);
        let mut h = loc.iterative_handle(AccessMode::Write);
        b.iter(|| {
            let mut g = h.acquire().unwrap();
            *g += 1;
        });
    });

    group.bench_function("uncontended_read_cycle", |b| {
        let loc = Location::new("bench", 0u64);
        let mut h = loc.iterative_handle(AccessMode::Read);
        b.iter(|| {
            let g = h.acquire().unwrap();
            criterion::black_box(*g);
        });
    });

    for threads in [2usize, 4] {
        group.bench_with_input(BenchmarkId::new("contended_increments", threads), &threads, |b, &n| {
            b.iter(|| {
                let loc = Location::new("bench", 0u64);
                std::thread::scope(|s| {
                    for _ in 0..n {
                        let loc = Arc::clone(&loc);
                        s.spawn(move || {
                            let mut h = loc.iterative_handle(AccessMode::Write);
                            for _ in 0..200 {
                                let mut g = h.acquire().unwrap();
                                *g += 1;
                            }
                        });
                    }
                });
                assert_eq!(loc.snapshot(), 200 * n as u64);
            });
        });
    }
    group.finish();
}

fn bench_runtime_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("orwl_runtime");
    group.sample_size(10);
    let session = Session::builder()
        .topology(orwl_topo::discover::discover())
        .policy(Policy::NoBind)
        .backend(ThreadBackend)
        .build()
        .expect("the host topology supports one control thread");
    for tasks in [2usize, 8] {
        group.bench_with_input(BenchmarkId::new("ring_program", tasks), &tasks, |b, &n| {
            b.iter(|| {
                let locs: Vec<_> = (0..n).map(|i| Location::new(format!("l{i}"), 0u64)).collect();
                let mut program = OrwlProgram::new();
                for t in 0..n {
                    let me = Arc::clone(&locs[t]);
                    let prev = Arc::clone(&locs[(t + n - 1) % n]);
                    program.add_task(
                        TaskSpec::new(
                            format!("t{t}"),
                            vec![
                                LocationLink::write(locs[t].id(), 8.0),
                                LocationLink::read(locs[(t + n - 1) % n].id(), 8.0),
                            ],
                        ),
                        move |_| {
                            let mut w = me.iterative_handle(AccessMode::Write);
                            let mut r = prev.iterative_handle(AccessMode::Read);
                            for i in 0..50u64 {
                                *w.acquire().unwrap() = i;
                                criterion::black_box(*r.acquire().unwrap());
                            }
                        },
                    );
                }
                session.run(program).unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_lock_throughput, bench_runtime_end_to_end);
criterion_main!(benches);
