//! Experiment A6 — real-execution LK23 micro-benchmarks on the host machine:
//! sequential sweeps, the OpenMP-like fork-join version and the ORWL version
//! on small grids (correctness-scale; the NUMA-scale evaluation lives in the
//! figure1 bench, on the simulator).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use orwl_core::prelude::*;
use orwl_lk23::blocks::BlockDecomposition;
use orwl_lk23::kernel::{reference_jacobi, Grid};
use orwl_lk23::openmp_like::run_openmp_like;
use orwl_lk23::orwl_impl::run_orwl;

fn bench_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("lk23_kernel");
    group.sample_size(10);

    let session = Session::builder()
        .topology(orwl_topo::discover::discover())
        .policy(Policy::NoBind)
        .backend(ThreadBackend)
        .build()
        .expect("the host topology supports one control thread");
    for n in [128usize, 256] {
        let grid = Grid::initial(n, n);
        group.bench_with_input(BenchmarkId::new("sequential", n), &grid, |b, g| {
            b.iter(|| reference_jacobi(g, 4));
        });
        group.bench_with_input(BenchmarkId::new("openmp_like_2t", n), &grid, |b, g| {
            b.iter(|| run_openmp_like(g, 4, 2));
        });
        group.bench_with_input(BenchmarkId::new("orwl_nobind_2x2", n), &grid, |b, g| {
            b.iter(|| {
                let decomp = BlockDecomposition::new(n, n, 2, 2).unwrap();
                run_orwl(g, decomp, 4, &session).unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kernel);
criterion_main!(benches);
