//! Experiment C1 — cluster scaling: cost of the two-level placement and of
//! one simulated multi-node step as the node count grows (2 → 8 nodes).
//! The placement runs once at launch (and once per accepted adaptive
//! migration), so it must stay cheap; the per-step simulation cost bounds
//! the sweep throughput of the experiment harness.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use orwl_cluster::{hierarchical_placement, simulate_cluster, ClusterMachine};
use orwl_comm::patterns::{stencil_2d, StencilSpec};
use orwl_numasim::exec::NoopSimMonitor;
use orwl_numasim::taskgraph::TaskGraph;

fn workload_for(machine: &ClusterMachine) -> TaskGraph {
    // One task per PU, the paper's 9-point stencil decomposition.
    let side = (machine.n_pus() as f64).sqrt().round() as usize;
    let matrix = stencil_2d(&StencilSpec::nine_point_blocks(side, 1024, 8));
    TaskGraph::from_matrix(&matrix, 16384.0, 131072.0)
}

fn bench_cluster_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("cluster_scaling");
    group.sample_size(10);

    for n_nodes in [2usize, 4, 8] {
        let machine = ClusterMachine::paper(n_nodes);
        let graph = workload_for(&machine);
        let matrix = graph.comm_matrix().symmetrized();

        group.bench_with_input(BenchmarkId::new("two_level_placement", n_nodes), &matrix, |b, m| {
            b.iter(|| hierarchical_placement(&machine, m));
        });

        let placement = hierarchical_placement(&machine, &matrix);
        let mapping = placement.global_mapping(&machine);
        group.bench_with_input(BenchmarkId::new("simulated_step", n_nodes), &graph, |b, g| {
            b.iter(|| simulate_cluster(&machine, g, &mapping, 1, &mut NoopSimMonitor));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cluster_scaling);
criterion_main!(benches);
