//! Experiment E1/E2 — Figure 1 of the paper: processing time of the three
//! LK23 implementations (OpenMP, ORWL NoBind, ORWL Bind) as the core count
//! grows on the simulated 24-socket × 8-core SMP machine, plus the headline
//! speedups at 192 cores.
//!
//! Run with `cargo bench -p orwl-bench --bench figure1`.  The full series
//! (and its CSV form) is printed to stderr before the Criterion timings.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use orwl_bench::figure1::{default_socket_counts, figure1_sweep, headline, render_csv, render_table};

fn bench_figure1(c: &mut Criterion) {
    // Regenerate the whole figure once and print it (this is the artifact
    // EXPERIMENTS.md records).
    let rows = figure1_sweep(&default_socket_counts(), 10, 42);
    eprintln!("\n=== Figure 1 (simulated 24x8-core SMP, LK23 16384^2, scaled to 100 iterations) ===");
    eprintln!("{}", render_table(&rows));
    eprintln!("--- CSV ---\n{}", render_csv(&rows));
    let h = headline(&rows);
    eprintln!(
        "headline @ {} cores: ORWL Bind = {:.1}s, speedup vs OpenMP = {:.2} (paper ~5), vs NoBind = {:.2} (paper ~2.8)\n",
        h.cores, h.orwl_bind_seconds, h.speedup_vs_openmp, h.speedup_vs_nobind
    );

    // Criterion timings: cost of simulating each configuration at 192 cores.
    let mut group = c.benchmark_group("figure1_sim");
    group.sample_size(10);
    for sockets in [4usize, 24] {
        group.bench_with_input(BenchmarkId::new("sweep_point", sockets * 8), &sockets, |b, &s| {
            b.iter(|| figure1_sweep(&[s], 3, 42));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_figure1);
criterion_main!(benches);
