//! Experiment A5 — TreeMatch scaling: cost of computing the placement as the
//! communication matrix grows (the algorithm runs once at launch time, so it
//! must stay cheap up to a few thousand tasks).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use orwl_comm::patterns::{random_symmetric, stencil_2d, StencilSpec};
use orwl_topo::synthetic;
use orwl_treematch::policies::{compute_placement, Policy};

fn bench_treematch_scaling(c: &mut Criterion) {
    let topo = synthetic::cluster2016_smp192();
    let mut group = c.benchmark_group("treematch_scaling");
    group.sample_size(10);

    for side in [8usize, 12, 16] {
        let matrix = stencil_2d(&StencilSpec::nine_point_blocks(side, 1024, 8));
        group.bench_with_input(BenchmarkId::new("stencil_tasks", side * side), &matrix, |b, m| {
            b.iter(|| compute_placement(Policy::TreeMatch, &topo, m, 1));
        });
    }
    for n in [64usize, 192] {
        let matrix = random_symmetric(n, 0.3, 1.0e6, 7);
        group.bench_with_input(BenchmarkId::new("random_tasks", n), &matrix, |b, m| {
            b.iter(|| compute_placement(Policy::TreeMatch, &topo, m, 1));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_treematch_scaling);
criterion_main!(benches);
