//! Experiment E-adapt — cost of the online adaptation loop:
//!
//! * per-epoch monitoring overhead: the price of recording transfers into
//!   the `OnlineCommMatrix` and rolling the window, at several task counts;
//! * the full decision stack (drift observation + budgeted re-placement)
//!   once per epoch;
//! * time-to-converge: simulated epochs between a rotated-stencil phase
//!   change and the adaptive policy's migration, printed before the
//!   Criterion timings.
//!
//! Run with `cargo bench -p orwl-bench --bench adaptive_replacement`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use orwl_adapt::backend::SimBackend;
use orwl_adapt::drift::DriftDetector;
use orwl_adapt::engine::AdaptConfig;
use orwl_adapt::online::OnlineCommMatrix;
use orwl_adapt::replace::Replacer;
use orwl_comm::patterns::{stencil_2d_directional, stencil_2d_rotated, StencilSpec};
use orwl_core::runtime::AdaptiveSpec;
use orwl_core::session::Session;
use orwl_numasim::costmodel::CostParams;
use orwl_numasim::machine::SimMachine;
use orwl_numasim::workload::PhasedWorkload;
use orwl_topo::synthetic;
use orwl_treematch::policies::{compute_placement, Policy};

const EPOCH_ITERATIONS: usize = 4;

fn adaptive_session(machine: &SimMachine) -> Session {
    Session::builder()
        .topology(machine.topology().clone())
        .policy(Policy::TreeMatch)
        .control_threads(0)
        .adaptive(AdaptiveSpec::per_iterations(EPOCH_ITERATIONS))
        .backend(SimBackend::new(machine.clone()).with_adapt_config(AdaptConfig::evaluation()))
        .build()
        .expect("the adaptive bench configuration is valid")
}

/// Epochs from the phase boundary to the first migration, on the rotating
/// stencil — the subsystem's reaction latency.
fn time_to_converge(side: usize) -> Option<usize> {
    let sockets = (side * side).div_ceil(8).max(2);
    let machine = SimMachine::new(synthetic::cluster2016_subset(sockets).unwrap(), CostParams::cluster2016());
    let phase1 = 24usize;
    let workload = PhasedWorkload::rotating_stencil(side, 65536.0, 1024.0, 16384.0, 131072.0, &[phase1, 120]);
    let report = adaptive_session(&machine).run(workload).expect("the convergence workload simulates");
    let adapt = report.adapt.expect("adaptive sessions report counters");
    if adapt.replacements == 0 {
        return None;
    }
    // Deltas are recorded once per warmed epoch; find the first epoch after
    // the boundary whose delta exceeded the threshold, then count epochs
    // until the migration reset the baseline (delta drops back down).
    let boundary_epoch = phase1 / EPOCH_ITERATIONS;
    let fired_at = adapt
        .drift_deltas
        .iter()
        .enumerate()
        .position(|(e, &d)| e + 1 > boundary_epoch && d > AdaptConfig::evaluation().drift.threshold)?;
    Some(fired_at + 1 - boundary_epoch)
}

fn bench_adaptive(c: &mut Criterion) {
    // --- headline numbers printed once, like the figure1 harness ---------
    for side in [4usize, 6, 8] {
        match time_to_converge(side) {
            Some(epochs) => eprintln!(
                "time-to-converge ({}x{side} tasks): {epochs} epoch(s) after the phase boundary",
                side
            ),
            None => eprintln!("time-to-converge ({side}x{side} tasks): no migration (unexpected)"),
        }
    }

    // --- per-epoch monitoring overhead -----------------------------------
    let mut group = c.benchmark_group("adaptive_replacement");
    group.sample_size(20);
    for side in [4usize, 8, 12] {
        let n = side * side;
        let spec = StencilSpec { rows: side, cols: side, edge_volume: 0.0, corner_volume: 128.0 };
        let matrix = stencil_2d_directional(&spec, 65536.0, 1024.0);
        group.bench_with_input(BenchmarkId::new("record_and_roll_epoch", n), &matrix, |b, m| {
            let mut online = OnlineCommMatrix::new(n, 0.2);
            b.iter(|| {
                for src in 0..n {
                    for dst in 0..n {
                        let v = m.get(src, dst);
                        if v > 0.0 {
                            online.record(src, dst, v);
                        }
                    }
                }
                criterion::black_box(online.roll_epoch())
            });
        });
    }

    // --- the per-epoch decision stack (drift + replacement budget) --------
    for side in [4usize, 8] {
        let n = side * side;
        let sockets = n.div_ceil(8).max(2);
        let topo = synthetic::cluster2016_subset(sockets).unwrap();
        let spec = StencilSpec { rows: side, cols: side, edge_volume: 0.0, corner_volume: 128.0 };
        let before = stencil_2d_directional(&spec, 65536.0, 1024.0);
        let after = stencil_2d_rotated(&spec, 65536.0, 1024.0);
        let placement = compute_placement(Policy::TreeMatch, &topo, &before, 0);
        let mapping = placement.compute_mapping_or_zero();
        group.bench_with_input(BenchmarkId::new("drift_and_replace_decision", n), &after, |b, live| {
            let replacer = Replacer::new(AdaptConfig::evaluation().replacer);
            b.iter(|| {
                let mut detector = DriftDetector::new(AdaptConfig::evaluation().drift);
                let obs = detector.observe(&topo, &mapping, &before, live);
                if obs.fired {
                    criterion::black_box(replacer.evaluate(&topo, live, &placement, 0));
                }
            });
        });
    }

    // --- the whole loop on the phase-changing workload --------------------
    let machine = SimMachine::new(synthetic::cluster2016_subset(2).unwrap(), CostParams::cluster2016());
    let workload = PhasedWorkload::rotating_stencil(4, 65536.0, 1024.0, 16384.0, 131072.0, &[24, 72]);
    let session = adaptive_session(&machine);
    group.bench_function("full_adaptive_sim_96_iters", |b| {
        // `run` consumes its workload, so the clone is inside the timed
        // region; it copies two 16-task graphs (~microseconds) against a
        // 96-iteration simulation (~milliseconds), i.e. noise.
        b.iter(|| criterion::black_box(session.run(workload.clone()).unwrap()));
    });
    group.finish();
}

criterion_group!(benches, bench_adaptive);
criterion_main!(benches);
