//! Experiment A1 — placement-policy ablation: communication cost and
//! simulated LK23 processing time of TreeMatch vs packed / scatter / random
//! / no-binding placements.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use orwl_bench::ablations::{policy_ablation, relative_policy_costs};
use orwl_lk23::sim_model::Lk23Workload;
use orwl_topo::synthetic;
use orwl_treematch::policies::{compute_placement, Policy};

fn bench_policies(c: &mut Criterion) {
    let topo = synthetic::cluster2016_subset(8).unwrap(); // 64 cores
    let workload = Lk23Workload::new(8192, 8, 8, 5);

    let results = policy_ablation(&topo, &workload, 5);
    eprintln!("\n=== A1: placement policies on 64 cores (LK23 8192^2, 64 blocks) ===");
    eprintln!("{:<12} {:>16} {:>18}", "policy", "mapping-cost", "simulated-time[s]");
    for r in &results {
        eprintln!("{:<12} {:>16.3e} {:>18.3}", r.policy, r.mapping_cost, r.simulated_time);
    }
    let rel = relative_policy_costs(&topo, &workload.comm_matrix());
    eprintln!("relative mapping cost (treematch = 1.0): {rel:?}\n");

    let matrix = workload.comm_matrix();
    let mut group = c.benchmark_group("placement_policies");
    group.sample_size(10);
    for policy in Policy::all() {
        group.bench_with_input(BenchmarkId::new("compute", policy.name()), &policy, |b, &p| {
            b.iter(|| compute_placement(p, &topo, &matrix, 1));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_policies);
criterion_main!(benches);
