//! Experiment E-obs — the price of observability:
//!
//! * the disabled fast path: one relaxed atomic load per would-be event,
//!   measured raw and on the adaptive-stencil hot path (`Session::run`
//!   without `.observe`, gate compiled in but closed) — the acceptance
//!   budget is <2% against the same binary with the gate removed being
//!   unmeasurable, so we compare against run-to-run noise instead;
//! * the enabled path: the same workload with `.observe(ObsConfig::default())`,
//!   paying ring-buffer appends and metric increments.
//!
//! A headline line prints the measured off/on medians and the relative
//! overhead before the Criterion timings, so CI logs carry the number.
//!
//! Run with `cargo bench -p orwl-bench --bench obs_gate`.

use criterion::{criterion_group, criterion_main, Criterion};
use orwl_adapt::backend::SimBackend;
use orwl_adapt::engine::AdaptConfig;
use orwl_core::runtime::AdaptiveSpec;
use orwl_core::session::Session;
use orwl_numasim::costmodel::CostParams;
use orwl_numasim::machine::SimMachine;
use orwl_numasim::workload::PhasedWorkload;
use orwl_obs::ObsConfig;
use orwl_topo::synthetic;
use orwl_treematch::policies::Policy;
use std::time::Instant;

fn machine() -> SimMachine {
    SimMachine::new(synthetic::cluster2016_subset(2).unwrap(), CostParams::cluster2016())
}

fn workload() -> PhasedWorkload {
    PhasedWorkload::rotating_stencil(4, 65536.0, 1024.0, 16384.0, 131072.0, &[24, 72])
}

fn session(observe: bool) -> Session {
    let builder = Session::builder()
        .topology(machine().topology().clone())
        .policy(Policy::TreeMatch)
        .control_threads(0)
        .adaptive(AdaptiveSpec::per_iterations(4))
        .backend(SimBackend::new(machine()).with_adapt_config(AdaptConfig::evaluation()));
    let builder = if observe { builder.observe(ObsConfig::default()) } else { builder };
    builder.build().expect("the obs bench configuration is valid")
}

/// Median wall time of `runs` full adaptive simulations.
fn median_run_ns(observe: bool, runs: usize) -> f64 {
    let session = session(observe);
    let workload = workload();
    // Warm-up: fault in code paths and allocator state outside the timing.
    for _ in 0..3 {
        let _ = criterion::black_box(session.run(workload.clone()).unwrap());
    }
    let mut samples: Vec<f64> = (0..runs)
        .map(|_| {
            let start = Instant::now();
            let _ = criterion::black_box(session.run(workload.clone()).unwrap());
            start.elapsed().as_nanos() as f64
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

fn bench_obs_gate(c: &mut Criterion) {
    // --- headline overhead number, printed once ---------------------------
    let off = median_run_ns(false, 15);
    let on = median_run_ns(true, 15);
    let overhead = (on - off) / off * 100.0;
    eprintln!(
        "obs gate on adaptive-stencil (96 sim iters): off {:.3} ms, on {:.3} ms, overhead {overhead:+.2}%",
        off / 1e6,
        on / 1e6,
    );

    // --- the raw disabled fast path ---------------------------------------
    let mut group = c.benchmark_group("obs_gate");
    group.sample_size(50);
    group.bench_function("enabled_check_disabled", |b| {
        b.iter(|| criterion::black_box(orwl_obs::enabled()));
    });
    group.bench_function("emit_while_disabled", |b| {
        b.iter(|| orwl_obs::emit(orwl_obs::EventKind::Rebind { task: 0, pu: 0 }));
    });

    // --- the hot path, gate closed vs. gate open ---------------------------
    group.sample_size(20);
    let closed = session(false);
    let payload = workload();
    group.bench_function("adaptive_stencil_obs_off", |b| {
        b.iter(|| criterion::black_box(closed.run(payload.clone()).unwrap()));
    });
    let open = session(true);
    group.bench_function("adaptive_stencil_obs_on", |b| {
        b.iter(|| criterion::black_box(open.run(payload.clone()).unwrap()));
    });
    group.finish();
}

criterion_group!(benches, bench_obs_gate);
criterion_main!(benches);
