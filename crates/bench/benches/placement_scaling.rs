//! Experiment E-scaling — placement cost at scale: the incremental-gain
//! TreeMatch pipeline (greedy accumulators, screened KL refinement, scratch
//! reuse) on the `BENCH_scaling.json` grid's matrix families, up to the
//! 1024-task cell the acceptance criterion regresses (≥ 5× over the
//! pre-optimisation recompute-everything implementation; see EXPERIMENTS.md
//! for the recorded before/after numbers).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use orwl_bench::scaling::matrix_for;
use orwl_topo::synthetic;
use orwl_treematch::{PlacementScratch, TreeMatchMapper};

fn bench_placement_scaling(c: &mut Criterion) {
    let topo = synthetic::cluster2016_smp192();
    let mapper = TreeMatchMapper::compute_only();
    let mut group = c.benchmark_group("placement_scaling");
    group.sample_size(10);

    for family in ["stencil", "power_law", "clustered"] {
        for p in [256usize, 1024] {
            let matrix = matrix_for(family, p, 42);
            let mut scratch = PlacementScratch::new();
            group.bench_with_input(BenchmarkId::new(family, p), &matrix, |b, m| {
                b.iter(|| mapper.compute_placement_with(&topo, m, &mut scratch));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_placement_scaling);
criterion_main!(benches);
