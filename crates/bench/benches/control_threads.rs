//! Experiment A2 — control-thread handling: which of the three modes of
//! Algorithm 1 (hyperthread reserve / spare cores / unmapped) is selected on
//! different machines, and the cost of computing placements with control
//! threads included.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use orwl_bench::ablations::control_mode_ablation;
use orwl_comm::patterns::{stencil_2d, StencilSpec};
use orwl_topo::synthetic;
use orwl_treematch::algorithm::{TreeMatchConfig, TreeMatchMapper};
use orwl_treematch::control::ControlThreadSpec;

fn bench_control(c: &mut Criterion) {
    let cases = vec![
        (synthetic::dual_socket_smt(), 32, 4),
        (synthetic::cluster2016_subset(2).unwrap(), 8, 4),
        (synthetic::cluster2016_subset(1).unwrap(), 8, 2),
    ];
    let results = control_mode_ablation(&cases);
    eprintln!("\n=== A2: control-thread handling ===");
    for r in &results {
        eprintln!(
            "{:<22} compute={:<3} control={:<2} mode={:?} bound={:.0}%",
            r.machine,
            r.n_compute,
            r.n_control,
            r.mode,
            100.0 * r.bound_control_fraction
        );
    }
    eprintln!();

    let matrix = stencil_2d(&StencilSpec::nine_point_blocks(8, 2048, 8));
    let mut group = c.benchmark_group("control_threads");
    group.sample_size(10);
    for n_control in [0usize, 1, 4, 8] {
        group.bench_with_input(BenchmarkId::new("placement", n_control), &n_control, |b, &n| {
            let mapper = TreeMatchMapper::new(TreeMatchConfig { control: ControlThreadSpec::with_count(n) });
            let topo = synthetic::dual_socket_smt();
            b.iter(|| mapper.compute_placement(&topo, &matrix));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_control);
criterion_main!(benches);
