//! Experiment A3 — oversubscription: simulated LK23 processing time as the
//! number of block tasks grows past the number of cores (Algorithm 1 adds a
//! virtual level to the topology tree).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use orwl_bench::ablations::oversubscription_ablation;
use orwl_comm::patterns::{stencil_2d, StencilSpec};
use orwl_topo::synthetic;
use orwl_treematch::tree_match_assign;

fn bench_oversub(c: &mut Criterion) {
    let results = oversubscription_ablation(4, &[1, 2, 4, 8], 3);
    eprintln!("\n=== A3: oversubscription on 32 cores ===");
    eprintln!("{:>14} {:>9} {:>18}", "tasks-per-core", "tasks", "simulated-time[s]");
    for r in &results {
        eprintln!("{:>14} {:>9} {:>18.3}", r.tasks_per_core, r.n_tasks, r.simulated_time);
    }
    eprintln!();

    let topo = synthetic::cluster2016_subset(4).unwrap();
    let shape = topo.shape();
    let mut group = c.benchmark_group("oversubscription");
    group.sample_size(10);
    for factor in [1usize, 2, 4] {
        let side = (32.0_f64 * factor as f64).sqrt().round() as usize;
        let matrix = stencil_2d(&StencilSpec::nine_point_blocks(side, 512, 8));
        group.bench_with_input(BenchmarkId::new("assign", matrix.order()), &matrix, |b, m| {
            b.iter(|| tree_match_assign(&shape, m));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_oversub);
criterion_main!(benches);
