//! Regeneration of Figure 1 and the headline numbers of the paper.
//!
//! Figure 1 of the paper compares the processing time of three LK23
//! implementations — OpenMP, ORWL without binding, ORWL with the
//! topology-aware binding — on an SMP machine of 24 sockets × 8 cores,
//! processing a 16384×16384 double matrix for 100 iterations.  The text
//! reports that the bound ORWL version reaches about 11 s, a speedup of
//! ≈5 over OpenMP and ≈2.8 over the unbound ORWL version.
//!
//! [`figure1_sweep`] reproduces the whole curve by sweeping the number of
//! sockets of the simulated machine; [`headline`] extracts the 192-core
//! summary.

use orwl_adapt::backend::SimBackend;
use orwl_core::session::Session;
use orwl_lk23::sim_model::{simulate_implementation, ImplKind, Lk23Workload};
use orwl_numasim::costmodel::CostParams;
use orwl_numasim::machine::SimMachine;
use orwl_numasim::workload::PhasedWorkload;
use orwl_topo::synthetic;
use orwl_treematch::policies::Policy;

/// One point of the Figure 1 sweep: processing times (in simulated seconds)
/// of the three implementations on `cores` cores.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Figure1Row {
    /// Number of cores used (8 × sockets).
    pub cores: usize,
    /// OpenMP baseline processing time.
    pub openmp: f64,
    /// ORWL without binding.
    pub orwl_nobind: f64,
    /// ORWL with the topology-aware binding.
    pub orwl_bind: f64,
}

impl Figure1Row {
    /// Speedup of the bound version over OpenMP at this core count.
    pub fn speedup_vs_openmp(&self) -> f64 {
        self.openmp / self.orwl_bind
    }

    /// Speedup of the bound version over the unbound version.
    pub fn speedup_vs_nobind(&self) -> f64 {
        self.orwl_nobind / self.orwl_bind
    }
}

/// Runs the Figure 1 sweep over the given socket counts (each socket has
/// 8 cores; the paper's full machine is 24 sockets = 192 cores).
///
/// `iterations` lets callers trade fidelity for speed: the paper uses 100;
/// the Criterion benches use fewer since the per-iteration times are in
/// steady state after the first couple of sweeps.
pub fn figure1_sweep(socket_counts: &[usize], iterations: usize, seed: u64) -> Vec<Figure1Row> {
    let mut rows = Vec::with_capacity(socket_counts.len());
    for &sockets in socket_counts {
        let topo = synthetic::cluster2016_subset(sockets).expect("1..=24 sockets");
        let machine = SimMachine::new(topo, CostParams::cluster2016());
        let cores = sockets * 8;
        let mut workload = Lk23Workload::paper_for_cores(cores);
        workload.iterations = iterations;

        let scale = 100.0 / iterations as f64;
        // The two ORWL configurations go through the one front door: a
        // `Session` over the simulator backend, with the same single
        // control thread the real runtime accounts for.
        let run_orwl = |policy: Policy| {
            let session = Session::builder()
                .topology(machine.topology().clone())
                .policy(policy)
                .control_threads(1)
                .backend(SimBackend::new(machine.clone()).with_nobind_seed(seed))
                .build()
                .expect("the Figure 1 configuration is valid");
            let phased = PhasedWorkload::single_phase(workload.task_graph(), iterations);
            session.run(phased).expect("the Figure 1 workload simulates").time.seconds() * scale
        };
        rows.push(Figure1Row {
            cores,
            // OpenMP is not an ORWL program — it keeps its bespoke
            // fork-join scenario model.
            openmp: simulate_implementation(&machine, &workload, ImplKind::OpenMp, seed).total_time * scale,
            orwl_nobind: run_orwl(Policy::NoBind),
            orwl_bind: run_orwl(Policy::TreeMatch),
        });
    }
    rows
}

/// The socket counts used for the published figure (1 → 24 sockets).
pub fn default_socket_counts() -> Vec<usize> {
    vec![1, 2, 4, 8, 12, 16, 20, 24]
}

/// The headline numbers of the paper's text, extracted from the last
/// (largest) row of a sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Headline {
    /// Cores of the largest configuration (192 for the full machine).
    pub cores: usize,
    /// Processing time of the bound ORWL version (paper: ≈11 s).
    pub orwl_bind_seconds: f64,
    /// Speedup of Bind over OpenMP (paper: ≈5).
    pub speedup_vs_openmp: f64,
    /// Speedup of Bind over NoBind (paper: ≈2.8).
    pub speedup_vs_nobind: f64,
}

/// Extracts the headline summary from a sweep (the row with the most cores).
///
/// # Panics
/// Panics when `rows` is empty.
pub fn headline(rows: &[Figure1Row]) -> Headline {
    let last = rows.iter().max_by_key(|r| r.cores).expect("at least one row");
    Headline {
        cores: last.cores,
        orwl_bind_seconds: last.orwl_bind,
        speedup_vs_openmp: last.speedup_vs_openmp(),
        speedup_vs_nobind: last.speedup_vs_nobind(),
    }
}

/// Renders a sweep as the text table printed by the benches and the
/// `figure1_sim` example (one row per core count, one column per series —
/// the same series Figure 1 plots).
pub fn render_table(rows: &[Figure1Row]) -> String {
    let mut out = String::new();
    out.push_str("cores  openmp[s]  orwl-nobind[s]  orwl-bind[s]  bind-vs-openmp  bind-vs-nobind\n");
    for r in rows {
        out.push_str(&format!(
            "{:>5}  {:>9.2}  {:>14.2}  {:>12.2}  {:>14.2}  {:>14.2}\n",
            r.cores,
            r.openmp,
            r.orwl_nobind,
            r.orwl_bind,
            r.speedup_vs_openmp(),
            r.speedup_vs_nobind()
        ));
    }
    out
}

/// Renders a sweep as CSV (used to archive results next to EXPERIMENTS.md).
pub fn render_csv(rows: &[Figure1Row]) -> String {
    let mut out = String::from("cores,openmp_s,orwl_nobind_s,orwl_bind_s\n");
    for r in rows {
        out.push_str(&format!("{},{},{},{}\n", r.cores, r.openmp, r.orwl_nobind, r.orwl_bind));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_produces_one_row_per_socket_count() {
        let rows = figure1_sweep(&[1, 4], 3, 42);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].cores, 8);
        assert_eq!(rows[1].cores, 32);
        for r in &rows {
            assert!(r.openmp > 0.0 && r.orwl_nobind > 0.0 && r.orwl_bind > 0.0);
        }
    }

    #[test]
    fn figure1_ordering_holds_at_every_scale() {
        let rows = figure1_sweep(&[1, 2, 8, 24], 3, 7);
        for r in &rows {
            // On one socket the three are close; beyond that Bind must win.
            assert!(r.orwl_bind <= r.orwl_nobind * 1.05, "{r:?}");
            assert!(r.orwl_nobind <= r.openmp * 1.05, "{r:?}");
        }
        let last = rows.last().unwrap();
        assert!(last.speedup_vs_openmp() > 1.5);
        assert!(last.speedup_vs_nobind() > 1.2);
    }

    #[test]
    fn headline_matches_paper_bands_at_192_cores() {
        // Few iterations keep the test fast; the per-iteration behaviour is
        // in steady state, so ratios match the 100-iteration run.
        let rows = figure1_sweep(&[24], 3, 42);
        let h = headline(&rows);
        assert_eq!(h.cores, 192);
        // Paper: ≈5× vs OpenMP, ≈2.8× vs NoBind, ≈11 s minimum.  The
        // reproduction target is the shape: generous bands around those.
        assert!(
            h.speedup_vs_openmp > 3.0 && h.speedup_vs_openmp < 8.0,
            "speedup vs OpenMP {}",
            h.speedup_vs_openmp
        );
        assert!(
            h.speedup_vs_nobind > 1.8 && h.speedup_vs_nobind < 4.5,
            "speedup vs NoBind {}",
            h.speedup_vs_nobind
        );
        assert!(h.orwl_bind_seconds > 2.0 && h.orwl_bind_seconds < 40.0, "bind time {}", h.orwl_bind_seconds);
    }

    #[test]
    fn bind_keeps_scaling_beyond_two_sockets_but_openmp_stalls() {
        let rows = figure1_sweep(&[2, 24], 3, 11);
        let r2 = rows[0];
        let r24 = rows[1];
        let bind_gain = r2.orwl_bind / r24.orwl_bind;
        let openmp_gain = r2.openmp / r24.openmp;
        assert!(bind_gain > 3.0, "bind gain from 16 to 192 cores: {bind_gain}");
        assert!(openmp_gain < bind_gain / 2.0, "openmp gain {openmp_gain} vs bind gain {bind_gain}");
    }

    #[test]
    fn render_helpers_include_all_rows() {
        let rows = figure1_sweep(&[1, 2], 2, 1);
        let table = render_table(&rows);
        assert!(table.contains("cores"));
        assert_eq!(table.lines().count(), 3);
        let csv = render_csv(&rows);
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.starts_with("cores,"));
    }
}
