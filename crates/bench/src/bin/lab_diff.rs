//! `lab_diff` — compare two `orwl-lab/v1` artifacts row by row with
//! tolerances (the ROADMAP's artifact-diff tool).
//!
//! ```sh
//! cargo run -p orwl-bench --bin lab_diff -- A.json B.json                 # exact match
//! cargo run -p orwl-bench --bin lab_diff -- A.json B.json --tol-ratio 0.01
//! ```
//!
//! Exit status: `0` when the artifacts agree within the tolerance, `1` on
//! any drift (missing/extra rows or metric columns beyond tolerance), `2`
//! on usage or parse errors — so CI can `lab_diff` two sweep runs the same
//! way it `cmp`s byte-identical ones, but with headroom for cost-model
//! changes.

use orwl_core::json::Json;
use orwl_lab::diff::diff_documents;
use orwl_lab::report::validate;
use std::process::ExitCode;

const USAGE: &str = "usage: lab_diff A.json B.json [--tol-ratio F]";

fn load(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let doc = Json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    validate(&doc).map_err(|e| format!("{path}: {e}"))?;
    Ok(doc)
}

fn main() -> ExitCode {
    let mut paths: Vec<String> = Vec::new();
    let mut tol_ratio = 0.0f64;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--tol-ratio" => {
                tol_ratio = match it.next().and_then(|s| s.parse().ok()).filter(|t: &f64| *t >= 0.0) {
                    Some(t) => t,
                    None => {
                        eprintln!("--tol-ratio expects a non-negative number");
                        eprintln!("{USAGE}");
                        return ExitCode::from(2);
                    }
                };
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => paths.push(other.to_string()),
        }
    }
    if paths.len() != 2 {
        eprintln!("expected exactly two artifact paths, got {}", paths.len());
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    }

    let (first, second) = match (load(&paths[0]), load(&paths[1])) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("lab_diff: {e}");
            return ExitCode::from(2);
        }
    };

    let entries = match diff_documents(&first, &second, tol_ratio) {
        Ok(entries) => entries,
        Err(e) => {
            eprintln!("lab_diff: {e}");
            return ExitCode::from(2);
        }
    };
    if entries.is_empty() {
        println!("lab_diff: {} and {} agree (tol-ratio {tol_ratio})", paths[0], paths[1]);
        return ExitCode::SUCCESS;
    }
    eprintln!(
        "lab_diff: {} disagreement(s) between {} and {} (tol-ratio {tol_ratio}):",
        entries.len(),
        paths[0],
        paths[1]
    );
    for entry in &entries {
        eprintln!("  {entry}");
    }
    ExitCode::FAILURE
}
