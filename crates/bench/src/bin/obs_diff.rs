//! `obs_diff` — compare two telemetry captures (single documents or whole
//! `--obs-dir` directories) within tolerances, the `lab_diff` counterpart
//! for `orwl-obs/v1` artifacts.
//!
//! ```sh
//! cargo run -p orwl-bench --bin obs_diff -- a.obs.json b.obs.json
//! cargo run -p orwl-bench --bin obs_diff -- obs_run_a/ obs_run_b/ --tol-ratio 0.05
//! ```
//!
//! Directories are paired by `*.obs.json` filename; a capture present on
//! one side only is drift.  Only the stable surface of each document is
//! compared (identity fields, per-kind event counts, metric instruments —
//! see `orwl_obs::diff`), so two runs of the same deterministic sweep
//! agree exactly while wall-clock noise never trips the gate.
//!
//! Exit status: `0` when every pair agrees within the tolerance, `1` on
//! any drift, `2` on usage or parse errors.

use orwl_obs::diff::diff_telemetry;
use orwl_obs::json::Json;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "usage: obs_diff A(.json|dir) B(.json|dir) [--tol-ratio F]";

fn load(path: &Path) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    Json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
}

/// The `*.obs.json` captures of one directory, keyed by filename.
fn captures(dir: &Path) -> Result<BTreeSet<String>, String> {
    let mut names = BTreeSet::new();
    let entries = std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("{}: {e}", dir.display()))?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.ends_with(".obs.json") {
            names.insert(name);
        }
    }
    Ok(names)
}

/// Diffs one document pair; returns the number of disagreements printed.
fn diff_pair(label: &str, a: &Path, b: &Path, tol_ratio: f64) -> Result<usize, String> {
    let entries = diff_telemetry(&load(a)?, &load(b)?, tol_ratio).map_err(|e| format!("{label}: {e}"))?;
    for entry in &entries {
        eprintln!("  {label}: {entry}");
    }
    Ok(entries.len())
}

fn run(first: &Path, second: &Path, tol_ratio: f64) -> Result<usize, String> {
    if first.is_dir() != second.is_dir() {
        return Err("cannot compare a directory with a single document".to_string());
    }
    if !first.is_dir() {
        return diff_pair(&first.display().to_string(), first, second, tol_ratio);
    }
    let (a, b) = (captures(first)?, captures(second)?);
    let mut drift = 0usize;
    for missing in b.difference(&a) {
        eprintln!("  {missing}: only in {}", second.display());
        drift += 1;
    }
    for name in &a {
        if !b.contains(name) {
            eprintln!("  {name}: only in {}", first.display());
            drift += 1;
            continue;
        }
        drift += diff_pair(name, &first.join(name), &second.join(name), tol_ratio)?;
    }
    if a.is_empty() && b.is_empty() {
        return Err(format!("no *.obs.json captures under {} or {}", first.display(), second.display()));
    }
    Ok(drift)
}

fn main() -> ExitCode {
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut tol_ratio = 0.0f64;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--tol-ratio" => {
                tol_ratio = match it.next().and_then(|s| s.parse().ok()).filter(|t: &f64| *t >= 0.0) {
                    Some(t) => t,
                    None => {
                        eprintln!("--tol-ratio expects a non-negative number");
                        eprintln!("{USAGE}");
                        return ExitCode::from(2);
                    }
                };
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => paths.push(PathBuf::from(other)),
        }
    }
    if paths.len() != 2 {
        eprintln!("expected exactly two paths, got {}", paths.len());
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    }

    match run(&paths[0], &paths[1], tol_ratio) {
        Ok(0) => {
            println!(
                "obs_diff: {} and {} agree (tol-ratio {tol_ratio})",
                paths[0].display(),
                paths[1].display()
            );
            ExitCode::SUCCESS
        }
        Ok(n) => {
            eprintln!(
                "obs_diff: {n} disagreement(s) between {} and {} (tol-ratio {tol_ratio})",
                paths[0].display(),
                paths[1].display()
            );
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("obs_diff: {e}");
            ExitCode::from(2)
        }
    }
}
