//! `proc_correlate` — regenerate and check the sim-vs-real correlation
//! artifact (`BENCH_proc_corr.json`, experiment E-proc).
//!
//! ```sh
//! cargo run --release -p orwl-bench --bin proc_correlate                        # print to stdout
//! cargo run --release -p orwl-bench --bin proc_correlate -- --out BENCH_proc_corr.json
//! cargo run --release -p orwl-bench --bin proc_correlate -- --check BENCH_proc_corr.json
//! ```
//!
//! `--check` regenerates the battery and requires the committed artifact
//! to validate against the schema *and* match the regenerated document on
//! its deterministic view — every column except `wall_seconds` (which the
//! document declares nondeterministic) is a pure function of the matrices
//! and the placement, so any divergence there is a real behaviour change.
//! Exit status: `0` ok, `1` drift, `2` usage or runtime errors.
//!
//! The binary re-execs itself as the worker processes, so `main` opens
//! with [`orwl_proc::maybe_worker`].

use orwl_bench::proc_corr::proc_correlation;
use orwl_obs::json::Json;
use orwl_proc::{deterministic_view, validate_corr};
use std::process::ExitCode;

const USAGE: &str = "usage: proc_correlate [--out PATH | --check PATH]";

fn generate() -> Result<String, String> {
    // Standalone binary: spawned workers re-enter through maybe_worker()
    // with no extra argv needed.
    proc_correlation(&[]).map(|doc| doc.pretty())
}

fn main() -> ExitCode {
    orwl_proc::maybe_worker();

    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.as_slice() {
        [] => match generate() {
            Ok(text) => {
                print!("{text}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("proc_correlate: {e}");
                ExitCode::from(2)
            }
        },
        [flag, path] if flag == "--out" => match generate() {
            Ok(text) => {
                if let Err(e) = std::fs::write(path, &text) {
                    eprintln!("proc_correlate: cannot write {path}: {e}");
                    return ExitCode::from(2);
                }
                println!("proc_correlate: wrote {path}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("proc_correlate: {e}");
                ExitCode::from(2)
            }
        },
        [flag, path] if flag == "--check" => {
            let committed = match std::fs::read_to_string(path) {
                Ok(text) => text,
                Err(e) => {
                    eprintln!("proc_correlate: cannot read {path}: {e}");
                    return ExitCode::from(2);
                }
            };
            let doc = match Json::parse(&committed) {
                Ok(doc) => doc,
                Err(e) => {
                    eprintln!("proc_correlate: {path}: {e}");
                    return ExitCode::from(2);
                }
            };
            if let Err(e) = validate_corr(&doc) {
                eprintln!("proc_correlate: {path}: {e}");
                return ExitCode::FAILURE;
            }
            let regenerated = match proc_correlation(&[]) {
                Ok(doc) => doc,
                Err(e) => {
                    eprintln!("proc_correlate: {e}");
                    return ExitCode::from(2);
                }
            };
            // wall_seconds is declared nondeterministic; everything else
            // must regenerate byte-identically.
            if deterministic_view(&regenerated).pretty() != deterministic_view(&doc).pretty() {
                eprintln!("proc_correlate: {path} does not match the regenerated battery");
                return ExitCode::FAILURE;
            }
            println!(
                "proc_correlate: {path} validates and regenerates byte-identically (modulo wall_seconds)"
            );
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}
