//! `lab_sweep` — run the lab's experiment grid and emit the versioned,
//! schema-checked `BENCH_lab.json` artifact.
//!
//! ```sh
//! cargo run --release -p orwl-bench --bin lab_sweep                 # full grid
//! cargo run --release -p orwl-bench --bin lab_sweep -- --smoke      # CI-sized grid
//! cargo run --release -p orwl-bench --bin lab_sweep -- --seed 7 --out /tmp/lab.json
//! cargo run --release -p orwl-bench --bin lab_sweep -- --validate BENCH_lab.json
//! ```
//!
//! The artifact is deterministic: the same grid and seed always produce
//! byte-identical bytes (wall-clock values are never recorded), so the
//! committed file doubles as a regression baseline — re-run and `diff`.

use orwl_core::json::Json;
use orwl_lab::report::{render_table, sweep_to_json, validate};
use orwl_lab::sweep::{default_sweep_threads, run_sweep_observed, run_sweep_with_threads, SweepConfig};
use orwl_obs::export::{validate_chrome_trace, validate_obs};
use orwl_obs::{ObsConfig, ToJson};
use std::process::ExitCode;

const USAGE: &str = "usage: lab_sweep [--smoke|--full] [--seed N] [--threads N] [--out PATH] \
                     [--obs-dir DIR] [--validate PATH] [--quiet]";

struct Args {
    smoke: bool,
    seed: u64,
    threads: usize,
    out: String,
    obs_dir: Option<String>,
    validate_only: Option<String>,
    quiet: bool,
    help: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        smoke: false,
        seed: 42,
        threads: default_sweep_threads(),
        out: "BENCH_lab.json".to_string(),
        obs_dir: None,
        validate_only: None,
        quiet: false,
        help: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => args.smoke = true,
            "--full" => args.smoke = false,
            "--quiet" => args.quiet = true,
            "--seed" => {
                args.seed =
                    it.next().and_then(|s| s.parse().ok()).ok_or("--seed expects a non-negative integer")?;
            }
            "--threads" => {
                args.threads =
                    it.next().and_then(|s| s.parse().ok()).ok_or("--threads expects a positive integer")?;
            }
            "--out" => args.out = it.next().ok_or("--out expects a path")?,
            "--obs-dir" => args.obs_dir = Some(it.next().ok_or("--obs-dir expects a directory")?),
            "--validate" => args.validate_only = Some(it.next().ok_or("--validate expects a path")?),
            "--help" | "-h" => args.help = true,
            other => return Err(format!("unknown argument {other:?}; try --help")),
        }
    }
    Ok(args)
}

/// Writes one `<label>.obs.json` + `<label>.trace.json` pair per observed
/// cell into `dir`, re-validating each artifact against its schema before
/// it lands on disk.
fn write_obs_artifacts(dir: &str, cells: &[orwl_lab::sweep::ObservedCell]) -> Result<(), String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {dir}: {e}"))?;
    for cell in cells {
        let obs = cell.telemetry.to_json();
        validate_obs(&obs).map_err(|e| format!("{}: invalid orwl-obs/v1 artifact: {e}", cell.label))?;
        let trace = cell.telemetry.chrome_trace();
        validate_chrome_trace(&trace).map_err(|e| format!("{}: invalid Chrome trace: {e}", cell.label))?;
        let stem = format!("{dir}/{}", cell.label);
        std::fs::write(format!("{stem}.obs.json"), obs.pretty())
            .map_err(|e| format!("cannot write {stem}.obs.json: {e}"))?;
        std::fs::write(format!("{stem}.trace.json"), trace.pretty())
            .map_err(|e| format!("cannot write {stem}.trace.json: {e}"))?;
    }
    Ok(())
}

fn validate_file(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let doc = Json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    validate(&doc).map_err(|e| format!("{path}: {e}"))?;
    let rows = doc.get("n_rows").and_then(Json::as_f64).unwrap_or(0.0);
    println!("{path}: valid {} document, {rows} rows", orwl_lab::SCHEMA_VERSION);
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    if args.help {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }

    if let Some(path) = &args.validate_only {
        return match validate_file(path) {
            Ok(()) => ExitCode::SUCCESS,
            Err(message) => {
                eprintln!("{message}");
                ExitCode::FAILURE
            }
        };
    }

    let config = if args.smoke { SweepConfig::smoke(args.seed) } else { SweepConfig::full(args.seed) };
    let grid = if args.smoke { "smoke" } else { "full" };
    eprintln!("lab_sweep: running the {grid} grid (seed {}, {} threads)...", args.seed, args.threads);
    let sweep_outcome = match &args.obs_dir {
        // Observation forces sequential cells (one process-global recorder
        // at a time); the rows themselves are unchanged by it.
        Some(_) => run_sweep_observed(&config, ObsConfig::default()),
        None => run_sweep_with_threads(&config, args.threads).map(|result| (result, Vec::new())),
    };
    let (result, observed) = match sweep_outcome {
        Ok(outcome) => outcome,
        Err(error) => {
            eprintln!("lab_sweep: sweep failed: {error}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(dir) = &args.obs_dir {
        if let Err(message) = write_obs_artifacts(dir, &observed) {
            eprintln!("lab_sweep: {message}");
            return ExitCode::FAILURE;
        }
        eprintln!("lab_sweep: {} telemetry artifact pairs -> {dir}/", observed.len());
    }

    let doc = sweep_to_json(&result);
    if let Err(violation) = validate(&doc) {
        eprintln!("lab_sweep: emitted document violates its own schema: {violation}");
        return ExitCode::FAILURE;
    }
    if let Err(error) = std::fs::write(&args.out, doc.pretty()) {
        eprintln!("lab_sweep: cannot write {}: {error}", args.out);
        return ExitCode::FAILURE;
    }

    if !args.quiet {
        print!("{}", render_table(&result));
    }
    println!(
        "\n{} rows ({} grid, seed {}) -> {} [{}]",
        result.rows.len(),
        grid,
        result.seed,
        args.out,
        orwl_lab::SCHEMA_VERSION,
    );
    ExitCode::SUCCESS
}
