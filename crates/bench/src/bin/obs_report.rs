//! `obs_report` — the contention / critical-path analyzer CLI over one
//! telemetry capture (typically the merged multi-process timeline a
//! `--obs-dir` run writes as `merged.obs.json`).
//!
//! ```sh
//! cargo run -p orwl-bench --bin obs_report -- merged.obs.json
//! cargo run -p orwl-bench --bin obs_report -- merged.obs.json --top 10 --json report.json
//! cargo run -p orwl-bench --bin obs_report -- --validate report.json
//! ```
//!
//! Prints the per-track, per-location contention table and the
//! request→grant→release latency breakdown (see `orwl_obs::analyze`);
//! `--json` additionally writes the `orwl-obs-report/v1` document.
//! `--validate` checks a previously written report document instead.
//!
//! Exit status: `0` on success, `2` on usage, parse, or validation
//! errors.

use orwl_obs::analyze::{analyze, validate_report};
use orwl_obs::json::Json;
use orwl_obs::RunTelemetry;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "usage: obs_report CAPTURE.obs.json [--top K] [--json OUT.json]\n       obs_report --validate REPORT.json";

fn load(path: &Path) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    Json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
}

fn fail(message: &str) -> ExitCode {
    eprintln!("obs_report: {message}");
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut capture: Option<PathBuf> = None;
    let mut top_k = usize::MAX;
    let mut json_out: Option<PathBuf> = None;
    let mut validate: Option<PathBuf> = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--top" => {
                top_k = match it.next().and_then(|s| s.parse().ok()).filter(|k: &usize| *k > 0) {
                    Some(k) => k,
                    None => return fail("--top expects a positive integer"),
                };
            }
            "--json" => {
                json_out = match it.next() {
                    Some(p) => Some(PathBuf::from(p)),
                    None => return fail("--json expects an output path"),
                };
            }
            "--validate" => {
                validate = match it.next() {
                    Some(p) => Some(PathBuf::from(p)),
                    None => return fail("--validate expects a report path"),
                };
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if capture.is_none() && !other.starts_with('-') => capture = Some(PathBuf::from(other)),
            other => return fail(&format!("unexpected argument {other:?}")),
        }
    }

    if let Some(path) = validate {
        if capture.is_some() || json_out.is_some() {
            return fail("--validate takes no other arguments");
        }
        let doc = match load(&path) {
            Ok(doc) => doc,
            Err(e) => return fail(&e),
        };
        return match validate_report(&doc) {
            Ok(()) => {
                println!("obs_report: {} is a valid orwl-obs-report/v1 document", path.display());
                ExitCode::SUCCESS
            }
            Err(e) => fail(&format!("{}: {e}", path.display())),
        };
    }

    let Some(capture) = capture else {
        return fail("expected a capture path");
    };
    let telemetry = match load(&capture).and_then(|doc| RunTelemetry::from_json(&doc)) {
        Ok(t) => t,
        Err(e) => return fail(&e),
    };
    let report = analyze(&telemetry, top_k);
    print!("{}", report.render_table());
    if let Some(out) = json_out {
        let doc = report.to_json();
        if let Err(e) = validate_report(&doc) {
            return fail(&format!("generated report failed validation: {e}"));
        }
        if let Err(e) = std::fs::write(&out, doc.pretty()) {
            return fail(&format!("cannot write {}: {e}", out.display()));
        }
        println!("\nwrote {}", out.display());
    }
    ExitCode::SUCCESS
}
