//! `scaling` — measure placement cost at scale and emit the versioned
//! `BENCH_scaling.json` artifact.
//!
//! ```sh
//! cargo run --release -p orwl-bench --bin scaling                    # full grid
//! cargo run --release -p orwl-bench --bin scaling -- --smoke         # CI-sized grid
//! cargo run --release -p orwl-bench --bin scaling -- --smoke --budget-seconds 30
//! ```
//!
//! The artifact is `orwl-lab/v1`-shaped (validate it with
//! `lab_sweep --validate BENCH_scaling.json`) with one extra column,
//! `placement_wall_seconds`.  Wall times are machine-dependent by design —
//! CI validates the schema and asserts the 512-task stencil placement
//! finishes within a generous `--budget-seconds` bound instead of
//! `cmp`ing bytes.

use orwl_bench::scaling::{run_scaling, scaling_to_json};
use std::process::ExitCode;

const USAGE: &str = "usage: scaling [--smoke] [--seed N] [--out PATH] [--budget-seconds F] [--quiet]";

struct Args {
    smoke: bool,
    seed: u64,
    out: String,
    budget_seconds: Option<f64>,
    quiet: bool,
    help: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        smoke: false,
        seed: 42,
        out: "BENCH_scaling.json".to_string(),
        budget_seconds: None,
        quiet: false,
        help: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => args.smoke = true,
            "--quiet" => args.quiet = true,
            "--seed" => {
                args.seed =
                    it.next().and_then(|s| s.parse().ok()).ok_or("--seed expects a non-negative integer")?;
            }
            "--out" => args.out = it.next().ok_or("--out expects a path")?,
            "--budget-seconds" => {
                args.budget_seconds = Some(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .filter(|b: &f64| *b > 0.0)
                        .ok_or("--budget-seconds expects a positive number")?,
                );
            }
            "--help" | "-h" => args.help = true,
            other => return Err(format!("unknown argument {other:?}; try --help")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    if args.help {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }

    let grid = if args.smoke { "smoke" } else { "full" };
    eprintln!("scaling: running the {grid} grid (seed {})...", args.seed);
    let cells = run_scaling(args.smoke, args.seed);

    if !args.quiet {
        println!(
            "{:<12} {:>6} {:>14} {:>14} {:>8}",
            "family", "tasks", "placement [s]", "hop-bytes", "local%"
        );
        for cell in &cells {
            println!(
                "{:<12} {:>6} {:>14.6} {:>14.4e} {:>7.1}%",
                cell.family,
                cell.tasks,
                cell.wall_seconds,
                cell.hop_bytes,
                100.0 * cell.local_fraction
            );
        }
    }

    let doc = scaling_to_json(&cells, args.seed);
    if let Err(violation) = orwl_lab::report::validate(&doc) {
        eprintln!("scaling: emitted document violates the lab schema: {violation}");
        return ExitCode::FAILURE;
    }
    if let Err(error) = std::fs::write(&args.out, doc.pretty()) {
        eprintln!("scaling: cannot write {}: {error}", args.out);
        return ExitCode::FAILURE;
    }
    println!(
        "{} cells ({grid} grid, seed {}) -> {} [{}]",
        cells.len(),
        args.seed,
        args.out,
        orwl_lab::SCHEMA_VERSION
    );

    // The CI latch: the 512-task stencil placement — the paper-scale cell —
    // must finish within the budget.
    if let Some(budget) = args.budget_seconds {
        match cells.iter().find(|c| c.family == "stencil" && c.tasks == 512) {
            Some(cell) if cell.wall_seconds <= budget => {
                println!("budget ok: stencil/512 placed in {:.4}s (budget {budget}s)", cell.wall_seconds);
            }
            Some(cell) => {
                eprintln!(
                    "scaling: budget exceeded: stencil/512 took {:.4}s (budget {budget}s)",
                    cell.wall_seconds
                );
                return ExitCode::FAILURE;
            }
            None => {
                eprintln!("scaling: --budget-seconds given but the grid has no stencil/512 cell");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
