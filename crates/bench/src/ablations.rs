//! Ablation studies of the placement design choices (experiments A1–A3 of
//! DESIGN.md).
//!
//! These go beyond what the two-page paper could show, but each corresponds
//! to a design decision §II discusses: the choice of the TreeMatch grouping
//! over simpler policies, the three control-thread handling modes, and the
//! oversubscription extension.

use orwl_adapt::backend::SimBackend;
use orwl_comm::matrix::CommMatrix;
use orwl_comm::metrics::mapping_cost_default;
use orwl_core::session::Session;
use orwl_lk23::sim_model::Lk23Workload;
use orwl_numasim::costmodel::CostParams;
use orwl_numasim::machine::SimMachine;
use orwl_numasim::workload::PhasedWorkload;
use orwl_topo::topology::Topology;
use orwl_treematch::control::{decide_control_mode, ControlPlacementMode, ControlThreadSpec};
use orwl_treematch::policies::{compute_placement, Policy};

/// A1 — cost of a placement policy on a workload: the communication cost
/// metric (volume × distance) and the simulated LK23 processing time when
/// tasks are bound according to that policy.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyResult {
    /// Policy name (`treematch`, `packed`, `scatter`, `random`, `nobind`).
    pub policy: String,
    /// Volume-weighted distance of the placement (lower is better).
    pub mapping_cost: f64,
    /// Simulated processing time of the LK23 workload under this placement.
    pub simulated_time: f64,
}

/// Runs the placement-policy ablation (A1) for an LK23 workload on `topo`.
///
/// The static metric (volume × distance) is computed directly; the
/// simulated execution goes through the unified `Session` front door (the
/// simulator backend models `NoBind` as unpinned, migrating threads and
/// pins every other policy).
pub fn policy_ablation(topo: &Topology, workload: &Lk23Workload, iterations: usize) -> Vec<PolicyResult> {
    let matrix = workload.comm_matrix();
    let machine = SimMachine::new(topo.clone(), CostParams::cluster2016());
    let graph = workload.task_graph();
    let pus = topo.pu_os_indices();

    Policy::all()
        .into_iter()
        .map(|policy| {
            let placement = compute_placement(policy, topo, &matrix, 0);
            let mapping = placement.compute_mapping_with(|t| pus[t % pus.len()]);
            let mapping_cost = mapping_cost_default(&matrix, topo, &mapping);
            let session = Session::builder()
                .topology(topo.clone())
                .policy(policy)
                .control_threads(0)
                .backend(SimBackend::new(machine.clone()))
                .build()
                .expect("the ablation configuration is valid");
            let report = session
                .run(PhasedWorkload::single_phase(graph.clone(), iterations))
                .expect("the ablation workload simulates");
            PolicyResult {
                policy: policy.name().to_string(),
                mapping_cost,
                simulated_time: report.time.seconds(),
            }
        })
        .collect()
}

/// A2 — which control-thread handling mode Algorithm 1 selects for a given
/// machine and task count, together with the fraction of control threads
/// that end up bound.
#[derive(Debug, Clone, PartialEq)]
pub struct ControlModeResult {
    /// Machine description (topology name).
    pub machine: String,
    /// Number of compute threads.
    pub n_compute: usize,
    /// Number of control threads.
    pub n_control: usize,
    /// The mode Algorithm 1 selected.
    pub mode: ControlPlacementMode,
    /// Fraction of control threads that received a binding.
    pub bound_control_fraction: f64,
}

/// Runs the control-thread ablation (A2) over several machines.
pub fn control_mode_ablation(cases: &[(Topology, usize, usize)]) -> Vec<ControlModeResult> {
    cases
        .iter()
        .map(|(topo, n_compute, n_control)| {
            let matrix = orwl_comm::patterns::stencil_2d(&orwl_comm::patterns::StencilSpec {
                rows: 1,
                cols: *n_compute,
                edge_volume: 1024.0,
                corner_volume: 0.0,
            });
            let mode = decide_control_mode(topo, *n_compute, *n_control);
            let mapper =
                orwl_treematch::algorithm::TreeMatchMapper::new(orwl_treematch::algorithm::TreeMatchConfig {
                    control: ControlThreadSpec::with_count(*n_control),
                });
            let placement = mapper.compute_placement(topo, &matrix);
            let bound = placement.control.iter().filter(|c| c.is_some()).count();
            ControlModeResult {
                machine: topo.name().to_string(),
                n_compute: *n_compute,
                n_control: *n_control,
                mode,
                bound_control_fraction: if *n_control == 0 { 1.0 } else { bound as f64 / *n_control as f64 },
            }
        })
        .collect()
}

/// A3 — oversubscription: simulated LK23 time as the number of block tasks
/// grows past the number of cores.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OversubResult {
    /// Tasks per core (1 = one block per core).
    pub tasks_per_core: usize,
    /// Total block tasks.
    pub n_tasks: usize,
    /// Simulated processing time with TreeMatch placement.
    pub simulated_time: f64,
}

/// Runs the oversubscription ablation (A3) on `sockets` sockets of the
/// paper machine.
pub fn oversubscription_ablation(sockets: usize, factors: &[usize], iterations: usize) -> Vec<OversubResult> {
    let topo = orwl_topo::synthetic::cluster2016_subset(sockets).expect("1..=24 sockets");
    let machine = SimMachine::new(topo.clone(), CostParams::cluster2016());
    let cores = sockets * 8;
    let session = Session::builder()
        .topology(topo)
        .policy(Policy::TreeMatch)
        .control_threads(0)
        .backend(SimBackend::new(machine))
        .build()
        .expect("the oversubscription configuration is valid");
    factors
        .iter()
        .map(|&f| {
            let n_tasks = cores * f;
            let (br, bc) = orwl_lk23::sim_model::near_square_factors(n_tasks);
            let workload = Lk23Workload::new(16384, br, bc, iterations);
            let report = session
                .run(PhasedWorkload::single_phase(workload.task_graph(), iterations))
                .expect("the oversubscription workload simulates");
            OversubResult { tasks_per_core: f, n_tasks, simulated_time: report.time.seconds() }
        })
        .collect()
}

/// Helper shared by benches: the communication cost of the LK23 matrix
/// under every policy, normalised to the TreeMatch cost (≥ 1.0 means worse
/// than TreeMatch).
pub fn relative_policy_costs(topo: &Topology, matrix: &CommMatrix) -> Vec<(String, f64)> {
    let pus = topo.pu_os_indices();
    let tm = compute_placement(Policy::TreeMatch, topo, matrix, 0);
    let tm_cost =
        mapping_cost_default(matrix, topo, &tm.compute_mapping_with(|t| pus[t % pus.len()])).max(1e-12);
    Policy::all()
        .into_iter()
        .map(|p| {
            let placement = compute_placement(p, topo, matrix, 0);
            let cost =
                mapping_cost_default(matrix, topo, &placement.compute_mapping_with(|t| pus[t % pus.len()]));
            (p.name().to_string(), cost / tm_cost)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use orwl_topo::synthetic;

    #[test]
    fn policy_ablation_ranks_treematch_best_or_tied() {
        let topo = synthetic::cluster2016_subset(4).unwrap();
        let workload = Lk23Workload::new(4096, 4, 8, 3);
        let results = policy_ablation(&topo, &workload, 3);
        assert_eq!(results.len(), Policy::all().len());
        let tm = results.iter().find(|r| r.policy == "treematch").unwrap();
        for r in &results {
            if r.policy != "treematch" && r.policy != "nobind" {
                assert!(
                    tm.mapping_cost <= r.mapping_cost * 1.01,
                    "treematch cost {} vs {} cost {}",
                    tm.mapping_cost,
                    r.policy,
                    r.mapping_cost
                );
            }
            assert!(r.simulated_time > 0.0);
        }
        // The topology-aware placement also wins in simulated time against
        // the unbound run.
        let nobind = results.iter().find(|r| r.policy == "nobind").unwrap();
        assert!(tm.simulated_time < nobind.simulated_time);
    }

    #[test]
    fn control_mode_ablation_covers_all_three_modes() {
        let cases = vec![
            (synthetic::dual_socket_smt(), 32, 2),             // hyperthread reserve
            (synthetic::cluster2016_subset(2).unwrap(), 8, 2), // spare cores
            (synthetic::cluster2016_subset(1).unwrap(), 8, 2), // unmapped
        ];
        let results = control_mode_ablation(&cases);
        assert_eq!(results[0].mode, ControlPlacementMode::HyperthreadReserve);
        assert_eq!(results[1].mode, ControlPlacementMode::SpareCores);
        assert_eq!(results[2].mode, ControlPlacementMode::Unmapped);
        assert_eq!(results[0].bound_control_fraction, 1.0);
        assert_eq!(results[1].bound_control_fraction, 1.0);
        assert_eq!(results[2].bound_control_fraction, 0.0);
    }

    #[test]
    fn oversubscription_ablation_is_monotone_in_overhead() {
        // More tasks per core means more halo traffic for the same compute:
        // the simulated time must not *decrease* dramatically, and the
        // one-task-per-core configuration is the sweet spot.
        let results = oversubscription_ablation(2, &[1, 2, 4], 2);
        assert_eq!(results.len(), 3);
        assert_eq!(results[0].tasks_per_core, 1);
        assert_eq!(results[0].n_tasks, 16);
        assert!(results[0].simulated_time <= results[2].simulated_time * 1.05);
    }

    #[test]
    fn relative_costs_are_normalised_to_treematch() {
        let topo = synthetic::cluster2016_subset(2).unwrap();
        let matrix = Lk23Workload::new(2048, 4, 4, 1).comm_matrix();
        let rel = relative_policy_costs(&topo, &matrix);
        let tm = rel.iter().find(|(n, _)| n == "treematch").unwrap();
        assert!((tm.1 - 1.0).abs() < 1e-9);
        for (name, ratio) in &rel {
            if name != "nobind" {
                assert!(*ratio >= 0.99, "{name} ratio {ratio}");
            }
        }
    }
}
