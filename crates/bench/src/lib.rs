//! # orwl-bench — experiment harness
//!
//! Reusable building blocks for regenerating the paper's evaluation:
//!
//! * [`figure1`] — the core-count sweep behind Figure 1 (processing time of
//!   OpenMP vs ORWL NoBind vs ORWL Bind on the simulated 24-socket machine)
//!   and the headline speedups quoted in the text;
//! * [`ablations`] — the placement-policy, control-thread and
//!   oversubscription studies referenced in DESIGN.md (experiments A1–A3);
//! * [`scaling`] — placement cost at scale (experiment E-scaling): the
//!   timed grid behind `BENCH_scaling.json` and the `placement_scaling`
//!   criterion bench;
//! * [`proc_corr`] — the sim-vs-real correlation study (experiment
//!   E-proc): predicted vs measured inter-node bytes across the
//!   simulator and multi-process backends, behind `BENCH_proc_corr.json`
//!   and the `proc_correlate` binary.
//!
//! The Criterion benchmarks under `benches/` and the `figure1_sim` example
//! are thin wrappers around these functions, so the numbers reported in
//! EXPERIMENTS.md can be regenerated from several entry points.

pub mod ablations;
pub mod figure1;
pub mod proc_corr;
pub mod scaling;

pub use figure1::{figure1_sweep, headline, render_table, Figure1Row, Headline};
