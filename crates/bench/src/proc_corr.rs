//! The sim-vs-real correlation study (experiment E-proc): for a battery
//! of lab scenario families × placement policies × cluster sizes
//! ([`CORR_NODE_SWEEP`]), run the cluster *simulator* and the
//! *multi-process* backend over the same `policy_placement` sharding and
//! pin the simulator's predicted inter-node bytes against the bytes the
//! worker processes actually moved over their sockets.
//!
//! Both pipelines traverse the same ordered communication-matrix pairs
//! (every positive off-diagonal entry is one read per iteration), so the
//! two figures agree up to payload rounding — the committed
//! `BENCH_proc_corr.json` regenerating with every row inside
//! [`CORR_TOLERANCE`](orwl_proc::CORR_TOLERANCE) is the backend's
//! acceptance gate.  The document is byte-deterministic: payload sizes
//! are a pure function of the matrices and the placement, never of
//! timing.  The one timing column, `wall_seconds`, is the median wall
//! clock over [`CORR_REPEATS`] measured-backend runs; the document
//! declares it nondeterministic so the byte-identity gate compares
//! [`deterministic_view`](orwl_proc::deterministic_view)s instead of raw
//! bytes.

use orwl_cluster::ClusterBackend;
use orwl_core::session::Session;
use orwl_lab::{ScenarioFamily, ScenarioSpec};
use orwl_obs::json::Json;
use orwl_proc::{corr_document, CorrRow, ProcBackend};
use orwl_treematch::policies::Policy;

/// Node counts of the correlation sweep: every (scenario, policy) cell
/// is measured at each cluster size, so the artifact records how the
/// measured wall clock scales with the number of worker processes while
/// the byte columns stay exactly predictable at every size.
pub const CORR_NODE_SWEEP: [usize; 3] = [2, 4, 8];
/// Tasks in every correlation run (beyond the 32 PUs of the two-node
/// machine, so placement must oversubscribe and split every family across
/// nodes).
pub const CORR_TASKS: usize = 36;
/// Iterations per phase (schedules keep each family's phase *count*).
pub const CORR_ITERATIONS: usize = 2;
/// Measured-backend repetitions per row: the byte figures must agree
/// across all repeats (they are deterministic), `wall_seconds` is their
/// median.
pub const CORR_REPEATS: usize = 3;

/// The scenario battery: one spec per family, phase schedules shortened
/// to [`CORR_ITERATIONS`] per phase so a full run stays in CI budget.
#[must_use]
pub fn corr_scenarios() -> Vec<ScenarioSpec> {
    [
        ScenarioFamily::DenseStencil,
        ScenarioFamily::RotatedStencil,
        ScenarioFamily::Pipeline,
        ScenarioFamily::Shuffle,
        ScenarioFamily::Hotspot,
    ]
    .into_iter()
    .map(|family| {
        let spec = ScenarioSpec::new(family, CORR_TASKS, 1);
        let phases = vec![CORR_ITERATIONS; spec.phase_iterations.len()];
        spec.with_phases(phases)
    })
    .collect()
}

fn run_backend(
    spec: &ScenarioSpec,
    policy: Policy,
    backend: impl orwl_core::session::ExecutionBackend + 'static,
    topology: orwl_topo::topology::Topology,
) -> Result<(f64, f64), String> {
    let report = Session::builder()
        .topology(topology)
        .policy(policy)
        .control_threads(0)
        .backend(backend)
        .build()
        .map_err(|e| format!("{} ({policy:?}): {e}", spec.name()))?
        .run(spec.workload())
        .map_err(|e| format!("{} ({policy:?}): {e}", spec.name()))?;
    let wall_seconds = report.time.seconds();
    report
        .fabric
        .map(|f| (f.inter_node_bytes, wall_seconds))
        .ok_or_else(|| format!("{} ({policy:?}): report carries no fabric split", spec.name()))
}

/// Runs the full correlation battery and returns the artifact document.
///
/// `worker_args` is forwarded to [`ProcBackend::with_worker_args`]: empty
/// for standalone binaries whose `main` opens with
/// [`maybe_worker`](orwl_proc::maybe_worker), the worker-entry test
/// filter for test harnesses.
pub fn proc_correlation(worker_args: &[String]) -> Result<Json, String> {
    let mut rows = Vec::new();
    for spec in corr_scenarios() {
        for policy in [Policy::Hierarchical, Policy::Scatter] {
            for n_nodes in CORR_NODE_SWEEP {
                let machine = orwl_cluster::ClusterMachine::paper(n_nodes);
                let (predicted, _) = run_backend(
                    &spec,
                    policy,
                    ClusterBackend::new(machine.clone()),
                    machine.topology().clone(),
                )?;
                let mut measured = None;
                let mut walls = Vec::with_capacity(CORR_REPEATS);
                for _ in 0..CORR_REPEATS {
                    let (bytes, seconds) = run_backend(
                        &spec,
                        policy,
                        ProcBackend::new(machine.clone()).with_worker_args(worker_args.to_vec()),
                        machine.topology().clone(),
                    )?;
                    match measured {
                        None => measured = Some(bytes),
                        Some(first) if first != bytes => {
                            return Err(format!(
                                "{} ({policy:?}, {n_nodes} nodes): byte counts diverged across repeats: {first} vs {bytes}",
                                spec.name()
                            ));
                        }
                        Some(_) => {}
                    }
                    walls.push(seconds);
                }
                walls.sort_by(f64::total_cmp);
                rows.push(CorrRow {
                    scenario: spec.name(),
                    policy: format!("{policy:?}").to_lowercase(),
                    n_nodes,
                    tasks: spec.n_tasks(),
                    predicted_inter_node_bytes: predicted,
                    measured_inter_node_bytes: measured.expect("at least one repeat ran"),
                    wall_seconds: walls[walls.len() / 2],
                });
            }
        }
    }
    Ok(corr_document(&rows))
}
