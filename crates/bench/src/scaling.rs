//! Placement-at-scale harness: how fast is the (incremental-gain) TreeMatch
//! pipeline as the task count grows, and what locality does it deliver?
//!
//! The grid is `p ∈ {64, 256, 512, 1024}` tasks × three matrix families —
//! `stencil` (the paper's LK23 decomposition), `power_law` (irregular
//! graph-analytics shape) and `clustered` (the pattern placement helps
//! most) — each placed once on the paper's 192-PU SMP via flat TreeMatch.
//! Every cell records the **placement wall time** and the quality metrics
//! of the resulting mapping.
//!
//! [`scaling_to_json`] lowers the cells into `BENCH_scaling.json`, shaped
//! as an `orwl-lab/v1` document (it passes `orwl_lab::report::validate`, so
//! the `lab_diff` tool and the CI schema check apply as-is) with one extra
//! per-row column, `placement_wall_seconds`.  Unlike `BENCH_lab.json` the
//! artifact is *not* byte-reproducible — wall time is the point here — so
//! CI validates its schema and re-measures rather than `cmp`ing bytes.

use orwl_comm::matrix::CommMatrix;
use orwl_comm::metrics::{hop_bytes, traffic_breakdown};
use orwl_comm::patterns;
use orwl_core::json::Json;
use orwl_topo::synthetic;
use orwl_treematch::{PlacementScratch, TreeMatchMapper};
use std::time::Instant;

/// The matrix families of the grid.
pub const FAMILIES: [&str; 3] = ["stencil", "power_law", "clustered"];

/// The task counts of the full grid.
pub const FULL_SIZES: [usize; 4] = [64, 256, 512, 1024];

/// One measured cell.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalingCell {
    /// Matrix family name.
    pub family: &'static str,
    /// Task count.
    pub tasks: usize,
    /// Topology the placement targeted.
    pub topology: String,
    /// Wall-clock seconds of the placement computation (the quantity this
    /// harness regresses).
    pub wall_seconds: f64,
    /// Hop-bytes of the computed mapping.
    pub hop_bytes: f64,
    /// Fraction of the traffic kept NUMA-local by the mapping.
    pub local_fraction: f64,
}

/// The `(family, tasks)` cells of the grid.  The smoke grid drops the
/// 1024-task tail and keeps the 512-task cell only for the stencil — the
/// cell the CI wall-clock budget is asserted on.
#[must_use]
pub fn grid(smoke: bool) -> Vec<(&'static str, usize)> {
    let mut cells = Vec::new();
    for family in FAMILIES {
        for p in FULL_SIZES {
            let keep = if smoke { p < 512 || (p == 512 && family == "stencil") } else { true };
            if keep {
                cells.push((family, p));
            }
        }
    }
    cells
}

/// The communication matrix of a grid cell (deterministic for a seed).
///
/// # Panics
/// Panics on an unknown family name.
#[must_use]
pub fn matrix_for(family: &str, p: usize, seed: u64) -> CommMatrix {
    match family {
        "stencil" => {
            // Squarest rows × cols factorisation of p, rows ≤ cols.
            let rows = (1..=p).filter(|&r| p.is_multiple_of(r) && r * r <= p).max().unwrap_or(1);
            patterns::stencil_2d(&patterns::StencilSpec {
                rows,
                cols: p / rows,
                edge_volume: 8192.0,
                corner_volume: 8.0,
            })
        }
        "power_law" => patterns::power_law(p, 4, 1.0e6, seed),
        "clustered" => patterns::clustered(p.div_ceil(8), 8, 1000.0, 1.0),
        other => panic!("unknown scaling family {other:?}"),
    }
}

/// Runs the grid: one timed flat-TreeMatch placement per cell on the
/// paper's 192-PU machine, scratch shared across cells (the steady-state
/// regime the adaptive engine runs in).
#[must_use]
pub fn run_scaling(smoke: bool, seed: u64) -> Vec<ScalingCell> {
    let topo = synthetic::cluster2016_smp192();
    let mapper = TreeMatchMapper::compute_only();
    let mut scratch = PlacementScratch::new();
    grid(smoke)
        .into_iter()
        .map(|(family, tasks)| {
            let m = matrix_for(family, tasks, seed);
            let start = Instant::now();
            let placement = mapper.compute_placement_with(&topo, &m, &mut scratch);
            let wall_seconds = start.elapsed().as_secs_f64();
            let mapping = placement.compute_mapping_or_zero();
            ScalingCell {
                family,
                tasks,
                topology: topo.name().to_string(),
                wall_seconds,
                hop_bytes: hop_bytes(&m, &topo, &mapping),
                local_fraction: traffic_breakdown(&m, &topo, &mapping).local_fraction(),
            }
        })
        .collect()
}

/// Lowers the cells into the `BENCH_scaling.json` document — an
/// `orwl-lab/v1`-shaped artifact (validates against the lab schema) with
/// the extra `placement_wall_seconds` column.
#[must_use]
pub fn scaling_to_json(cells: &[ScalingCell], seed: u64) -> Json {
    let mut rows = Vec::with_capacity(cells.len());
    for cell in cells {
        let mut row = Json::obj();
        row.push("section", "scaling")
            .push("scenario", format!("{}/p{}/s{seed}", cell.family, cell.tasks).as_str())
            .push("family", cell.family)
            .push("tasks", cell.tasks)
            .push("backend", "threads")
            .push("topology", cell.topology.as_str())
            .push("nodes", Json::Null)
            .push("oversubscription", Json::Null)
            .push("policy", "treematch")
            .push("mode", "static")
            .push("hop_bytes", cell.hop_bytes)
            .push("sim_seconds", Json::Null)
            .push("local_fraction", cell.local_fraction)
            .push("inter_node_hop_bytes", Json::Null)
            .push("inter_node_fraction", Json::Null)
            .push("adapt_epochs", Json::Null)
            .push("adapt_replacements", Json::Null)
            .push("adapt_node_reshards", Json::Null)
            .push("vs_scatter", Json::Null)
            .push("vs_flat_treematch", Json::Null)
            .push("placement_wall_seconds", cell.wall_seconds);
        rows.push(row);
    }
    let mut doc = Json::obj();
    doc.push("schema", orwl_lab::SCHEMA_VERSION)
        .push("seed", seed)
        .push("n_rows", cells.len())
        .push("families", Json::Arr(FAMILIES.iter().copied().map(Json::from).collect()))
        .push("backends", Json::Arr(vec![Json::from("threads")]))
        .push("rows", Json::Arr(rows));
    doc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grids_cover_the_documented_cells() {
        let full = grid(false);
        assert_eq!(full.len(), FAMILIES.len() * FULL_SIZES.len());
        let smoke = grid(true);
        assert!(smoke.len() < full.len());
        assert!(smoke.contains(&("stencil", 512)), "the budget-asserted cell must stay in the smoke grid");
        assert!(!smoke.iter().any(|&(_, p)| p == 1024));
        assert!(smoke.iter().all(|cell| full.contains(cell)));
    }

    #[test]
    fn matrices_have_the_requested_order_and_are_deterministic() {
        for (family, p) in grid(false) {
            let m = matrix_for(family, p, 42);
            assert_eq!(m.order(), p, "{family}/{p}");
            assert_eq!(m.as_slice(), matrix_for(family, p, 42).as_slice(), "{family}/{p}");
        }
    }

    #[test]
    fn emitted_document_passes_the_lab_schema() {
        let cells = run_scaling(true, 42)
            .into_iter()
            .filter(|c| c.tasks <= 64) // keep the unit test fast
            .collect::<Vec<_>>();
        assert!(!cells.is_empty());
        for cell in &cells {
            assert!(cell.wall_seconds >= 0.0);
            assert!(cell.hop_bytes.is_finite() && cell.hop_bytes > 0.0);
            assert!((0.0..=1.0).contains(&cell.local_fraction));
        }
        let doc = scaling_to_json(&cells, 42);
        orwl_lab::report::validate(&doc).unwrap();
        // The extra column survives the round trip.
        let reparsed = Json::parse(&doc.pretty()).unwrap();
        let rows = reparsed.get("rows").unwrap().as_arr().unwrap();
        assert!(rows.iter().all(|r| r.get("placement_wall_seconds").and_then(Json::as_f64).is_some()));
    }
}
