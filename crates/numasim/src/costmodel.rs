//! Calibration parameters of the NUMA machine model.
//!
//! The reproduction runs on a single-core container, so the paper's
//! evaluation machine (24 sockets × 8 cores) is *simulated*: task execution
//! times are derived from an analytical cost model whose constants live in
//! [`CostParams`].  The constants are order-of-magnitude values for a
//! 2010s-era x86 SMP machine; they are documented in EXPERIMENTS.md and are
//! deliberately simple — the reproduction target is the *shape* of Figure 1
//! (who wins and by roughly what factor), not absolute seconds.

use orwl_topo::cluster::FabricClass;
use orwl_topo::object::ObjectType;

/// Per-byte transfer cost between two PUs, by the deepest hardware level the
/// PUs share.  Units: seconds per byte.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkCosts {
    /// Hardware threads of the same core (transfer through L1/L2).
    pub same_core: f64,
    /// Cores sharing an L2 cache.
    pub shared_l2: f64,
    /// Cores sharing an L3 cache / the same die.
    pub shared_l3: f64,
    /// Cores of the same NUMA node without a shared cache level modelled.
    pub same_numa: f64,
    /// Cores on different NUMA nodes (traverses the interconnect).
    pub remote_numa: f64,
}

impl LinkCosts {
    /// Picks the cost matching the deepest shared object type.
    pub fn for_shared_type(&self, ty: Option<ObjectType>) -> f64 {
        match ty {
            Some(ObjectType::Core) | Some(ObjectType::PU) => self.same_core,
            Some(ObjectType::L1Cache) | Some(ObjectType::L2Cache) => self.shared_l2,
            Some(ObjectType::L3Cache) => self.shared_l3,
            Some(ObjectType::NumaNode) | Some(ObjectType::Package) | Some(ObjectType::Group) => {
                self.same_numa
            }
            Some(ObjectType::Machine) | None => self.remote_numa,
        }
    }
}

/// All calibration constants of the simulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostParams {
    /// Seconds of pure computation per grid element per iteration
    /// (amortised cost of the LK23 update: ~10 flops plus loads/stores).
    pub sec_per_element: f64,
    /// Seconds per byte for the task's own working-set accesses when the
    /// data is in the local NUMA node's memory and uncontended.
    pub local_byte_cost: f64,
    /// Multiplier applied to working-set accesses that target a *remote*
    /// NUMA node (typical NUMA factor: 2–3×).
    pub remote_access_factor: f64,
    /// Per-byte transfer costs for halo/frontier exchanges between PUs.
    pub link: LinkCosts,
    /// Sustainable memory bandwidth of one NUMA node's controller, in
    /// bytes/second.  Concurrent accessors of the same node share it.
    pub node_bandwidth: f64,
    /// Aggregate bandwidth of the global interconnect (backplane) crossed by
    /// every inter-node transfer, in bytes/second.
    pub interconnect_bandwidth: f64,
    /// Multiplier on compute time for threads that the OS may migrate
    /// (cache refills after migration, scheduler noise).
    pub migration_penalty: f64,
    /// Cost of one fork-join barrier, in seconds per participating thread
    /// (OpenMP-style implicit barrier at the end of every parallel region).
    pub barrier_cost_per_thread: f64,
}

impl CostParams {
    /// Constants calibrated against the paper's evaluation machine
    /// (24 × 8-core sockets, 16384² doubles, 100 iterations): the
    /// topology-bound ORWL run lands near the reported ≈11 s, the unbound
    /// run near 2.8× that, and the OpenMP-style run near 5× that.
    pub fn cluster2016() -> Self {
        CostParams {
            // ~0.8 ns per element of the 5-point implicit update.
            sec_per_element: 0.8e-9,
            // 8 GB/s effective per-core streaming rate → 0.125 ns per byte.
            local_byte_cost: 0.125e-9,
            remote_access_factor: 2.6,
            link: LinkCosts {
                same_core: 0.02e-9,
                shared_l2: 0.04e-9,
                shared_l3: 0.08e-9,
                same_numa: 0.25e-9,
                remote_numa: 0.8e-9,
            },
            // 20 GB/s per NUMA-node memory controller.
            node_bandwidth: 20.0e9,
            // 100 GB/s aggregate cross-node backplane.
            interconnect_bandwidth: 100.0e9,
            migration_penalty: 1.25,
            barrier_cost_per_thread: 1.0e-6,
        }
    }

    /// A fast, exaggerated parameter set for unit tests: big NUMA penalties
    /// and tiny compute so locality effects dominate and tests run quickly.
    pub fn test_exaggerated() -> Self {
        CostParams {
            sec_per_element: 1.0e-9,
            local_byte_cost: 1.0e-9,
            remote_access_factor: 4.0,
            link: LinkCosts {
                same_core: 0.5e-9,
                shared_l2: 1.0e-9,
                shared_l3: 2.0e-9,
                same_numa: 4.0e-9,
                remote_numa: 16.0e-9,
            },
            node_bandwidth: 1.0e9,
            interconnect_bandwidth: 2.0e9,
            migration_penalty: 1.5,
            barrier_cost_per_thread: 1.0e-6,
        }
    }
}

impl Default for CostParams {
    fn default() -> Self {
        CostParams::cluster2016()
    }
}

/// One class of inter-node fabric link: a latency per message plus a
/// per-flow sustainable bandwidth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FabricLink {
    /// One-way message latency, in seconds (paid per fabric message, e.g. a
    /// remote lock grant or the header of a location transfer).
    pub latency: f64,
    /// Sustainable bandwidth of one flow over the link, in bytes/second.
    pub bandwidth: f64,
}

impl FabricLink {
    /// Seconds per byte streamed over the link.
    pub fn per_byte(&self) -> f64 {
        1.0 / self.bandwidth
    }

    /// Time for one message of `bytes` payload: latency + serialisation.
    pub fn transfer_time(&self, bytes: f64) -> f64 {
        self.latency + bytes * self.per_byte()
    }
}

/// The inter-node fabric cost model: one [`FabricLink`] per
/// [`FabricClass`], plus the aggregate bandwidth of the whole fabric
/// (the analogue of [`CostParams::interconnect_bandwidth`] one level up —
/// the sum of all node-crossing bytes of an iteration cannot move faster
/// than this, whatever the per-link overlap).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FabricParams {
    /// Links between nodes of the same rack (one switch hop).
    pub same_rack: FabricLink,
    /// Links between racks (through the spine).
    pub cross_rack: FabricLink,
    /// Aggregate bandwidth of the whole fabric, in bytes/second.
    pub aggregate_bandwidth: f64,
}

impl FabricParams {
    /// A commodity 10 GbE-class fabric to go with
    /// [`CostParams::cluster2016`]: per-flow bandwidth well below any
    /// on-node link, microsecond-scale latencies, a spine that halves the
    /// per-flow rate across racks.
    pub fn cluster2016() -> Self {
        FabricParams {
            same_rack: FabricLink { latency: 5.0e-6, bandwidth: 1.0e9 },
            cross_rack: FabricLink { latency: 12.0e-6, bandwidth: 0.5e9 },
            aggregate_bandwidth: 8.0e9,
        }
    }

    /// Exaggerated constants for unit tests: fabric crossings are so
    /// expensive that node-placement effects dominate everything else.
    pub fn test_exaggerated() -> Self {
        FabricParams {
            same_rack: FabricLink { latency: 50.0e-6, bandwidth: 0.05e9 },
            cross_rack: FabricLink { latency: 200.0e-6, bandwidth: 0.0125e9 },
            aggregate_bandwidth: 0.25e9,
        }
    }

    /// The link serving a fabric class; `None` for
    /// [`FabricClass::SameNode`], which crosses no fabric.
    pub fn link(&self, class: FabricClass) -> Option<FabricLink> {
        match class {
            FabricClass::SameNode => None,
            FabricClass::SameRack => Some(self.same_rack),
            FabricClass::CrossRack => Some(self.cross_rack),
        }
    }

    /// Seconds per byte over the given class (`0` within a node).
    pub fn per_byte(&self, class: FabricClass) -> f64 {
        self.link(class).map_or(0.0, |l| l.per_byte())
    }

    /// One-way latency of the given class (`0` within a node).
    pub fn latency(&self, class: FabricClass) -> f64 {
        self.link(class).map_or(0.0, |l| l.latency)
    }

    /// Time for one `bytes`-payload message over the given class (`0`
    /// within a node — intra-node transfers are priced by
    /// [`LinkCosts`], not by the fabric).
    pub fn transfer_time(&self, bytes: f64, class: FabricClass) -> f64 {
        self.link(class).map_or(0.0, |l| l.transfer_time(bytes))
    }
}

impl Default for FabricParams {
    fn default() -> Self {
        FabricParams::cluster2016()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_costs_are_ordered() {
        for params in [CostParams::cluster2016(), CostParams::test_exaggerated()] {
            let l = params.link;
            assert!(l.same_core < l.shared_l2);
            assert!(l.shared_l2 < l.shared_l3);
            assert!(l.shared_l3 < l.same_numa);
            assert!(l.same_numa < l.remote_numa);
        }
    }

    #[test]
    fn shared_type_selection() {
        let l = CostParams::cluster2016().link;
        assert_eq!(l.for_shared_type(Some(ObjectType::Core)), l.same_core);
        assert_eq!(l.for_shared_type(Some(ObjectType::L3Cache)), l.shared_l3);
        assert_eq!(l.for_shared_type(Some(ObjectType::NumaNode)), l.same_numa);
        assert_eq!(l.for_shared_type(None), l.remote_numa);
        assert_eq!(l.for_shared_type(Some(ObjectType::Machine)), l.remote_numa);
    }

    #[test]
    fn fabric_links_are_ordered_and_slower_than_on_node_links() {
        for (params, fabric) in [
            (CostParams::cluster2016(), FabricParams::cluster2016()),
            (CostParams::test_exaggerated(), FabricParams::test_exaggerated()),
        ] {
            // Per-byte: on-node remote-NUMA < same-rack fabric < cross-rack.
            assert!(params.link.remote_numa < fabric.per_byte(FabricClass::SameRack));
            assert!(fabric.per_byte(FabricClass::SameRack) < fabric.per_byte(FabricClass::CrossRack));
            // Latency ordering and the free same-node class.
            assert!(fabric.latency(FabricClass::SameRack) < fabric.latency(FabricClass::CrossRack));
            assert_eq!(fabric.per_byte(FabricClass::SameNode), 0.0);
            assert_eq!(fabric.latency(FabricClass::SameNode), 0.0);
            assert_eq!(fabric.transfer_time(1.0e6, FabricClass::SameNode), 0.0);
            assert!(fabric.link(FabricClass::SameNode).is_none());
            assert!(fabric.aggregate_bandwidth > 0.0);
        }
    }

    #[test]
    fn fabric_transfer_time_combines_latency_and_serialisation() {
        let fabric = FabricParams::cluster2016();
        let link = fabric.link(FabricClass::SameRack).unwrap();
        let t = fabric.transfer_time(1.0e6, FabricClass::SameRack);
        assert!((t - (link.latency + 1.0e6 / link.bandwidth)).abs() < 1e-15);
        // Latency dominates small messages, bandwidth dominates large ones.
        assert!(fabric.transfer_time(1.0, FabricClass::SameRack) < 2.0 * link.latency);
        assert!(fabric.transfer_time(1.0e9, FabricClass::SameRack) > 100.0 * link.latency);
        assert_eq!(FabricParams::default(), fabric);
    }

    #[test]
    fn cluster_params_are_physically_sensible() {
        let p = CostParams::cluster2016();
        assert!(p.remote_access_factor > 1.0);
        assert!(p.migration_penalty >= 1.0);
        assert!(p.node_bandwidth > 0.0);
        assert!(p.interconnect_bandwidth >= p.node_bandwidth);
        // Default is the paper calibration.
        assert_eq!(CostParams::default(), p);
    }
}
