//! Phased workloads: task graphs whose communication pattern changes at
//! known (to the harness, not to any adaptive policy) phase boundaries.
//!
//! A [`PhasedWorkload`] is the simulator-side unit of execution consumed by
//! the `Session` API's simulator backend: a sequence of [`Phase`]s, each an
//! iterative [`TaskGraph`] run for a fixed number of iterations over the
//! same task set.

use crate::taskgraph::TaskGraph;
use orwl_comm::patterns::rotating_sweep_matrices;

/// One phase of a phase-changing workload.
#[derive(Debug, Clone)]
pub struct Phase {
    /// The task graph executed during the phase.
    pub graph: TaskGraph,
    /// Number of iterations the phase lasts.
    pub iterations: usize,
}

/// A workload whose communication pattern changes at known (to the harness,
/// not to the adaptive policy) phase boundaries.
#[derive(Debug, Clone)]
pub struct PhasedWorkload {
    /// The phases, executed in order.
    pub phases: Vec<Phase>,
}

impl PhasedWorkload {
    /// A single-phase workload: `graph` run for `iterations` iterations.
    #[must_use]
    pub fn single_phase(graph: TaskGraph, iterations: usize) -> Self {
        PhasedWorkload { phases: vec![Phase { graph, iterations }] }
    }

    /// Total iterations over all phases.
    #[must_use]
    pub fn total_iterations(&self) -> usize {
        self.phases.iter().map(|p| p.iterations).sum()
    }

    /// True when the workload has no phases or no tasks.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.phases.is_empty() || self.phases[0].graph.n_tasks() == 0
    }

    /// Number of tasks (identical across phases by construction).
    ///
    /// # Panics
    /// Panics when phases disagree on the task count or none exist.
    #[must_use]
    pub fn n_tasks(&self) -> usize {
        let n = self.phases.first().expect("workload has at least one phase").graph.n_tasks();
        assert!(self.phases.iter().all(|p| p.graph.n_tasks() == n), "phases must share the task set");
        n
    }

    /// The canonical phase-changing workload of the evaluation: a
    /// directionally-swept stencil whose sweep axis rotates 90° between
    /// phases (heavy east-west halos, then heavy north-south), built from
    /// [`orwl_comm::patterns::rotating_sweep_matrices`].
    ///
    /// `side × side` tasks; `heavy`/`light` are the per-axis halo volumes;
    /// each task computes `elements` points over `phase_iterations.len()`
    /// phases (phase `k` uses the rotated pattern when `k` is odd).
    #[must_use]
    pub fn rotating_stencil(
        side: usize,
        heavy: f64,
        light: f64,
        elements: f64,
        private_bytes: f64,
        phase_iterations: &[usize],
    ) -> Self {
        let (a, b) = rotating_sweep_matrices(side, heavy, light);
        let phases = phase_iterations
            .iter()
            .enumerate()
            .map(|(k, &iterations)| Phase {
                graph: TaskGraph::from_matrix(if k % 2 == 0 { &a } else { &b }, elements, private_bytes),
                iterations,
            })
            .collect();
        PhasedWorkload { phases }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rotating_stencil_shape_is_consistent() {
        let w = PhasedWorkload::rotating_stencil(4, 65536.0, 1024.0, 16384.0, 131072.0, &[24, 200]);
        assert_eq!(w.n_tasks(), 16);
        assert_eq!(w.total_iterations(), 224);
        assert!(!w.is_empty());
        // The two phases carry the same total traffic but different matrices.
        let a = w.phases[0].graph.comm_matrix();
        let b = w.phases[1].graph.comm_matrix();
        assert!((a.total_volume() - b.total_volume()).abs() < 1e-6);
        assert_ne!(a, b);
    }

    #[test]
    fn single_phase_wraps_a_graph() {
        let g = TaskGraph::new(vec![crate::taskgraph::SimTask { elements: 1.0, private_bytes: 1.0 }], vec![]);
        let w = PhasedWorkload::single_phase(g, 7);
        assert_eq!(w.phases.len(), 1);
        assert_eq!(w.total_iterations(), 7);
        assert_eq!(w.n_tasks(), 1);
    }

    #[test]
    fn empty_workloads_are_detected() {
        assert!(PhasedWorkload { phases: vec![] }.is_empty());
        let w = PhasedWorkload::single_phase(TaskGraph::new(vec![], vec![]), 3);
        assert!(w.is_empty());
    }
}
