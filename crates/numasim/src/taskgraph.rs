//! Iterative task graphs: the workload description consumed by the
//! simulator.
//!
//! A [`TaskGraph`] describes one *iteration* of a bulk-iterative computation
//! (the LK23 stencil, or any other ORWL program): a set of tasks, each with
//! a compute cost and a private working set, plus directed edges carrying
//! the bytes a task must receive from another task's *previous* iteration
//! before it can start the current one.

use orwl_comm::matrix::CommMatrix;
use orwl_comm::patterns::StencilSpec;

/// One task of the iterative computation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimTask {
    /// Number of grid elements (or generic work units) processed per
    /// iteration.
    pub elements: f64,
    /// Bytes of the task's own working set streamed from memory per
    /// iteration.
    pub private_bytes: f64,
}

/// A directed dependency: `dst` needs `bytes` produced by `src` during the
/// previous iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimEdge {
    /// Producer task index.
    pub src: usize,
    /// Consumer task index.
    pub dst: usize,
    /// Bytes transferred per iteration.
    pub bytes: f64,
}

/// The per-iteration task graph.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskGraph {
    tasks: Vec<SimTask>,
    edges: Vec<SimEdge>,
    /// For every task, indices into `edges` of its incoming dependencies.
    in_edges: Vec<Vec<usize>>,
}

impl TaskGraph {
    /// Creates a graph from tasks and edges.
    ///
    /// # Panics
    /// Panics when an edge references a task that does not exist.
    pub fn new(tasks: Vec<SimTask>, edges: Vec<SimEdge>) -> Self {
        let n = tasks.len();
        let mut in_edges = vec![Vec::new(); n];
        for (i, e) in edges.iter().enumerate() {
            assert!(e.src < n && e.dst < n, "edge {i} references a missing task");
            in_edges[e.dst].push(i);
        }
        TaskGraph { tasks, edges, in_edges }
    }

    /// Number of tasks.
    pub fn n_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// Task accessor.
    pub fn task(&self, t: usize) -> &SimTask {
        &self.tasks[t]
    }

    /// All edges.
    pub fn edges(&self) -> &[SimEdge] {
        &self.edges
    }

    /// Incoming edges of task `t`.
    pub fn in_edges(&self, t: usize) -> impl Iterator<Item = &SimEdge> {
        self.in_edges[t].iter().map(move |&i| &self.edges[i])
    }

    /// Total bytes exchanged between distinct tasks per iteration.
    pub fn total_edge_bytes(&self) -> f64 {
        self.edges.iter().map(|e| e.bytes).sum()
    }

    /// Total working-set bytes streamed per iteration (sum over tasks).
    pub fn total_private_bytes(&self) -> f64 {
        self.tasks.iter().map(|t| t.private_bytes).sum()
    }

    /// The task × task communication matrix of the graph — exactly the
    /// matrix the placement algorithm consumes.
    pub fn comm_matrix(&self) -> CommMatrix {
        let mut m = CommMatrix::zeros(self.n_tasks());
        for e in &self.edges {
            if e.src != e.dst {
                m.add(e.src, e.dst, e.bytes);
            }
        }
        m
    }

    /// Builds a task graph from an arbitrary communication matrix: one task
    /// per row with uniform compute cost, one edge per non-zero entry.
    /// Used by the adaptive evaluation to turn phase-specific matrices
    /// (e.g. [`orwl_comm::patterns::stencil_2d_rotated`]) into workloads.
    pub fn from_matrix(m: &CommMatrix, elements_per_task: f64, private_bytes_per_task: f64) -> TaskGraph {
        let n = m.order();
        let tasks = vec![SimTask { elements: elements_per_task, private_bytes: private_bytes_per_task }; n];
        let mut edges = Vec::new();
        for src in 0..n {
            for dst in 0..n {
                let bytes = m.get(src, dst);
                if src != dst && bytes > 0.0 {
                    edges.push(SimEdge { src, dst, bytes });
                }
            }
        }
        TaskGraph::new(tasks, edges)
    }

    /// Builds the task graph of a 2-D block stencil (the LK23 decomposition):
    /// a `spec.rows × spec.cols` grid of block tasks, each processing
    /// `block_elements` grid points, streaming `elem_bytes` per point, and
    /// exchanging edge/corner halos with its neighbours as described by
    /// `spec`.
    pub fn stencil(spec: &StencilSpec, block_elements: f64, elem_bytes: f64) -> TaskGraph {
        let n = spec.tasks();
        let tasks = vec![SimTask { elements: block_elements, private_bytes: block_elements * elem_bytes }; n];
        let m = orwl_comm::patterns::stencil_2d(spec);
        let mut edges = Vec::new();
        for src in 0..n {
            for dst in 0..n {
                let bytes = m.get(src, dst);
                if bytes > 0.0 {
                    edges.push(SimEdge { src, dst, bytes });
                }
            }
        }
        TaskGraph::new(tasks, edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph_indexes_incoming_edges() {
        let tasks = vec![SimTask { elements: 10.0, private_bytes: 80.0 }; 3];
        let edges = vec![
            SimEdge { src: 0, dst: 1, bytes: 8.0 },
            SimEdge { src: 2, dst: 1, bytes: 4.0 },
            SimEdge { src: 1, dst: 2, bytes: 2.0 },
        ];
        let g = TaskGraph::new(tasks, edges);
        assert_eq!(g.n_tasks(), 3);
        assert_eq!(g.in_edges(1).count(), 2);
        assert_eq!(g.in_edges(0).count(), 0);
        assert_eq!(g.total_edge_bytes(), 14.0);
        assert_eq!(g.total_private_bytes(), 240.0);
        assert_eq!(g.task(0).elements, 10.0);
    }

    #[test]
    #[should_panic]
    fn graph_rejects_dangling_edges() {
        TaskGraph::new(
            vec![SimTask { elements: 1.0, private_bytes: 1.0 }],
            vec![SimEdge { src: 0, dst: 3, bytes: 1.0 }],
        );
    }

    #[test]
    fn stencil_graph_matches_comm_matrix() {
        let spec = StencilSpec { rows: 4, cols: 4, edge_volume: 128.0, corner_volume: 8.0 };
        let g = TaskGraph::stencil(&spec, 1_000.0, 8.0);
        assert_eq!(g.n_tasks(), 16);
        // The graph's communication matrix equals the pattern generator's.
        let expected = orwl_comm::patterns::stencil_2d(&spec);
        assert_eq!(g.comm_matrix(), expected);
        // Interior task has 8 incoming halos.
        assert_eq!(g.in_edges(5).count(), 8);
        // Corner task has 3.
        assert_eq!(g.in_edges(0).count(), 3);
        // Private bytes per task = elements × elem size.
        assert_eq!(g.task(0).private_bytes, 8_000.0);
    }

    #[test]
    fn empty_graph_is_fine() {
        let g = TaskGraph::new(vec![], vec![]);
        assert_eq!(g.n_tasks(), 0);
        assert_eq!(g.total_edge_bytes(), 0.0);
        assert_eq!(g.comm_matrix().order(), 0);
    }
}
