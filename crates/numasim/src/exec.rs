//! The discrete-event execution engine.
//!
//! [`simulate`] plays an iterative [`TaskGraph`] on a [`SimMachine`] under a
//! given [`ExecutionScenario`] and returns the simulated wall-clock time
//! together with a breakdown of where the time went.  The engine models:
//!
//! * **compute** — `elements × sec_per_element`, inflated by the migration
//!   penalty when threads are not pinned;
//! * **working-set accesses** — `private_bytes × per-byte cost`, where the
//!   per-byte cost depends on whether the data is NUMA-local and on how many
//!   tasks share the target node's memory controller (bandwidth sharing);
//! * **halo transfers** — per-edge `bytes × link cost` between the producer
//!   and consumer PUs, paid before the consumer can start its iteration;
//! * **interconnect saturation** — the sum of all node-crossing bytes of an
//!   iteration cannot move faster than the global backplane allows;
//! * **PU serialisation** — tasks mapped to the same PU run one after the
//!   other (oversubscription);
//! * **fork-join barriers** — optional per-iteration synchronisation.

use crate::machine::SimMachine;
use crate::scenario::ExecutionScenario;
use crate::taskgraph::TaskGraph;

/// Observer of the simulated execution, the simulator-side analogue of
/// `orwl_core::monitor::AccessSink`.  `orwl-adapt` feeds its online
/// communication matrix from these callbacks.
pub trait SimMonitor {
    /// Called once per halo edge per iteration: `src` sent `bytes` to `dst`.
    fn on_transfer(&mut self, iteration: usize, src: usize, dst: usize, bytes: f64);

    /// Called when an iteration's simulated execution completes.
    fn on_iteration_end(&mut self, iteration: usize, elapsed: f64) {
        let _ = (iteration, elapsed);
    }
}

/// A monitor that observes nothing (the default for [`simulate`]).
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopSimMonitor;

impl SimMonitor for NoopSimMonitor {
    fn on_transfer(&mut self, _iteration: usize, _src: usize, _dst: usize, _bytes: f64) {}
}

/// Where the simulated time was spent, summed over all tasks and iterations
/// (seconds of task-time, not wall-clock).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TimeBreakdown {
    /// Pure computation.
    pub compute: f64,
    /// Working-set (private block) memory accesses.
    pub memory: f64,
    /// Halo/frontier transfers between tasks.
    pub halo: f64,
    /// Barrier synchronisation overhead.
    pub barrier: f64,
}

impl TimeBreakdown {
    /// Total accumulated task-time.
    pub fn total(&self) -> f64 {
        self.compute + self.memory + self.halo + self.barrier
    }
}

/// Result of a simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Simulated wall-clock time of the whole run, in seconds.
    pub total_time: f64,
    /// Simulated wall-clock time of each iteration.
    pub iteration_times: Vec<f64>,
    /// Aggregated task-time breakdown (helps explain *why* a scenario is
    /// slow; the components overlap in wall-clock time).
    pub breakdown: TimeBreakdown,
    /// Bytes crossing NUMA nodes per iteration (working set + halos).
    pub cross_node_bytes: f64,
    /// Label copied from the scenario.
    pub label: String,
}

impl SimReport {
    /// Mean iteration time.
    pub fn mean_iteration_time(&self) -> f64 {
        if self.iteration_times.is_empty() {
            0.0
        } else {
            self.iteration_times.iter().sum::<f64>() / self.iteration_times.len() as f64
        }
    }
}

/// Simulates `iterations` iterations of `graph` under `scenario`.
///
/// # Panics
/// Panics when the scenario does not cover every task of the graph.
pub fn simulate(
    machine: &SimMachine,
    graph: &TaskGraph,
    scenario: &ExecutionScenario,
    iterations: usize,
) -> SimReport {
    simulate_monitored(machine, graph, scenario, iterations, &mut NoopSimMonitor)
}

/// [`simulate`] with a [`SimMonitor`] observing every halo transfer and
/// iteration boundary — the hook `orwl-adapt` uses to monitor the simulated
/// executor online.
pub fn simulate_monitored(
    machine: &SimMachine,
    graph: &TaskGraph,
    scenario: &ExecutionScenario,
    iterations: usize,
    monitor: &mut dyn SimMonitor,
) -> SimReport {
    let n = graph.n_tasks();
    assert!(
        scenario.task_pu.len() >= n && scenario.data_node.len() >= n,
        "scenario covers {} tasks but the graph has {n}",
        scenario.task_pu.len()
    );
    let params = machine.params();

    // --- Static per-placement quantities -----------------------------------
    // Number of tasks whose working set lives on each node: they share that
    // node's memory controller every iteration.
    let mut sharers_per_node = vec![0usize; machine.n_nodes()];
    for t in 0..n {
        sharers_per_node[scenario.data_node[t]] += 1;
    }

    // Per-task duration of one iteration (compute + working-set accesses).
    let migration = if scenario.migrating { params.migration_penalty } else { 1.0 };
    let mut task_duration = vec![0.0f64; n];
    let mut sum_compute = 0.0;
    let mut sum_memory = 0.0;
    for (t, duration) in task_duration.iter_mut().enumerate() {
        let task = graph.task(t);
        let compute = task.elements * params.sec_per_element * migration;
        let exec_node = machine.node_of_pu(scenario.task_pu[t]);
        let data_node = scenario.data_node[t];
        // Per-byte cost including the NUMA factor...
        let byte_cost = machine.access_byte_cost(exec_node, data_node);
        // ...and bandwidth sharing on the target memory controller: the
        // controller can stream `node_bandwidth` bytes/s in total, so with
        // `s` concurrent streams each sees `node_bandwidth / s`.
        let sharers = sharers_per_node[data_node].max(1) as f64;
        let controller_limited = task.private_bytes * sharers / params.node_bandwidth;
        let latency_limited = task.private_bytes * byte_cost;
        let memory = latency_limited.max(controller_limited);
        *duration = compute + memory;
        sum_compute += compute;
        sum_memory += memory;
    }

    // Bytes that cross NUMA nodes every iteration (working sets fetched from
    // remote nodes plus node-crossing halos): bounded by the backplane.
    let mut cross_bytes = 0.0;
    for t in 0..n {
        let exec_node = machine.node_of_pu(scenario.task_pu[t]);
        if exec_node != scenario.data_node[t] {
            cross_bytes += graph.task(t).private_bytes;
        }
    }
    for e in graph.edges() {
        let a = machine.node_of_pu(scenario.task_pu[e.src]);
        let b = machine.node_of_pu(scenario.task_pu[e.dst]);
        if a != b {
            cross_bytes += e.bytes;
        }
    }
    let interconnect_floor = cross_bytes / params.interconnect_bandwidth;

    // Barrier overhead per iteration (fork-join runtimes only).
    let barrier_cost =
        if scenario.fork_join_barrier { params.barrier_cost_per_thread * n as f64 } else { 0.0 };

    // --- Event-driven iteration loop ---------------------------------------
    let mut finish_prev = vec![0.0f64; n];
    let mut finish_cur = vec![0.0f64; n];
    let mut pu_free: std::collections::HashMap<usize, f64> = std::collections::HashMap::new();
    let mut iteration_times = Vec::with_capacity(iterations);
    let mut clock_start_of_iter = 0.0f64;
    let mut sum_halo = 0.0;
    let mut sum_barrier = 0.0;

    for iter in 0..iterations {
        // Order tasks by the time their dependencies are satisfied so that
        // PU serialisation favours the task that becomes ready first.
        let mut ready: Vec<(f64, usize)> = (0..n)
            .map(|t| {
                let mut r: f64 = clock_start_of_iter;
                for e in graph.in_edges(t) {
                    let link = machine.link_byte_cost(scenario.task_pu[e.src], scenario.task_pu[e.dst]);
                    let halo_time = e.bytes * link;
                    sum_halo += halo_time;
                    monitor.on_transfer(iter, e.src, e.dst, e.bytes);
                    r = r.max(finish_prev[e.src] + halo_time);
                }
                (r, t)
            })
            .collect();
        ready.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));

        let mut iter_end = clock_start_of_iter;
        for (ready_time, t) in ready {
            let pu = scenario.task_pu[t];
            let free = pu_free.get(&pu).copied().unwrap_or(0.0);
            let start = ready_time.max(free);
            let finish = start + task_duration[t];
            pu_free.insert(pu, finish);
            finish_cur[t] = finish;
            iter_end = iter_end.max(finish);
        }

        // The node-crossing traffic of this iteration cannot beat the
        // backplane, whatever the per-task overlap looked like.
        iter_end = iter_end.max(clock_start_of_iter + interconnect_floor);

        // Fork-join runtimes re-synchronise every iteration.
        if scenario.fork_join_barrier {
            iter_end += barrier_cost;
            sum_barrier += barrier_cost;
            for f in finish_cur.iter_mut() {
                *f = iter_end;
            }
            for f in pu_free.values_mut() {
                *f = iter_end;
            }
        }

        iteration_times.push(iter_end - clock_start_of_iter);
        monitor.on_iteration_end(iter, iter_end - clock_start_of_iter);
        clock_start_of_iter = iter_end;
        std::mem::swap(&mut finish_prev, &mut finish_cur);
    }

    SimReport {
        total_time: clock_start_of_iter,
        iteration_times,
        breakdown: TimeBreakdown {
            compute: sum_compute * iterations as f64,
            memory: sum_memory * iterations as f64,
            halo: sum_halo,
            barrier: sum_barrier,
        },
        cross_node_bytes: cross_bytes,
        label: scenario.label.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::costmodel::CostParams;
    use crate::scenario::ExecutionScenario;
    use crate::taskgraph::{SimEdge, SimTask};
    use orwl_comm::patterns::StencilSpec;
    use orwl_topo::synthetic;

    fn small_machine() -> SimMachine {
        SimMachine::new(synthetic::cluster2016_subset(4).unwrap(), CostParams::test_exaggerated())
    }

    fn stencil_graph(side: usize) -> TaskGraph {
        let spec = StencilSpec::nine_point_blocks(side, 64, 8);
        TaskGraph::stencil(&spec, 64.0 * 64.0, 8.0)
    }

    #[test]
    fn zero_iterations_takes_zero_time() {
        let m = small_machine();
        let g = stencil_graph(4);
        let s = ExecutionScenario::bound(&m, (0..16).collect());
        let r = simulate(&m, &g, &s, 0);
        assert_eq!(r.total_time, 0.0);
        assert!(r.iteration_times.is_empty());
        assert_eq!(r.mean_iteration_time(), 0.0);
    }

    #[test]
    fn time_scales_linearly_with_iterations() {
        let m = small_machine();
        let g = stencil_graph(4);
        let s = ExecutionScenario::bound(&m, (0..16).collect());
        let r1 = simulate(&m, &g, &s, 10);
        let r2 = simulate(&m, &g, &s, 20);
        assert!(r1.total_time > 0.0);
        // Steady-state: doubling iterations roughly doubles the time.
        let ratio = r2.total_time / r1.total_time;
        assert!((ratio - 2.0).abs() < 0.2, "ratio {ratio}");
        assert_eq!(r1.iteration_times.len(), 10);
    }

    #[test]
    fn local_bound_run_beats_remote_unbound_run() {
        let m = small_machine();
        let g = stencil_graph(8); // 64 tasks on 32 PUs (oversubscribed ×2)
        let bound = ExecutionScenario::bound(&m, (0..64).map(|t| t % 32).collect());
        let nobind = ExecutionScenario::orwl_nobind(&m, 64, 7);
        let openmp = ExecutionScenario::openmp_static(&m, 64);
        let rb = simulate(&m, &g, &bound, 5);
        let rn = simulate(&m, &g, &nobind, 5);
        let ro = simulate(&m, &g, &openmp, 5);
        assert!(rb.total_time < rn.total_time, "bind {} vs nobind {}", rb.total_time, rn.total_time);
        assert!(rn.total_time < ro.total_time, "nobind {} vs openmp {}", rn.total_time, ro.total_time);
        // The OpenMP run funnels everything through node 0: more cross-node
        // traffic than the bound run.
        assert!(ro.cross_node_bytes > rb.cross_node_bytes);
    }

    #[test]
    fn breakdown_components_are_positive_and_labelled() {
        let m = small_machine();
        let g = stencil_graph(4);
        let s = ExecutionScenario::openmp_static(&m, 16);
        let r = simulate(&m, &g, &s, 3);
        assert!(r.breakdown.compute > 0.0);
        assert!(r.breakdown.memory > 0.0);
        assert!(r.breakdown.halo > 0.0);
        assert!(r.breakdown.barrier > 0.0);
        assert!(r.breakdown.total() > 0.0);
        assert_eq!(r.label, "openmp");
        // A bound ORWL run has no barrier component.
        let rb = simulate(&m, &g, &ExecutionScenario::bound(&m, (0..16).collect()), 3);
        assert_eq!(rb.breakdown.barrier, 0.0);
    }

    #[test]
    fn pu_serialisation_slows_oversubscribed_placements() {
        let m = small_machine();
        let g = stencil_graph(4); // 16 tasks
                                  // All tasks stacked on one PU vs spread over 16 PUs.
        let stacked = ExecutionScenario::bound(&m, vec![0; 16]);
        let spread = ExecutionScenario::bound(&m, (0..16).collect());
        let rs = simulate(&m, &g, &stacked, 3);
        let rp = simulate(&m, &g, &spread, 3);
        assert!(rs.total_time > rp.total_time * 4.0, "stacked {} spread {}", rs.total_time, rp.total_time);
    }

    #[test]
    fn interconnect_floor_limits_remote_heavy_runs() {
        // A graph with huge working sets all resident on node 0, executed
        // from node 1: the iteration cannot be faster than cross-bytes /
        // backplane bandwidth.
        let m = small_machine();
        let tasks = vec![SimTask { elements: 1.0, private_bytes: 1.0e9 }; 8];
        let g = TaskGraph::new(tasks, vec![]);
        let s = ExecutionScenario {
            task_pu: (8..16).collect(), // node 1
            data_node: vec![0; 8],
            migrating: false,
            fork_join_barrier: false,
            label: "remote".to_string(),
        };
        let r = simulate(&m, &g, &s, 1);
        let floor = 8.0e9 / m.params().interconnect_bandwidth;
        assert!(r.total_time >= floor);
        assert_eq!(r.cross_node_bytes, 8.0e9);
    }

    #[test]
    fn halo_dependencies_delay_consumers() {
        // Two tasks: task 1 needs a big halo from task 0 each iteration.
        let m = small_machine();
        let tasks = vec![SimTask { elements: 1000.0, private_bytes: 0.0 }; 2];
        let edges = vec![SimEdge { src: 0, dst: 1, bytes: 1.0e6 }];
        let g = TaskGraph::new(tasks, edges.clone());
        // Same socket vs different sockets: the cross-socket link is slower,
        // so the total time grows.
        let near = ExecutionScenario::bound(&m, vec![0, 1]);
        let far = ExecutionScenario::bound(&m, vec![0, 8]);
        let rn = simulate(&m, &g, &near, 4);
        let rf = simulate(&m, &g, &far, 4);
        assert!(rf.total_time > rn.total_time);
    }

    #[test]
    #[should_panic]
    fn scenario_must_cover_all_tasks() {
        let m = small_machine();
        let g = stencil_graph(4);
        let s = ExecutionScenario::bound(&m, vec![0, 1]); // only 2 of 16
        simulate(&m, &g, &s, 1);
    }
}
