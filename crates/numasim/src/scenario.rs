//! Execution scenarios: where tasks run and where their data lives.
//!
//! The three implementations compared in the paper's Figure 1 differ in
//! exactly two respects that matter for NUMA performance: **thread
//! placement** (pinned by the topology-aware module, or left to the OS) and
//! **data placement** (first-touch by the thread that owns the block, or by
//! the master thread).  An [`ExecutionScenario`] captures both, plus whether
//! the implementation synchronises with a fork-join barrier every iteration.

use crate::machine::SimMachine;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// A complete description of how a task graph is executed on the machine.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionScenario {
    /// PU (OS index) on which each task executes.
    pub task_pu: Vec<usize>,
    /// NUMA node on which each task's working set resides (first-touch).
    pub data_node: Vec<usize>,
    /// True when threads are not pinned: the OS may migrate them, costing
    /// cache refills (modelled by `CostParams::migration_penalty`).
    pub migrating: bool,
    /// True for fork-join runtimes that synchronise every iteration with a
    /// barrier (the OpenMP baseline).
    pub fork_join_barrier: bool,
    /// Human-readable label used in reports ("orwl-bind", "openmp", …).
    pub label: String,
}

impl ExecutionScenario {
    /// Number of tasks covered by the scenario.
    pub fn n_tasks(&self) -> usize {
        self.task_pu.len()
    }

    /// The paper's **ORWL Bind** configuration: tasks pinned according to a
    /// placement (typically produced by the TreeMatch mapper), data
    /// first-touched by the pinned owner, so it is local to the node the
    /// task runs on.
    pub fn bound(machine: &SimMachine, task_pu: Vec<usize>) -> Self {
        let data_node = task_pu.iter().map(|&pu| machine.node_of_pu(pu)).collect();
        ExecutionScenario {
            task_pu,
            data_node,
            migrating: false,
            fork_join_barrier: false,
            label: "orwl-bind".to_string(),
        }
    }

    /// The paper's **ORWL NoBind** configuration: the OS places (and may
    /// migrate) the per-operation threads.  Each block is first-touched by
    /// its own task thread, so right after allocation the data *is* local to
    /// wherever that thread happened to run; later migrations and wake-ups
    /// on other cores break that affinity for roughly half of the blocks.
    /// The scenario therefore keeps ~50% of the blocks node-local and
    /// scatters the rest, with unpinned (migrating) execution.
    pub fn orwl_nobind(machine: &SimMachine, n_tasks: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let pus = machine.topology().pu_os_indices();
        // The OS spreads runnable threads over all PUs, but with no affinity
        // between a thread and the node holding its data.
        let mut exec_pus = pus.clone();
        exec_pus.shuffle(&mut rng);
        let task_pu: Vec<usize> = (0..n_tasks).map(|t| exec_pus[t % exec_pus.len()]).collect();
        // Roughly a third of the blocks stay where their owner first touched
        // them (the current executing node); for the rest the affinity is
        // lost to migrations and the pages end up wherever the allocating
        // thread happened to run — spread over the nodes, independent of the
        // consumer.  The spread is kept balanced (least-loaded node) because
        // the allocating threads themselves were spread over the machine.
        let n_nodes = machine.n_nodes();
        let mut node_load = vec![0usize; n_nodes];
        let mut data_node = vec![usize::MAX; n_tasks];
        // First pass: the blocks that kept first-touch locality.
        for (t, &pu) in task_pu.iter().enumerate() {
            if t % 3 == 0 || rng.gen::<f64>() < 0.05 {
                let node = machine.node_of_pu(pu);
                data_node[t] = node;
                node_load[node] += 1;
            }
        }
        // Second pass: the rest lands wherever memory pressure was lowest
        // (the allocator arenas are spread over the machine).
        for slot in data_node.iter_mut() {
            if *slot == usize::MAX {
                let node = (0..n_nodes).min_by_key(|&n| node_load[n]).unwrap_or(0);
                *slot = node;
                node_load[node] += 1;
            }
        }
        ExecutionScenario {
            task_pu,
            data_node,
            migrating: true,
            fork_join_barrier: false,
            label: "orwl-nobind".to_string(),
        }
    }

    /// The paper's **OpenMP** baseline "of equivalent abstraction": a
    /// parallel loop over row blocks with static scheduling and an implicit
    /// barrier per sweep.  Threads are unpinned, and because the
    /// initialisation loop's threads were not pinned either, the first-touch
    /// pages of the shared matrix end up spread over the NUMA nodes with no
    /// relation to the threads that later use them (modelled as node
    /// interleaving by task index).
    pub fn openmp_static(machine: &SimMachine, n_tasks: usize) -> Self {
        let pus = machine.topology().pu_os_indices();
        let task_pu: Vec<usize> = (0..n_tasks).map(|t| pus[t % pus.len()]).collect();
        let n_nodes = machine.n_nodes();
        let data_node: Vec<usize> = (0..n_tasks).map(|t| t % n_nodes).collect();
        ExecutionScenario {
            task_pu,
            data_node,
            migrating: true,
            fork_join_barrier: true,
            label: "openmp".to_string(),
        }
    }

    /// Worst-case OpenMP variant used by the ablations: the shared matrix is
    /// initialised serially by the master thread, so *every* page lives on
    /// the master's NUMA node and its memory controller serves the whole
    /// machine.
    pub fn openmp_master_touch(machine: &SimMachine, n_tasks: usize) -> Self {
        let pus = machine.topology().pu_os_indices();
        let task_pu: Vec<usize> = (0..n_tasks).map(|t| pus[t % pus.len()]).collect();
        let master_node = machine.node_of_pu(pus[0]);
        ExecutionScenario {
            task_pu,
            data_node: vec![master_node; n_tasks],
            migrating: true,
            fork_join_barrier: true,
            label: "openmp-master".to_string(),
        }
    }

    /// A what-if variant of the OpenMP baseline with correct parallel
    /// first-touch initialisation (data local to the executing thread) but
    /// still no pinning and a per-iteration barrier.  Used by the ablation
    /// benchmarks.
    pub fn openmp_first_touch(machine: &SimMachine, n_tasks: usize) -> Self {
        let pus = machine.topology().pu_os_indices();
        let task_pu: Vec<usize> = (0..n_tasks).map(|t| pus[t % pus.len()]).collect();
        let data_node = task_pu.iter().map(|&pu| machine.node_of_pu(pu)).collect();
        ExecutionScenario {
            task_pu,
            data_node,
            migrating: true,
            fork_join_barrier: true,
            label: "openmp-first-touch".to_string(),
        }
    }

    /// Overrides the label (useful when sweeping policies).
    pub fn with_label(mut self, label: &str) -> Self {
        self.label = label.to_string();
        self
    }

    /// Fraction of tasks whose working set lives on a different node than
    /// the one they execute on.
    pub fn remote_data_fraction(&self, machine: &SimMachine) -> f64 {
        if self.task_pu.is_empty() {
            return 0.0;
        }
        let remote = self
            .task_pu
            .iter()
            .zip(&self.data_node)
            .filter(|(&pu, &node)| machine.node_of_pu(pu) != node)
            .count();
        remote as f64 / self.task_pu.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::costmodel::CostParams;
    use orwl_topo::synthetic;

    fn machine() -> SimMachine {
        SimMachine::new(synthetic::cluster2016_subset(4).unwrap(), CostParams::test_exaggerated())
    }

    #[test]
    fn bound_scenario_keeps_data_local() {
        let m = machine();
        let s = ExecutionScenario::bound(&m, (0..32).collect());
        assert_eq!(s.n_tasks(), 32);
        assert!(!s.migrating);
        assert!(!s.fork_join_barrier);
        assert_eq!(s.remote_data_fraction(&m), 0.0);
        assert_eq!(s.label, "orwl-bind");
    }

    #[test]
    fn nobind_scenario_has_partially_remote_data() {
        let m = machine(); // 4 nodes
        let s = ExecutionScenario::orwl_nobind(&m, 64, 42);
        assert!(s.migrating);
        assert!(!s.fork_join_barrier);
        // About half of the blocks keep first-touch locality, the other half
        // land on an arbitrary node (3/4 of which is remote): expect a
        // remote fraction around 0.35–0.40, allow a generous band.
        let frac = s.remote_data_fraction(&m);
        assert!(frac > 0.15 && frac < 0.75, "remote fraction {frac}");
        // Reproducible.
        assert_eq!(s, ExecutionScenario::orwl_nobind(&m, 64, 42));
        assert_ne!(s, ExecutionScenario::orwl_nobind(&m, 64, 43));
    }

    #[test]
    fn openmp_scenario_interleaves_data_over_nodes() {
        let m = machine(); // 4 nodes, 32 PUs
        let s = ExecutionScenario::openmp_static(&m, 32);
        assert!(s.fork_join_barrier);
        // Data pages are spread evenly over the 4 nodes...
        for node in 0..4 {
            assert_eq!(s.data_node.iter().filter(|&&n| n == node).count(), 8);
        }
        // ...with essentially no relation to the executing thread: most
        // blocks are remote.
        let frac = s.remote_data_fraction(&m);
        assert!(frac > 0.5, "remote fraction {frac}");
        // The worst-case master-touch variant is fully on node 0.
        let master = ExecutionScenario::openmp_master_touch(&m, 32);
        assert!(master.data_node.iter().all(|&n| n == 0));
        assert!((master.remote_data_fraction(&m) - 0.75).abs() < 1e-9);
    }

    #[test]
    fn openmp_first_touch_fixes_data_locality_only() {
        let m = machine();
        let s = ExecutionScenario::openmp_first_touch(&m, 32);
        assert!(s.fork_join_barrier);
        assert_eq!(s.remote_data_fraction(&m), 0.0);
    }

    #[test]
    fn with_label_renames() {
        let m = machine();
        let s = ExecutionScenario::bound(&m, vec![0, 1]).with_label("custom");
        assert_eq!(s.label, "custom");
    }

    #[test]
    fn empty_scenario_has_zero_remote_fraction() {
        let m = machine();
        let s = ExecutionScenario::bound(&m, vec![]);
        assert_eq!(s.remote_data_fraction(&m), 0.0);
    }
}
