//! The simulated machine: a topology plus the calibrated cost model.

use crate::costmodel::CostParams;
use orwl_topo::object::ObjectType;
use orwl_topo::topology::Topology;

/// A simulated NUMA machine.
///
/// Wraps a [`Topology`] and [`CostParams`] and pre-computes the lookups the
/// simulator needs on its hot path: the NUMA node of every PU and the
/// per-byte link cost between every pair of PUs.
#[derive(Debug, Clone)]
pub struct SimMachine {
    topo: Topology,
    params: CostParams,
    /// NUMA node index of each PU, indexed by PU OS index.
    node_of_pu: Vec<usize>,
    /// Number of NUMA nodes (at least 1).
    n_nodes: usize,
    /// Per-byte link cost between PUs, row-major `[pu_a * n_pus + pu_b]`.
    link_cost: Vec<f64>,
    n_pus: usize,
}

impl SimMachine {
    /// Builds the machine model; `O(P²)` in the number of PUs (a few tens of
    /// thousands of entries for the paper's 192-core machine).
    pub fn new(topo: Topology, params: CostParams) -> Self {
        let n_pus = topo.nb_pus();
        let nodes = {
            let numa = topo.objects_of_type(ObjectType::NumaNode);
            if numa.is_empty() {
                topo.objects_of_type(ObjectType::Package)
            } else {
                numa
            }
        };
        let node_cpusets: Vec<_> = if nodes.is_empty() {
            vec![topo.root().cpuset.clone()]
        } else {
            nodes.iter().map(|n| n.cpuset.clone()).collect()
        };
        let n_nodes = node_cpusets.len();

        let mut node_of_pu = vec![0usize; n_pus];
        for pu in topo.pus() {
            let os = pu.os_index;
            for (i, cs) in node_cpusets.iter().enumerate() {
                if cs.is_set(os) {
                    node_of_pu[os] = i;
                    break;
                }
            }
        }

        let mut link_cost = vec![0.0; n_pus * n_pus];
        for a in 0..n_pus {
            for b in 0..n_pus {
                if a == b {
                    continue;
                }
                let depth = topo.shared_level_of_pus(a, b);
                let ty = topo.objects_at_depth(depth).next().map(|o| o.obj_type);
                link_cost[a * n_pus + b] = params.link.for_shared_type(ty);
            }
        }

        SimMachine { topo, params, node_of_pu, n_nodes, link_cost, n_pus }
    }

    /// Builds the paper's evaluation machine (24 sockets × 8 cores) with the
    /// calibrated cost model.
    pub fn cluster2016() -> Self {
        SimMachine::new(orwl_topo::synthetic::cluster2016_smp192(), CostParams::cluster2016())
    }

    /// The underlying topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The calibration constants.
    pub fn params(&self) -> &CostParams {
        &self.params
    }

    /// Number of processing units.
    pub fn n_pus(&self) -> usize {
        self.n_pus
    }

    /// Number of NUMA nodes (≥ 1).
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// NUMA node hosting the given PU.
    pub fn node_of_pu(&self, pu: usize) -> usize {
        self.node_of_pu.get(pu).copied().unwrap_or(0)
    }

    /// Per-byte cost of moving halo data from `src_pu` to `dst_pu`.
    pub fn link_byte_cost(&self, src_pu: usize, dst_pu: usize) -> f64 {
        if src_pu >= self.n_pus || dst_pu >= self.n_pus {
            return self.params.link.remote_numa;
        }
        self.link_cost[src_pu * self.n_pus + dst_pu]
    }

    /// Per-byte cost of a working-set access issued by a core of
    /// `access_node` to data resident on `data_node` (before bandwidth
    /// sharing is applied).
    pub fn access_byte_cost(&self, access_node: usize, data_node: usize) -> f64 {
        if access_node == data_node {
            self.params.local_byte_cost
        } else {
            self.params.local_byte_cost * self.params.remote_access_factor
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orwl_topo::synthetic;

    #[test]
    fn paper_machine_has_24_nodes_192_pus() {
        let m = SimMachine::cluster2016();
        assert_eq!(m.n_pus(), 192);
        assert_eq!(m.n_nodes(), 24);
        assert_eq!(m.node_of_pu(0), 0);
        assert_eq!(m.node_of_pu(7), 0);
        assert_eq!(m.node_of_pu(8), 1);
        assert_eq!(m.node_of_pu(191), 23);
    }

    #[test]
    fn link_costs_reflect_topology() {
        let m = SimMachine::cluster2016();
        // Same PU: zero (no transfer).
        assert_eq!(m.link_byte_cost(0, 0), 0.0);
        // Same socket < cross socket.
        assert!(m.link_byte_cost(0, 1) < m.link_byte_cost(0, 8));
        // Symmetric.
        assert_eq!(m.link_byte_cost(3, 77), m.link_byte_cost(77, 3));
        // Out-of-range PUs are treated as remote, not a panic.
        assert_eq!(m.link_byte_cost(0, 9999), m.params().link.remote_numa);
    }

    #[test]
    fn access_costs_distinguish_local_and_remote() {
        let m = SimMachine::cluster2016();
        let local = m.access_byte_cost(3, 3);
        let remote = m.access_byte_cost(3, 4);
        assert_eq!(local, m.params().local_byte_cost);
        assert!((remote / local - m.params().remote_access_factor).abs() < 1e-12);
    }

    #[test]
    fn machine_without_numa_level_has_one_node() {
        let m = SimMachine::new(synthetic::laptop(), CostParams::test_exaggerated());
        assert_eq!(m.n_nodes(), 1);
        assert_eq!(m.node_of_pu(5), 0);
        assert_eq!(m.access_byte_cost(0, 0), m.params().local_byte_cost);
    }

    #[test]
    fn smt_machine_same_core_link_is_cheapest() {
        let m = SimMachine::new(synthetic::dual_socket_smt(), CostParams::cluster2016());
        let same_core = m.link_byte_cost(0, 1);
        let same_socket = m.link_byte_cost(0, 2);
        let cross = m.link_byte_cost(0, 32);
        assert!(same_core < same_socket);
        assert!(same_socket < cross);
    }
}
