//! # orwl-numasim — a discrete-event NUMA machine simulator
//!
//! The paper's evaluation ran on a 24-socket × 8-core SMP machine that is
//! not available to this reproduction (which executes inside a single-core
//! container).  This crate substitutes that testbed with an analytical /
//! discrete-event model so the evaluation can still be *regenerated*: the
//! same task graphs, placed by the same placement algorithms, are executed
//! on a simulated machine whose cost model captures the effects the paper's
//! result rests on — NUMA-local vs remote accesses, shared caches, memory
//! controller and interconnect bandwidth sharing, OS migrations, fork-join
//! barriers and PU oversubscription.
//!
//! * [`costmodel`] — calibration constants ([`costmodel::CostParams`]);
//! * [`machine`] — the simulated machine ([`machine::SimMachine`]);
//! * [`taskgraph`] — iterative task graphs (stencil builder included);
//! * [`scenario`] — thread/data placement scenarios for the three
//!   implementations compared in Figure 1;
//! * [`workload`] — phased (pattern-changing) workloads, the unit of
//!   execution of the `Session` API's simulator backend;
//! * [`exec`] — the simulation engine ([`exec::simulate`]).
//!
//! # Example: one socket vs four sockets
//!
//! ```
//! use orwl_numasim::prelude::*;
//! use orwl_comm::patterns::StencilSpec;
//! use orwl_topo::synthetic;
//!
//! let machine = SimMachine::new(
//!     synthetic::cluster2016_subset(4).unwrap(),
//!     CostParams::cluster2016(),
//! );
//! let spec = StencilSpec::nine_point_blocks(8, 512, 8);
//! let graph = TaskGraph::stencil(&spec, 512.0 * 512.0, 8.0);
//!
//! // Topology-aware, pinned execution...
//! let bound = ExecutionScenario::bound(&machine, (0..64).map(|t| t % 32).collect());
//! // ...against the master-thread-initialised OpenMP baseline.
//! let openmp = ExecutionScenario::openmp_static(&machine, 64);
//!
//! let t_bound = simulate(&machine, &graph, &bound, 10).total_time;
//! let t_openmp = simulate(&machine, &graph, &openmp, 10).total_time;
//! assert!(t_bound < t_openmp);
//! ```

pub mod costmodel;
pub mod exec;
pub mod machine;
pub mod scenario;
pub mod taskgraph;
pub mod workload;

pub use costmodel::{CostParams, LinkCosts};
pub use exec::{simulate, simulate_monitored, NoopSimMonitor, SimMonitor, SimReport, TimeBreakdown};
pub use machine::SimMachine;
pub use scenario::ExecutionScenario;
pub use taskgraph::{SimEdge, SimTask, TaskGraph};
pub use workload::{Phase, PhasedWorkload};

/// Convenient glob import of the most commonly used items.
pub mod prelude {
    pub use crate::costmodel::CostParams;
    pub use crate::exec::{simulate, SimReport};
    pub use crate::machine::SimMachine;
    pub use crate::scenario::ExecutionScenario;
    pub use crate::taskgraph::{SimTask, TaskGraph};
}
