//! Property-based tests of the simulator: monotonicity and sanity
//! invariants that must hold for any workload and placement.

use orwl_comm::patterns::StencilSpec;
use orwl_numasim::costmodel::CostParams;
use orwl_numasim::exec::simulate;
use orwl_numasim::machine::SimMachine;
use orwl_numasim::scenario::ExecutionScenario;
use orwl_numasim::taskgraph::TaskGraph;
use orwl_topo::synthetic;
use proptest::prelude::*;

fn machine(sockets: usize) -> SimMachine {
    SimMachine::new(synthetic::cluster2016_subset(sockets).unwrap(), CostParams::cluster2016())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn simulated_time_is_positive_and_finite(
        side in 2usize..6,
        sockets in 1usize..5,
        iterations in 1usize..5,
        seed in 0u64..100,
    ) {
        let m = machine(sockets);
        let spec = StencilSpec::nine_point_blocks(side, 128, 8);
        let g = TaskGraph::stencil(&spec, (128 * 128) as f64, 8.0);
        let n = g.n_tasks();
        let pus = m.topology().pu_os_indices();
        for scenario in [
            ExecutionScenario::bound(&m, (0..n).map(|t| pus[t % pus.len()]).collect()),
            ExecutionScenario::orwl_nobind(&m, n, seed),
            ExecutionScenario::openmp_static(&m, n),
        ] {
            let r = simulate(&m, &g, &scenario, iterations);
            prop_assert!(r.total_time.is_finite());
            prop_assert!(r.total_time > 0.0);
            prop_assert_eq!(r.iteration_times.len(), iterations);
            // Wall-clock equals the sum of per-iteration durations.
            let sum: f64 = r.iteration_times.iter().sum();
            prop_assert!((sum - r.total_time).abs() < 1e-9 * r.total_time.max(1.0));
            prop_assert!(r.breakdown.total() > 0.0);
        }
    }

    #[test]
    fn more_iterations_never_run_faster(side in 2usize..5, sockets in 1usize..4) {
        let m = machine(sockets);
        let spec = StencilSpec::nine_point_blocks(side, 128, 8);
        let g = TaskGraph::stencil(&spec, (128 * 128) as f64, 8.0);
        let n = g.n_tasks();
        let pus = m.topology().pu_os_indices();
        let s = ExecutionScenario::bound(&m, (0..n).map(|t| pus[t % pus.len()]).collect());
        let t3 = simulate(&m, &g, &s, 3).total_time;
        let t6 = simulate(&m, &g, &s, 6).total_time;
        prop_assert!(t6 >= t3);
    }

    #[test]
    fn local_data_never_slower_than_all_remote(side in 2usize..5) {
        // Same executing PUs, but data either local or all on the last node:
        // the local variant can never be slower.
        let m = machine(4);
        let spec = StencilSpec::nine_point_blocks(side, 256, 8);
        let g = TaskGraph::stencil(&spec, (256 * 256) as f64, 8.0);
        let n = g.n_tasks();
        let pus = m.topology().pu_os_indices();
        let task_pu: Vec<usize> = (0..n).map(|t| pus[t % pus.len()]).collect();
        let local = ExecutionScenario::bound(&m, task_pu.clone());
        let remote = ExecutionScenario {
            task_pu,
            data_node: vec![m.n_nodes() - 1; n],
            migrating: false,
            fork_join_barrier: false,
            label: "all-remote".to_string(),
        };
        let tl = simulate(&m, &g, &local, 3).total_time;
        let tr = simulate(&m, &g, &remote, 3).total_time;
        prop_assert!(tl <= tr + 1e-12, "local {tl} > remote {tr}");
    }

    #[test]
    fn migration_penalty_never_helps(side in 2usize..5, sockets in 1usize..4) {
        let m = machine(sockets);
        let spec = StencilSpec::nine_point_blocks(side, 128, 8);
        let g = TaskGraph::stencil(&spec, (128 * 128) as f64, 8.0);
        let n = g.n_tasks();
        let pus = m.topology().pu_os_indices();
        let pinned = ExecutionScenario::bound(&m, (0..n).map(|t| pus[t % pus.len()]).collect());
        let mut drifting = pinned.clone();
        drifting.migrating = true;
        let tp = simulate(&m, &g, &pinned, 2).total_time;
        let td = simulate(&m, &g, &drifting, 2).total_time;
        prop_assert!(tp <= td + 1e-12);
    }
}
