//! Tolerant comparison of two `orwl-obs/v1` telemetry documents — the
//! library behind the `obs_diff` tool (`cargo run -p orwl-bench --bin
//! obs_diff`), mirroring what `orwl_lab::diff` does for sweep artifacts.
//!
//! Telemetry is inherently noisier than a sweep artifact (timestamps,
//! wall-clock durations, thread interleavings), so the diff deliberately
//! compares only the *stable* surface of a document: the identity fields
//! (`backend`, `clock`), the per-kind event counts, the drop counter, and
//! every metric instrument (counter values, gauge values, histogram
//! count/sum).  Event timestamps and orderings are never compared.
//!
//! Numeric fields compare within a relative tolerance; a field present in
//! one document but absent in the other is an infinite drift, exactly like
//! `lab_diff`'s null-vs-number rule.  An empty report means agreement.

use crate::export::validate_obs;
use crate::json::Json;

/// One disagreement between two telemetry documents.
#[derive(Debug, Clone, PartialEq)]
pub enum ObsDiffEntry {
    /// An identity field (`backend`, `clock`, or the `tracks` table of a
    /// merged document) differs — the documents do not describe comparable
    /// runs.
    FieldMismatch {
        /// The differing field.
        field: &'static str,
        /// Value in the first document.
        first: String,
        /// Value in the second document.
        second: String,
    },
    /// A stable numeric field drifted beyond the tolerance.
    MetricDrift {
        /// The drifted field (`dropped`, `events.<kind>`,
        /// `counters.<name>`, `gauges.<name>`, `histograms.<name>.count`
        /// or `histograms.<name>.sum`).
        field: String,
        /// Value in the first document (`None` = absent).
        first: Option<f64>,
        /// Value in the second document.
        second: Option<f64>,
        /// The relative difference that exceeded the tolerance.
        relative: f64,
    },
}

impl std::fmt::Display for ObsDiffEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ObsDiffEntry::FieldMismatch { field, first, second } => {
                write!(f, "{field} mismatch: {first:?} vs {second:?}")
            }
            ObsDiffEntry::MetricDrift { field, first, second, relative } => {
                let show = |v: &Option<f64>| v.map_or("absent".to_string(), |x| format!("{x}"));
                write!(f, "{field} drifted {:.3}% ({} vs {})", 100.0 * relative, show(first), show(second))
            }
        }
    }
}

/// The relative difference used by the tolerance test: `|a − b|` scaled by
/// the larger magnitude (`0` when both are zero).
fn relative_diff(a: f64, b: f64) -> f64 {
    let scale = a.abs().max(b.abs());
    if scale == 0.0 {
        0.0
    } else {
        (a - b).abs() / scale
    }
}

/// The stable numeric surface of one document, as sorted
/// `(field, value)` pairs.
fn numeric_fields(doc: &Json) -> Vec<(String, f64)> {
    let mut fields: Vec<(String, f64)> = Vec::new();
    if let Some(dropped) = doc.get("dropped").and_then(Json::as_f64) {
        fields.push(("dropped".to_string(), dropped));
    }
    if let Some(events) = doc.get("events").and_then(Json::as_arr) {
        for ev in events {
            let Some(kind) = ev.get("kind").and_then(Json::as_str) else { continue };
            // Merged multi-node documents tag events with a track id; key
            // them per track so "node0 did the waiting" vs "node1 did the
            // waiting" is a drift, not agreement.  Track 0 (or absent, for
            // pre-merge documents) keeps the bare key, so single-process
            // artifacts diff exactly as before.
            let track = ev.get("track").and_then(Json::as_f64).unwrap_or(0.0);
            let field =
                if track == 0.0 { format!("events.{kind}") } else { format!("events.track{track}.{kind}") };
            match fields.iter_mut().find(|(f, _)| *f == field) {
                Some((_, n)) => *n += 1.0,
                None => fields.push((field, 1.0)),
            }
        }
    }
    let metrics = doc.get("metrics");
    let table = |name: &str| -> Vec<(String, Json)> {
        match metrics.and_then(|m| m.get(name)) {
            Some(Json::Obj(pairs)) => pairs.clone(),
            _ => Vec::new(),
        }
    };
    for (name, v) in table("counters") {
        if let Some(x) = v.as_f64() {
            fields.push((format!("counters.{name}"), x));
        }
    }
    for (name, v) in table("gauges") {
        if let Some(x) = v.as_f64() {
            fields.push((format!("gauges.{name}"), x));
        }
    }
    for (name, v) in table("histograms") {
        if let Some(count) = v.get("count").and_then(Json::as_f64) {
            fields.push((format!("histograms.{name}.count"), count));
        }
        if let Some(sum) = v.get("sum").and_then(Json::as_f64) {
            fields.push((format!("histograms.{name}.sum"), sum));
        }
    }
    fields.sort_by(|a, b| a.0.cmp(&b.0));
    fields
}

/// Compares two `orwl-obs/v1` documents (validated with
/// [`validate_obs`] first, so the shape errors are precise).  Returns the
/// disagreements — empty means the documents agree within `tol_ratio`.
pub fn diff_telemetry(first: &Json, second: &Json, tol_ratio: f64) -> Result<Vec<ObsDiffEntry>, String> {
    validate_obs(first).map_err(|e| format!("first document: {e}"))?;
    validate_obs(second).map_err(|e| format!("second document: {e}"))?;

    let mut entries = Vec::new();
    for field in ["backend", "clock"] {
        let a = first.get(field).and_then(Json::as_str).unwrap_or_default();
        let b = second.get(field).and_then(Json::as_str).unwrap_or_default();
        if a != b {
            entries.push(ObsDiffEntry::FieldMismatch {
                field: if field == "backend" { "backend" } else { "clock" },
                first: a.to_string(),
                second: b.to_string(),
            });
        }
    }

    // The track table is identity, too: two merged documents with
    // different process sets are not comparable runs.
    let track_list = |doc: &Json| -> String {
        doc.get("tracks")
            .and_then(Json::as_arr)
            .map(|tracks| {
                tracks
                    .iter()
                    .filter_map(|t| {
                        let id = t.get("track").and_then(Json::as_f64)?;
                        let label = t.get("label").and_then(Json::as_str)?;
                        Some(format!("{id}:{label}"))
                    })
                    .collect::<Vec<_>>()
                    .join(",")
            })
            .unwrap_or_default()
    };
    let (a, b) = (track_list(first), track_list(second));
    if a != b {
        entries.push(ObsDiffEntry::FieldMismatch { field: "tracks", first: a, second: b });
    }

    let first_fields = numeric_fields(first);
    let second_fields = numeric_fields(second);
    let mut matched = vec![false; second_fields.len()];
    for (field, a) in &first_fields {
        match second_fields.iter().position(|(f, _)| f == field) {
            Some(pos) => {
                matched[pos] = true;
                let b = second_fields[pos].1;
                let relative = relative_diff(*a, b);
                if relative > tol_ratio {
                    entries.push(ObsDiffEntry::MetricDrift {
                        field: field.clone(),
                        first: Some(*a),
                        second: Some(b),
                        relative,
                    });
                }
            }
            None => entries.push(ObsDiffEntry::MetricDrift {
                field: field.clone(),
                first: Some(*a),
                second: None,
                relative: f64::INFINITY,
            }),
        }
    }
    for (pos, (field, b)) in second_fields.iter().enumerate() {
        if !matched[pos] {
            entries.push(ObsDiffEntry::MetricDrift {
                field: field.clone(),
                first: None,
                second: Some(*b),
                relative: f64::INFINITY,
            });
        }
    }
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{ClockKind, EventKind};
    use crate::json::ToJson;
    use crate::{ObsConfig, Recorder};

    fn doc(epochs: u64, bytes: f64) -> Json {
        let rec = Recorder::new(ClockKind::Simulated, ObsConfig::default());
        for epoch in 1..=epochs {
            rec.set_sim_now(epoch as f64);
            rec.record(EventKind::Epoch { epoch, bytes });
        }
        rec.finish("sim").to_json()
    }

    #[test]
    fn identical_documents_agree_exactly() {
        let a = doc(3, 512.0);
        assert_eq!(diff_telemetry(&a, &a, 0.0).unwrap(), Vec::new());
        let b = Json::parse(&a.pretty()).unwrap();
        assert_eq!(diff_telemetry(&a, &b, 0.0).unwrap(), Vec::new());
    }

    #[test]
    fn timestamps_are_not_compared() {
        // Same events at different simulated times: still agreement.
        let rec = Recorder::new(ClockKind::Simulated, ObsConfig::default());
        rec.set_sim_now(40.0);
        rec.record(EventKind::Epoch { epoch: 1, bytes: 512.0 });
        let shifted = rec.finish("sim").to_json();
        assert_eq!(diff_telemetry(&doc(1, 512.0), &shifted, 0.0).unwrap(), Vec::new());
    }

    #[test]
    fn event_count_and_metric_drift_are_reported() {
        let a = doc(3, 512.0);
        let b = doc(4, 512.0);
        let drift = diff_telemetry(&a, &b, 0.0).unwrap();
        assert!(!drift.is_empty());
        assert!(drift.iter().any(|e| matches!(
            e,
            ObsDiffEntry::MetricDrift { field, .. } if field == "events.epoch"
        )));
        assert!(drift.iter().any(|e| matches!(
            e,
            ObsDiffEntry::MetricDrift { field, .. } if field == "counters.epochs"
        )));
        // A generous tolerance absorbs the 3-vs-4 difference.
        assert_eq!(diff_telemetry(&a, &b, 0.5).unwrap(), Vec::new());
        // The rendering names the field and both values.
        let text = drift[0].to_string();
        assert!(text.contains("events.epoch") || text.contains("counters"));
    }

    #[test]
    fn absent_fields_are_infinite_drift() {
        let a = doc(2, 512.0); // has the epoch_bytes histogram
        let b = doc(2, 0.0); // zero bytes: the histogram never appears
        let drift = diff_telemetry(&a, &b, 1.0e9).unwrap();
        assert!(drift.iter().any(|e| matches!(
            e,
            ObsDiffEntry::MetricDrift { field, second: None, relative, .. }
                if field == "histograms.epoch_bytes.count" && relative.is_infinite()
        )));
    }

    #[test]
    fn backend_and_clock_mismatches_are_identity_errors() {
        let rec = Recorder::new(ClockKind::Wall, ObsConfig::default());
        rec.record(EventKind::Epoch { epoch: 1, bytes: 512.0 });
        let wall = rec.finish("threads").to_json();
        let drift = diff_telemetry(&doc(1, 512.0), &wall, 1.0e9).unwrap();
        assert!(drift.iter().any(|e| matches!(e, ObsDiffEntry::FieldMismatch { field: "backend", .. })));
        assert!(drift.iter().any(|e| matches!(e, ObsDiffEntry::FieldMismatch { field: "clock", .. })));
    }

    #[test]
    fn merged_documents_key_events_by_track() {
        use crate::metrics::MetricsSnapshot;
        use crate::{ObsEvent, RunTelemetry, TrackInfo};
        let merged = |grant_track: u32| -> Json {
            RunTelemetry {
                backend: "proc".to_string(),
                clock: ClockKind::Wall,
                events: vec![ObsEvent {
                    ts_us: 1.0,
                    dur_us: 0.0,
                    seq: 0,
                    tid: 0,
                    track: grant_track,
                    kind: EventKind::LockWait { location: 3, wait_ns: 500 },
                }],
                dropped: 0,
                metrics: MetricsSnapshot::default(),
                tracks: vec![
                    TrackInfo { track: 1, label: "node0".to_string() },
                    TrackInfo { track: 2, label: "node1".to_string() },
                ],
            }
            .to_json()
        };
        // Same event on the same track: agreement.
        assert_eq!(diff_telemetry(&merged(1), &merged(1), 0.0).unwrap(), Vec::new());
        // Same event, different track: two infinite drifts, keyed by track.
        let drift = diff_telemetry(&merged(1), &merged(2), 1.0e9).unwrap();
        assert!(drift.iter().any(|e| matches!(
            e,
            ObsDiffEntry::MetricDrift { field, second: None, .. } if field == "events.track1.lock_wait"
        )));
        assert!(drift.iter().any(|e| matches!(
            e,
            ObsDiffEntry::MetricDrift { field, first: None, .. } if field == "events.track2.lock_wait"
        )));
    }

    #[test]
    fn differing_track_tables_are_identity_errors() {
        use crate::metrics::MetricsSnapshot;
        use crate::{RunTelemetry, TrackInfo};
        let with_tracks = |n: u32| -> Json {
            RunTelemetry {
                backend: "proc".to_string(),
                clock: ClockKind::Wall,
                events: Vec::new(),
                dropped: 0,
                metrics: MetricsSnapshot::default(),
                tracks: (0..n).map(|t| TrackInfo { track: t, label: format!("t{t}") }).collect(),
            }
            .to_json()
        };
        assert_eq!(diff_telemetry(&with_tracks(3), &with_tracks(3), 0.0).unwrap(), Vec::new());
        let drift = diff_telemetry(&with_tracks(3), &with_tracks(2), 0.0).unwrap();
        assert!(drift.iter().any(|e| matches!(e, ObsDiffEntry::FieldMismatch { field: "tracks", .. })));
    }

    #[test]
    fn invalid_documents_are_a_typed_error() {
        let junk = Json::parse("{\"hello\": 1}").unwrap();
        let err = diff_telemetry(&junk, &doc(1, 1.0), 0.0).unwrap_err();
        assert!(err.contains("first document"));
    }
}
