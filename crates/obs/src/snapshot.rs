//! The binary telemetry snapshot: how a worker process's drained recorder
//! crosses a process boundary.
//!
//! `orwl-proc` workers record locally (their recorder dies with the
//! process) and ship the drained result to the coordinator inside a
//! `TelemetryUpload` wire frame.  JSON would work but costs ~10× the
//! bytes and a float-formatting round-trip per event; this module defines
//! a compact little-endian binary layout instead, versioned independently
//! of the wire codec that carries it:
//!
//! ```text
//! | magic "OSNP" (4) | version u16 | clock u8 | origin_us f64 |
//! | clock_offset_us f64 | backend (len-prefixed str) | dropped u64 |
//! | events u32 × event | counters, gauges, histograms (sparse) |
//! ```
//!
//! Each event is `ts_us f64 | dur_us f64 | seq u64 | tid u64 | track u32 |
//! tag u8 | payload`, with one tag per [`EventKind`] variant.  Decoding is
//! strict: bad magic, unknown versions, unknown tags, non-finite
//! timestamps, truncated buffers and trailing bytes are all typed errors —
//! a corrupt upload must never poison the coordinator's merged timeline.

use crate::event::{ClockKind, DriftOutcome, EventKind, FabricLane, ObsEvent, SolvePhase};
use crate::metrics::{HistogramSnapshot, MetricsSnapshot};
use crate::RunTelemetry;

/// Magic prefix of a serialized snapshot.
pub const SNAPSHOT_MAGIC: &[u8; 4] = b"OSNP";

/// Current snapshot format version.
pub const SNAPSHOT_VERSION: u16 = 1;

/// A decode failure (encoding is infallible).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The buffer does not start with [`SNAPSHOT_MAGIC`].
    BadMagic,
    /// A version this build does not speak.
    BadVersion {
        /// The version the peer wrote.
        got: u16,
    },
    /// An enum code outside the known range.
    BadCode {
        /// Which field carried the code.
        field: &'static str,
        /// The offending code.
        got: u8,
    },
    /// The buffer ended inside a field.
    Truncated,
    /// Bytes left over after the last field.
    TrailingBytes,
    /// A string field was not UTF-8.
    BadUtf8,
    /// A numeric field failed a range check (non-finite timestamp,
    /// oversized length).
    BadField(&'static str),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "snapshot does not start with OSNP"),
            SnapshotError::BadVersion { got } => write!(f, "unsupported snapshot version {got}"),
            SnapshotError::BadCode { field, got } => write!(f, "unknown {field} code {got}"),
            SnapshotError::Truncated => write!(f, "snapshot truncated"),
            SnapshotError::TrailingBytes => write!(f, "trailing bytes after snapshot"),
            SnapshotError::BadUtf8 => write!(f, "snapshot string is not UTF-8"),
            SnapshotError::BadField(field) => write!(f, "snapshot field {field} out of range"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Hard caps on collection lengths: a malformed length prefix must fail
/// fast instead of asking the allocator for terabytes.
const MAX_EVENTS: u32 = 1 << 22;
pub(crate) const MAX_INSTRUMENTS: u32 = 1 << 16;
pub(crate) const MAX_STRING: u32 = 1 << 12;

/// One worker's drained telemetry plus the clock metadata the coordinator
/// needs to rebase it: where the recorder's time zero sits on the worker's
/// process clock, and the estimated offset between the two process clocks.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetrySnapshot {
    /// The clock the events are stamped with.
    pub clock: ClockKind,
    /// The recorder's time zero on the worker's process clock
    /// (`Recorder::origin_us`).
    pub origin_us: f64,
    /// Estimated `coordinator_clock − worker_clock` in microseconds
    /// (midpoint method over the handshake); adding it to a worker-clock
    /// time yields a coordinator-clock time.
    pub clock_offset_us: f64,
    /// Backend name the worker recorded under.
    pub backend: String,
    /// The drained events, `(ts_us, seq)`-ordered.
    pub events: Vec<ObsEvent>,
    /// Events lost to ring overwrites (plus any the worker shed to fit the
    /// wire-frame budget).
    pub dropped: u64,
    /// Final metric values.
    pub metrics: MetricsSnapshot,
}

impl TelemetrySnapshot {
    /// Wraps a drained [`RunTelemetry`] with the clock metadata.
    #[must_use]
    pub fn from_telemetry(t: RunTelemetry, origin_us: f64, clock_offset_us: f64) -> TelemetrySnapshot {
        TelemetrySnapshot {
            clock: t.clock,
            origin_us,
            clock_offset_us,
            backend: t.backend,
            events: t.events,
            dropped: t.dropped,
            metrics: t.metrics,
        }
    }

    /// Serializes to the versioned binary layout.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.events.len() * 48);
        out.extend_from_slice(SNAPSHOT_MAGIC);
        out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        out.push(clock_code(self.clock));
        out.extend_from_slice(&self.origin_us.to_le_bytes());
        out.extend_from_slice(&self.clock_offset_us.to_le_bytes());
        put_str(&mut out, &self.backend);
        out.extend_from_slice(&self.dropped.to_le_bytes());
        out.extend_from_slice(&(self.events.len() as u32).to_le_bytes());
        for ev in &self.events {
            put_event(&mut out, ev);
        }
        out.extend_from_slice(&(self.metrics.counters.len() as u32).to_le_bytes());
        for (name, value) in &self.metrics.counters {
            put_str(&mut out, name);
            out.extend_from_slice(&value.to_le_bytes());
        }
        out.extend_from_slice(&(self.metrics.gauges.len() as u32).to_le_bytes());
        for (name, value) in &self.metrics.gauges {
            put_str(&mut out, name);
            out.extend_from_slice(&value.to_le_bytes());
        }
        out.extend_from_slice(&(self.metrics.histograms.len() as u32).to_le_bytes());
        for (name, h) in &self.metrics.histograms {
            put_str(&mut out, name);
            out.extend_from_slice(&h.count.to_le_bytes());
            out.extend_from_slice(&h.sum.to_le_bytes());
            out.extend_from_slice(&(h.buckets.len() as u32).to_le_bytes());
            for &(log2, n) in &h.buckets {
                out.push(log2 as u8);
                out.extend_from_slice(&n.to_le_bytes());
            }
        }
        out
    }

    /// Strictly decodes a buffer produced by [`TelemetrySnapshot::encode`].
    pub fn decode(buf: &[u8]) -> Result<TelemetrySnapshot, SnapshotError> {
        let mut r = Reader { buf, at: 0 };
        if r.take(4)? != SNAPSHOT_MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = r.u16()?;
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::BadVersion { got: version });
        }
        let clock = clock_from(r.u8()?)?;
        let origin_us = r.finite_f64("origin_us")?;
        let clock_offset_us = r.finite_f64("clock_offset_us")?;
        let backend = r.string()?;
        let dropped = r.u64()?;
        let n_events = r.len_prefix(MAX_EVENTS, "events")?;
        let mut events = Vec::with_capacity(n_events);
        for _ in 0..n_events {
            events.push(take_event(&mut r)?);
        }
        let mut metrics = MetricsSnapshot::default();
        for _ in 0..r.len_prefix(MAX_INSTRUMENTS, "counters")? {
            let name = r.string()?;
            metrics.counters.push((name, r.u64()?));
        }
        for _ in 0..r.len_prefix(MAX_INSTRUMENTS, "gauges")? {
            let name = r.string()?;
            metrics.gauges.push((name, r.finite_f64("gauge")?));
        }
        for _ in 0..r.len_prefix(MAX_INSTRUMENTS, "histograms")? {
            let name = r.string()?;
            let count = r.u64()?;
            let sum = r.u64()?;
            let n_buckets = r.len_prefix(64, "buckets")?;
            let mut buckets = Vec::with_capacity(n_buckets);
            for _ in 0..n_buckets {
                let log2 = r.u8()?;
                if log2 >= 64 {
                    return Err(SnapshotError::BadField("bucket log2"));
                }
                buckets.push((u32::from(log2), r.u64()?));
            }
            metrics.histograms.push((name, HistogramSnapshot { count, sum, buckets }));
        }
        if r.at != r.buf.len() {
            return Err(SnapshotError::TrailingBytes);
        }
        Ok(TelemetrySnapshot { clock, origin_us, clock_offset_us, backend, events, dropped, metrics })
    }
}

fn clock_code(clock: ClockKind) -> u8 {
    match clock {
        ClockKind::Wall => 0,
        ClockKind::Simulated => 1,
    }
}

fn clock_from(code: u8) -> Result<ClockKind, SnapshotError> {
    match code {
        0 => Ok(ClockKind::Wall),
        1 => Ok(ClockKind::Simulated),
        got => Err(SnapshotError::BadCode { field: "clock", got }),
    }
}

pub(crate) fn put_str(out: &mut Vec<u8>, s: &str) {
    let bytes = &s.as_bytes()[..s.len().min(MAX_STRING as usize)];
    out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    out.extend_from_slice(bytes);
}

pub(crate) fn put_event(out: &mut Vec<u8>, ev: &ObsEvent) {
    out.extend_from_slice(&ev.ts_us.to_le_bytes());
    out.extend_from_slice(&ev.dur_us.to_le_bytes());
    out.extend_from_slice(&ev.seq.to_le_bytes());
    out.extend_from_slice(&ev.tid.to_le_bytes());
    out.extend_from_slice(&ev.track.to_le_bytes());
    match ev.kind {
        EventKind::Epoch { epoch, bytes } => {
            out.push(0);
            out.extend_from_slice(&epoch.to_le_bytes());
            out.extend_from_slice(&bytes.to_le_bytes());
        }
        EventKind::PlacementSolve { phase, wall_ns } => {
            out.push(1);
            out.push(match phase {
                SolvePhase::Group => 0,
                SolvePhase::Coarsen => 1,
                SolvePhase::Refine => 2,
                SolvePhase::Total => 3,
            });
            out.extend_from_slice(&wall_ns.to_le_bytes());
        }
        EventKind::DriftDecision { outcome, delta } => {
            out.push(2);
            out.push(match outcome {
                DriftOutcome::Fired => 0,
                DriftOutcome::SuppressedByPatience => 1,
                DriftOutcome::Cooldown => 2,
                DriftOutcome::Quiet => 3,
            });
            out.extend_from_slice(&delta.to_le_bytes());
        }
        EventKind::LockWait { location, wait_ns } => {
            out.push(3);
            out.extend_from_slice(&location.to_le_bytes());
            out.extend_from_slice(&wait_ns.to_le_bytes());
        }
        EventKind::FabricTransfer { lane, bytes } => {
            out.push(4);
            out.push(match lane {
                FabricLane::SameNode => 0,
                FabricLane::SameRack => 1,
                FabricLane::CrossRack => 2,
            });
            out.extend_from_slice(&bytes.to_le_bytes());
        }
        EventKind::Rebind { task, pu } => {
            out.push(5);
            out.extend_from_slice(&(task as u64).to_le_bytes());
            out.extend_from_slice(&(pu as u64).to_le_bytes());
        }
        EventKind::Migration { tasks_moved, bytes, cross_node } => {
            out.push(6);
            out.extend_from_slice(&(tasks_moved as u64).to_le_bytes());
            out.extend_from_slice(&bytes.to_le_bytes());
            out.push(u8::from(cross_node));
        }
        EventKind::LockRequest { rseq, location, owner } => {
            out.push(7);
            out.extend_from_slice(&rseq.to_le_bytes());
            out.extend_from_slice(&location.to_le_bytes());
            out.extend_from_slice(&owner.to_le_bytes());
        }
        EventKind::LockGrant { rseq, location, wait_ns } => {
            out.push(8);
            out.extend_from_slice(&rseq.to_le_bytes());
            out.extend_from_slice(&location.to_le_bytes());
            out.extend_from_slice(&wait_ns.to_le_bytes());
        }
        EventKind::LockRelease { rseq, location, held_ns } => {
            out.push(9);
            out.extend_from_slice(&rseq.to_le_bytes());
            out.extend_from_slice(&location.to_le_bytes());
            out.extend_from_slice(&held_ns.to_le_bytes());
        }
        EventKind::NodeLoss { node, tasks_lost } => {
            out.push(10);
            out.extend_from_slice(&node.to_le_bytes());
            out.extend_from_slice(&(tasks_lost as u64).to_le_bytes());
        }
        EventKind::Recovery { node, tasks_migrated } => {
            out.push(11);
            out.extend_from_slice(&node.to_le_bytes());
            out.extend_from_slice(&(tasks_migrated as u64).to_le_bytes());
        }
    }
}

pub(crate) fn take_event(r: &mut Reader<'_>) -> Result<ObsEvent, SnapshotError> {
    let ts_us = r.finite_f64("ts_us")?;
    let dur_us = r.finite_f64("dur_us")?;
    let seq = r.u64()?;
    let tid = r.u64()?;
    let track = r.u32()?;
    let tag = r.u8()?;
    let kind = match tag {
        0 => EventKind::Epoch { epoch: r.u64()?, bytes: r.finite_f64("bytes")? },
        1 => EventKind::PlacementSolve {
            phase: match r.u8()? {
                0 => SolvePhase::Group,
                1 => SolvePhase::Coarsen,
                2 => SolvePhase::Refine,
                3 => SolvePhase::Total,
                got => return Err(SnapshotError::BadCode { field: "phase", got }),
            },
            wall_ns: r.u64()?,
        },
        2 => EventKind::DriftDecision {
            outcome: match r.u8()? {
                0 => DriftOutcome::Fired,
                1 => DriftOutcome::SuppressedByPatience,
                2 => DriftOutcome::Cooldown,
                3 => DriftOutcome::Quiet,
                got => return Err(SnapshotError::BadCode { field: "outcome", got }),
            },
            delta: r.finite_f64("delta")?,
        },
        3 => EventKind::LockWait { location: r.u64()?, wait_ns: r.u64()? },
        4 => EventKind::FabricTransfer {
            lane: match r.u8()? {
                0 => FabricLane::SameNode,
                1 => FabricLane::SameRack,
                2 => FabricLane::CrossRack,
                got => return Err(SnapshotError::BadCode { field: "lane", got }),
            },
            bytes: r.finite_f64("bytes")?,
        },
        5 => EventKind::Rebind { task: r.u64()? as usize, pu: r.u64()? as usize },
        6 => EventKind::Migration {
            tasks_moved: r.u64()? as usize,
            bytes: r.finite_f64("bytes")?,
            cross_node: match r.u8()? {
                0 => false,
                1 => true,
                got => return Err(SnapshotError::BadCode { field: "cross_node", got }),
            },
        },
        7 => EventKind::LockRequest { rseq: r.u64()?, location: r.u64()?, owner: r.u32()? },
        8 => EventKind::LockGrant { rseq: r.u64()?, location: r.u64()?, wait_ns: r.u64()? },
        9 => EventKind::LockRelease { rseq: r.u64()?, location: r.u64()?, held_ns: r.u64()? },
        10 => EventKind::NodeLoss { node: r.u32()?, tasks_lost: r.u64()? as usize },
        11 => EventKind::Recovery { node: r.u32()?, tasks_migrated: r.u64()? as usize },
        got => return Err(SnapshotError::BadCode { field: "event tag", got }),
    };
    Ok(ObsEvent { ts_us, dur_us, seq, tid, track, kind })
}

pub(crate) struct Reader<'b> {
    pub(crate) buf: &'b [u8],
    pub(crate) at: usize,
}

impl<'b> Reader<'b> {
    pub(crate) fn take(&mut self, n: usize) -> Result<&'b [u8], SnapshotError> {
        if self.buf.len() - self.at < n {
            return Err(SnapshotError::Truncated);
        }
        let slice = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(slice)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u16(&mut self) -> Result<u16, SnapshotError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    pub(crate) fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub(crate) fn finite_f64(&mut self, field: &'static str) -> Result<f64, SnapshotError> {
        let x = f64::from_le_bytes(self.take(8)?.try_into().unwrap());
        if x.is_finite() {
            Ok(x)
        } else {
            Err(SnapshotError::BadField(field))
        }
    }

    pub(crate) fn len_prefix(&mut self, max: u32, field: &'static str) -> Result<usize, SnapshotError> {
        let n = self.u32()?;
        if n > max {
            return Err(SnapshotError::BadField(field));
        }
        Ok(n as usize)
    }

    pub(crate) fn string(&mut self) -> Result<String, SnapshotError> {
        let n = self.len_prefix(MAX_STRING, "string length")?;
        std::str::from_utf8(self.take(n)?).map(str::to_string).map_err(|_| SnapshotError::BadUtf8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ObsConfig, Recorder};

    fn sample() -> TelemetrySnapshot {
        let rec = Recorder::new(ClockKind::Wall, ObsConfig::default());
        rec.record(EventKind::Epoch { epoch: 1, bytes: 4096.0 });
        rec.record(EventKind::PlacementSolve { phase: SolvePhase::Total, wall_ns: 1_500_000 });
        rec.record(EventKind::DriftDecision { outcome: DriftOutcome::Quiet, delta: 0.01 });
        rec.record(EventKind::FabricTransfer { lane: FabricLane::SameRack, bytes: 2048.0 });
        rec.record(EventKind::Rebind { task: 2, pu: 5 });
        rec.record(EventKind::Migration { tasks_moved: 3, bytes: 96.0, cross_node: true });
        rec.record(EventKind::LockRequest { rseq: (2 << 32) | 7, location: 4, owner: 0 });
        rec.record(EventKind::LockGrant { rseq: (2 << 32) | 7, location: 4, wait_ns: 9_000 });
        rec.record(EventKind::LockRelease { rseq: (2 << 32) | 7, location: 4, held_ns: 700 });
        rec.record(EventKind::NodeLoss { node: 1, tasks_lost: 9 });
        rec.record(EventKind::Recovery { node: 1, tasks_migrated: 9 });
        rec.record_lock_wait(3, 60_000);
        let origin = rec.origin_us() as f64;
        TelemetrySnapshot::from_telemetry(rec.finish("proc"), origin, -123.5)
    }

    #[test]
    fn every_kind_round_trips() {
        let snap = sample();
        let bytes = snap.encode();
        let back = TelemetrySnapshot::decode(&bytes).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.events.len(), 12);
        assert_eq!(back.clock_offset_us, -123.5);
        assert_eq!(back.metrics.counter("remote_grants"), Some(1));
        assert!(back.metrics.histogram("lock_wait_ns").is_some());
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let rec = Recorder::new(ClockKind::Wall, ObsConfig::default());
        let snap = TelemetrySnapshot::from_telemetry(rec.finish("proc"), 0.0, 0.0);
        assert_eq!(TelemetrySnapshot::decode(&snap.encode()).unwrap(), snap);
    }

    #[test]
    fn malformed_inputs_are_typed_errors() {
        let good = sample().encode();

        assert_eq!(TelemetrySnapshot::decode(b"JUNK"), Err(SnapshotError::BadMagic));

        let mut wrong_version = good.clone();
        wrong_version[4] = 9;
        assert_eq!(TelemetrySnapshot::decode(&wrong_version), Err(SnapshotError::BadVersion { got: 9 }));

        let mut bad_clock = good.clone();
        bad_clock[6] = 7;
        assert_eq!(
            TelemetrySnapshot::decode(&bad_clock),
            Err(SnapshotError::BadCode { field: "clock", got: 7 })
        );

        // Truncation at any prefix length never panics and fails typed.
        for cut in 0..good.len() {
            let err = TelemetrySnapshot::decode(&good[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    SnapshotError::Truncated
                        | SnapshotError::BadMagic
                        | SnapshotError::BadField(_)
                        | SnapshotError::BadCode { .. }
                ),
                "cut at {cut}: {err:?}"
            );
        }

        let mut trailing = good.clone();
        trailing.push(0);
        assert_eq!(TelemetrySnapshot::decode(&trailing), Err(SnapshotError::TrailingBytes));

        // A non-finite origin is rejected.
        let mut nan_origin = good;
        nan_origin[7..15].copy_from_slice(&f64::NAN.to_le_bytes());
        assert_eq!(TelemetrySnapshot::decode(&nan_origin), Err(SnapshotError::BadField("origin_us")));
    }

    #[test]
    fn absurd_length_prefixes_fail_fast() {
        // magic + version + clock + origin + offset, then a backend length
        // claiming 4 GiB: must be BadField, not an allocation attempt.
        let mut buf = Vec::new();
        buf.extend_from_slice(SNAPSHOT_MAGIC);
        buf.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        buf.push(0);
        buf.extend_from_slice(&0f64.to_le_bytes());
        buf.extend_from_slice(&0f64.to_le_bytes());
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(TelemetrySnapshot::decode(&buf), Err(SnapshotError::BadField("string length")));
    }
}
