//! The contention / critical-path analyzer behind the `obs_report` tool.
//!
//! Walks one telemetry document (typically a merged multi-process
//! timeline) and answers *where waiting happens*:
//!
//! * a per-track, per-lock-location contention table — wait counts, total
//!   wait, p50/p99 — built from [`EventKind::LockWait`] events (local FIFO
//!   waits) plus the owner-side FIFO wait each [`EventKind::LockGrant`]
//!   carries for a remote section.  Both measure time spent queueing on
//!   the lock itself; wire transport time is deliberately excluded, so the
//!   table ranks *contention*, not network distance;
//! * a request→grant→release breakdown for cross-node grants: wire+queue
//!   latency from matched event pairs, the owner-side FIFO wait carried by
//!   the grant event, and the reader-side hold time carried by the
//!   release.
//!
//! Percentiles come from the same log2 bucketing as the metrics
//! histograms: cheap, resolution-of-a-factor-two, plenty to tell a 5 µs
//! wait from a 5 ms one.  The report renders as a terminal table and as an
//! `orwl-obs-report/v1` JSON document.

use crate::json::Json;
use crate::metrics::HISTOGRAM_BUCKETS;
use crate::{EventKind, RunTelemetry};
use std::collections::BTreeMap;

/// Schema tag of the analyzer's JSON artifact.
pub const REPORT_SCHEMA: &str = "orwl-obs-report/v1";

/// A log2-bucketed sample set with exact count/sum (the analyzer's local
/// mirror of the metrics histogram, built from events).
#[derive(Debug, Clone)]
struct WaitDist {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for WaitDist {
    fn default() -> Self {
        WaitDist { buckets: [0; HISTOGRAM_BUCKETS], count: 0, sum: 0, max: 0 }
    }
}

impl WaitDist {
    fn observe(&mut self, ns: u64) {
        self.buckets[crate::metrics::Histogram::bucket_of(ns)] += 1;
        self.count += 1;
        self.sum += ns;
        self.max = self.max.max(ns);
    }

    /// Percentile estimate: the geometric-ish midpoint of the bucket where
    /// the cumulative count crosses `q` (`1` for bucket 0, else
    /// `3 · 2^(b−1)`).
    fn percentile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return if b == 0 { 1 } else { 3 << (b - 1) };
            }
        }
        self.max
    }
}

/// One row of the contention table: waiting attributed to one lock
/// location on one track.
#[derive(Debug, Clone, PartialEq)]
pub struct ContentionRow {
    /// The waiting process's track id (0 = coordinator / single-process).
    pub track: u32,
    /// The waiting process's label (`node0`, ...; `run` when the document
    /// has no track table).
    pub label: String,
    /// The contended location (global task index on proc runs).
    pub location: u64,
    /// Number of waits attributed here.
    pub waits: u64,
    /// Total nanoseconds waited.
    pub total_wait_ns: u64,
    /// Largest single wait.
    pub max_wait_ns: u64,
    /// Median wait (log2-bucket estimate).
    pub p50_ns: u64,
    /// 99th-percentile wait (log2-bucket estimate).
    pub p99_ns: u64,
}

/// One stage of the remote-section latency breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct GrantStage {
    /// Stage name (`request_to_grant`, `owner_fifo_wait`,
    /// `grant_to_release`).
    pub stage: &'static str,
    /// Samples in the stage.
    pub count: u64,
    /// Total nanoseconds across samples.
    pub total_ns: u64,
    /// Median (log2-bucket estimate).
    pub p50_ns: u64,
    /// 99th percentile (log2-bucket estimate).
    pub p99_ns: u64,
}

/// The analyzer's result over one telemetry document.
#[derive(Debug, Clone, PartialEq)]
pub struct ObsReport {
    /// Backend of the analyzed run.
    pub backend: String,
    /// Contention rows, most-waited-on first, truncated to the requested
    /// top-k.
    pub rows: Vec<ContentionRow>,
    /// Rows beyond the top-k cut (still counted in `total_wait_ns`).
    pub truncated_rows: usize,
    /// Total lock-wait nanoseconds across *all* rows, before truncation.
    pub total_wait_ns: u64,
    /// The cross-node latency breakdown.
    pub stages: Vec<GrantStage>,
    /// Matched request→grant pairs spanning two tracks.
    pub cross_node_grants: u64,
    /// Grants whose request never appeared (lost to ring overwrites or
    /// sampling).
    pub unmatched_grants: u64,
}

/// Analyzes a telemetry document; `top_k` bounds the contention table
/// (`usize::MAX` keeps every row).
#[must_use]
pub fn analyze(t: &RunTelemetry, top_k: usize) -> ObsReport {
    let label_of = |track: u32| -> String {
        t.tracks.iter().find(|i| i.track == track).map_or_else(
            || if t.tracks.is_empty() { "run".to_string() } else { format!("track{track}") },
            |i| i.label.clone(),
        )
    };

    // Pass 1: match requests to grants by rseq.
    let mut request_of: BTreeMap<u64, &crate::ObsEvent> = BTreeMap::new();
    for ev in &t.events {
        if let EventKind::LockRequest { rseq, .. } = ev.kind {
            request_of.entry(rseq).or_insert(ev);
        }
    }

    // Pass 2: aggregate.
    let mut per_location: BTreeMap<(u32, u64), WaitDist> = BTreeMap::new();
    let mut request_to_grant = WaitDist::default();
    let mut owner_fifo = WaitDist::default();
    let mut grant_to_release = WaitDist::default();
    let mut cross_node_grants = 0u64;
    let mut unmatched_grants = 0u64;
    for ev in &t.events {
        match ev.kind {
            EventKind::LockWait { location, wait_ns } => {
                per_location.entry((ev.track, location)).or_default().observe(wait_ns);
            }
            EventKind::LockGrant { rseq, location, wait_ns } => {
                owner_fifo.observe(wait_ns);
                // The grant's FIFO wait is the lock-queueing component of
                // a remote section: attribute it to the location on the
                // owner's track.  The end-to-end request→grant latency
                // (mostly wire transport) stays in the stage breakdown.
                per_location.entry((ev.track, location)).or_default().observe(wait_ns);
                match request_of.get(&rseq) {
                    Some(req) => {
                        if req.track != ev.track {
                            cross_node_grants += 1;
                        }
                        let latency_ns = ((ev.ts_us - req.ts_us).max(0.0) * 1.0e3) as u64;
                        request_to_grant.observe(latency_ns);
                    }
                    None => unmatched_grants += 1,
                }
            }
            EventKind::LockRelease { held_ns, .. } => {
                grant_to_release.observe(held_ns);
            }
            _ => {}
        }
    }

    let mut rows: Vec<ContentionRow> = per_location
        .into_iter()
        .map(|((track, location), dist)| ContentionRow {
            track,
            label: label_of(track),
            location,
            waits: dist.count,
            total_wait_ns: dist.sum,
            max_wait_ns: dist.max,
            p50_ns: dist.percentile_ns(0.50),
            p99_ns: dist.percentile_ns(0.99),
        })
        .collect();
    rows.sort_by(|a, b| {
        b.total_wait_ns.cmp(&a.total_wait_ns).then(a.location.cmp(&b.location)).then(a.track.cmp(&b.track))
    });
    let total_wait_ns = rows.iter().map(|r| r.total_wait_ns).sum();
    let truncated_rows = rows.len().saturating_sub(top_k);
    rows.truncate(top_k);

    let stage = |name: &'static str, d: &WaitDist| GrantStage {
        stage: name,
        count: d.count,
        total_ns: d.sum,
        p50_ns: d.percentile_ns(0.50),
        p99_ns: d.percentile_ns(0.99),
    };
    ObsReport {
        backend: t.backend.clone(),
        rows,
        truncated_rows,
        total_wait_ns,
        stages: vec![
            stage("request_to_grant", &request_to_grant),
            stage("owner_fifo_wait", &owner_fifo),
            stage("grant_to_release", &grant_to_release),
        ],
        cross_node_grants,
        unmatched_grants,
    }
}

impl ObsReport {
    /// Share of the total wait attributed to `location` (across every
    /// track), in `[0, 1]`; 0 when nothing waited.  Meaningful only when
    /// the report was built untruncated (`top_k` covering all rows).
    #[must_use]
    pub fn location_share(&self, location: u64) -> f64 {
        if self.total_wait_ns == 0 {
            return 0.0;
        }
        let at: u64 = self.rows.iter().filter(|r| r.location == location).map(|r| r.total_wait_ns).sum();
        at as f64 / self.total_wait_ns as f64
    }

    /// The terminal rendering: the contention table then the latency
    /// breakdown.
    #[must_use]
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let ms = |ns: u64| ns as f64 / 1.0e6;
        out.push_str(&format!(
            "contention by location ({} backend, total wait {:.3} ms)\n",
            self.backend,
            ms(self.total_wait_ns)
        ));
        out.push_str(&format!(
            "{:<12} {:>8} {:>8} {:>12} {:>10} {:>10} {:>10}\n",
            "track", "location", "waits", "total_ms", "p50_us", "p99_us", "max_ms"
        ));
        for r in &self.rows {
            out.push_str(&format!(
                "{:<12} {:>8} {:>8} {:>12.3} {:>10.1} {:>10.1} {:>10.3}\n",
                r.label,
                r.location,
                r.waits,
                ms(r.total_wait_ns),
                r.p50_ns as f64 / 1.0e3,
                r.p99_ns as f64 / 1.0e3,
                ms(r.max_wait_ns),
            ));
        }
        if self.truncated_rows > 0 {
            out.push_str(&format!("... {} more location(s) below the cut\n", self.truncated_rows));
        }
        out.push_str(&format!(
            "\nremote sections: {} cross-node grants, {} unmatched\n",
            self.cross_node_grants, self.unmatched_grants
        ));
        out.push_str(&format!(
            "{:<18} {:>8} {:>12} {:>10} {:>10}\n",
            "stage", "count", "total_ms", "p50_us", "p99_us"
        ));
        for s in &self.stages {
            out.push_str(&format!(
                "{:<18} {:>8} {:>12.3} {:>10.1} {:>10.1}\n",
                s.stage,
                s.count,
                ms(s.total_ns),
                s.p50_ns as f64 / 1.0e3,
                s.p99_ns as f64 / 1.0e3,
            ));
        }
        out
    }

    /// The `orwl-obs-report/v1` JSON document.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut doc = Json::obj();
        doc.push("schema", REPORT_SCHEMA)
            .push("backend", self.backend.as_str())
            .push("total_wait_ns", self.total_wait_ns)
            .push("truncated_rows", self.truncated_rows)
            .push("cross_node_grants", self.cross_node_grants)
            .push("unmatched_grants", self.unmatched_grants);
        let rows: Vec<Json> = self
            .rows
            .iter()
            .map(|r| {
                let mut j = Json::obj();
                j.push("track", u64::from(r.track))
                    .push("label", r.label.as_str())
                    .push("location", r.location)
                    .push("waits", r.waits)
                    .push("total_wait_ns", r.total_wait_ns)
                    .push("max_wait_ns", r.max_wait_ns)
                    .push("p50_ns", r.p50_ns)
                    .push("p99_ns", r.p99_ns);
                j
            })
            .collect();
        doc.push("contention", Json::Arr(rows));
        let stages: Vec<Json> = self
            .stages
            .iter()
            .map(|s| {
                let mut j = Json::obj();
                j.push("stage", s.stage)
                    .push("count", s.count)
                    .push("total_ns", s.total_ns)
                    .push("p50_ns", s.p50_ns)
                    .push("p99_ns", s.p99_ns);
                j
            })
            .collect();
        doc.push("stages", Json::Arr(stages));
        doc
    }
}

/// Validates an `orwl-obs-report/v1` document.
pub fn validate_report(doc: &Json) -> Result<(), String> {
    match doc.get("schema").and_then(Json::as_str) {
        Some(REPORT_SCHEMA) => {}
        Some(other) => return Err(format!("unexpected schema {other:?}")),
        None => return Err("missing schema tag".to_string()),
    }
    if doc.get("backend").and_then(Json::as_str).is_none() {
        return Err("missing backend".to_string());
    }
    for key in ["total_wait_ns", "truncated_rows", "cross_node_grants", "unmatched_grants"] {
        if doc.get(key).and_then(Json::as_f64).is_none() {
            return Err(format!("missing number {key:?}"));
        }
    }
    let rows =
        doc.get("contention").and_then(Json::as_arr).ok_or_else(|| "missing contention array".to_string())?;
    for (i, r) in rows.iter().enumerate() {
        if r.get("label").and_then(Json::as_str).is_none() {
            return Err(format!("contention[{i}]: missing label"));
        }
        for key in ["track", "location", "waits", "total_wait_ns", "max_wait_ns", "p50_ns", "p99_ns"] {
            if r.get(key).and_then(Json::as_f64).is_none() {
                return Err(format!("contention[{i}]: missing number {key:?}"));
            }
        }
    }
    let stages =
        doc.get("stages").and_then(Json::as_arr).ok_or_else(|| "missing stages array".to_string())?;
    for (i, s) in stages.iter().enumerate() {
        if s.get("stage").and_then(Json::as_str).is_none() {
            return Err(format!("stages[{i}]: missing stage name"));
        }
        for key in ["count", "total_ns", "p50_ns", "p99_ns"] {
            if s.get(key).and_then(Json::as_f64).is_none() {
                return Err(format!("stages[{i}]: missing number {key:?}"));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsSnapshot;
    use crate::{ClockKind, ObsEvent, TrackInfo};

    fn event(ts_us: f64, seq: u64, track: u32, kind: EventKind) -> ObsEvent {
        ObsEvent { ts_us, dur_us: 0.0, seq, tid: 0, track, kind }
    }

    fn merged_doc() -> RunTelemetry {
        let rseq = (1_u64 << 32) | 1;
        let rseq2 = (1_u64 << 32) | 2;
        RunTelemetry {
            backend: "proc".to_string(),
            clock: ClockKind::Wall,
            events: vec![
                // Local FIFO waits on location 0 (node0) and 5 (node1).
                event(1.0, 0, 1, EventKind::LockWait { location: 0, wait_ns: 900_000 }),
                event(2.0, 1, 1, EventKind::LockWait { location: 0, wait_ns: 100_000 }),
                event(3.0, 2, 2, EventKind::LockWait { location: 5, wait_ns: 50_000 }),
                // A matched cross-node section on location 0: request from
                // node1 at 10 µs, grant from node0 at 210 µs (200 µs wait).
                event(10.0, 3, 2, EventKind::LockRequest { rseq, location: 0, owner: 0 }),
                event(210.0, 4, 1, EventKind::LockGrant { rseq, location: 0, wait_ns: 120_000 }),
                event(260.0, 5, 2, EventKind::LockRelease { rseq, location: 0, held_ns: 40_000 }),
                // An unmatched grant (its request was dropped).
                event(300.0, 6, 1, EventKind::LockGrant { rseq: rseq2, location: 0, wait_ns: 1_000 }),
            ],
            dropped: 0,
            metrics: MetricsSnapshot::default(),
            tracks: vec![
                TrackInfo { track: 0, label: "coordinator".to_string() },
                TrackInfo { track: 1, label: "node0".to_string() },
                TrackInfo { track: 2, label: "node1".to_string() },
            ],
        }
    }

    #[test]
    fn contention_table_attributes_waits_per_track_and_location() {
        let report = analyze(&merged_doc(), usize::MAX);
        // node0's row on location 0: two local FIFO waits (1.0 ms) plus
        // the FIFO wait of each grant it served (120 µs matched + 1 µs
        // unmatched).  The 200 µs request→grant latency is transport, not
        // contention, and stays out of the table.
        let node0 = report.rows.iter().find(|r| r.label == "node0" && r.location == 0).unwrap();
        assert_eq!(node0.waits, 4);
        assert_eq!(node0.total_wait_ns, 1_000_000 + 120_000 + 1_000);
        assert_eq!(node0.max_wait_ns, 900_000);
        // node1's remote read of location 0 contributes no row of its own.
        assert!(!report.rows.iter().any(|r| r.label == "node1" && r.location == 0));
        // Rows sort by total wait; the top row is node0's.
        assert_eq!(report.rows[0].label, "node0");
        assert_eq!(report.total_wait_ns, 1_121_000 + 50_000);
        // Location 0 dominates.
        assert!(report.location_share(0) > 0.95);
        assert_eq!(report.cross_node_grants, 1);
        assert_eq!(report.unmatched_grants, 1);
    }

    #[test]
    fn stages_break_down_the_remote_section() {
        let report = analyze(&merged_doc(), usize::MAX);
        let find = |name: &str| report.stages.iter().find(|s| s.stage == name).unwrap();
        let rtg = find("request_to_grant");
        assert_eq!(rtg.count, 1);
        assert_eq!(rtg.total_ns, 200_000);
        let fifo = find("owner_fifo_wait");
        assert_eq!(fifo.count, 2); // both grants carry a FIFO wait
        assert_eq!(fifo.total_ns, 121_000);
        let hold = find("grant_to_release");
        assert_eq!(hold.count, 1);
        assert_eq!(hold.total_ns, 40_000);
    }

    #[test]
    fn top_k_truncates_but_totals_do_not_change() {
        let full = analyze(&merged_doc(), usize::MAX);
        let cut = analyze(&merged_doc(), 1);
        assert_eq!(cut.rows.len(), 1);
        assert_eq!(cut.truncated_rows, full.rows.len() - 1);
        assert_eq!(cut.total_wait_ns, full.total_wait_ns);
    }

    #[test]
    fn percentiles_come_from_log2_buckets() {
        let mut d = WaitDist::default();
        for _ in 0..99 {
            d.observe(1_000); // bucket 9 (512..1024)
        }
        d.observe(1_000_000); // bucket 19
        let p50 = d.percentile_ns(0.50);
        assert!((512..2048).contains(&p50), "p50 {p50}");
        let p99 = d.percentile_ns(0.99);
        assert!(p99 < 1_000_000, "p99 {p99} should still sit in the low bucket");
        assert!(d.percentile_ns(1.0) >= 512_000, "p100 reaches the top bucket");
    }

    #[test]
    fn report_json_validates_and_renders() {
        let report = analyze(&merged_doc(), 10);
        let doc = report.to_json();
        validate_report(&doc).unwrap();
        let reparsed = Json::parse(&doc.pretty()).unwrap();
        validate_report(&reparsed).unwrap();
        let table = report.render_table();
        assert!(table.contains("node0"));
        assert!(table.contains("request_to_grant"));
        // A broken document is rejected.
        let mut bad = doc;
        if let Json::Obj(pairs) = &mut bad {
            pairs.retain(|(k, _)| k != "stages");
        }
        assert!(validate_report(&bad).is_err());
    }
}
