//! Live telemetry: interval deltas, the mid-run sampler, and the
//! per-interval aggregator.
//!
//! Post-mortem telemetry ([`Recorder::finish`] → [`TelemetrySnapshot`])
//! tells you what a run did only after it ends.  This module is the
//! streaming counterpart: a [`DeltaSampler`] periodically drains the
//! recorder's per-thread rings and diffs the cumulative
//! [`MetricsRegistry`](crate::metrics::MetricsRegistry) snapshot, packing
//! everything new since the previous sample into one sequence-numbered
//! [`TelemetryDelta`].  Ring drains are destructive and disjoint, so the
//! delta stream is duplicate-free by construction: every event (and every
//! counted drop) leaves the process exactly once, either inside a delta or
//! inside the final snapshot — [`fold_deltas`] reunites the two, deduping
//! by the recorder-wide event sequence number as a safety net.
//!
//! Deltas encode to a compact little-endian binary layout, versioned
//! independently of whatever wire carries them (in `orwl-proc` that is the
//! v3 `TelemetryDelta` frame).  Metric names are interned into a per-delta
//! string table, so a delta with twenty instruments pays each name once:
//!
//! ```text
//! | magic "ODLT" (4) | version u16 | seq u64 | origin_us f64 |
//! | clock_offset_us f64 | t_end_us f64 | dropped u64 |
//! | strings u32 × str | counters u32 × (idx u32, delta u64) |
//! | histograms u32 × (idx u32, count u64, sum u64) | events u32 × event |
//! ```
//!
//! On the consuming side a [`LiveAggregator`] folds deltas from many
//! tracks into fixed-width per-interval time series — lock-wait
//! nanoseconds, remote grants, fabric bytes per lane, ring drops — after
//! rebasing each delta's sample instant onto the consumer's clock via the
//! same origin/offset metadata the post-run merge uses.

use crate::metrics::MetricsSnapshot;
use crate::snapshot::{
    put_event, put_str, take_event, Reader, SnapshotError, TelemetrySnapshot, MAX_INSTRUMENTS,
};
use crate::{ObsEvent, Recorder};
use std::collections::{BTreeMap, BTreeSet, HashSet};
use std::sync::Arc;

/// Magic prefix of a serialized delta.
pub const DELTA_MAGIC: &[u8; 4] = b"ODLT";

/// Current delta format version.
pub const DELTA_VERSION: u16 = 1;

/// Hard cap on events one delta may carry (well under the snapshot cap: a
/// delta holds at most one sampling interval's worth of rings).
const MAX_DELTA_EVENTS: u32 = 1 << 20;

/// Everything a recorder produced during one sampling interval.
///
/// `origin_us`/`clock_offset_us` mirror [`TelemetrySnapshot`]'s clock
/// metadata so a consumer on another process can rebase `t_end_us` (the
/// sample instant on the producing recorder's clock) without waiting for
/// the final upload: see [`TelemetryDelta::consumer_end_us`].
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryDelta {
    /// Sampler-assigned delta sequence number (0, 1, 2, ... per run);
    /// consumers dedup retransmits and detect gaps with it.
    pub seq: u64,
    /// The recorder's time zero on the producer's process clock.
    pub origin_us: f64,
    /// Estimated `consumer_clock − producer_clock` microseconds (the
    /// handshake midpoint estimate, identical to the final snapshot's).
    pub clock_offset_us: f64,
    /// Sample instant in microseconds on the producing recorder's clock.
    pub t_end_us: f64,
    /// Ring overwrites that happened during this interval (drain resets
    /// the counters, so consecutive deltas never double-count).
    pub dropped: u64,
    /// Counter increments since the previous sample (zero-delta counters
    /// are omitted).
    pub counters: Vec<(String, u64)>,
    /// Histogram `(count, sum)` increments since the previous sample.
    pub hists: Vec<(String, u64, u64)>,
    /// Events drained from the rings this interval, `(ts_us, seq)`-ordered.
    pub events: Vec<ObsEvent>,
}

impl TelemetryDelta {
    /// True when the interval produced nothing: no events, no drops, no
    /// metric movement.  Streamers may skip shipping such deltas (the
    /// heartbeat alone proves liveness).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.dropped == 0 && self.counters.is_empty() && self.hists.is_empty()
    }

    /// The sample instant rebased onto the consumer's process clock
    /// (`t_end + origin + offset`), comparable across producers.
    #[must_use]
    pub fn consumer_end_us(&self) -> f64 {
        self.t_end_us + self.origin_us + self.clock_offset_us
    }

    /// Serializes to the versioned binary layout, interning metric names
    /// into the delta's string table.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        fn idx_of<'a>(table: &mut Vec<&'a str>, index: &mut BTreeMap<&'a str, u32>, name: &'a str) -> u32 {
            *index.entry(name).or_insert_with(|| {
                table.push(name);
                (table.len() - 1) as u32
            })
        }
        let mut table: Vec<&str> = Vec::new();
        let mut index: BTreeMap<&str, u32> = BTreeMap::new();
        let counter_idx: Vec<u32> =
            self.counters.iter().map(|(n, _)| idx_of(&mut table, &mut index, n.as_str())).collect();
        let hist_idx: Vec<u32> =
            self.hists.iter().map(|(n, _, _)| idx_of(&mut table, &mut index, n.as_str())).collect();

        let mut out = Vec::with_capacity(64 + table.len() * 24 + self.events.len() * 48);
        out.extend_from_slice(DELTA_MAGIC);
        out.extend_from_slice(&DELTA_VERSION.to_le_bytes());
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.extend_from_slice(&self.origin_us.to_le_bytes());
        out.extend_from_slice(&self.clock_offset_us.to_le_bytes());
        out.extend_from_slice(&self.t_end_us.to_le_bytes());
        out.extend_from_slice(&self.dropped.to_le_bytes());
        out.extend_from_slice(&(table.len() as u32).to_le_bytes());
        for name in &table {
            put_str(&mut out, name);
        }
        out.extend_from_slice(&(self.counters.len() as u32).to_le_bytes());
        for (k, (_, delta)) in self.counters.iter().enumerate() {
            out.extend_from_slice(&counter_idx[k].to_le_bytes());
            out.extend_from_slice(&delta.to_le_bytes());
        }
        out.extend_from_slice(&(self.hists.len() as u32).to_le_bytes());
        for (k, (_, count, sum)) in self.hists.iter().enumerate() {
            out.extend_from_slice(&hist_idx[k].to_le_bytes());
            out.extend_from_slice(&count.to_le_bytes());
            out.extend_from_slice(&sum.to_le_bytes());
        }
        out.extend_from_slice(&(self.events.len() as u32).to_le_bytes());
        for ev in &self.events {
            put_event(&mut out, ev);
        }
        out
    }

    /// Strictly decodes a buffer produced by [`TelemetryDelta::encode`];
    /// shares the snapshot codec's typed error taxonomy.
    pub fn decode(buf: &[u8]) -> Result<TelemetryDelta, SnapshotError> {
        let mut r = Reader { buf, at: 0 };
        if r.take(4)? != DELTA_MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = r.u16()?;
        if version != DELTA_VERSION {
            return Err(SnapshotError::BadVersion { got: version });
        }
        let seq = r.u64()?;
        let origin_us = r.finite_f64("origin_us")?;
        let clock_offset_us = r.finite_f64("clock_offset_us")?;
        let t_end_us = r.finite_f64("t_end_us")?;
        let dropped = r.u64()?;
        let n_strings = r.len_prefix(MAX_INSTRUMENTS, "strings")?;
        let mut table = Vec::with_capacity(n_strings);
        for _ in 0..n_strings {
            table.push(r.string()?);
        }
        let resolve = |idx: u32, table: &[String]| -> Result<String, SnapshotError> {
            table.get(idx as usize).cloned().ok_or(SnapshotError::BadField("string index"))
        };
        let mut counters = Vec::new();
        for _ in 0..r.len_prefix(MAX_INSTRUMENTS, "counters")? {
            let name = resolve(r.u32()?, &table)?;
            counters.push((name, r.u64()?));
        }
        let mut hists = Vec::new();
        for _ in 0..r.len_prefix(MAX_INSTRUMENTS, "histograms")? {
            let name = resolve(r.u32()?, &table)?;
            let count = r.u64()?;
            let sum = r.u64()?;
            hists.push((name, count, sum));
        }
        let n_events = r.len_prefix(MAX_DELTA_EVENTS, "events")?;
        let mut events = Vec::with_capacity(n_events);
        for _ in 0..n_events {
            events.push(take_event(&mut r)?);
        }
        if r.at != r.buf.len() {
            return Err(SnapshotError::TrailingBytes);
        }
        Ok(TelemetryDelta { seq, origin_us, clock_offset_us, t_end_us, dropped, counters, hists, events })
    }
}

/// The interval-bucketed sampler: drains a [`Recorder`]'s rings and diffs
/// its cumulative metrics on every [`DeltaSampler::sample`] call.
///
/// The sampler owns no timer — whoever drives the streaming loop calls
/// `sample()` once per interval.  Successive samples are disjoint: rings
/// are emptied and drop counters reset by each drain, and metric deltas
/// are differences of consecutive non-destructive registry snapshots, so
/// replaying all deltas plus the final [`Recorder::finish`] reconstructs
/// the run exactly (see [`fold_deltas`]).
#[derive(Debug)]
pub struct DeltaSampler {
    recorder: Arc<Recorder>,
    clock_offset_us: f64,
    next_seq: u64,
    last: MetricsSnapshot,
}

impl DeltaSampler {
    /// A sampler over `recorder`, stamping every delta with the given
    /// consumer-clock offset (0 when producer and consumer share a clock).
    #[must_use]
    pub fn new(recorder: Arc<Recorder>, clock_offset_us: f64) -> DeltaSampler {
        DeltaSampler { recorder, clock_offset_us, next_seq: 0, last: MetricsSnapshot::default() }
    }

    /// Deltas produced so far.
    #[must_use]
    pub fn samples_taken(&self) -> u64 {
        self.next_seq
    }

    /// Drains everything recorded since the previous sample into a fresh
    /// sequence-numbered delta.
    pub fn sample(&mut self) -> TelemetryDelta {
        let t_end_us = self.recorder.now_us();
        let (events, dropped) = self.recorder.drain_rings();
        let now = self.recorder.metrics().snapshot();
        let mut counters = Vec::new();
        for (name, value) in &now.counters {
            let delta = value - self.last.counter(name).unwrap_or(0);
            if delta > 0 {
                counters.push((name.clone(), delta));
            }
        }
        let mut hists = Vec::new();
        for (name, h) in &now.histograms {
            let (last_count, last_sum) =
                self.last.histogram(name).map_or((0, 0), |prev| (prev.count, prev.sum));
            if h.count > last_count {
                hists.push((name.clone(), h.count - last_count, h.sum - last_sum));
            }
        }
        self.last = now;
        let seq = self.next_seq;
        self.next_seq += 1;
        TelemetryDelta {
            seq,
            origin_us: self.recorder.origin_us() as f64,
            clock_offset_us: self.clock_offset_us,
            t_end_us,
            dropped,
            counters,
            hists,
            events,
        }
    }
}

/// One interval's folded rates for one track.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IntervalStats {
    /// Deltas folded into this interval.
    pub deltas: u32,
    /// Events carried by those deltas.
    pub events: u64,
    /// Ring overwrites reported in the interval.
    pub dropped: u64,
    /// Nanoseconds spent blocked on locks (`lock_wait_ns` histogram sum).
    pub lock_wait_ns: u64,
    /// Remote grants served (`remote_grants` counter).
    pub grants: u64,
    /// Fabric bytes per lane: `[same_node, same_rack, cross_rack]`
    /// (`fabric_bytes_<lane>` histogram sums).
    pub fabric_bytes: [u64; 3],
}

impl IntervalStats {
    /// The folded rates of a single delta — what a live monitor shows for
    /// one arrival before any interval bucketing.
    #[must_use]
    pub fn of_delta(delta: &TelemetryDelta) -> IntervalStats {
        let mut stats = IntervalStats::default();
        stats.fold(delta);
        stats
    }

    fn fold(&mut self, delta: &TelemetryDelta) {
        self.deltas += 1;
        self.events += delta.events.len() as u64;
        self.dropped += delta.dropped;
        for (name, incr) in &delta.counters {
            if name == "remote_grants" {
                self.grants += incr;
            }
        }
        for (name, _count, sum) in &delta.hists {
            match name.as_str() {
                "lock_wait_ns" => self.lock_wait_ns += sum,
                "fabric_bytes_same_node" => self.fabric_bytes[0] += sum,
                "fabric_bytes_same_rack" => self.fabric_bytes[1] += sum,
                "fabric_bytes_cross_rack" => self.fabric_bytes[2] += sum,
                _ => {}
            }
        }
    }

    fn add(&mut self, other: &IntervalStats) {
        self.deltas += other.deltas;
        self.events += other.events;
        self.dropped += other.dropped;
        self.lock_wait_ns += other.lock_wait_ns;
        self.grants += other.grants;
        for lane in 0..3 {
            self.fabric_bytes[lane] += other.fabric_bytes[lane];
        }
    }
}

/// Folds deltas from many tracks into fixed-width per-interval time
/// series, deduping retransmitted deltas by `(track, seq)`.
///
/// Interval index of a delta is `floor(consumer_end_us / interval_us)` —
/// the sample instant rebased onto the consumer's clock, so tracks with
/// different clock origins land in comparable buckets.
#[derive(Debug)]
pub struct LiveAggregator {
    interval_us: f64,
    tracks: BTreeMap<u32, BTreeMap<u64, IntervalStats>>,
    seen: BTreeSet<(u32, u64)>,
    duplicates: u64,
}

impl LiveAggregator {
    /// A fresh aggregator bucketing on `interval_us`-wide intervals.
    ///
    /// # Panics
    /// When `interval_us` is not a positive finite width.
    #[must_use]
    pub fn new(interval_us: f64) -> LiveAggregator {
        assert!(interval_us.is_finite() && interval_us > 0.0, "interval must be positive, got {interval_us}");
        LiveAggregator { interval_us, tracks: BTreeMap::new(), seen: BTreeSet::new(), duplicates: 0 }
    }

    /// The configured bucket width in microseconds.
    #[must_use]
    pub fn interval_us(&self) -> f64 {
        self.interval_us
    }

    /// Folds one delta into `track`'s series; returns `false` (and folds
    /// nothing) when the `(track, seq)` pair was already ingested.
    pub fn ingest(&mut self, track: u32, delta: &TelemetryDelta) -> bool {
        if !self.seen.insert((track, delta.seq)) {
            self.duplicates += 1;
            return false;
        }
        let bucket = (delta.consumer_end_us() / self.interval_us).floor().max(0.0) as u64;
        self.tracks.entry(track).or_default().entry(bucket).or_default().fold(delta);
        true
    }

    /// Retransmissions rejected so far.
    #[must_use]
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }

    /// Tracks that have contributed at least one delta.
    #[must_use]
    pub fn tracks(&self) -> Vec<u32> {
        self.tracks.keys().copied().collect()
    }

    /// `(interval index, stats)` pairs of one track, interval-ordered.
    pub fn series(&self, track: u32) -> impl Iterator<Item = (u64, IntervalStats)> + '_ {
        self.tracks.get(&track).into_iter().flatten().map(|(&i, s)| (i, *s))
    }

    /// The most recent interval of one track.
    #[must_use]
    pub fn latest(&self, track: u32) -> Option<(u64, IntervalStats)> {
        self.tracks.get(&track).and_then(|s| s.iter().next_back()).map(|(&i, s)| (i, *s))
    }

    /// Everything one track reported, summed across intervals.
    #[must_use]
    pub fn totals(&self, track: u32) -> IntervalStats {
        let mut total = IntervalStats::default();
        for (_, stats) in self.series(track) {
            total.add(&stats);
        }
        total
    }
}

/// Reunites a run's streamed deltas with its final post-run snapshot:
/// delta events are merged into `snap.events` (deduped by the
/// recorder-wide event sequence number, so a delta retransmit or an event
/// present in both cannot double-count), delta drop counts are added, and
/// the timeline is re-sorted `(ts_us, seq)`.  Returns how many events the
/// deltas contributed.
///
/// Metrics are left untouched: the snapshot's registry values are
/// cumulative over the whole run and already subsume every delta.
pub fn fold_deltas(snap: &mut TelemetrySnapshot, deltas: &[TelemetryDelta]) -> u64 {
    let mut seen_events: HashSet<u64> = snap.events.iter().map(|e| e.seq).collect();
    let mut seen_deltas: HashSet<u64> = HashSet::new();
    let mut added = 0u64;
    for delta in deltas {
        if !seen_deltas.insert(delta.seq) {
            continue;
        }
        snap.dropped += delta.dropped;
        for ev in &delta.events {
            if seen_events.insert(ev.seq) {
                snap.events.push(*ev);
                added += 1;
            }
        }
    }
    snap.events.sort_by(|a, b| {
        a.ts_us.partial_cmp(&b.ts_us).unwrap_or(std::cmp::Ordering::Equal).then(a.seq.cmp(&b.seq))
    });
    added
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClockKind, EventKind, FabricLane, ObsConfig};

    fn recorder(capacity: usize) -> Arc<Recorder> {
        Recorder::new(ClockKind::Simulated, ObsConfig { ring_capacity: capacity, ..Default::default() })
    }

    #[test]
    fn delta_round_trips_with_interned_names() {
        let rec = recorder(1 << 10);
        let mut sampler = DeltaSampler::new(Arc::clone(&rec), -42.5);
        rec.set_sim_now(0.010);
        rec.record(EventKind::Epoch { epoch: 1, bytes: 128.0 });
        rec.record(EventKind::FabricTransfer { lane: FabricLane::CrossRack, bytes: 512.0 });
        rec.record_lock_wait(3, 50_000);
        let delta = sampler.sample();
        assert_eq!(delta.seq, 0);
        assert_eq!(delta.clock_offset_us, -42.5);
        assert_eq!(delta.t_end_us, 10_000.0);
        assert!(!delta.is_empty());
        let back = TelemetryDelta::decode(&delta.encode()).unwrap();
        assert_eq!(back, delta);
        // Interning pays each name once: "events_recorded" appears in
        // counters, and the encoded bytes contain it exactly once.
        let bytes = delta.encode();
        let needle = b"events_recorded";
        let hits = bytes.windows(needle.len()).filter(|w| w == needle).count();
        assert_eq!(hits, 1);
    }

    #[test]
    fn consecutive_samples_are_disjoint_and_account_drops_exactly() {
        // Forced overflow: a 4-slot ring fed 10 events keeps 4 and drops 6.
        let rec = recorder(4);
        let mut sampler = DeltaSampler::new(Arc::clone(&rec), 0.0);
        for epoch in 0..10 {
            rec.record(EventKind::Epoch { epoch, bytes: 0.0 });
        }
        let first = sampler.sample();
        assert_eq!(first.events.len(), 4);
        assert_eq!(first.dropped, 6);

        // Draining again right away re-reports nothing.
        let empty = sampler.sample();
        assert!(empty.is_empty(), "re-drain must not duplicate: {empty:?}");
        assert_eq!(empty.dropped, 0);

        // New events after the drain come out exactly once, no drops.
        for epoch in 10..13 {
            rec.record(EventKind::Epoch { epoch, bytes: 0.0 });
        }
        let second = sampler.sample();
        assert_eq!(second.events.len(), 3);
        assert_eq!(second.dropped, 0);
        let first_seqs: HashSet<u64> = first.events.iter().map(|e| e.seq).collect();
        assert!(second.events.iter().all(|e| !first_seqs.contains(&e.seq)));

        // Metric deltas are increments, not cumulative values.
        assert_eq!(first.counters.iter().find(|(n, _)| n == "events_recorded").map(|&(_, v)| v), Some(10));
        assert_eq!(second.counters.iter().find(|(n, _)| n == "events_recorded").map(|&(_, v)| v), Some(3));
        assert_eq!(sampler.samples_taken(), 3);
    }

    #[test]
    fn finish_after_sampling_sees_only_the_tail() {
        // The streamed prefix and the final drain partition the run.
        let rec = recorder(1 << 10);
        let mut sampler = DeltaSampler::new(Arc::clone(&rec), 0.0);
        rec.record(EventKind::Epoch { epoch: 1, bytes: 0.0 });
        let delta = sampler.sample();
        rec.record(EventKind::Epoch { epoch: 2, bytes: 0.0 });
        let t = rec.finish("sim");
        assert_eq!(delta.events.len(), 1);
        assert_eq!(t.events.len(), 1);
        assert_ne!(delta.events[0].seq, t.events[0].seq);
        // The final registry snapshot is cumulative over both halves.
        assert_eq!(t.metrics.counter("epochs"), Some(2));
    }

    #[test]
    fn malformed_deltas_are_typed_errors() {
        let rec = recorder(1 << 10);
        let mut sampler = DeltaSampler::new(Arc::clone(&rec), 0.0);
        rec.record_lock_wait(1, 20_000);
        rec.record(EventKind::Epoch { epoch: 1, bytes: 1.0 });
        let good = sampler.sample().encode();

        assert_eq!(TelemetryDelta::decode(b"JUNK"), Err(SnapshotError::BadMagic));
        let mut wrong_version = good.clone();
        wrong_version[4] = 9;
        assert_eq!(TelemetryDelta::decode(&wrong_version), Err(SnapshotError::BadVersion { got: 9 }));
        for cut in 0..good.len() {
            let err = TelemetryDelta::decode(&good[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    SnapshotError::Truncated
                        | SnapshotError::BadMagic
                        | SnapshotError::BadField(_)
                        | SnapshotError::BadCode { .. }
                ),
                "cut at {cut}: {err:?}"
            );
        }
        let mut trailing = good.clone();
        trailing.push(0);
        assert_eq!(TelemetryDelta::decode(&trailing), Err(SnapshotError::TrailingBytes));

        // A counter referencing a string-table slot that does not exist.
        let empty = TelemetryDelta {
            seq: 0,
            origin_us: 0.0,
            clock_offset_us: 0.0,
            t_end_us: 0.0,
            dropped: 0,
            counters: vec![("x".to_string(), 1)],
            hists: vec![],
            events: vec![],
        };
        let mut bytes = empty.encode();
        // The single counter entry sits right after the 1-entry string
        // table and the counter count; point its index out of range.
        // Tail after the index: delta u64, hists len u32, events len u32.
        let idx_at = bytes.len() - 4 - 16;
        bytes[idx_at..idx_at + 4].copy_from_slice(&7u32.to_le_bytes());
        assert_eq!(TelemetryDelta::decode(&bytes), Err(SnapshotError::BadField("string index")));
    }

    fn synthetic_delta(seq: u64, t_end_us: f64, grants: u64, wait_ns: u64) -> TelemetryDelta {
        TelemetryDelta {
            seq,
            origin_us: 1_000.0,
            clock_offset_us: -500.0,
            t_end_us,
            dropped: seq, // arbitrary distinct drop counts
            counters: vec![("remote_grants".to_string(), grants)],
            hists: vec![
                ("lock_wait_ns".to_string(), grants, wait_ns),
                ("fabric_bytes_cross_rack".to_string(), 1, 2_048),
            ],
            events: vec![],
        }
    }

    #[test]
    fn aggregator_buckets_on_the_consumer_clock_and_dedups() {
        let mut agg = LiveAggregator::new(10_000.0); // 10 ms buckets
                                                     // consumer_end = t_end + 1000 − 500 = t_end + 500.
        assert!(agg.ingest(1, &synthetic_delta(0, 4_500.0, 3, 100)));
        assert!(agg.ingest(1, &synthetic_delta(1, 14_500.0, 5, 200)));
        assert!(!agg.ingest(1, &synthetic_delta(1, 14_500.0, 5, 200)), "retransmit must fold nothing");
        assert!(agg.ingest(2, &synthetic_delta(0, 24_500.0, 7, 400)));
        assert_eq!(agg.duplicates(), 1);
        assert_eq!(agg.tracks(), vec![1, 2]);

        let series: Vec<(u64, IntervalStats)> = agg.series(1).collect();
        assert_eq!(series.len(), 2);
        assert_eq!(series[0].0, 0);
        assert_eq!(series[0].1.grants, 3);
        assert_eq!(series[0].1.lock_wait_ns, 100);
        assert_eq!(series[1].0, 1);
        assert_eq!(series[1].1.fabric_bytes, [0, 0, 2_048]);

        let (latest_bucket, latest) = agg.latest(1).unwrap();
        assert_eq!(latest_bucket, 1);
        assert_eq!(latest.grants, 5);
        assert!(agg.latest(9).is_none());

        let totals = agg.totals(1);
        assert_eq!(totals.grants, 8);
        assert_eq!(totals.lock_wait_ns, 300);
        assert_eq!(totals.deltas, 2);
        assert_eq!(totals.dropped, 1); // seq 0 + seq 1 drop fields
        assert_eq!(agg.totals(2).grants, 7);
    }

    #[test]
    fn fold_deltas_reconstructs_the_full_timeline() {
        // Stream two deltas mid-run, finish at the end: folding the deltas
        // into the final snapshot must reproduce every event exactly once,
        // with exact drop accounting, even when a delta is replayed.
        let rec = recorder(4);
        let mut sampler = DeltaSampler::new(Arc::clone(&rec), 0.0);
        for epoch in 0..10 {
            rec.record(EventKind::Epoch { epoch, bytes: 0.0 });
        }
        let d0 = sampler.sample(); // 4 events, 6 dropped
        for epoch in 10..13 {
            rec.record(EventKind::Epoch { epoch, bytes: 0.0 });
        }
        let d1 = sampler.sample(); // 3 events
        rec.record(EventKind::Epoch { epoch: 13, bytes: 0.0 });
        let origin = rec.origin_us() as f64;
        let mut snap = TelemetrySnapshot::from_telemetry(rec.finish("sim"), origin, 0.0);
        assert_eq!(snap.events.len(), 1);

        let added = fold_deltas(&mut snap, &[d0.clone(), d1.clone(), d0.clone()]);
        assert_eq!(added, 7);
        assert_eq!(snap.events.len(), 8);
        assert_eq!(snap.dropped, 6);
        let seqs: HashSet<u64> = snap.events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs.len(), 8, "every event exactly once");
        assert!(snap.events.windows(2).all(|w| w[0].ts_us <= w[1].ts_us));
        // Folding the same deltas into the folded snapshot adds nothing.
        let mut again = snap.clone();
        assert_eq!(fold_deltas(&mut again, &[d0, d1]), 0);
        assert_eq!(again.events.len(), 8);
    }
}
