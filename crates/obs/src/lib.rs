//! `orwl-obs` — structured run telemetry for every backend.
//!
//! A [`Recorder`] is a per-run flight recorder: typed events
//! ([`EventKind`]) land in per-thread ring buffers, metrics
//! ([`metrics::MetricsRegistry`]) aggregate counters/gauges/histograms,
//! and [`Recorder::finish`] drains everything into a [`RunTelemetry`] that
//! exports as a versioned `orwl-obs/v1` JSON artifact or a Chrome
//! trace-event timeline (see [`export`]).
//!
//! Recording is **default-off** and the disabled fast path is one relaxed
//! atomic load: deep hot paths (lock grants, rebinds, solve phases) call
//! [`enabled`] — a mirror of `orwl_core::monitor`'s `ACTIVE_SINKS` gate —
//! and return immediately when no recorder is installed.  Backends that
//! hold their own `Arc<Recorder>` record through it directly; library code
//! with no handle emits through the process-global registry
//! ([`install`]/[`emit`]), exactly like the monitor's sink registry.
//!
//! Clocks: a recorder is created with a [`ClockKind`].  Thread backends
//! stamp monotonic wall time; simulator backends advance the virtual clock
//! with [`Recorder::set_sim_now`] as simulated seconds accumulate, so one
//! timeline viewer works for all execution paths.

pub mod analyze;
pub mod diff;
pub mod event;
pub mod export;
pub mod json;
pub mod merge;
pub mod metrics;
pub mod snapshot;
pub mod timeseries;

pub use event::{ClockKind, DriftOutcome, EventClass, EventKind, FabricLane, ObsEvent, SolvePhase};
pub use json::{Json, JsonError, ToJson};
pub use snapshot::TelemetrySnapshot;
pub use timeseries::{fold_deltas, DeltaSampler, IntervalStats, LiveAggregator, TelemetryDelta};

use metrics::{MetricsRegistry, MetricsSnapshot};
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::Instant;

/// A per-class event admission mask (one bit per [`EventClass`]).
///
/// Filtering applies to the event timeline only: metric instruments keep
/// aggregating for every recorded kind, so a filtered run still reports
/// exact totals while its rings hold only the classes of interest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventFilter {
    bits: u16,
}

impl EventFilter {
    /// Admits every event class.
    #[must_use]
    pub fn all() -> Self {
        EventFilter { bits: (1 << EventClass::ALL.len()) - 1 }
    }

    /// Admits no event class (metrics-only recording).
    #[must_use]
    pub fn none() -> Self {
        EventFilter { bits: 0 }
    }

    /// Admits exactly the given classes.
    #[must_use]
    pub fn only(classes: &[EventClass]) -> Self {
        classes.iter().fold(Self::none(), |f, c| f.with(*c))
    }

    /// This filter plus one more admitted class.
    #[must_use]
    pub fn with(self, class: EventClass) -> Self {
        EventFilter { bits: self.bits | (1 << class.index()) }
    }

    /// This filter with one class removed.
    #[must_use]
    pub fn without(self, class: EventClass) -> Self {
        EventFilter { bits: self.bits & !(1 << class.index()) }
    }

    /// Whether events of `class` reach the rings.
    #[must_use]
    pub fn allows(&self, class: EventClass) -> bool {
        self.bits & (1 << class.index()) != 0
    }

    /// The raw admission mask, for wire transport of the filter.
    #[must_use]
    pub fn bits(&self) -> u16 {
        self.bits
    }

    /// Rebuilds a filter from [`EventFilter::bits`]; unknown high bits are
    /// masked off so a newer peer's mask stays valid here.
    #[must_use]
    pub fn from_bits(bits: u16) -> Self {
        EventFilter { bits: bits & EventFilter::all().bits }
    }
}

impl Default for EventFilter {
    fn default() -> Self {
        EventFilter::all()
    }
}

/// Tuning of a [`Recorder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObsConfig {
    /// Capacity of each per-thread event ring; the oldest events are
    /// overwritten (and counted as dropped) once a thread exceeds it.
    pub ring_capacity: usize,
    /// Lock waits at least this long (in nanoseconds) become events; all
    /// waits land in the `lock_wait_ns` histogram regardless.
    pub lock_wait_threshold_ns: u64,
    /// Which event classes reach the rings (metrics always aggregate).
    /// Long observed runs can drop high-volume classes instead of letting
    /// the rings overwrite-oldest.
    pub event_filter: EventFilter,
    /// Keep every n-th event per class (1 = keep all, the default; 0 is
    /// treated as 1).  Sampling counts per class, so a chatty class cannot
    /// starve a quiet one, and applies after `event_filter`.
    pub sample_every: u32,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            ring_capacity: 1 << 16,
            lock_wait_threshold_ns: 10_000,
            event_filter: EventFilter::all(),
            sample_every: 1,
        }
    }
}

/// One thread's event ring: overwrite-oldest with a drop counter.
#[derive(Debug)]
struct Ring {
    tid: u64,
    state: Mutex<RingState>,
}

#[derive(Debug, Default)]
struct RingState {
    buf: Vec<ObsEvent>,
    /// Overwrite cursor once `buf` is at capacity.
    next: usize,
    dropped: u64,
}

impl Ring {
    fn record(&self, capacity: usize, ev: ObsEvent) {
        let mut s = self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if s.buf.len() < capacity.max(1) {
            s.buf.push(ev);
        } else {
            let at = s.next;
            s.buf[at] = ev;
            s.next = (s.next + 1) % capacity.max(1);
            s.dropped += 1;
        }
    }

    fn drain(&self) -> (Vec<ObsEvent>, u64) {
        let mut s = self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        s.next = 0;
        let dropped = std::mem::take(&mut s.dropped);
        (std::mem::take(&mut s.buf), dropped)
    }
}

static NEXT_RECORDER_ID: AtomicU64 = AtomicU64::new(1);

/// A per-run flight recorder; create with [`Recorder::new`], drain with
/// [`Recorder::finish`].
#[derive(Debug)]
pub struct Recorder {
    id: u64,
    clock: ClockKind,
    config: ObsConfig,
    origin: Instant,
    /// [`process_clock_us`] at creation: locates this recorder's time zero
    /// on the process-wide clock so cross-process merges can rebase.
    origin_us: u64,
    /// Simulated "now" in microseconds, as `f64` bits.
    sim_now_us: AtomicU64,
    seq: AtomicU64,
    next_tid: AtomicU64,
    rings: Mutex<Vec<Arc<Ring>>>,
    metrics: MetricsRegistry,
    /// Per-class admission counters for `sample_every` (indexed by
    /// [`EventClass::index`]).
    class_seen: [AtomicU64; EventClass::ALL.len()],
}

thread_local! {
    /// Per-thread cache of `(recorder id, ring)` so steady-state recording
    /// touches no recorder-wide lock.
    static TL_RINGS: RefCell<Vec<(u64, Arc<Ring>)>> = const { RefCell::new(Vec::new()) };
}

impl Recorder {
    /// A fresh recorder on the given clock.
    #[must_use]
    pub fn new(clock: ClockKind, config: ObsConfig) -> Arc<Recorder> {
        Arc::new(Recorder {
            id: NEXT_RECORDER_ID.fetch_add(1, Ordering::Relaxed),
            clock,
            config,
            origin: Instant::now(),
            origin_us: process_clock_us(),
            sim_now_us: AtomicU64::new(0f64.to_bits()),
            seq: AtomicU64::new(0),
            next_tid: AtomicU64::new(0),
            rings: Mutex::new(Vec::new()),
            metrics: MetricsRegistry::new(),
            class_seen: std::array::from_fn(|_| AtomicU64::new(0)),
        })
    }

    /// The clock events are stamped with.
    #[must_use]
    pub fn clock(&self) -> ClockKind {
        self.clock
    }

    /// [`process_clock_us`] at the moment this recorder was created (its
    /// event time zero on the process-wide clock).
    #[must_use]
    pub fn origin_us(&self) -> u64 {
        self.origin_us
    }

    /// The recorder's tuning.
    #[must_use]
    pub fn config(&self) -> &ObsConfig {
        &self.config
    }

    /// The metrics registry of this run.
    #[must_use]
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Advances the simulated clock (no-op on wall recorders).
    pub fn set_sim_now(&self, seconds: f64) {
        self.sim_now_us.store((seconds * 1.0e6).to_bits(), Ordering::Relaxed);
    }

    /// "Now" in microseconds on this recorder's clock.
    #[must_use]
    pub fn now_us(&self) -> f64 {
        match self.clock {
            ClockKind::Wall => self.origin.elapsed().as_nanos() as f64 / 1.0e3,
            ClockKind::Simulated => f64::from_bits(self.sim_now_us.load(Ordering::Relaxed)),
        }
    }

    fn ring_for_current_thread(&self) -> Arc<Ring> {
        TL_RINGS.with(|cache| {
            let mut cache = cache.borrow_mut();
            if let Some((_, ring)) = cache.iter().find(|(id, _)| *id == self.id) {
                return Arc::clone(ring);
            }
            // Miss: drop cache entries whose recorder is gone (their ring's
            // only other owner was the recorder), then register a new ring.
            cache.retain(|(_, ring)| Arc::strong_count(ring) > 1);
            let ring = Arc::new(Ring {
                tid: self.next_tid.fetch_add(1, Ordering::Relaxed),
                state: Mutex::new(RingState::default()),
            });
            self.rings.lock().unwrap_or_else(std::sync::PoisonError::into_inner).push(Arc::clone(&ring));
            cache.push((self.id, Arc::clone(&ring)));
            ring
        })
    }

    /// Records an event, stamping it with the recorder's clock, and feeds
    /// the corresponding metric instruments.
    pub fn record(&self, kind: EventKind) {
        self.update_metrics(&kind);
        self.push_event(kind);
    }

    fn push_event(&self, kind: EventKind) {
        let class = kind.class();
        if !self.config.event_filter.allows(class) {
            return;
        }
        let seen = self.class_seen[class.index()].fetch_add(1, Ordering::Relaxed);
        let every = u64::from(self.config.sample_every.max(1));
        if !seen.is_multiple_of(every) {
            return;
        }
        let dur_us = match kind {
            EventKind::PlacementSolve { wall_ns, .. } => wall_ns as f64 / 1.0e3,
            _ => 0.0,
        };
        let ev = ObsEvent {
            ts_us: self.now_us(),
            dur_us,
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            tid: 0, // overwritten below with the ring's tid
            track: 0,
            kind,
        };
        let ring = self.ring_for_current_thread();
        self.metrics.counter("events_recorded").incr();
        ring.record(self.config.ring_capacity, ObsEvent { tid: ring.tid, ..ev });
    }

    fn update_metrics(&self, kind: &EventKind) {
        match kind {
            EventKind::Epoch { bytes, .. } => {
                self.metrics.counter("epochs").incr();
                if *bytes > 0.0 {
                    self.metrics.histogram("epoch_bytes").observe(*bytes as u64);
                }
            }
            EventKind::PlacementSolve { phase, wall_ns } => {
                if *phase == SolvePhase::Total {
                    self.metrics.counter("placement_solves").incr();
                    self.metrics.histogram("placement_solve_wall_ns").observe(*wall_ns);
                }
            }
            EventKind::DriftDecision { outcome, delta } => {
                let name = match outcome {
                    DriftOutcome::Fired => "drift_fired",
                    DriftOutcome::SuppressedByPatience => "drift_suppressed_by_patience",
                    DriftOutcome::Cooldown => "drift_cooldown",
                    DriftOutcome::Quiet => "drift_quiet",
                };
                self.metrics.counter(name).incr();
                self.metrics.gauge("drift_delta_last").set(*delta);
            }
            EventKind::LockWait { wait_ns, .. } => {
                // The histogram sample was already taken by
                // `record_lock_wait`; this counts the over-threshold tail.
                self.metrics.counter("lock_waits_over_threshold").incr();
                let _ = wait_ns;
            }
            EventKind::FabricTransfer { lane, bytes } => {
                self.metrics.histogram(lane.metric()).observe(*bytes as u64);
            }
            EventKind::Rebind { .. } => {
                self.metrics.counter("rebinds").incr();
            }
            EventKind::Migration { bytes, .. } => {
                self.metrics.counter("migrations").incr();
                self.metrics.histogram("migration_bytes").observe(*bytes as u64);
            }
            EventKind::LockRequest { .. } => {
                self.metrics.counter("remote_requests").incr();
            }
            EventKind::LockGrant { wait_ns, .. } => {
                self.metrics.counter("remote_grants").incr();
                self.metrics.histogram("owner_fifo_wait_ns").observe(*wait_ns);
            }
            EventKind::LockRelease { held_ns, .. } => {
                self.metrics.histogram("remote_held_ns").observe(*held_ns);
            }
            EventKind::NodeLoss { tasks_lost, .. } => {
                self.metrics.counter("node_losses").incr();
                self.metrics.histogram("node_loss_tasks").observe(*tasks_lost as u64);
            }
            EventKind::Recovery { tasks_migrated, .. } => {
                self.metrics.counter("recoveries").incr();
                self.metrics.histogram("recovery_tasks_migrated").observe(*tasks_migrated as u64);
            }
        }
    }

    /// Records one lock wait: every wait lands in the `lock_wait_ns`
    /// histogram; waits over the configured threshold also become events.
    pub fn record_lock_wait(&self, location: u64, wait_ns: u64) {
        self.metrics.histogram("lock_wait_ns").observe(wait_ns);
        if wait_ns >= self.config.lock_wait_threshold_ns {
            self.record(EventKind::LockWait { location, wait_ns });
        }
    }

    /// Drains every thread's ring into one `(ts, seq)`-ordered event list
    /// plus the drop count accumulated since the previous drain.  Rings are
    /// left empty and their drop counters reset, so consecutive drains are
    /// disjoint: an event (and a drop) is reported exactly once, whether it
    /// leaves through [`Recorder::finish`] or a mid-run
    /// [`timeseries::DeltaSampler`].
    pub(crate) fn drain_rings(&self) -> (Vec<ObsEvent>, u64) {
        let rings: Vec<Arc<Ring>> =
            self.rings.lock().unwrap_or_else(std::sync::PoisonError::into_inner).clone();
        let mut events = Vec::new();
        let mut dropped = 0u64;
        for ring in rings {
            let (evs, d) = ring.drain();
            events.extend(evs);
            dropped += d;
        }
        events.sort_by(|a, b| {
            a.ts_us.partial_cmp(&b.ts_us).unwrap_or(std::cmp::Ordering::Equal).then(a.seq.cmp(&b.seq))
        });
        (events, dropped)
    }

    /// Drains every thread's ring into one `(ts, seq)`-ordered timeline
    /// plus a metrics snapshot.  Rings are left empty, so telemetry is
    /// whatever was recorded since the last `finish`.
    #[must_use]
    pub fn finish(&self, backend: &str) -> RunTelemetry {
        let (events, dropped) = self.drain_rings();
        RunTelemetry {
            backend: backend.to_string(),
            clock: self.clock,
            events,
            dropped,
            metrics: self.metrics.snapshot(),
            tracks: Vec::new(),
        }
    }
}

/// One process timeline of a merged multi-process document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrackInfo {
    /// Track id events reference via [`ObsEvent::track`].
    pub track: u32,
    /// Human-readable label (`coordinator`, `node0`, ...); also the
    /// Perfetto process name of the exported track.
    pub label: String,
}

/// The drained telemetry of one run: the sorted event timeline plus the
/// final metric values.  Hangs off `Report::obs` in `orwl-core` and
/// exports via [`export`].
#[derive(Debug, Clone, PartialEq)]
pub struct RunTelemetry {
    /// Name of the backend that produced the run.
    pub backend: String,
    /// The clock the events are stamped with.
    pub clock: ClockKind,
    /// All recorded events, ordered by `(ts_us, seq)`.
    pub events: Vec<ObsEvent>,
    /// Events lost to ring-buffer overwrites.
    pub dropped: u64,
    /// Final metric values.
    pub metrics: MetricsSnapshot,
    /// Process timelines of a merged multi-process run; empty for
    /// single-process telemetry (every event on implicit track 0).
    pub tracks: Vec<TrackInfo>,
}

impl RunTelemetry {
    /// Number of events of the given kind name.
    #[must_use]
    pub fn count_kind(&self, name: &str) -> usize {
        self.events.iter().filter(|e| e.kind.name() == name).count()
    }
}

/// Microseconds on a process-wide monotonic clock (anchored the first
/// time any code in this process asks).
///
/// Two cooperating processes each report times on their own anchor; the
/// anchors differ by an unknown offset that `orwl-proc` estimates from its
/// Hello/Assignment handshake (both anchors tick the same underlying
/// monotonic clock, so the *rates* agree).  [`Recorder::origin_us`] pins a
/// recorder's event time zero to this clock.
#[must_use]
pub fn process_clock_us() -> u64 {
    static ANCHOR: OnceLock<Instant> = OnceLock::new();
    let anchor = *ANCHOR.get_or_init(Instant::now);
    anchor.elapsed().as_micros() as u64
}

// --- The process-global gate (the `ACTIVE_SINKS` pattern) ----------------

/// Number of installed recorders; the one-load disabled fast path.
static ACTIVE: AtomicU64 = AtomicU64::new(0);

fn registry() -> &'static RwLock<Vec<Arc<Recorder>>> {
    static REGISTRY: OnceLock<RwLock<Vec<Arc<Recorder>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| RwLock::new(Vec::new()))
}

/// True when at least one recorder is installed — one relaxed load, so hot
/// paths can gate on it without measurable cost.
#[inline]
#[must_use]
pub fn enabled() -> bool {
    ACTIVE.load(Ordering::Relaxed) != 0
}

/// Keeps a recorder installed in the global registry; uninstalls on drop.
#[must_use = "dropping the registration immediately uninstalls the recorder"]
#[derive(Debug)]
pub struct ObsRegistration {
    recorder_id: u64,
}

/// Installs `recorder` so library code with no handle ([`emit`],
/// [`time_phase`], [`lock_wait`]) reaches it; uninstall by dropping the
/// returned registration.
pub fn install(recorder: &Arc<Recorder>) -> ObsRegistration {
    let id = recorder.id;
    registry().write().unwrap_or_else(std::sync::PoisonError::into_inner).push(Arc::clone(recorder));
    ACTIVE.fetch_add(1, Ordering::SeqCst);
    ObsRegistration { recorder_id: id }
}

impl Drop for ObsRegistration {
    fn drop(&mut self) {
        let mut recorders = registry().write().unwrap_or_else(std::sync::PoisonError::into_inner);
        recorders.retain(|r| r.id != self.recorder_id);
        drop(recorders);
        ACTIVE.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Runs `f` for every installed recorder (no-op when disabled).
pub fn with_recorders(mut f: impl FnMut(&Recorder)) {
    if !enabled() {
        return;
    }
    for r in registry().read().unwrap_or_else(std::sync::PoisonError::into_inner).iter() {
        f(r);
    }
}

/// Emits an event to every installed recorder (no-op when disabled).
pub fn emit(kind: EventKind) {
    with_recorders(|r| r.record(kind));
}

/// Reports a lock wait to every installed recorder (no-op when disabled).
pub fn lock_wait(location: u64, wait_ns: u64) {
    with_recorders(|r| r.record_lock_wait(location, wait_ns));
}

/// Times `f` as a solve-phase span when recording is enabled; otherwise
/// runs it untouched (no `Instant` call on the disabled path).
pub fn time_phase<R>(phase: SolvePhase, f: impl FnOnce() -> R) -> R {
    if !enabled() {
        return f();
    }
    let t0 = Instant::now();
    let result = f();
    let wall_ns = t0.elapsed().as_nanos() as u64;
    emit(EventKind::PlacementSolve { phase, wall_ns });
    result
}

/// Reports an already-measured solve-phase duration (for pipelines that
/// accumulate per-level timings themselves).
pub fn solve_phase_ns(phase: SolvePhase, wall_ns: u64) {
    emit(EventKind::PlacementSolve { phase, wall_ns });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_is_the_default_and_emit_is_a_noop() {
        // No recorder installed by this test: emitting goes nowhere and the
        // gate reports disabled (other tests install their own recorders,
        // so only assert the no-crash property of the emit path).
        emit(EventKind::Epoch { epoch: 1, bytes: 0.0 });
        lock_wait(7, 1_000_000);
        assert_eq!(time_phase(SolvePhase::Total, || 41 + 1), 42);
    }

    #[test]
    fn install_records_and_finish_drains_in_order() {
        let rec = Recorder::new(ClockKind::Simulated, ObsConfig::default());
        let reg = install(&rec);
        assert!(enabled());
        rec.set_sim_now(1.0);
        emit(EventKind::Epoch { epoch: 1, bytes: 512.0 });
        rec.set_sim_now(2.0);
        emit(EventKind::DriftDecision { outcome: DriftOutcome::Quiet, delta: 0.01 });
        emit(EventKind::Epoch { epoch: 2, bytes: 256.0 });
        drop(reg);

        let t = rec.finish("sim");
        assert_eq!(t.backend, "sim");
        assert_eq!(t.clock, ClockKind::Simulated);
        assert_eq!(t.events.len(), 3);
        assert_eq!(t.dropped, 0);
        assert_eq!(t.events[0].ts_us, 1.0e6);
        assert_eq!(t.events[1].ts_us, 2.0e6);
        // Equal timestamps keep emission order through seq.
        assert!(t.events[1].seq < t.events[2].seq);
        assert_eq!(t.count_kind("epoch"), 2);
        assert_eq!(t.metrics.counter("epochs"), Some(2));
        assert_eq!(t.metrics.counter("drift_quiet"), Some(1));
        // A second finish sees an empty timeline (rings were drained).
        assert!(rec.finish("sim").events.is_empty());
    }

    #[test]
    fn ring_overflow_counts_drops() {
        let rec = Recorder::new(ClockKind::Simulated, ObsConfig { ring_capacity: 4, ..Default::default() });
        for epoch in 0..10 {
            rec.record(EventKind::Epoch { epoch, bytes: 0.0 });
        }
        let t = rec.finish("sim");
        assert_eq!(t.events.len(), 4);
        assert_eq!(t.dropped, 6);
        // The ring kept the newest events.
        assert!(t.events.iter().all(|e| matches!(e.kind, EventKind::Epoch { epoch, .. } if epoch >= 6)));
        assert_eq!(t.metrics.counter("events_recorded"), Some(10));
    }

    #[test]
    fn lock_wait_threshold_splits_histogram_from_events() {
        let rec =
            Recorder::new(ClockKind::Wall, ObsConfig { lock_wait_threshold_ns: 1_000, ..Default::default() });
        rec.record_lock_wait(1, 10); // histogram only
        rec.record_lock_wait(1, 5_000); // histogram + event
        let t = rec.finish("threads");
        assert_eq!(t.count_kind("lock_wait"), 1);
        let h = t.metrics.histogram("lock_wait_ns").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(t.metrics.counter("lock_waits_over_threshold"), Some(1));
    }

    #[test]
    fn event_filter_drops_classes_but_keeps_metrics() {
        let rec = Recorder::new(
            ClockKind::Simulated,
            ObsConfig {
                event_filter: EventFilter::only(&[EventClass::FabricTransfer]),
                ..Default::default()
            },
        );
        rec.record(EventKind::Epoch { epoch: 1, bytes: 64.0 });
        rec.record(EventKind::FabricTransfer { lane: FabricLane::SameRack, bytes: 128.0 });
        rec.record(EventKind::Rebind { task: 0, pu: 3 });
        let t = rec.finish("sim");
        assert_eq!(t.events.len(), 1);
        assert_eq!(t.count_kind("fabric_transfer"), 1);
        // Metrics still saw every kind; only the timeline is filtered.
        assert_eq!(t.metrics.counter("epochs"), Some(1));
        assert_eq!(t.metrics.counter("rebinds"), Some(1));
        // `events_recorded` counts kept events.
        assert_eq!(t.metrics.counter("events_recorded"), Some(1));
    }

    #[test]
    fn filter_combinators_compose() {
        let f = EventFilter::all().without(EventClass::LockWait);
        assert!(!f.allows(EventClass::LockWait));
        assert!(f.allows(EventClass::Epoch));
        let g = EventFilter::none().with(EventClass::Migration);
        assert!(g.allows(EventClass::Migration));
        assert!(!g.allows(EventClass::Epoch));
        assert_eq!(EventFilter::default(), EventFilter::all());
        assert_eq!(EventFilter::only(&[]), EventFilter::none());
    }

    #[test]
    fn sampling_keeps_every_nth_event_per_class() {
        let rec = Recorder::new(ClockKind::Simulated, ObsConfig { sample_every: 4, ..Default::default() });
        for epoch in 0..10 {
            rec.record(EventKind::Epoch { epoch, bytes: 0.0 });
        }
        // A second, quieter class is sampled independently.
        rec.record(EventKind::Rebind { task: 1, pu: 2 });
        let t = rec.finish("sim");
        // Epochs 0, 4 and 8 survive (keep-first, then every 4th).
        let kept: Vec<u64> = t
            .events
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::Epoch { epoch, .. } => Some(epoch),
                _ => None,
            })
            .collect();
        assert_eq!(kept, vec![0, 4, 8]);
        assert_eq!(t.count_kind("rebind"), 1);
        // Metric totals are unaffected by sampling.
        assert_eq!(t.metrics.counter("epochs"), Some(10));
        assert_eq!(t.metrics.counter("events_recorded"), Some(4));
    }

    #[test]
    fn threads_get_distinct_tids() {
        let rec = Recorder::new(ClockKind::Wall, ObsConfig::default());
        rec.record(EventKind::Epoch { epoch: 1, bytes: 0.0 });
        let rec2 = Arc::clone(&rec);
        std::thread::spawn(move || rec2.record(EventKind::Epoch { epoch: 2, bytes: 0.0 })).join().unwrap();
        let t = rec.finish("threads");
        let tids: std::collections::HashSet<u64> = t.events.iter().map(|e| e.tid).collect();
        assert_eq!(tids.len(), 2);
    }

    #[test]
    fn placement_solve_events_carry_duration() {
        let rec = Recorder::new(ClockKind::Wall, ObsConfig::default());
        let reg = install(&rec);
        let v = time_phase(SolvePhase::Total, || std::hint::black_box((0..1000).sum::<u64>()));
        assert_eq!(v, 499_500);
        solve_phase_ns(SolvePhase::Group, 2_000);
        drop(reg);
        let t = rec.finish("x");
        // This recorder saw exactly its own two solve events (other tests'
        // recorders are separate instances).
        let solves: Vec<&ObsEvent> = t.events.iter().filter(|e| e.kind.name() == "placement_solve").collect();
        assert_eq!(solves.len(), 2);
        assert!(solves[0].dur_us > 0.0);
        assert_eq!(t.metrics.counter("placement_solves"), Some(1)); // Total only
        assert!(t.metrics.histogram("placement_solve_wall_ns").unwrap().count == 1);
    }
}
