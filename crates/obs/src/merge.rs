//! Merging per-process telemetry into one clock-aligned timeline.
//!
//! The coordinator of a multi-process run holds its own recorder plus one
//! [`TelemetrySnapshot`] per worker.  Each snapshot's events are stamped on
//! the *worker's* clock; its `origin_us`/`clock_offset_us` metadata locate
//! that clock relative to the coordinator's, so [`merge_run`] can rebase
//! every worker event into coordinator time:
//!
//! ```text
//! coordinator_ts = worker_ts + worker_origin + offset − coordinator_origin
//! ```
//!
//! The offset is an *estimate* (half the handshake round-trip is its error
//! bar), so rebased timestamps can violate the one ordering the protocol
//! guarantees: a grant is sent only after its request arrived, and a
//! release only after its grant.  [`merge_run`] therefore runs a causality
//! clamp — grants are nudged after their requests, releases after their
//! grants, and each track is re-monotonised in emission order — and counts
//! every nudge in the `causality_clamps` counter so analyzers can see how
//! hard the clocks disagreed.  Only timestamps move; no event is dropped
//! or reordered within its own track.

use crate::snapshot::TelemetrySnapshot;
use crate::{EventKind, ObsEvent, RunTelemetry, TrackInfo};
use std::collections::BTreeMap;

/// Minimum gap (µs) enforced between a clamped cause/effect pair, so the
/// merged sort keeps the effect strictly after its cause.
const CLAMP_GAP_US: f64 = 1.0e-3;

/// Merges worker snapshots into the coordinator's telemetry.
///
/// `base` is the coordinator recorder's drained telemetry and
/// `base_origin_us` its `Recorder::origin_us`.  Each `(node, snapshot)`
/// upload becomes track `node + 1` (the coordinator is track 0); worker
/// metrics are namespaced `node<k>.<name>`.  The result is one
/// `(ts, track, seq)`-sorted timeline with globally reassigned sequence
/// numbers.
#[must_use]
pub fn merge_run(
    base: RunTelemetry,
    base_origin_us: f64,
    uploads: &[(u32, TelemetrySnapshot)],
) -> RunTelemetry {
    let mut tracks = vec![TrackInfo { track: 0, label: "coordinator".to_string() }];
    let mut events = base.events;
    for ev in &mut events {
        ev.track = 0;
    }
    let mut dropped = base.dropped;
    let mut metrics = base.metrics;

    for (node, snap) in uploads {
        let track = node + 1;
        tracks.push(TrackInfo { track, label: format!("node{node}") });
        let shift = snap.origin_us + snap.clock_offset_us - base_origin_us;
        for ev in &snap.events {
            events.push(ObsEvent { ts_us: ev.ts_us + shift, track, ..*ev });
        }
        dropped += snap.dropped;
        let prefix = format!("node{node}.");
        for (name, v) in &snap.metrics.counters {
            metrics.counters.push((format!("{prefix}{name}"), *v));
        }
        for (name, v) in &snap.metrics.gauges {
            metrics.gauges.push((format!("{prefix}{name}"), *v));
        }
        for (name, h) in &snap.metrics.histograms {
            metrics.histograms.push((format!("{prefix}{name}"), h.clone()));
        }
    }

    let clamps = enforce_causality(&mut events);
    metrics.counters.push(("causality_clamps".to_string(), clamps));
    metrics.counters.sort_by(|a, b| a.0.cmp(&b.0));
    metrics.gauges.sort_by(|a, b| a.0.cmp(&b.0));
    metrics.histograms.sort_by(|a, b| a.0.cmp(&b.0));

    events.sort_by(|a, b| {
        a.ts_us
            .partial_cmp(&b.ts_us)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.track.cmp(&b.track))
            .then(a.seq.cmp(&b.seq))
    });
    for (i, ev) in events.iter_mut().enumerate() {
        ev.seq = i as u64;
    }

    RunTelemetry { backend: base.backend, clock: base.clock, events, dropped, metrics, tracks }
}

/// Repairs orderings the protocol guarantees but clock estimation can
/// break; returns how many timestamps had to move.
///
/// Two invariants are enforced, by raising timestamps only (a bounded
/// lattice walk, so the alternation below converges):
///
/// 1. cross-track happens-before per `rseq`: request ≤ grant ≤ release;
/// 2. per-track monotonicity in emission (`seq`) order.
fn enforce_causality(events: &mut [ObsEvent]) -> u64 {
    // Index events by (what they are, rseq), remembering positions.
    // BTreeMaps keep the clamp count deterministic across runs.
    let mut requests: BTreeMap<u64, usize> = BTreeMap::new();
    let mut grants: BTreeMap<u64, usize> = BTreeMap::new();
    let mut releases: BTreeMap<u64, usize> = BTreeMap::new();
    for (i, ev) in events.iter().enumerate() {
        match ev.kind {
            EventKind::LockRequest { rseq, .. } => {
                requests.insert(rseq, i);
            }
            EventKind::LockGrant { rseq, .. } => {
                grants.insert(rseq, i);
            }
            EventKind::LockRelease { rseq, .. } => {
                releases.insert(rseq, i);
            }
            _ => {}
        }
    }
    // Per-track emission order (original recorder seq).
    let mut by_track: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
    for (i, ev) in events.iter().enumerate() {
        by_track.entry(ev.track).or_default().push(i);
    }
    for order in by_track.values_mut() {
        order.sort_by_key(|&i| events[i].seq);
    }

    let mut clamps = 0u64;
    // Alternate the two raises until a fixed point; each pass only raises
    // timestamps toward a finite bound, so a handful of rounds suffice.
    for _ in 0..8 {
        let mut moved = false;
        for (rseq, &g) in &grants {
            if let Some(&q) = requests.get(rseq) {
                if events[g].ts_us < events[q].ts_us + CLAMP_GAP_US {
                    events[g].ts_us = events[q].ts_us + CLAMP_GAP_US;
                    clamps += 1;
                    moved = true;
                }
            }
        }
        for (rseq, &r) in &releases {
            if let Some(&g) = grants.get(rseq) {
                if events[r].ts_us < events[g].ts_us + CLAMP_GAP_US {
                    events[r].ts_us = events[g].ts_us + CLAMP_GAP_US;
                    clamps += 1;
                    moved = true;
                }
            }
        }
        for order in by_track.values() {
            let mut high = f64::NEG_INFINITY;
            for &i in order {
                if events[i].ts_us < high {
                    events[i].ts_us = high;
                    clamps += 1;
                    moved = true;
                }
                high = events[i].ts_us;
            }
        }
        if !moved {
            break;
        }
    }
    clamps
}

/// Splits a merged document back into one single-track telemetry per
/// track: events filtered by track id, metrics filtered to the track's
/// namespace (prefix stripped for worker tracks).  Used to write per-node
/// artifacts next to the merged one, and to diff a single node run-over-run.
#[must_use]
pub fn split_tracks(merged: &RunTelemetry) -> Vec<(TrackInfo, RunTelemetry)> {
    merged
        .tracks
        .iter()
        .map(|info| {
            let events: Vec<ObsEvent> = merged
                .events
                .iter()
                .filter(|e| e.track == info.track)
                .map(|e| ObsEvent { track: 0, ..*e })
                .collect();
            let prefix = if info.track == 0 { None } else { Some(format!("{}.", info.label)) };
            let keep = |name: &str| -> Option<String> {
                match &prefix {
                    Some(p) => name.strip_prefix(p.as_str()).map(str::to_string),
                    None => (!name.contains('.')).then(|| name.to_string()),
                }
            };
            let metrics = crate::metrics::MetricsSnapshot {
                counters: merged
                    .metrics
                    .counters
                    .iter()
                    .filter_map(|(n, v)| keep(n).map(|n| (n, *v)))
                    .collect(),
                gauges: merged.metrics.gauges.iter().filter_map(|(n, v)| keep(n).map(|n| (n, *v))).collect(),
                histograms: merged
                    .metrics
                    .histograms
                    .iter()
                    .filter_map(|(n, h)| keep(n).map(|n| (n, h.clone())))
                    .collect(),
            };
            let telemetry = RunTelemetry {
                backend: format!("{}/{}", merged.backend, info.label),
                clock: merged.clock,
                events,
                dropped: merged.dropped,
                metrics,
                tracks: Vec::new(),
            };
            (info.clone(), telemetry)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsSnapshot;
    use crate::ClockKind;

    fn event(ts_us: f64, seq: u64, kind: EventKind) -> ObsEvent {
        ObsEvent { ts_us, dur_us: 0.0, seq, tid: 0, track: 0, kind }
    }

    fn base(events: Vec<ObsEvent>) -> RunTelemetry {
        RunTelemetry {
            backend: "proc".to_string(),
            clock: ClockKind::Wall,
            events,
            dropped: 0,
            metrics: MetricsSnapshot::default(),
            tracks: Vec::new(),
        }
    }

    fn snapshot(events: Vec<ObsEvent>, origin_us: f64, offset_us: f64) -> TelemetrySnapshot {
        TelemetrySnapshot {
            clock: ClockKind::Wall,
            origin_us,
            clock_offset_us: offset_us,
            backend: "proc".to_string(),
            events,
            dropped: 0,
            metrics: MetricsSnapshot::default(),
        }
    }

    #[test]
    fn rebasing_uses_origin_and_offset() {
        // Coordinator origin at 1000 on its own clock.  The worker's
        // recorder origin sits at 400 on the worker clock, which runs 700
        // behind the coordinator's: a worker event at +100 should land at
        // 400 + 700 + 100 − 1000 = 200 in coordinator-relative time.
        let coord = base(vec![event(150.0, 0, EventKind::Epoch { epoch: 1, bytes: 0.0 })]);
        let snap = snapshot(vec![event(100.0, 0, EventKind::Epoch { epoch: 2, bytes: 0.0 })], 400.0, 700.0);
        let merged = merge_run(coord, 1000.0, &[(0, snap)]);
        assert_eq!(merged.tracks.len(), 2);
        assert_eq!(merged.tracks[1].label, "node0");
        let worker_ev = merged.events.iter().find(|e| e.track == 1).unwrap();
        assert!((worker_ev.ts_us - 200.0).abs() < 1e-9, "got {}", worker_ev.ts_us);
        // Coordinator events stay put and sort first here.
        assert_eq!(merged.events[0].track, 0);
        assert_eq!(merged.events[0].ts_us, 150.0);
        // Sequence numbers are reassigned globally.
        assert_eq!(merged.events.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![0, 1]);
        assert_eq!(merged.metrics.counter("causality_clamps"), Some(0));
    }

    #[test]
    fn worker_metrics_are_namespaced() {
        let mut m = MetricsSnapshot::default();
        m.counters.push(("remote_requests".to_string(), 5));
        let mut snap = snapshot(vec![], 0.0, 0.0);
        snap.metrics = m;
        let mut coord = base(vec![]);
        coord.metrics.counters.push(("epochs".to_string(), 2));
        let merged = merge_run(coord, 0.0, &[(1, snap)]);
        assert_eq!(merged.metrics.counter("epochs"), Some(2));
        assert_eq!(merged.metrics.counter("node1.remote_requests"), Some(5));
        assert_eq!(merged.tracks[1].label, "node1");
        assert_eq!(merged.tracks[1].track, 2);
    }

    #[test]
    fn skewed_offsets_still_yield_request_before_grant() {
        // Node 0 requests at its local 100; node 1 grants at its local 50.
        // Node 1's offset estimate is so wrong that the grant rebases 150
        // *before* the request: the clamp must pull it after, and both
        // tracks must stay monotone.
        let rseq = (1_u64 << 32) | 1;
        let reader = snapshot(
            vec![
                event(100.0, 0, EventKind::LockRequest { rseq, location: 3, owner: 1 }),
                event(300.0, 1, EventKind::LockRelease { rseq, location: 3, held_ns: 1000 }),
            ],
            0.0,
            0.0,
        );
        let owner = snapshot(
            vec![
                event(10.0, 0, EventKind::Epoch { epoch: 1, bytes: 0.0 }),
                event(50.0, 1, EventKind::LockGrant { rseq, location: 3, wait_ns: 500 }),
            ],
            0.0,
            -100.0, // rebases the grant to −50
        );
        let merged = merge_run(base(vec![]), 0.0, &[(0, reader), (1, owner)]);
        let find = |name: &str| merged.events.iter().find(|e| e.kind.name() == name).unwrap();
        let (req, grant, release) = (find("lock_request"), find("lock_grant"), find("lock_release"));
        assert!(req.ts_us < grant.ts_us, "request {} must precede grant {}", req.ts_us, grant.ts_us);
        assert!(grant.ts_us < release.ts_us);
        // The merged order mirrors the repaired timestamps.
        let names: Vec<&str> = merged
            .events
            .iter()
            .filter(|e| e.kind.name().starts_with("lock_"))
            .map(|e| e.kind.name())
            .collect();
        assert_eq!(names, vec!["lock_request", "lock_grant", "lock_release"]);
        // Per-track monotone in final order.
        for track in [1, 2] {
            let ts: Vec<f64> = merged.events.iter().filter(|e| e.track == track).map(|e| e.ts_us).collect();
            assert!(ts.windows(2).all(|w| w[0] <= w[1]), "track {track} not monotone: {ts:?}");
        }
        let clamps = merged.metrics.counter("causality_clamps").unwrap();
        assert!(clamps >= 1, "the grant must have been clamped");
    }

    #[test]
    fn clamping_one_event_remonotonises_its_track() {
        // The grant is followed on the owner track by a later local event;
        // after the grant is pushed forward the follower must move too.
        let rseq = (1_u64 << 32) | 9;
        let reader =
            snapshot(vec![event(500.0, 0, EventKind::LockRequest { rseq, location: 0, owner: 1 })], 0.0, 0.0);
        let owner = snapshot(
            vec![
                event(100.0, 0, EventKind::LockGrant { rseq, location: 0, wait_ns: 1 }),
                event(101.0, 1, EventKind::Epoch { epoch: 1, bytes: 0.0 }),
            ],
            0.0,
            0.0,
        );
        let merged = merge_run(base(vec![]), 0.0, &[(0, reader), (1, owner)]);
        let owner_ts: Vec<f64> = merged.events.iter().filter(|e| e.track == 2).map(|e| e.ts_us).collect();
        assert!(owner_ts[0] > 500.0);
        assert!(owner_ts.windows(2).all(|w| w[0] <= w[1]), "owner track regressed: {owner_ts:?}");
        // The epoch event kept its emission position relative to the grant.
        assert_eq!(merged.events.iter().filter(|e| e.track == 2).count(), 2);
    }

    #[test]
    fn split_tracks_partitions_events_and_metrics() {
        let mut coord = base(vec![event(1.0, 0, EventKind::Epoch { epoch: 1, bytes: 0.0 })]);
        coord.metrics.counters.push(("epochs".to_string(), 1));
        let mut snap = snapshot(vec![event(2.0, 0, EventKind::Epoch { epoch: 2, bytes: 0.0 })], 0.0, 0.0);
        snap.metrics.counters.push(("epochs".to_string(), 1));
        let merged = merge_run(coord, 0.0, &[(0, snap)]);
        let parts = split_tracks(&merged);
        assert_eq!(parts.len(), 2);
        let (info0, t0) = &parts[0];
        assert_eq!(info0.label, "coordinator");
        assert_eq!(t0.events.len(), 1);
        assert_eq!(t0.metrics.counter("epochs"), Some(1));
        // The coordinator keeps the clamp counter, not the node metrics.
        assert!(t0.metrics.counter("node0.epochs").is_none());
        let (info1, t1) = &parts[1];
        assert_eq!(info1.label, "node0");
        assert_eq!(t1.events.len(), 1);
        assert_eq!(t1.metrics.counter("epochs"), Some(1));
        assert!(t1.events.iter().all(|e| e.track == 0));
        // Each part is a valid single-track document.
        use crate::ToJson;
        crate::export::validate_obs(&t1.to_json()).unwrap();
    }
}
