//! The metrics registry: named counters, gauges and fixed-bucket
//! histograms, all lock-free to update.
//!
//! Instruments are created on first use and shared by name; a drained
//! [`MetricsSnapshot`] sorts names so serialisation is deterministic.  The
//! histogram uses fixed power-of-two buckets (bucket *i* holds values in
//! `[2^i, 2^(i+1))`, values of 0 land in bucket 0): cheap to update from a
//! hot path — one `leading_zeros` and one relaxed increment — and precise
//! enough to separate a 2 µs lock wait from a 2 ms one, which is what the
//! lock-wait, solve-time and migration-size distributions need.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Number of power-of-two histogram buckets (covers the full `u64` range).
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Increments the counter by one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// The current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins floating-point gauge.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// The current value.
    #[must_use]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A fixed power-of-two-bucket histogram of `u64` samples.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Bucket index of a sample: `floor(log2(value))`, with 0 in bucket 0.
    #[must_use]
    pub fn bucket_of(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            63 - value.leading_zeros() as usize
        }
    }

    /// Records one sample.
    pub fn observe(&self, value: u64) {
        self.buckets[Self::bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Number of samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples (wrapping on overflow).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Sparse snapshot of the non-empty buckets, as
    /// `(log2-floor, sample count)` pairs in bucket order.
    #[must_use]
    pub fn sparse_buckets(&self) -> Vec<(u32, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then_some((i as u32, n))
            })
            .collect()
    }
}

/// A drained histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Non-empty `(log2-floor, count)` buckets in ascending order.
    pub buckets: Vec<(u32, u64)>,
}

/// A drained registry: every instrument's value at drain time, sorted by
/// name for deterministic serialisation.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge values by name.
    pub gauges: Vec<(String, f64)>,
    /// Histogram snapshots by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// Counter lookup by name.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Gauge lookup by name.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Histogram lookup by name.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|(n, _)| n == name).map(|(_, h)| h)
    }
}

/// Named instrument store; instruments are created on first use.
///
/// Lookup takes a read-lock and updates are relaxed atomics, so hot paths
/// should hold the returned `Arc` rather than re-resolving the name per
/// sample.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: RwLock<Vec<(String, Arc<Counter>)>>,
    gauges: RwLock<Vec<(String, Arc<Gauge>)>>,
    histograms: RwLock<Vec<(String, Arc<Histogram>)>>,
}

fn get_or_create<T: Default>(table: &RwLock<Vec<(String, Arc<T>)>>, name: &str) -> Arc<T> {
    if let Some(found) = table
        .read()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| Arc::clone(v))
    {
        return found;
    }
    let mut w = table.write().unwrap_or_else(std::sync::PoisonError::into_inner);
    // Racing creator may have won between the locks.
    if let Some((_, v)) = w.iter().find(|(n, _)| n == name) {
        return Arc::clone(v);
    }
    let fresh = Arc::new(T::default());
    w.push((name.to_string(), Arc::clone(&fresh)));
    fresh
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// The counter named `name` (created zeroed on first use).
    #[must_use]
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        get_or_create(&self.counters, name)
    }

    /// The gauge named `name` (created at 0.0 on first use).
    #[must_use]
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        get_or_create(&self.gauges, name)
    }

    /// The histogram named `name` (created empty on first use).
    #[must_use]
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        get_or_create(&self.histograms, name)
    }

    /// Drains every instrument into a name-sorted snapshot.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut counters: Vec<(String, u64)> = self
            .counters
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
            .map(|(n, c)| (n.clone(), c.get()))
            .collect();
        let mut gauges: Vec<(String, f64)> = self
            .gauges
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
            .map(|(n, g)| (n.clone(), g.get()))
            .collect();
        let mut histograms: Vec<(String, HistogramSnapshot)> = self
            .histograms
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
            .map(|(n, h)| {
                (n.clone(), HistogramSnapshot { count: h.count(), sum: h.sum(), buckets: h.sparse_buckets() })
            })
            .collect();
        counters.sort_by(|a, b| a.0.cmp(&b.0));
        gauges.sort_by(|a, b| a.0.cmp(&b.0));
        histograms.sort_by(|a, b| a.0.cmp(&b.0));
        MetricsSnapshot { counters, gauges, histograms }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_share_by_name() {
        let r = MetricsRegistry::new();
        r.counter("epochs").add(3);
        r.counter("epochs").incr();
        r.gauge("drift").set(0.25);
        assert_eq!(r.counter("epochs").get(), 4);
        assert_eq!(r.gauge("drift").get(), 0.25);
        let snap = r.snapshot();
        assert_eq!(snap.counter("epochs"), Some(4));
        assert_eq!(snap.gauge("drift"), Some(0.25));
        assert_eq!(snap.counter("missing"), None);
    }

    #[test]
    fn histogram_buckets_by_log2() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 0);
        assert_eq!(Histogram::bucket_of(2), 1);
        assert_eq!(Histogram::bucket_of(3), 1);
        assert_eq!(Histogram::bucket_of(1024), 10);
        assert_eq!(Histogram::bucket_of(u64::MAX), 63);
        let h = Histogram::default();
        h.observe(0);
        h.observe(5);
        h.observe(5);
        h.observe(2048);
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 2058);
        assert_eq!(h.sparse_buckets(), vec![(0, 1), (2, 2), (11, 1)]);
    }

    #[test]
    fn snapshot_is_name_sorted() {
        let r = MetricsRegistry::new();
        r.counter("zeta").incr();
        r.counter("alpha").incr();
        r.histogram("m").observe(7);
        let snap = r.snapshot();
        assert_eq!(snap.counters[0].0, "alpha");
        assert_eq!(snap.counters[1].0, "zeta");
        assert_eq!(snap.histogram("m").unwrap().count, 1);
    }

    #[test]
    fn concurrent_creation_yields_one_instrument() {
        let r = Arc::new(MetricsRegistry::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let r = Arc::clone(&r);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        r.counter("shared").incr();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(r.counter("shared").get(), 800);
        assert_eq!(r.snapshot().counters.len(), 1);
    }
}
