//! The event model: what a run's flight recorder can say.
//!
//! Every [`ObsEvent`] carries a timestamp on the owning recorder's clock
//! (monotonic wall time on thread backends, simulated seconds on the
//! simulators — see [`ClockKind`]), a recorder-wide sequence number that
//! makes the drained timeline totally ordered even when timestamps tie
//! (simulated events of one epoch all share the epoch's clock value), the
//! logical thread id of the emitting thread, and a typed [`EventKind`]
//! payload.

/// The clock a recorder stamps events with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClockKind {
    /// Monotonic wall time since the recorder was created (thread and
    /// cluster-control backends).
    Wall,
    /// The simulator's virtual clock, advanced by the backend as simulated
    /// seconds accumulate.
    Simulated,
}

impl ClockKind {
    /// Stable artifact name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            ClockKind::Wall => "wall",
            ClockKind::Simulated => "simulated",
        }
    }

    /// Inverse of [`ClockKind::name`].
    #[must_use]
    pub fn parse(name: &str) -> Option<ClockKind> {
        match name {
            "wall" => Some(ClockKind::Wall),
            "simulated" => Some(ClockKind::Simulated),
            _ => None,
        }
    }
}

/// Phase of a placement solve (the TreeMatch pipeline).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolvePhase {
    /// `GroupProcesses` across all tree levels (includes the swap
    /// refinement it runs internally).
    Group,
    /// `AggregateComMatrix` across all tree levels (the coarsening step).
    Coarsen,
    /// The Kernighan–Lin-style swap refinement inside the grouping.
    Refine,
    /// The whole placement computation, whatever the policy.
    Total,
}

impl SolvePhase {
    /// Stable artifact name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            SolvePhase::Group => "group",
            SolvePhase::Coarsen => "coarsen",
            SolvePhase::Refine => "refine",
            SolvePhase::Total => "total",
        }
    }

    /// Inverse of [`SolvePhase::name`].
    #[must_use]
    pub fn parse(name: &str) -> Option<SolvePhase> {
        match name {
            "group" => Some(SolvePhase::Group),
            "coarsen" => Some(SolvePhase::Coarsen),
            "refine" => Some(SolvePhase::Refine),
            "total" => Some(SolvePhase::Total),
            _ => None,
        }
    }
}

/// What the drift detector decided at an epoch boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriftOutcome {
    /// Drift exceeded the patience threshold: a re-placement was requested.
    Fired,
    /// Over threshold, but the patience counter has not filled yet.
    SuppressedByPatience,
    /// A recent migration's cooldown swallowed the observation.
    Cooldown,
    /// Under threshold: nothing to do.
    Quiet,
}

impl DriftOutcome {
    /// Stable artifact name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            DriftOutcome::Fired => "fired",
            DriftOutcome::SuppressedByPatience => "suppressed_by_patience",
            DriftOutcome::Cooldown => "cooldown",
            DriftOutcome::Quiet => "quiet",
        }
    }

    /// Inverse of [`DriftOutcome::name`].
    #[must_use]
    pub fn parse(name: &str) -> Option<DriftOutcome> {
        match name {
            "fired" => Some(DriftOutcome::Fired),
            "suppressed_by_patience" => Some(DriftOutcome::SuppressedByPatience),
            "cooldown" => Some(DriftOutcome::Cooldown),
            "quiet" => Some(DriftOutcome::Quiet),
            _ => None,
        }
    }
}

/// Locality class of fabric traffic, mirroring the cluster topology's
/// `FabricClass` without depending on it (this crate is a leaf).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FabricLane {
    /// Both endpoints on one machine (NUMA links only).
    SameNode,
    /// Different machines, one rack.
    SameRack,
    /// Different racks.
    CrossRack,
}

impl FabricLane {
    /// Stable artifact name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            FabricLane::SameNode => "same_node",
            FabricLane::SameRack => "same_rack",
            FabricLane::CrossRack => "cross_rack",
        }
    }

    /// Inverse of [`FabricLane::name`].
    #[must_use]
    pub fn parse(name: &str) -> Option<FabricLane> {
        match name {
            "same_node" => Some(FabricLane::SameNode),
            "same_rack" => Some(FabricLane::SameRack),
            "cross_rack" => Some(FabricLane::CrossRack),
            _ => None,
        }
    }

    /// Metric-name suffix (`fabric_bytes_<lane>`).
    #[must_use]
    pub(crate) fn metric(&self) -> &'static str {
        match self {
            FabricLane::SameNode => "fabric_bytes_same_node",
            FabricLane::SameRack => "fabric_bytes_same_rack",
            FabricLane::CrossRack => "fabric_bytes_cross_rack",
        }
    }
}

/// A typed event payload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// A monitoring epoch boundary (epochs count from 1).
    Epoch {
        /// The epoch that just closed.
        epoch: u64,
        /// Bytes the monitor observed during the epoch (0 when the backend
        /// does not tally them).
        bytes: f64,
    },
    /// One phase of a placement or re-placement solve.  `wall_ns` is
    /// always wall time, even on simulated clocks — the solve runs on the
    /// host, not in the simulation.
    PlacementSolve {
        /// Which phase of the pipeline.
        phase: SolvePhase,
        /// Host wall-clock nanoseconds spent.
        wall_ns: u64,
    },
    /// A drift-detector decision at an epoch boundary.
    DriftDecision {
        /// What the detector decided.
        outcome: DriftOutcome,
        /// The normalised structural drift it measured.
        delta: f64,
    },
    /// A lock grant whose wait exceeded the configured threshold.
    LockWait {
        /// The location id waited on.
        location: u64,
        /// Nanoseconds spent blocked in the FIFO.
        wait_ns: u64,
    },
    /// Aggregated fabric traffic of one monitoring chunk.
    FabricTransfer {
        /// Locality class of the traffic.
        lane: FabricLane,
        /// Bytes moved in the chunk.
        bytes: f64,
    },
    /// A task thread re-bound to a new PU after a published re-placement.
    Rebind {
        /// The task that moved.
        task: usize,
        /// The PU it is now bound to.
        pu: usize,
    },
    /// An accepted migration (re-placement that was actually paid for).
    Migration {
        /// Tasks whose binding changed.
        tasks_moved: usize,
        /// State bytes billed for the move.
        bytes: f64,
        /// Whether any task changed machines (cluster backend only).
        cross_node: bool,
    },
    /// A remote-read request leaving for the owning process (emitted on
    /// the *reader's* track when the wire frame is sent).
    LockRequest {
        /// Requester-chosen wire sequence number; globally unique across
        /// processes (namespaced by node id), it matches the grant and
        /// release of the same remote section.
        rseq: u64,
        /// Global location id (the owning task's index).
        location: u64,
        /// The node that owns the location.
        owner: u32,
    },
    /// A remote-read grant leaving the owner (emitted on the *owner's*
    /// track when the grant frame is sent; cross-track happens-after the
    /// matching [`EventKind::LockRequest`]).
    LockGrant {
        /// The request's wire sequence number.
        rseq: u64,
        /// Global location id (the owning task's index).
        location: u64,
        /// Nanoseconds the serving handle waited in the location's FIFO
        /// before the section could be granted.
        wait_ns: u64,
    },
    /// A remote section released by the reader (emitted on the *reader's*
    /// track when the release frame is sent).
    LockRelease {
        /// The request's wire sequence number.
        rseq: u64,
        /// Global location id (the owning task's index).
        location: u64,
        /// Nanoseconds the reader held the section (grant receipt to
        /// release).
        held_ns: u64,
    },
    /// A node was confirmed dead mid-run (emitted on the coordinator's
    /// track when the kill-confirmation budget fires).  Opens the
    /// degradation window that the matching [`EventKind::Recovery`]
    /// closes.
    NodeLoss {
        /// The node that died.
        node: u32,
        /// Tasks orphaned by the loss.
        tasks_lost: usize,
    },
    /// Survivors resumed under a re-shard after a node loss (emitted on
    /// the coordinator's track when the resume barrier clears).
    Recovery {
        /// The node whose loss this recovery answers.
        node: u32,
        /// Orphaned tasks re-homed onto survivors.
        tasks_migrated: usize,
    },
}

impl EventKind {
    /// Stable artifact name of the event kind.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::Epoch { .. } => "epoch",
            EventKind::PlacementSolve { .. } => "placement_solve",
            EventKind::DriftDecision { .. } => "drift_decision",
            EventKind::LockWait { .. } => "lock_wait",
            EventKind::FabricTransfer { .. } => "fabric_transfer",
            EventKind::Rebind { .. } => "rebind",
            EventKind::Migration { .. } => "migration",
            EventKind::LockRequest { .. } => "lock_request",
            EventKind::LockGrant { .. } => "lock_grant",
            EventKind::LockRelease { .. } => "lock_release",
            EventKind::NodeLoss { .. } => "node_loss",
            EventKind::Recovery { .. } => "recovery",
        }
    }

    /// The fieldless class of this kind, for filtering and sampling.
    #[must_use]
    pub fn class(&self) -> EventClass {
        match self {
            EventKind::Epoch { .. } => EventClass::Epoch,
            EventKind::PlacementSolve { .. } => EventClass::PlacementSolve,
            EventKind::DriftDecision { .. } => EventClass::DriftDecision,
            EventKind::LockWait { .. } => EventClass::LockWait,
            EventKind::FabricTransfer { .. } => EventClass::FabricTransfer,
            EventKind::Rebind { .. } => EventClass::Rebind,
            EventKind::Migration { .. } => EventClass::Migration,
            EventKind::LockRequest { .. } => EventClass::LockRequest,
            EventKind::LockGrant { .. } => EventClass::LockGrant,
            EventKind::LockRelease { .. } => EventClass::LockRelease,
            EventKind::NodeLoss { .. } => EventClass::NodeLoss,
            EventKind::Recovery { .. } => EventClass::Recovery,
        }
    }
}

/// A fieldless mirror of the [`EventKind`] variants, used by
/// `ObsConfig::event_filter` and per-class sampling to select kinds
/// without constructing a payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventClass {
    /// [`EventKind::Epoch`].
    Epoch,
    /// [`EventKind::PlacementSolve`].
    PlacementSolve,
    /// [`EventKind::DriftDecision`].
    DriftDecision,
    /// [`EventKind::LockWait`].
    LockWait,
    /// [`EventKind::FabricTransfer`].
    FabricTransfer,
    /// [`EventKind::Rebind`].
    Rebind,
    /// [`EventKind::Migration`].
    Migration,
    /// [`EventKind::LockRequest`].
    LockRequest,
    /// [`EventKind::LockGrant`].
    LockGrant,
    /// [`EventKind::LockRelease`].
    LockRelease,
    /// [`EventKind::NodeLoss`].
    NodeLoss,
    /// [`EventKind::Recovery`].
    Recovery,
}

impl EventClass {
    /// Every event class, in declaration order.
    pub const ALL: [EventClass; 12] = [
        EventClass::Epoch,
        EventClass::PlacementSolve,
        EventClass::DriftDecision,
        EventClass::LockWait,
        EventClass::FabricTransfer,
        EventClass::Rebind,
        EventClass::Migration,
        EventClass::LockRequest,
        EventClass::LockGrant,
        EventClass::LockRelease,
        EventClass::NodeLoss,
        EventClass::Recovery,
    ];

    /// Stable artifact name (matches [`EventKind::name`]).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            EventClass::Epoch => "epoch",
            EventClass::PlacementSolve => "placement_solve",
            EventClass::DriftDecision => "drift_decision",
            EventClass::LockWait => "lock_wait",
            EventClass::FabricTransfer => "fabric_transfer",
            EventClass::Rebind => "rebind",
            EventClass::Migration => "migration",
            EventClass::LockRequest => "lock_request",
            EventClass::LockGrant => "lock_grant",
            EventClass::LockRelease => "lock_release",
            EventClass::NodeLoss => "node_loss",
            EventClass::Recovery => "recovery",
        }
    }

    /// Dense index of the class (position in [`EventClass::ALL`]).
    #[must_use]
    pub fn index(&self) -> usize {
        *self as usize
    }
}

/// One recorded event: a stamped [`EventKind`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObsEvent {
    /// Timestamp in microseconds on the recorder's clock.
    pub ts_us: f64,
    /// Span duration in microseconds (0 for instant events; placement
    /// solves report their wall duration here).
    pub dur_us: f64,
    /// Recorder-wide sequence number: drained timelines sort by
    /// `(ts_us, seq)`, so simultaneous simulated events keep their
    /// emission order.
    pub seq: u64,
    /// Logical thread id within the recorder (assigned in first-emission
    /// order).
    pub tid: u64,
    /// Which process timeline the event belongs to in a merged
    /// multi-process document: 0 is the coordinator (and the only track of
    /// single-process runs); worker node `k` is track `k + 1`.  Recorders
    /// always stamp 0 — tracks are assigned by `merge`.
    pub track: u32,
    /// The payload.
    pub kind: EventKind,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable() {
        assert_eq!(ClockKind::Wall.name(), "wall");
        assert_eq!(ClockKind::Simulated.name(), "simulated");
        assert_eq!(SolvePhase::Coarsen.name(), "coarsen");
        assert_eq!(DriftOutcome::SuppressedByPatience.name(), "suppressed_by_patience");
        assert_eq!(FabricLane::CrossRack.name(), "cross_rack");
        assert_eq!(EventKind::Epoch { epoch: 1, bytes: 0.0 }.name(), "epoch");
        assert_eq!(
            EventKind::Migration { tasks_moved: 2, bytes: 1.0, cross_node: false }.name(),
            "migration"
        );
        assert_eq!(EventKind::LockRequest { rseq: 1, location: 2, owner: 0 }.name(), "lock_request");
        assert_eq!(EventKind::LockGrant { rseq: 1, location: 2, wait_ns: 3 }.name(), "lock_grant");
        assert_eq!(EventKind::LockRelease { rseq: 1, location: 2, held_ns: 3 }.name(), "lock_release");
        assert_eq!(EventKind::NodeLoss { node: 1, tasks_lost: 9 }.name(), "node_loss");
        assert_eq!(EventKind::Recovery { node: 1, tasks_migrated: 9 }.name(), "recovery");
    }

    #[test]
    fn parse_inverts_name() {
        for clock in [ClockKind::Wall, ClockKind::Simulated] {
            assert_eq!(ClockKind::parse(clock.name()), Some(clock));
        }
        for phase in [SolvePhase::Group, SolvePhase::Coarsen, SolvePhase::Refine, SolvePhase::Total] {
            assert_eq!(SolvePhase::parse(phase.name()), Some(phase));
        }
        for outcome in [
            DriftOutcome::Fired,
            DriftOutcome::SuppressedByPatience,
            DriftOutcome::Cooldown,
            DriftOutcome::Quiet,
        ] {
            assert_eq!(DriftOutcome::parse(outcome.name()), Some(outcome));
        }
        for lane in [FabricLane::SameNode, FabricLane::SameRack, FabricLane::CrossRack] {
            assert_eq!(FabricLane::parse(lane.name()), Some(lane));
        }
        assert_eq!(ClockKind::parse("lunar"), None);
    }

    #[test]
    fn classes_mirror_kinds() {
        assert_eq!(EventKind::LockWait { location: 0, wait_ns: 1 }.class(), EventClass::LockWait);
        assert_eq!(EventKind::Epoch { epoch: 1, bytes: 0.0 }.class(), EventClass::Epoch);
        for (i, c) in EventClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
            assert_eq!(c.name(), kind_of(*c).name(), "class/kind name mismatch at {i}");
        }
    }

    fn kind_of(class: EventClass) -> EventKind {
        match class {
            EventClass::Epoch => EventKind::Epoch { epoch: 0, bytes: 0.0 },
            EventClass::PlacementSolve => EventKind::PlacementSolve { phase: SolvePhase::Total, wall_ns: 0 },
            EventClass::DriftDecision => {
                EventKind::DriftDecision { outcome: DriftOutcome::Quiet, delta: 0.0 }
            }
            EventClass::LockWait => EventKind::LockWait { location: 0, wait_ns: 0 },
            EventClass::FabricTransfer => {
                EventKind::FabricTransfer { lane: FabricLane::SameNode, bytes: 0.0 }
            }
            EventClass::Rebind => EventKind::Rebind { task: 0, pu: 0 },
            EventClass::Migration => EventKind::Migration { tasks_moved: 0, bytes: 0.0, cross_node: false },
            EventClass::LockRequest => EventKind::LockRequest { rseq: 0, location: 0, owner: 0 },
            EventClass::LockGrant => EventKind::LockGrant { rseq: 0, location: 0, wait_ns: 0 },
            EventClass::LockRelease => EventKind::LockRelease { rseq: 0, location: 0, held_ns: 0 },
            EventClass::NodeLoss => EventKind::NodeLoss { node: 0, tasks_lost: 0 },
            EventClass::Recovery => EventKind::Recovery { node: 0, tasks_migrated: 0 },
        }
    }
}
