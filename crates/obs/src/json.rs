//! Minimal hand-rolled JSON: a value tree, a deterministic writer and a
//! strict parser.
//!
//! The offline vendor set has no `serde`, but the experiment and
//! observability subsystems need machine-readable, *byte-reproducible*
//! artifacts.  This module is the whole JSON story of the workspace (it
//! lives in the dependency-free `orwl-obs` leaf crate so both `orwl-core`
//! and the exporters below it can share one implementation; `orwl-core`
//! re-exports it as `orwl_core::json`):
//!
//! * [`Json`] — a value tree whose objects are **ordered** (a `Vec` of
//!   pairs, not a hash map), so serialisation order is exactly insertion
//!   order and two identical runs emit identical bytes;
//! * the `Display` impl / [`Json::pretty`] — compact and indented writers.
//!   Numbers use Rust's shortest-roundtrip `f64` formatting (deterministic
//!   across runs and platforms); non-finite numbers serialise as `null`;
//! * [`Json::parse`] — a strict recursive-descent parser (UTF-8, no
//!   trailing garbage, `\uXXXX` escapes including surrogate pairs), used by
//!   the lab's schema validator and by tests to round-trip artifacts;
//! * [`ToJson`] — implemented by every report type of the workspace
//!   (session reports in `orwl-core`, [`RunTelemetry`](crate::RunTelemetry)
//!   here), so any backend's result can be logged as one JSON object.

use std::fmt;

/// A JSON value with insertion-ordered objects (deterministic output).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (non-finite values serialise as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object: insertion-ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object, ready for [`push`](Json::push).
    #[must_use]
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Appends a key/value pair to an object (panics on non-objects —
    /// builder misuse, not data errors).
    pub fn push(&mut self, key: &str, value: impl Into<Json>) -> &mut Self {
        match self {
            Json::Obj(pairs) => pairs.push((key.to_string(), value.into())),
            other => panic!("Json::push on a non-object: {other:?}"),
        }
        self
    }

    /// Object field lookup (first match); `None` on non-objects.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, when this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The string value, when this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, when this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// True when the value is `null`.
    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Renders with two-space indentation (trailing newline included), the
    /// format of the committed benchmark artifacts.
    #[must_use]
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    out.push_str(&"  ".repeat(depth + 1));
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(depth));
                out.push(']');
            }
            Json::Obj(pairs) if !pairs.is_empty() => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    out.push_str(&"  ".repeat(depth + 1));
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(depth));
                out.push('}');
            }
            compact => {
                use fmt::Write;
                let _ = write!(out, "{compact}");
            }
        }
    }

    /// Parses a complete JSON document (strict: rejects trailing garbage).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(JsonError { pos: p.pos, message: "trailing characters after the document" });
        }
        Ok(value)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Num(x)
    }
}

impl From<usize> for Json {
    fn from(x: usize) -> Json {
        Json::Num(x as f64)
    }
}

impl From<u64> for Json {
    fn from(x: u64) -> Json {
        Json::Num(x as f64)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<Vec<Json>> for Json {
    fn from(items: Vec<Json>) -> Json {
        Json::Arr(items)
    }
}

impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(opt: Option<T>) -> Json {
        opt.map_or(Json::Null, Into::into)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Json {
    /// Compact rendering: no whitespace, insertion-ordered object keys.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(x) if !x.is_finite() => f.write_str("null"),
            // An integral f64 prints without the trailing ".0" Rust would
            // add for Display-of-float — JSON readers expect `3`, not `3.0`,
            // for counts.
            Json::Num(x) if *x == x.trunc() && x.abs() < 9.0e15 => write!(f, "{}", *x as i64),
            Json::Num(x) => write!(f, "{x}"),
            Json::Str(s) => {
                let mut out = String::new();
                write_escaped(&mut out, s);
                f.write_str(&out)
            }
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    let mut key = String::new();
                    write_escaped(&mut key, k);
                    write!(f, "{key}:{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// A parse failure: byte offset plus a static description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure in the input.
    pub pos: usize,
    /// What went wrong.
    pub message: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn err(&self, message: &'static str) -> JsonError {
        JsonError { pos: self.pos, message }
    }

    fn eat(&mut self, b: u8, message: &'static str) -> Result<(), JsonError> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.bytes.get(self.pos) {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{', "expected '{'")?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':' after object key")?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.bytes.get(self.pos) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: a second \uXXXX must follow.
                                if self.bytes.get(self.pos) != Some(&b'\\')
                                    || self.bytes.get(self.pos + 1) != Some(&b'u')
                                {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 2;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code).ok_or_else(|| self.err("invalid code point"))?
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("invalid code point"))?
                            };
                            out.push(c);
                            continue; // hex4 already advanced past the digits
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => return Err(self.err("unescaped control character in string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut value = 0u32;
        for _ in 0..4 {
            let digit = match self.bytes.get(self.pos) {
                Some(&b @ b'0'..=b'9') => (b - b'0') as u32,
                Some(&b @ b'a'..=b'f') => (b - b'a' + 10) as u32,
                Some(&b @ b'A'..=b'F') => (b - b'A' + 10) as u32,
                _ => return Err(self.err("expected four hex digits")),
            };
            value = value * 16 + digit;
            self.pos += 1;
        }
        Ok(value)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let digits = |p: &mut Self| {
            let from = p.pos;
            while matches!(p.bytes.get(p.pos), Some(b'0'..=b'9')) {
                p.pos += 1;
            }
            p.pos > from
        };
        // RFC 8259 integer part: a single `0`, or a nonzero digit followed
        // by digits — leading zeros are invalid JSON.
        match self.bytes.get(self.pos) {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                digits(self);
            }
            _ => return Err(self.err("expected digits")),
        }
        if matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
            return Err(self.err("leading zeros are not allowed"));
        }
        if self.bytes.get(self.pos) == Some(&b'.') {
            self.pos += 1;
            if !digits(self) {
                return Err(self.err("expected digits after the decimal point"));
            }
        }
        if matches!(self.bytes.get(self.pos), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.bytes.get(self.pos), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !digits(self) {
                return Err(self.err("expected digits in the exponent"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number bytes");
        text.parse::<f64>().map(Json::Num).map_err(|_| self.err("number out of range"))
    }
}

/// Types that render themselves as a JSON value.
pub trait ToJson {
    /// The JSON representation.
    fn to_json(&self) -> Json;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_rendering_is_ordered_and_escaped() {
        let mut o = Json::obj();
        o.push("b", 1.5).push("a", "x\"y\n\u{1}").push("arr", Json::Arr(vec![Json::Null, Json::Bool(true)]));
        assert_eq!(o.to_string(), r#"{"b":1.5,"a":"x\"y\n\u0001","arr":[null,true]}"#);
    }

    #[test]
    fn integral_floats_print_without_fraction() {
        assert_eq!(Json::Num(3.0).to_string(), "3");
        assert_eq!(Json::Num(-2.0).to_string(), "-2");
        assert_eq!(Json::Num(0.25).to_string(), "0.25");
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
        // Very large magnitudes stay in float form rather than lying about
        // integer precision.
        assert_eq!(Json::Num(1.0e16).to_string(), "10000000000000000");
        let huge = Json::Num(1.23e300).to_string();
        assert!(huge.parse::<f64>().unwrap() == 1.23e300);
    }

    #[test]
    fn parse_round_trips_compact_output() {
        let mut o = Json::obj();
        o.push("name", "trace")
            .push("values", Json::Arr(vec![Json::Num(1.0), Json::Num(2.5), Json::Num(-3.0e-2)]))
            .push("nested", {
                let mut n = Json::obj();
                n.push("ok", true).push("none", Json::Null);
                n
            });
        let text = o.to_string();
        assert_eq!(Json::parse(&text).unwrap(), o);
        // Pretty output parses back to the same tree.
        assert_eq!(Json::parse(&o.pretty()).unwrap(), o);
    }

    #[test]
    fn parse_accepts_escapes_and_unicode() {
        let v = Json::parse(r#"{"s": "a\u00e9\n\t\"\\\u0041", "pair": "\ud83d\ude00"}"#).unwrap();
        assert_eq!(v.get("s").unwrap().as_str().unwrap(), "aé\n\t\"\\A");
        assert_eq!(v.get("pair").unwrap().as_str().unwrap(), "😀");
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "tru",
            "{\"a\" 1}",
            "{\"a\":1,}",
            "[1 2]",
            "\"unterminated",
            "1.2.3",
            "01x",
            "{}extra",
            "\"\\ud800\"",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted malformed input {bad:?}");
        }
        // Numbers must have digits where the grammar requires them.
        assert!(Json::parse("-").is_err());
        assert!(Json::parse("1.").is_err());
        assert!(Json::parse("1e").is_err());
        // RFC 8259: no leading zeros.
        assert!(Json::parse("01").is_err());
        assert!(Json::parse("[-012.5]").is_err());
        assert!(Json::parse("{\"seed\": 042}").is_err());
        // ...but a lone zero (and 0.x / 0e+x) is fine.
        assert_eq!(Json::parse("0").unwrap(), Json::Num(0.0));
        assert_eq!(Json::parse("-0.5").unwrap(), Json::Num(-0.5));
        assert_eq!(Json::parse("0e+2").unwrap(), Json::Num(0.0));
    }

    #[test]
    fn option_and_accessors_behave() {
        let v: Json = Some(2usize).into();
        assert_eq!(v, Json::Num(2.0));
        let n: Json = Option::<bool>::None.into();
        assert!(n.is_null());
        let mut o = Json::obj();
        o.push("k", 7u64);
        assert_eq!(o.get("k").unwrap().as_f64().unwrap(), 7.0);
        assert!(o.get("missing").is_none());
        assert!(Json::Num(1.0).get("k").is_none());
        assert_eq!(Json::Arr(vec![Json::Null]).as_arr().unwrap().len(), 1);
    }
}
