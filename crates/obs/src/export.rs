//! Exporters: the versioned `orwl-obs/v1` artifact and a Chrome
//! trace-event timeline (loadable in Perfetto / `chrome://tracing`), plus
//! the schema validators the lab's smoke jobs run against both.

use crate::event::{EventKind, ObsEvent};
use crate::json::{Json, ToJson};
use crate::metrics::MetricsSnapshot;
use crate::RunTelemetry;

/// Schema tag of the telemetry artifact.
pub const OBS_SCHEMA: &str = "orwl-obs/v1";

fn event_to_json(ev: &ObsEvent) -> Json {
    let mut j = Json::obj();
    j.push("ts_us", ev.ts_us)
        .push("dur_us", ev.dur_us)
        .push("seq", ev.seq)
        .push("tid", ev.tid)
        .push("kind", ev.kind.name());
    match ev.kind {
        EventKind::Epoch { epoch, bytes } => {
            j.push("epoch", epoch).push("bytes", bytes);
        }
        EventKind::PlacementSolve { phase, wall_ns } => {
            j.push("phase", phase.name()).push("wall_ns", wall_ns);
        }
        EventKind::DriftDecision { outcome, delta } => {
            j.push("outcome", outcome.name()).push("delta", delta);
        }
        EventKind::LockWait { location, wait_ns } => {
            j.push("location", location).push("wait_ns", wait_ns);
        }
        EventKind::FabricTransfer { lane, bytes } => {
            j.push("lane", lane.name()).push("bytes", bytes);
        }
        EventKind::Rebind { task, pu } => {
            j.push("task", task).push("pu", pu);
        }
        EventKind::Migration { tasks_moved, bytes, cross_node } => {
            j.push("tasks_moved", tasks_moved).push("bytes", bytes).push("cross_node", cross_node);
        }
    }
    j
}

fn metrics_to_json(m: &MetricsSnapshot) -> Json {
    let mut counters = Json::obj();
    for (name, value) in &m.counters {
        counters.push(name, *value);
    }
    let mut gauges = Json::obj();
    for (name, value) in &m.gauges {
        gauges.push(name, *value);
    }
    let mut histograms = Json::obj();
    for (name, h) in &m.histograms {
        let mut hj = Json::obj();
        hj.push("count", h.count).push("sum", h.sum).push(
            "buckets",
            Json::Arr(
                h.buckets
                    .iter()
                    .map(|&(log2, n)| Json::Arr(vec![Json::from(log2 as usize), Json::from(n)]))
                    .collect(),
            ),
        );
        histograms.push(name, hj);
    }
    let mut j = Json::obj();
    j.push("counters", counters).push("gauges", gauges).push("histograms", histograms);
    j
}

impl ToJson for RunTelemetry {
    /// The `orwl-obs/v1` artifact: run identity, the full event timeline,
    /// and the final metric values.
    fn to_json(&self) -> Json {
        let mut j = Json::obj();
        j.push("schema", OBS_SCHEMA)
            .push("backend", self.backend.as_str())
            .push("clock", self.clock.name())
            .push("dropped", self.dropped)
            .push("events", Json::Arr(self.events.iter().map(event_to_json).collect()))
            .push("metrics", metrics_to_json(&self.metrics));
        j
    }
}

impl RunTelemetry {
    /// The timeline as a Chrome trace-event document (the JSON object
    /// format with a `traceEvents` array), loadable in Perfetto or
    /// `chrome://tracing`.
    ///
    /// Placement solves become complete (`"X"`) spans with real durations;
    /// everything else is a thread-scoped instant (`"i"`).  Timestamps are
    /// microseconds on the run's clock, so simulated runs render simulated
    /// time.
    #[must_use]
    pub fn chrome_trace(&self) -> Json {
        let events: Vec<Json> = self
            .events
            .iter()
            .map(|ev| {
                let label = match ev.kind {
                    EventKind::Epoch { epoch, .. } => format!("epoch {epoch}"),
                    EventKind::PlacementSolve { phase, .. } => {
                        format!("solve:{}", phase.name())
                    }
                    EventKind::DriftDecision { outcome, .. } => {
                        format!("drift:{}", outcome.name())
                    }
                    EventKind::LockWait { location, .. } => format!("lock-wait L{location}"),
                    EventKind::FabricTransfer { lane, .. } => {
                        format!("fabric:{}", lane.name())
                    }
                    EventKind::Rebind { task, .. } => format!("rebind T{task}"),
                    EventKind::Migration { .. } => "migration".to_string(),
                };
                let complete = matches!(ev.kind, EventKind::PlacementSolve { .. });
                let mut j = Json::obj();
                j.push("name", label.as_str())
                    .push("cat", ev.kind.name())
                    .push("ph", if complete { "X" } else { "i" })
                    .push("ts", ev.ts_us)
                    .push("pid", 1usize)
                    .push("tid", ev.tid);
                if complete {
                    j.push("dur", ev.dur_us);
                } else {
                    j.push("s", "t");
                }
                j.push("args", event_to_json(ev));
                j
            })
            .collect();
        let mut doc = Json::obj();
        doc.push("traceEvents", Json::Arr(events)).push("displayTimeUnit", "ms").push("otherData", {
            let mut meta = Json::obj();
            meta.push("backend", self.backend.as_str()).push("clock", self.clock.name());
            meta
        });
        doc
    }
}

fn require_num(obj: &Json, key: &str, at: &str) -> Result<(), String> {
    match obj.get(key) {
        Some(v) if v.as_f64().is_some() => Ok(()),
        Some(_) => Err(format!("{at}: field {key:?} is not a number")),
        None => Err(format!("{at}: missing field {key:?}")),
    }
}

fn require_str(obj: &Json, key: &str, at: &str) -> Result<(), String> {
    match obj.get(key) {
        Some(v) if v.as_str().is_some() => Ok(()),
        Some(_) => Err(format!("{at}: field {key:?} is not a string")),
        None => Err(format!("{at}: missing field {key:?}")),
    }
}

/// Validates an `orwl-obs/v1` document: schema tag, clock name, the
/// per-kind required fields of every event, and the metrics shape.
pub fn validate_obs(doc: &Json) -> Result<(), String> {
    match doc.get("schema").and_then(Json::as_str) {
        Some(OBS_SCHEMA) => {}
        Some(other) => return Err(format!("unexpected schema {other:?}")),
        None => return Err("missing schema tag".to_string()),
    }
    require_str(doc, "backend", "document")?;
    match doc.get("clock").and_then(Json::as_str) {
        Some("wall" | "simulated") => {}
        Some(other) => return Err(format!("unknown clock {other:?}")),
        None => return Err("missing clock".to_string()),
    }
    require_num(doc, "dropped", "document")?;
    let events =
        doc.get("events").and_then(Json::as_arr).ok_or_else(|| "missing events array".to_string())?;
    for (i, ev) in events.iter().enumerate() {
        let at = format!("events[{i}]");
        for key in ["ts_us", "dur_us", "seq", "tid"] {
            require_num(ev, key, &at)?;
        }
        let kind = ev.get("kind").and_then(Json::as_str).ok_or_else(|| format!("{at}: missing kind"))?;
        let required: &[&str] = match kind {
            "epoch" => &["epoch", "bytes"],
            "placement_solve" => &["phase", "wall_ns"],
            "drift_decision" => &["outcome", "delta"],
            "lock_wait" => &["location", "wait_ns"],
            "fabric_transfer" => &["lane", "bytes"],
            "rebind" => &["task", "pu"],
            "migration" => &["tasks_moved", "bytes", "cross_node"],
            other => return Err(format!("{at}: unknown kind {other:?}")),
        };
        for key in required {
            if ev.get(key).is_none() {
                return Err(format!("{at}: kind {kind:?} missing field {key:?}"));
            }
        }
    }
    let metrics = doc.get("metrics").ok_or_else(|| "missing metrics object".to_string())?;
    for table in ["counters", "gauges", "histograms"] {
        if !matches!(metrics.get(table), Some(Json::Obj(_))) {
            return Err(format!("metrics.{table} missing or not an object"));
        }
    }
    if let Some(Json::Obj(pairs)) = metrics.get("histograms") {
        for (name, h) in pairs {
            let at = format!("metrics.histograms.{name}");
            require_num(h, "count", &at)?;
            require_num(h, "sum", &at)?;
            if h.get("buckets").and_then(Json::as_arr).is_none() {
                return Err(format!("{at}: missing buckets array"));
            }
        }
    }
    Ok(())
}

/// Validates a Chrome trace-event document: a `traceEvents` array whose
/// entries carry `name`/`ph`/`ts`/`pid`/`tid`, with durations on complete
/// (`"X"`) events.
pub fn validate_chrome_trace(doc: &Json) -> Result<(), String> {
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or_else(|| "missing traceEvents array".to_string())?;
    for (i, ev) in events.iter().enumerate() {
        let at = format!("traceEvents[{i}]");
        require_str(ev, "name", &at)?;
        require_num(ev, "ts", &at)?;
        require_num(ev, "pid", &at)?;
        require_num(ev, "tid", &at)?;
        match ev.get("ph").and_then(Json::as_str) {
            Some("X") => require_num(ev, "dur", &at)?,
            Some("i") => {}
            Some(other) => return Err(format!("{at}: unknown phase {other:?}")),
            None => return Err(format!("{at}: missing ph")),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{ClockKind, DriftOutcome, FabricLane, SolvePhase};
    use crate::{ObsConfig, Recorder};

    fn sample_telemetry() -> RunTelemetry {
        let rec = Recorder::new(ClockKind::Simulated, ObsConfig::default());
        rec.set_sim_now(0.5);
        rec.record(EventKind::Epoch { epoch: 1, bytes: 4096.0 });
        rec.record(EventKind::PlacementSolve { phase: SolvePhase::Total, wall_ns: 1_500_000 });
        rec.record(EventKind::DriftDecision { outcome: DriftOutcome::Fired, delta: 0.4 });
        rec.record(EventKind::FabricTransfer { lane: FabricLane::CrossRack, bytes: 2048.0 });
        rec.record(EventKind::Migration { tasks_moved: 3, bytes: 96.0, cross_node: true });
        rec.record_lock_wait(11, 50_000);
        rec.record(EventKind::Rebind { task: 2, pu: 5 });
        rec.finish("sim-test")
    }

    #[test]
    fn obs_artifact_round_trips_and_validates() {
        let t = sample_telemetry();
        let doc = t.to_json();
        validate_obs(&doc).unwrap();
        let reparsed = Json::parse(&doc.pretty()).unwrap();
        assert_eq!(reparsed, doc);
        validate_obs(&reparsed).unwrap();
        assert_eq!(reparsed.get("schema").unwrap().as_str(), Some(OBS_SCHEMA));
        assert_eq!(reparsed.get("events").unwrap().as_arr().unwrap().len(), t.events.len());
        let counters = reparsed.get("metrics").unwrap().get("counters").unwrap();
        assert_eq!(counters.get("epochs").unwrap().as_f64(), Some(1.0));
        assert_eq!(counters.get("migrations").unwrap().as_f64(), Some(1.0));
    }

    #[test]
    fn chrome_trace_validates_and_spans_solves() {
        let t = sample_telemetry();
        let doc = t.chrome_trace();
        validate_chrome_trace(&doc).unwrap();
        let reparsed = Json::parse(&doc.to_string()).unwrap();
        validate_chrome_trace(&reparsed).unwrap();
        let events = reparsed.get("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(events.len(), t.events.len());
        let solve =
            events.iter().find(|e| e.get("cat").unwrap().as_str() == Some("placement_solve")).unwrap();
        assert_eq!(solve.get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(solve.get("dur").unwrap().as_f64(), Some(1500.0));
        let instant =
            events.iter().find(|e| e.get("cat").unwrap().as_str() == Some("drift_decision")).unwrap();
        assert_eq!(instant.get("ph").unwrap().as_str(), Some("i"));
        assert_eq!(instant.get("s").unwrap().as_str(), Some("t"));
    }

    #[test]
    fn validators_reject_malformed_documents() {
        let mut doc = Json::obj();
        doc.push("schema", "orwl-obs/v0");
        assert!(validate_obs(&doc).unwrap_err().contains("unexpected schema"));

        let t = sample_telemetry();
        let mut good = t.to_json();
        if let Json::Obj(pairs) = &mut good {
            pairs.retain(|(k, _)| k != "metrics");
        }
        assert!(validate_obs(&good).unwrap_err().contains("metrics"));

        let mut trace = Json::obj();
        trace.push("traceEvents", Json::Arr(vec![Json::obj()]));
        assert!(validate_chrome_trace(&trace).is_err());
    }
}
