//! Exporters: the versioned `orwl-obs/v1` artifact and a Chrome
//! trace-event timeline (loadable in Perfetto / `chrome://tracing`), plus
//! the schema validators the lab's smoke jobs run against both.

use crate::event::{ClockKind, DriftOutcome, EventKind, FabricLane, ObsEvent, SolvePhase};
use crate::json::{Json, ToJson};
use crate::metrics::{HistogramSnapshot, MetricsSnapshot};
use crate::{RunTelemetry, TrackInfo};
use std::collections::BTreeMap;

/// Schema tag of the telemetry artifact.
pub const OBS_SCHEMA: &str = "orwl-obs/v1";

fn event_to_json(ev: &ObsEvent) -> Json {
    let mut j = Json::obj();
    j.push("ts_us", ev.ts_us)
        .push("dur_us", ev.dur_us)
        .push("seq", ev.seq)
        .push("tid", ev.tid)
        .push("track", u64::from(ev.track))
        .push("kind", ev.kind.name());
    match ev.kind {
        EventKind::Epoch { epoch, bytes } => {
            j.push("epoch", epoch).push("bytes", bytes);
        }
        EventKind::PlacementSolve { phase, wall_ns } => {
            j.push("phase", phase.name()).push("wall_ns", wall_ns);
        }
        EventKind::DriftDecision { outcome, delta } => {
            j.push("outcome", outcome.name()).push("delta", delta);
        }
        EventKind::LockWait { location, wait_ns } => {
            j.push("location", location).push("wait_ns", wait_ns);
        }
        EventKind::FabricTransfer { lane, bytes } => {
            j.push("lane", lane.name()).push("bytes", bytes);
        }
        EventKind::Rebind { task, pu } => {
            j.push("task", task).push("pu", pu);
        }
        EventKind::Migration { tasks_moved, bytes, cross_node } => {
            j.push("tasks_moved", tasks_moved).push("bytes", bytes).push("cross_node", cross_node);
        }
        EventKind::LockRequest { rseq, location, owner } => {
            j.push("rseq", rseq).push("location", location).push("owner", u64::from(owner));
        }
        EventKind::LockGrant { rseq, location, wait_ns } => {
            j.push("rseq", rseq).push("location", location).push("wait_ns", wait_ns);
        }
        EventKind::LockRelease { rseq, location, held_ns } => {
            j.push("rseq", rseq).push("location", location).push("held_ns", held_ns);
        }
        EventKind::NodeLoss { node, tasks_lost } => {
            j.push("node", u64::from(node)).push("tasks_lost", tasks_lost);
        }
        EventKind::Recovery { node, tasks_migrated } => {
            j.push("node", u64::from(node)).push("tasks_migrated", tasks_migrated);
        }
    }
    j
}

fn metrics_to_json(m: &MetricsSnapshot) -> Json {
    let mut counters = Json::obj();
    for (name, value) in &m.counters {
        counters.push(name, *value);
    }
    let mut gauges = Json::obj();
    for (name, value) in &m.gauges {
        gauges.push(name, *value);
    }
    let mut histograms = Json::obj();
    for (name, h) in &m.histograms {
        let mut hj = Json::obj();
        hj.push("count", h.count).push("sum", h.sum).push(
            "buckets",
            Json::Arr(
                h.buckets
                    .iter()
                    .map(|&(log2, n)| Json::Arr(vec![Json::from(log2 as usize), Json::from(n)]))
                    .collect(),
            ),
        );
        histograms.push(name, hj);
    }
    let mut j = Json::obj();
    j.push("counters", counters).push("gauges", gauges).push("histograms", histograms);
    j
}

impl ToJson for RunTelemetry {
    /// The `orwl-obs/v1` artifact: run identity, the full event timeline,
    /// and the final metric values.
    fn to_json(&self) -> Json {
        let mut j = Json::obj();
        j.push("schema", OBS_SCHEMA)
            .push("backend", self.backend.as_str())
            .push("clock", self.clock.name())
            .push("dropped", self.dropped)
            .push(
                "tracks",
                Json::Arr(
                    self.tracks
                        .iter()
                        .map(|t| {
                            let mut tj = Json::obj();
                            tj.push("track", u64::from(t.track)).push("label", t.label.as_str());
                            tj
                        })
                        .collect(),
                ),
            )
            .push("events", Json::Arr(self.events.iter().map(event_to_json).collect()))
            .push("metrics", metrics_to_json(&self.metrics));
        j
    }
}

impl RunTelemetry {
    /// The timeline as a Chrome trace-event document (the JSON object
    /// format with a `traceEvents` array), loadable in Perfetto or
    /// `chrome://tracing`.
    ///
    /// Placement solves become complete (`"X"`) spans with real durations;
    /// everything else is a thread-scoped instant (`"i"`).  Timestamps are
    /// microseconds on the run's clock, so simulated runs render simulated
    /// time.  Merged multi-process documents render one Perfetto process
    /// per track (`pid = track + 1`), named by `"M"` process-name metadata
    /// events.
    ///
    /// Each track additionally gets Perfetto counter (`"C"`) tracks —
    /// `grants`, `lock_wait_ns` and a per-lane `fabric_bytes` — derived by
    /// bucketing the track's lock and fabric events into
    /// [`COUNTER_BUCKETS`] fixed-width intervals, so the time series render
    /// alongside the event timeline (see [`RunTelemetry::counter_events`]).
    #[must_use]
    pub fn chrome_trace(&self) -> Json {
        let mut events: Vec<Json> = self
            .tracks
            .iter()
            .map(|t| {
                let mut j = Json::obj();
                let mut args = Json::obj();
                args.push("name", t.label.as_str());
                j.push("name", "process_name")
                    .push("ph", "M")
                    .push("ts", 0.0)
                    .push("pid", u64::from(t.track) + 1)
                    .push("tid", 0u64)
                    .push("args", args);
                j
            })
            .collect();
        events.extend(self.events.iter().map(|ev| {
            let label = match ev.kind {
                EventKind::Epoch { epoch, .. } => format!("epoch {epoch}"),
                EventKind::PlacementSolve { phase, .. } => {
                    format!("solve:{}", phase.name())
                }
                EventKind::DriftDecision { outcome, .. } => {
                    format!("drift:{}", outcome.name())
                }
                EventKind::LockWait { location, .. } => format!("lock-wait L{location}"),
                EventKind::FabricTransfer { lane, .. } => {
                    format!("fabric:{}", lane.name())
                }
                EventKind::Rebind { task, .. } => format!("rebind T{task}"),
                EventKind::Migration { .. } => "migration".to_string(),
                EventKind::LockRequest { location, .. } => format!("lock-request L{location}"),
                EventKind::LockGrant { location, .. } => format!("lock-grant L{location}"),
                EventKind::LockRelease { location, .. } => format!("lock-release L{location}"),
                EventKind::NodeLoss { node, .. } => format!("node-loss N{node}"),
                EventKind::Recovery { node, .. } => format!("recovery N{node}"),
            };
            let complete = matches!(ev.kind, EventKind::PlacementSolve { .. });
            let mut j = Json::obj();
            j.push("name", label.as_str())
                .push("cat", ev.kind.name())
                .push("ph", if complete { "X" } else { "i" })
                .push("ts", ev.ts_us)
                .push("pid", u64::from(ev.track) + 1)
                .push("tid", ev.tid);
            if complete {
                j.push("dur", ev.dur_us);
            } else {
                j.push("s", "t");
            }
            j.push("args", event_to_json(ev));
            j
        }));
        events.extend(self.counter_events());
        let mut doc = Json::obj();
        doc.push("traceEvents", Json::Arr(events)).push("displayTimeUnit", "ms").push("otherData", {
            let mut meta = Json::obj();
            meta.push("backend", self.backend.as_str()).push("clock", self.clock.name());
            meta
        });
        doc
    }

    /// The counter (`"C"`) events of [`RunTelemetry::chrome_trace`]: per
    /// track, the timeline's span is cut into [`COUNTER_BUCKETS`] intervals
    /// and every interval emits one sample per series — `grants` (lock
    /// grants in the interval), `lock_wait_ns` (summed wait nanoseconds of
    /// lock-wait and grant events) and `fabric_bytes` (one stacked `args`
    /// series per lane).  Tracks with no lock or fabric activity emit no
    /// counter samples; active tracks emit every interval between their
    /// first and last contributing event, zeros included, so the rendered
    /// lines return to the axis between bursts.
    #[must_use]
    pub fn counter_events(&self) -> Vec<Json> {
        #[derive(Default, Clone, Copy)]
        struct Bucket {
            grants: u64,
            wait_ns: u64,
            fabric: [f64; 3],
        }
        let Some(first) = self.events.first().map(|e| e.ts_us) else {
            return Vec::new();
        };
        let last = self.events.last().map_or(first, |e| e.ts_us);
        let width = ((last - first) / COUNTER_BUCKETS as f64).max(1.0);
        let mut per_track: BTreeMap<u32, BTreeMap<u64, Bucket>> = BTreeMap::new();
        for ev in &self.events {
            let at = (((ev.ts_us - first) / width).floor().max(0.0) as u64).min(COUNTER_BUCKETS - 1);
            match ev.kind {
                EventKind::LockGrant { wait_ns, .. } => {
                    let b = per_track.entry(ev.track).or_default().entry(at).or_default();
                    b.grants += 1;
                    b.wait_ns += wait_ns;
                }
                EventKind::LockWait { wait_ns, .. } => {
                    per_track.entry(ev.track).or_default().entry(at).or_default().wait_ns += wait_ns;
                }
                EventKind::FabricTransfer { lane, bytes } => {
                    let slot = match lane {
                        FabricLane::SameNode => 0,
                        FabricLane::SameRack => 1,
                        FabricLane::CrossRack => 2,
                    };
                    per_track.entry(ev.track).or_default().entry(at).or_default().fabric[slot] += bytes;
                }
                _ => {}
            }
        }
        let mut out = Vec::new();
        for (track, buckets) in &per_track {
            let (lo, hi) = match (buckets.keys().next(), buckets.keys().next_back()) {
                (Some(&lo), Some(&hi)) => (lo, hi),
                _ => continue,
            };
            for at in lo..=hi {
                let b = buckets.get(&at).copied().unwrap_or_default();
                let ts = first + at as f64 * width;
                let counter = |name: &str, args: Json| {
                    let mut j = Json::obj();
                    j.push("name", name)
                        .push("ph", "C")
                        .push("ts", ts)
                        .push("pid", u64::from(*track) + 1)
                        .push("tid", 0u64)
                        .push("args", args);
                    j
                };
                let mut grants = Json::obj();
                grants.push("grants", b.grants);
                out.push(counter("grants", grants));
                let mut wait = Json::obj();
                wait.push("lock_wait_ns", b.wait_ns);
                out.push(counter("lock_wait_ns", wait));
                let mut fabric = Json::obj();
                fabric
                    .push("same_node", b.fabric[0])
                    .push("same_rack", b.fabric[1])
                    .push("cross_rack", b.fabric[2]);
                out.push(counter("fabric_bytes", fabric));
            }
        }
        out
    }
}

/// How many fixed-width intervals [`RunTelemetry::counter_events`] cuts a
/// timeline into (events exactly at the end of the span fold into the last
/// interval).
pub const COUNTER_BUCKETS: u64 = 50;

fn require_num(obj: &Json, key: &str, at: &str) -> Result<(), String> {
    match obj.get(key) {
        Some(v) if v.as_f64().is_some() => Ok(()),
        Some(_) => Err(format!("{at}: field {key:?} is not a number")),
        None => Err(format!("{at}: missing field {key:?}")),
    }
}

fn require_str(obj: &Json, key: &str, at: &str) -> Result<(), String> {
    match obj.get(key) {
        Some(v) if v.as_str().is_some() => Ok(()),
        Some(_) => Err(format!("{at}: field {key:?} is not a string")),
        None => Err(format!("{at}: missing field {key:?}")),
    }
}

/// Validates an `orwl-obs/v1` document: schema tag, clock name, the
/// per-kind required fields of every event, and the metrics shape.
pub fn validate_obs(doc: &Json) -> Result<(), String> {
    match doc.get("schema").and_then(Json::as_str) {
        Some(OBS_SCHEMA) => {}
        Some(other) => return Err(format!("unexpected schema {other:?}")),
        None => return Err("missing schema tag".to_string()),
    }
    require_str(doc, "backend", "document")?;
    match doc.get("clock").and_then(Json::as_str) {
        Some("wall" | "simulated") => {}
        Some(other) => return Err(format!("unknown clock {other:?}")),
        None => return Err("missing clock".to_string()),
    }
    require_num(doc, "dropped", "document")?;
    if let Some(tracks) = doc.get("tracks") {
        let tracks = tracks.as_arr().ok_or_else(|| "tracks is not an array".to_string())?;
        for (i, t) in tracks.iter().enumerate() {
            let at = format!("tracks[{i}]");
            require_num(t, "track", &at)?;
            require_str(t, "label", &at)?;
        }
    }
    let events =
        doc.get("events").and_then(Json::as_arr).ok_or_else(|| "missing events array".to_string())?;
    for (i, ev) in events.iter().enumerate() {
        let at = format!("events[{i}]");
        for key in ["ts_us", "dur_us", "seq", "tid"] {
            require_num(ev, key, &at)?;
        }
        if ev.get("track").is_some() {
            require_num(ev, "track", &at)?;
        }
        let kind = ev.get("kind").and_then(Json::as_str).ok_or_else(|| format!("{at}: missing kind"))?;
        let required: &[&str] = match kind {
            "epoch" => &["epoch", "bytes"],
            "placement_solve" => &["phase", "wall_ns"],
            "drift_decision" => &["outcome", "delta"],
            "lock_wait" => &["location", "wait_ns"],
            "fabric_transfer" => &["lane", "bytes"],
            "rebind" => &["task", "pu"],
            "migration" => &["tasks_moved", "bytes", "cross_node"],
            "lock_request" => &["rseq", "location", "owner"],
            "lock_grant" => &["rseq", "location", "wait_ns"],
            "lock_release" => &["rseq", "location", "held_ns"],
            "node_loss" => &["node", "tasks_lost"],
            "recovery" => &["node", "tasks_migrated"],
            other => return Err(format!("{at}: unknown kind {other:?}")),
        };
        for key in required {
            if ev.get(key).is_none() {
                return Err(format!("{at}: kind {kind:?} missing field {key:?}"));
            }
        }
    }
    let metrics = doc.get("metrics").ok_or_else(|| "missing metrics object".to_string())?;
    for table in ["counters", "gauges", "histograms"] {
        if !matches!(metrics.get(table), Some(Json::Obj(_))) {
            return Err(format!("metrics.{table} missing or not an object"));
        }
    }
    if let Some(Json::Obj(pairs)) = metrics.get("histograms") {
        for (name, h) in pairs {
            let at = format!("metrics.histograms.{name}");
            require_num(h, "count", &at)?;
            require_num(h, "sum", &at)?;
            if h.get("buckets").and_then(Json::as_arr).is_none() {
                return Err(format!("{at}: missing buckets array"));
            }
        }
    }
    Ok(())
}

/// Validates a Chrome trace-event document: a `traceEvents` array whose
/// entries carry `name`/`ph`/`ts`/`pid`/`tid`, with durations on complete
/// (`"X"`) events and `args` on metadata (`"M"`) and counter (`"C"`)
/// events.
pub fn validate_chrome_trace(doc: &Json) -> Result<(), String> {
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or_else(|| "missing traceEvents array".to_string())?;
    for (i, ev) in events.iter().enumerate() {
        let at = format!("traceEvents[{i}]");
        require_str(ev, "name", &at)?;
        require_num(ev, "ts", &at)?;
        require_num(ev, "pid", &at)?;
        require_num(ev, "tid", &at)?;
        match ev.get("ph").and_then(Json::as_str) {
            Some("X") => require_num(ev, "dur", &at)?,
            Some("i") => {}
            Some("M") => {
                if ev.get("args").is_none() {
                    return Err(format!("{at}: metadata event missing args"));
                }
            }
            Some("C") => match ev.get("args") {
                Some(Json::Obj(series)) => {
                    for (name, v) in series {
                        if v.as_f64().is_none() {
                            return Err(format!("{at}: counter series {name:?} is not a number"));
                        }
                    }
                }
                _ => return Err(format!("{at}: counter event missing args object")),
            },
            Some(other) => return Err(format!("{at}: unknown phase {other:?}")),
            None => return Err(format!("{at}: missing ph")),
        }
    }
    Ok(())
}

fn field_f64(obj: &Json, key: &str, at: &str) -> Result<f64, String> {
    obj.get(key).and_then(Json::as_f64).ok_or_else(|| format!("{at}: missing number {key:?}"))
}

fn field_u64(obj: &Json, key: &str, at: &str) -> Result<u64, String> {
    let v = field_f64(obj, key, at)?;
    if v < 0.0 || v.fract() != 0.0 {
        return Err(format!("{at}: field {key:?} is not a non-negative integer"));
    }
    Ok(v as u64)
}

fn field_str<'j>(obj: &'j Json, key: &str, at: &str) -> Result<&'j str, String> {
    obj.get(key).and_then(Json::as_str).ok_or_else(|| format!("{at}: missing string {key:?}"))
}

fn event_from_json(ev: &Json, at: &str) -> Result<ObsEvent, String> {
    let kind_name = field_str(ev, "kind", at)?;
    let kind = match kind_name {
        "epoch" => {
            EventKind::Epoch { epoch: field_u64(ev, "epoch", at)?, bytes: field_f64(ev, "bytes", at)? }
        }
        "placement_solve" => EventKind::PlacementSolve {
            phase: SolvePhase::parse(field_str(ev, "phase", at)?)
                .ok_or_else(|| format!("{at}: unknown phase"))?,
            wall_ns: field_u64(ev, "wall_ns", at)?,
        },
        "drift_decision" => EventKind::DriftDecision {
            outcome: DriftOutcome::parse(field_str(ev, "outcome", at)?)
                .ok_or_else(|| format!("{at}: unknown outcome"))?,
            delta: field_f64(ev, "delta", at)?,
        },
        "lock_wait" => EventKind::LockWait {
            location: field_u64(ev, "location", at)?,
            wait_ns: field_u64(ev, "wait_ns", at)?,
        },
        "fabric_transfer" => EventKind::FabricTransfer {
            lane: FabricLane::parse(field_str(ev, "lane", at)?)
                .ok_or_else(|| format!("{at}: unknown lane"))?,
            bytes: field_f64(ev, "bytes", at)?,
        },
        "rebind" => EventKind::Rebind {
            task: field_u64(ev, "task", at)? as usize,
            pu: field_u64(ev, "pu", at)? as usize,
        },
        "migration" => EventKind::Migration {
            tasks_moved: field_u64(ev, "tasks_moved", at)? as usize,
            bytes: field_f64(ev, "bytes", at)?,
            cross_node: matches!(ev.get("cross_node"), Some(Json::Bool(true))),
        },
        "lock_request" => EventKind::LockRequest {
            rseq: field_u64(ev, "rseq", at)?,
            location: field_u64(ev, "location", at)?,
            owner: field_u64(ev, "owner", at)? as u32,
        },
        "lock_grant" => EventKind::LockGrant {
            rseq: field_u64(ev, "rseq", at)?,
            location: field_u64(ev, "location", at)?,
            wait_ns: field_u64(ev, "wait_ns", at)?,
        },
        "lock_release" => EventKind::LockRelease {
            rseq: field_u64(ev, "rseq", at)?,
            location: field_u64(ev, "location", at)?,
            held_ns: field_u64(ev, "held_ns", at)?,
        },
        "node_loss" => EventKind::NodeLoss {
            node: field_u64(ev, "node", at)? as u32,
            tasks_lost: field_u64(ev, "tasks_lost", at)? as usize,
        },
        "recovery" => EventKind::Recovery {
            node: field_u64(ev, "node", at)? as u32,
            tasks_migrated: field_u64(ev, "tasks_migrated", at)? as usize,
        },
        other => return Err(format!("{at}: unknown kind {other:?}")),
    };
    Ok(ObsEvent {
        ts_us: field_f64(ev, "ts_us", at)?,
        dur_us: field_f64(ev, "dur_us", at)?,
        seq: field_u64(ev, "seq", at)?,
        tid: field_u64(ev, "tid", at)?,
        track: ev.get("track").and_then(Json::as_f64).map_or(0, |t| t as u32),
        kind,
    })
}

fn metrics_from_json(doc: &Json) -> Result<MetricsSnapshot, String> {
    let metrics = doc.get("metrics").ok_or_else(|| "missing metrics object".to_string())?;
    let mut snap = MetricsSnapshot::default();
    if let Some(Json::Obj(pairs)) = metrics.get("counters") {
        for (name, v) in pairs {
            let x = v.as_f64().ok_or_else(|| format!("counters.{name}: not a number"))?;
            if x < 0.0 || x.fract() != 0.0 {
                return Err(format!("counters.{name}: not a non-negative integer"));
            }
            snap.counters.push((name.clone(), x as u64));
        }
    }
    if let Some(Json::Obj(pairs)) = metrics.get("gauges") {
        for (name, v) in pairs {
            let x = v.as_f64().ok_or_else(|| format!("gauges.{name}: not a number"))?;
            snap.gauges.push((name.clone(), x));
        }
    }
    if let Some(Json::Obj(pairs)) = metrics.get("histograms") {
        for (name, h) in pairs {
            let at = format!("histograms.{name}");
            let mut buckets = Vec::new();
            for (i, b) in h.get("buckets").and_then(Json::as_arr).unwrap_or(&[]).iter().enumerate() {
                let pair = b.as_arr().ok_or_else(|| format!("{at}.buckets[{i}]: not a pair"))?;
                if pair.len() != 2 {
                    return Err(format!("{at}.buckets[{i}]: not a pair"));
                }
                let log2 = pair[0].as_f64().ok_or_else(|| format!("{at}.buckets[{i}]: bad bucket"))?;
                let n = pair[1].as_f64().ok_or_else(|| format!("{at}.buckets[{i}]: bad count"))?;
                buckets.push((log2 as u32, n as u64));
            }
            snap.histograms.push((
                name.clone(),
                HistogramSnapshot {
                    count: field_u64(h, "count", &at)?,
                    sum: field_u64(h, "sum", &at)?,
                    buckets,
                },
            ));
        }
    }
    Ok(snap)
}

impl RunTelemetry {
    /// Parses an `orwl-obs/v1` document back into telemetry (the inverse
    /// of [`ToJson::to_json`]); validates first so shape errors are
    /// precise.
    pub fn from_json(doc: &Json) -> Result<RunTelemetry, String> {
        validate_obs(doc)?;
        let backend = field_str(doc, "backend", "document")?.to_string();
        let clock = ClockKind::parse(field_str(doc, "clock", "document")?)
            .ok_or_else(|| "unknown clock".to_string())?;
        let dropped = field_u64(doc, "dropped", "document")?;
        let mut tracks = Vec::new();
        if let Some(arr) = doc.get("tracks").and_then(Json::as_arr) {
            for (i, t) in arr.iter().enumerate() {
                let at = format!("tracks[{i}]");
                tracks.push(TrackInfo {
                    track: field_u64(t, "track", &at)? as u32,
                    label: field_str(t, "label", &at)?.to_string(),
                });
            }
        }
        let mut events = Vec::new();
        for (i, ev) in doc.get("events").and_then(Json::as_arr).unwrap_or(&[]).iter().enumerate() {
            events.push(event_from_json(ev, &format!("events[{i}]"))?);
        }
        Ok(RunTelemetry { backend, clock, events, dropped, metrics: metrics_from_json(doc)?, tracks })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{ClockKind, DriftOutcome, FabricLane, SolvePhase};
    use crate::{ObsConfig, Recorder};

    fn sample_telemetry() -> RunTelemetry {
        let rec = Recorder::new(ClockKind::Simulated, ObsConfig::default());
        rec.set_sim_now(0.5);
        rec.record(EventKind::Epoch { epoch: 1, bytes: 4096.0 });
        rec.record(EventKind::PlacementSolve { phase: SolvePhase::Total, wall_ns: 1_500_000 });
        rec.record(EventKind::DriftDecision { outcome: DriftOutcome::Fired, delta: 0.4 });
        rec.record(EventKind::FabricTransfer { lane: FabricLane::CrossRack, bytes: 2048.0 });
        rec.record(EventKind::Migration { tasks_moved: 3, bytes: 96.0, cross_node: true });
        rec.record_lock_wait(11, 50_000);
        rec.record(EventKind::Rebind { task: 2, pu: 5 });
        rec.record(EventKind::LockRequest { rseq: (1 << 32) | 1, location: 4, owner: 0 });
        rec.record(EventKind::LockGrant { rseq: (1 << 32) | 1, location: 4, wait_ns: 2_000 });
        rec.record(EventKind::LockRelease { rseq: (1 << 32) | 1, location: 4, held_ns: 900 });
        rec.record(EventKind::NodeLoss { node: 1, tasks_lost: 9 });
        rec.record(EventKind::Recovery { node: 1, tasks_migrated: 9 });
        rec.finish("sim-test")
    }

    #[test]
    fn obs_artifact_round_trips_and_validates() {
        let t = sample_telemetry();
        let doc = t.to_json();
        validate_obs(&doc).unwrap();
        let reparsed = Json::parse(&doc.pretty()).unwrap();
        assert_eq!(reparsed, doc);
        validate_obs(&reparsed).unwrap();
        assert_eq!(reparsed.get("schema").unwrap().as_str(), Some(OBS_SCHEMA));
        assert_eq!(reparsed.get("events").unwrap().as_arr().unwrap().len(), t.events.len());
        let counters = reparsed.get("metrics").unwrap().get("counters").unwrap();
        assert_eq!(counters.get("epochs").unwrap().as_f64(), Some(1.0));
        assert_eq!(counters.get("migrations").unwrap().as_f64(), Some(1.0));
    }

    #[test]
    fn chrome_trace_validates_and_spans_solves() {
        let t = sample_telemetry();
        let doc = t.chrome_trace();
        validate_chrome_trace(&doc).unwrap();
        let reparsed = Json::parse(&doc.to_string()).unwrap();
        validate_chrome_trace(&reparsed).unwrap();
        let events = reparsed.get("traceEvents").unwrap().as_arr().unwrap();
        // Every recorded event renders, plus the derived counter samples.
        let rendered = events.iter().filter(|e| e.get("ph").unwrap().as_str() != Some("C")).count();
        assert_eq!(rendered, t.events.len());
        let solve =
            events.iter().find(|e| e.get("cat").unwrap().as_str() == Some("placement_solve")).unwrap();
        assert_eq!(solve.get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(solve.get("dur").unwrap().as_f64(), Some(1500.0));
        let instant =
            events.iter().find(|e| e.get("cat").unwrap().as_str() == Some("drift_decision")).unwrap();
        assert_eq!(instant.get("ph").unwrap().as_str(), Some("i"));
        assert_eq!(instant.get("s").unwrap().as_str(), Some("t"));
    }

    #[test]
    fn counter_events_pin_shape_and_validate() {
        let t = sample_telemetry();
        let counters = t.counter_events();
        assert!(!counters.is_empty(), "lock/fabric activity must derive counter samples");
        // All recorded events share one timestamp (simulated clock), so
        // everything folds into a single interval per series.
        assert_eq!(counters.len(), 3);
        let grants = &counters[0];
        assert_eq!(grants.get("name").unwrap().as_str(), Some("grants"));
        assert_eq!(grants.get("ph").unwrap().as_str(), Some("C"));
        assert_eq!(grants.get("pid").unwrap().as_f64(), Some(1.0));
        assert_eq!(grants.get("tid").unwrap().as_f64(), Some(0.0));
        assert_eq!(grants.get("ts").unwrap().as_f64(), Some(0.5e6));
        assert_eq!(grants.get("args").unwrap().get("grants").unwrap().as_f64(), Some(1.0));
        let wait = &counters[1];
        assert_eq!(wait.get("name").unwrap().as_str(), Some("lock_wait_ns"));
        // The lock_wait event (50 000 ns) plus the grant's fifo wait (2 000).
        assert_eq!(wait.get("args").unwrap().get("lock_wait_ns").unwrap().as_f64(), Some(52_000.0));
        let fabric = &counters[2];
        assert_eq!(fabric.get("name").unwrap().as_str(), Some("fabric_bytes"));
        let lanes = fabric.get("args").unwrap();
        assert_eq!(lanes.get("same_node").unwrap().as_f64(), Some(0.0));
        assert_eq!(lanes.get("same_rack").unwrap().as_f64(), Some(0.0));
        assert_eq!(lanes.get("cross_rack").unwrap().as_f64(), Some(2048.0));
        // The full trace (with counters embedded) passes the validator,
        // and a counter with a non-numeric series is rejected.
        validate_chrome_trace(&t.chrome_trace()).unwrap();
        let mut bad = Json::obj();
        let mut broken = counters[0].clone();
        if let Json::Obj(pairs) = &mut broken {
            for (k, v) in pairs.iter_mut() {
                if k == "args" {
                    let mut args = Json::obj();
                    args.push("grants", "not-a-number");
                    *v = args;
                }
            }
        }
        bad.push("traceEvents", Json::Arr(vec![broken]));
        let err = validate_chrome_trace(&bad).unwrap_err();
        assert!(err.contains("counter series"), "{err}");
        // Counters spread over the span: give the fabric event its own
        // interval and the series emits intermediate zeros.
        let mut spread = sample_telemetry();
        let span = 10.0e6;
        for ev in &mut spread.events {
            if matches!(ev.kind, EventKind::FabricTransfer { .. }) {
                ev.ts_us += span;
            }
        }
        spread.events.sort_by(|a, b| a.ts_us.partial_cmp(&b.ts_us).unwrap());
        let spread_counters = spread.counter_events();
        assert_eq!(spread_counters.len(), 3 * COUNTER_BUCKETS as usize);
        let zeros = spread_counters
            .iter()
            .filter(|c| {
                c.get("name").unwrap().as_str() == Some("grants")
                    && c.get("args").unwrap().get("grants").unwrap().as_f64() == Some(0.0)
            })
            .count();
        assert_eq!(zeros, COUNTER_BUCKETS as usize - 1);
        // An event-free run derives no counters.
        assert!(!RunTelemetry::from_json(&sample_telemetry().to_json()).unwrap().counter_events().is_empty());
        let empty = RunTelemetry {
            backend: "x".to_string(),
            clock: ClockKind::Wall,
            events: vec![],
            dropped: 0,
            metrics: MetricsSnapshot::default(),
            tracks: vec![],
        };
        assert!(empty.counter_events().is_empty());
        assert!(validate_chrome_trace(&empty.chrome_trace()).is_ok());
    }

    #[test]
    fn validators_reject_malformed_documents() {
        let mut doc = Json::obj();
        doc.push("schema", "orwl-obs/v0");
        assert!(validate_obs(&doc).unwrap_err().contains("unexpected schema"));

        let t = sample_telemetry();
        let mut good = t.to_json();
        if let Json::Obj(pairs) = &mut good {
            pairs.retain(|(k, _)| k != "metrics");
        }
        assert!(validate_obs(&good).unwrap_err().contains("metrics"));

        let mut trace = Json::obj();
        trace.push("traceEvents", Json::Arr(vec![Json::obj()]));
        assert!(validate_chrome_trace(&trace).is_err());
    }

    #[test]
    fn from_json_inverts_to_json() {
        let t = sample_telemetry();
        let doc = t.to_json();
        let back = RunTelemetry::from_json(&doc).unwrap();
        assert_eq!(back, t);
        // Through text too (the artifact path).
        let reparsed = Json::parse(&doc.pretty()).unwrap();
        assert_eq!(RunTelemetry::from_json(&reparsed).unwrap(), t);
        // A document without the optional track fields parses as track 0.
        let mut stripped = doc.clone();
        if let Json::Obj(pairs) = &mut stripped {
            pairs.retain(|(k, _)| k != "tracks");
        }
        if let Some(Json::Arr(events)) = stripped.get("events").cloned() {
            let rewritten: Vec<Json> = events
                .into_iter()
                .map(|mut ev| {
                    if let Json::Obj(pairs) = &mut ev {
                        pairs.retain(|(k, _)| k != "track");
                    }
                    ev
                })
                .collect();
            if let Json::Obj(pairs) = &mut stripped {
                for (k, v) in pairs.iter_mut() {
                    if k == "events" {
                        *v = Json::Arr(rewritten.clone());
                    }
                }
            }
        }
        let legacy = RunTelemetry::from_json(&stripped).unwrap();
        assert!(legacy.tracks.is_empty());
        assert!(legacy.events.iter().all(|e| e.track == 0));
    }

    #[test]
    fn merged_trace_gets_one_pid_per_track_and_metadata() {
        let mut t = sample_telemetry();
        t.tracks = vec![
            crate::TrackInfo { track: 0, label: "coordinator".to_string() },
            crate::TrackInfo { track: 1, label: "node0".to_string() },
        ];
        t.events[0].track = 1;
        let doc = t.chrome_trace();
        validate_chrome_trace(&doc).unwrap();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        // Two metadata events lead, naming pids 1 and 2.
        assert_eq!(events[0].get("ph").unwrap().as_str(), Some("M"));
        assert_eq!(events[0].get("pid").unwrap().as_f64(), Some(1.0));
        assert_eq!(events[0].get("args").unwrap().get("name").unwrap().as_str(), Some("coordinator"));
        assert_eq!(events[1].get("pid").unwrap().as_f64(), Some(2.0));
        // The re-tracked event renders on pid 2, the rest on pid 1.
        assert_eq!(events[2].get("pid").unwrap().as_f64(), Some(2.0));
        assert_eq!(events[3].get("pid").unwrap().as_f64(), Some(1.0));
    }
}
