//! The ordered read-write lock FIFO — the heart of the ORWL model.
//!
//! Every location owns one [`LockFifo`].  Threads *post* requests (read or
//! write) into the FIFO ahead of time; the FIFO then grants accesses in
//! strict insertion order:
//!
//! * a **write** request is granted once every earlier request has been
//!   released (exclusive access);
//! * a **read** request is granted once every earlier request is either
//!   released or is itself a read — consecutive readers share the resource.
//!
//! Because the order is fixed at insertion time, iterative computations that
//! re-post their requests on release obtain a periodic, deadlock-free
//! schedule (Clauss & Gustedt, JPDC 2010).

use crate::request::{AccessMode, RequestState, RequestToken};
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::time::Duration;

#[derive(Debug)]
struct Entry {
    seq: u64,
    mode: AccessMode,
    state: RequestState,
    /// Debug builds remember which thread posted the request, so the cycle
    /// detector can build the wait-for graph (see the `deadlock` module).
    #[cfg(debug_assertions)]
    owner: std::thread::ThreadId,
}

impl Entry {
    fn new(seq: u64, mode: AccessMode) -> Self {
        Entry {
            seq,
            mode,
            state: RequestState::Requested,
            #[cfg(debug_assertions)]
            owner: std::thread::current().id(),
        }
    }
}

/// Debug-mode circular-wait detection.
///
/// A schedule deadlock in ORWL is a cycle across *several* FIFOs: thread A
/// parks behind an entry B posted, while B parks (in another location's
/// FIFO) behind an entry A posted.  The classic way to create one is the
/// lazily-posted iterative-handle pattern — posting requests mid-run
/// instead of during a fenced initialisation phase, so a reader lands one
/// write behind its partner on every edge of a partner cycle.
///
/// In debug builds every blocking [`LockFifo::acquire`] registers the
/// waiting thread and the owners of the entries blocking it in a global
/// wait-for graph before parking; if that registration closes a cycle, the
/// acquiring thread panics with the cycle instead of deadlocking.  An
/// entry queued by a parked thread can only be released by that thread, so
/// a cycle in this graph is a genuine deadlock, never a false positive.
/// Release builds compile all of this out.
#[cfg(debug_assertions)]
mod deadlock {
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock};
    use std::thread::ThreadId;

    struct Waiter {
        name: String,
        blockers: Vec<ThreadId>,
    }

    fn graph() -> &'static Mutex<HashMap<ThreadId, Waiter>> {
        static GRAPH: OnceLock<Mutex<HashMap<ThreadId, Waiter>>> = OnceLock::new();
        GRAPH.get_or_init(|| Mutex::new(HashMap::new()))
    }

    /// Registers the current thread as blocked on `blockers` and panics
    /// with the cycle when this closes one.
    pub(super) fn register_waiting(blockers: Vec<ThreadId>) {
        let me = std::thread::current().id();
        let mut g = graph().lock().unwrap_or_else(|e| e.into_inner());
        g.insert(me, Waiter { name: thread_label(), blockers });
        let mut path = Vec::new();
        if dfs(&g, me, me, &mut path) {
            let names: Vec<String> = path
                .iter()
                .map(|id| g.get(id).map_or_else(|| format!("{id:?}"), |w| w.name.clone()))
                .collect();
            g.remove(&me);
            drop(g);
            panic!(
                "ORWL deadlock detected: circular wait among parked handles [{}] — \
                 post iterative requests in a fenced initialisation phase instead of lazily mid-run",
                names.join(" -> ")
            );
        }
    }

    /// Depth-first search along blocker edges; on success `path` holds the
    /// cycle starting at `start`.
    fn dfs(
        g: &HashMap<ThreadId, Waiter>,
        start: ThreadId,
        current: ThreadId,
        path: &mut Vec<ThreadId>,
    ) -> bool {
        let Some(waiter) = g.get(&current) else { return false };
        path.push(current);
        for &next in &waiter.blockers {
            if next == start {
                return true;
            }
            if !path.contains(&next) && dfs(g, start, next, path) {
                return true;
            }
        }
        path.pop();
        false
    }

    /// Removes the current thread from the wait-for graph (on grant or on
    /// leaving `acquire` for any reason).
    pub(super) fn unregister_waiting() {
        unregister_thread(std::thread::current().id());
    }

    /// Removes a specific thread's registration — called by a releasing
    /// thread for every thread parked on the released FIFO, whose wait-for
    /// evidence just went stale.
    pub(super) fn unregister_thread(id: ThreadId) {
        graph().lock().unwrap_or_else(|e| e.into_inner()).remove(&id);
    }

    fn thread_label() -> String {
        let t = std::thread::current();
        t.name().map_or_else(|| format!("{:?}", t.id()), str::to_string)
    }
}

#[derive(Debug, Default)]
struct FifoInner {
    queue: VecDeque<Entry>,
    next_seq: u64,
    /// Total requests ever inserted (statistics).
    inserted: u64,
    /// Total requests released (statistics).
    released: u64,
    /// Threads currently parked in [`LockFifo::acquire`] (debug builds):
    /// a release invalidates their wait-for registrations, because what
    /// they are blocked on just changed (they re-register on wake if still
    /// blocked).  Without this, a notified-but-not-yet-scheduled thread's
    /// stale registration could close a cycle that no longer exists.
    #[cfg(debug_assertions)]
    parked: Vec<std::thread::ThreadId>,
}

impl FifoInner {
    fn position(&self, seq: u64) -> Option<usize> {
        self.queue.iter().position(|e| e.seq == seq)
    }

    /// A request is grantable when every entry ahead of it is released, or —
    /// for read requests — when everything ahead is released or is a read.
    fn grantable(&self, idx: usize) -> bool {
        let mode = self.queue[idx].mode;
        self.queue.iter().take(idx).all(|e| match mode {
            AccessMode::Write => e.state == RequestState::Released,
            AccessMode::Read => e.state == RequestState::Released || e.mode == AccessMode::Read,
        })
    }

    fn pop_released_prefix(&mut self) {
        while self.queue.front().map(|e| e.state) == Some(RequestState::Released) {
            self.queue.pop_front();
        }
    }
}

/// A FIFO of ordered read-write lock requests (one per location).
#[derive(Debug, Default)]
pub struct LockFifo {
    inner: Mutex<FifoInner>,
    cond: Condvar,
}

impl LockFifo {
    /// Creates an empty FIFO.
    pub fn new() -> Self {
        Self::default()
    }

    /// Posts a new request at the tail of the FIFO and returns its token.
    /// The request starts in the [`RequestState::Requested`] state.
    pub fn insert(&self, mode: AccessMode) -> RequestToken {
        let mut inner = self.inner.lock();
        let seq = inner.next_seq;
        inner.next_seq += 1;
        inner.inserted += 1;
        inner.queue.push_back(Entry::new(seq, mode));
        RequestToken::new(seq, mode)
    }

    /// Non-blocking acquisition attempt: returns `true` (and marks the
    /// request allocated) when the request is grantable now.
    /// Idempotent for already-allocated requests.
    pub fn try_acquire(&self, token: &RequestToken) -> bool {
        let mut inner = self.inner.lock();
        let Some(idx) = inner.position(token.seq()) else { return false };
        match inner.queue[idx].state {
            RequestState::Allocated => true,
            RequestState::Released => false,
            RequestState::Requested => {
                if inner.grantable(idx) {
                    inner.queue[idx].state = RequestState::Allocated;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Blocks the calling thread until the request is granted.
    ///
    /// In debug builds, a blocking acquire that would close a circular wait
    /// among parked handles panics with the cycle instead of deadlocking
    /// (see the `deadlock` module).
    pub fn acquire(&self, token: &RequestToken) {
        let mut inner = self.inner.lock();
        #[cfg(debug_assertions)]
        let mut registered = false;
        #[cfg(debug_assertions)]
        macro_rules! leave {
            ($inner:expr) => {
                if registered {
                    let me = std::thread::current().id();
                    $inner.parked.retain(|&t| t != me);
                    deadlock::unregister_waiting();
                }
            };
        }
        #[cfg(not(debug_assertions))]
        macro_rules! leave {
            ($inner:expr) => {};
        }
        loop {
            let Some(idx) = inner.position(token.seq()) else {
                // Unknown/expired token: treat as granted so callers do not
                // deadlock on a programming error; release will be a no-op.
                leave!(inner);
                return;
            };
            if inner.queue[idx].state == RequestState::Allocated {
                leave!(inner);
                return;
            }
            if inner.queue[idx].state == RequestState::Requested && inner.grantable(idx) {
                inner.queue[idx].state = RequestState::Allocated;
                leave!(inner);
                return;
            }
            // About to park: publish who we are waiting on, and panic with
            // the cycle if that closes a circular wait (debug builds only).
            #[cfg(debug_assertions)]
            {
                let mode = inner.queue[idx].mode;
                let blockers: Vec<_> = inner
                    .queue
                    .iter()
                    .take(idx)
                    .filter(|e| match mode {
                        AccessMode::Write => e.state != RequestState::Released,
                        AccessMode::Read => e.state != RequestState::Released && e.mode != AccessMode::Read,
                    })
                    .map(|e| e.owner)
                    .collect();
                if !registered {
                    inner.parked.push(std::thread::current().id());
                    registered = true;
                }
                deadlock::register_waiting(blockers);
            }
            self.cond.wait(&mut inner);
        }
    }

    /// Blocks until the request is granted or the timeout expires; returns
    /// `true` when the request was granted.
    pub fn acquire_timeout(&self, token: &RequestToken, timeout: Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        let mut inner = self.inner.lock();
        loop {
            let Some(idx) = inner.position(token.seq()) else { return false };
            if inner.queue[idx].state == RequestState::Allocated {
                return true;
            }
            if inner.queue[idx].state == RequestState::Requested && inner.grantable(idx) {
                inner.queue[idx].state = RequestState::Allocated;
                return true;
            }
            if self.cond.wait_until(&mut inner, deadline).timed_out() {
                return false;
            }
        }
    }

    /// Releases a request (whether it was acquired or still pending), wakes
    /// every waiter, and garbage-collects the released prefix of the queue.
    pub fn release(&self, token: &RequestToken) {
        let mut inner = self.inner.lock();
        if let Some(idx) = inner.position(token.seq()) {
            inner.queue[idx].state = RequestState::Released;
            inner.released += 1;
            inner.pop_released_prefix();
            // What this FIFO's parked threads are blocked on just changed:
            // their wait-for registrations are stale until they wake and
            // re-evaluate (debug-mode cycle detector).
            #[cfg(debug_assertions)]
            for &t in &inner.parked {
                deadlock::unregister_thread(t);
            }
        }
        drop(inner);
        self.cond.notify_all();
    }

    /// Atomically releases `token` and posts a fresh request of the same
    /// mode at the tail of the FIFO, returning the new token.
    ///
    /// Iterative (ORWL `handle2`) accesses must use this instead of a
    /// separate `release` + `insert`: if the two steps were distinct, another
    /// handle could slip its own re-posted request in between and invert the
    /// periodic schedule (e.g. a reader overtaking the writer it alternates
    /// with), breaking the deterministic ordering the model guarantees.
    pub fn release_and_reinsert(&self, token: &RequestToken) -> RequestToken {
        let mut inner = self.inner.lock();
        if let Some(idx) = inner.position(token.seq()) {
            inner.queue[idx].state = RequestState::Released;
            inner.released += 1;
            inner.pop_released_prefix();
            // See `release`: invalidate stale wait-for registrations.
            #[cfg(debug_assertions)]
            for &t in &inner.parked {
                deadlock::unregister_thread(t);
            }
        }
        let seq = inner.next_seq;
        inner.next_seq += 1;
        inner.inserted += 1;
        inner.queue.push_back(Entry::new(seq, token.mode()));
        drop(inner);
        self.cond.notify_all();
        RequestToken::new(seq, token.mode())
    }

    /// Current state of a request, `None` when the token has already left
    /// the queue.
    pub fn state_of(&self, token: &RequestToken) -> Option<RequestState> {
        let inner = self.inner.lock();
        inner.position(token.seq()).map(|i| inner.queue[i].state)
    }

    /// Number of requests currently in the queue (any state).
    pub fn len(&self) -> usize {
        self.inner.lock().queue.len()
    }

    /// True when no request is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of requests ever inserted (statistics).
    pub fn total_inserted(&self) -> u64 {
        self.inner.lock().inserted
    }

    /// Total number of requests released (statistics).
    pub fn total_released(&self) -> u64 {
        self.inner.lock().released
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn single_writer_is_granted_immediately() {
        let fifo = LockFifo::new();
        let t = fifo.insert(AccessMode::Write);
        assert_eq!(fifo.state_of(&t), Some(RequestState::Requested));
        assert!(fifo.try_acquire(&t));
        assert_eq!(fifo.state_of(&t), Some(RequestState::Allocated));
        // try_acquire is idempotent once granted.
        assert!(fifo.try_acquire(&t));
        fifo.release(&t);
        assert!(fifo.is_empty());
        assert_eq!(fifo.total_inserted(), 1);
        assert_eq!(fifo.total_released(), 1);
    }

    #[test]
    fn writers_are_granted_in_fifo_order() {
        let fifo = LockFifo::new();
        let w1 = fifo.insert(AccessMode::Write);
        let w2 = fifo.insert(AccessMode::Write);
        assert!(fifo.try_acquire(&w1));
        assert!(!fifo.try_acquire(&w2), "second writer must wait for the first");
        fifo.release(&w1);
        assert!(fifo.try_acquire(&w2));
        fifo.release(&w2);
        assert_eq!(fifo.len(), 0);
    }

    #[test]
    fn consecutive_readers_share_access() {
        let fifo = LockFifo::new();
        let r1 = fifo.insert(AccessMode::Read);
        let r2 = fifo.insert(AccessMode::Read);
        let w = fifo.insert(AccessMode::Write);
        assert!(fifo.try_acquire(&r1));
        assert!(fifo.try_acquire(&r2), "adjacent readers are granted together");
        assert!(!fifo.try_acquire(&w), "writer waits for all readers");
        fifo.release(&r1);
        assert!(!fifo.try_acquire(&w));
        fifo.release(&r2);
        assert!(fifo.try_acquire(&w));
        fifo.release(&w);
    }

    #[test]
    fn reader_after_writer_waits() {
        let fifo = LockFifo::new();
        let w = fifo.insert(AccessMode::Write);
        let r = fifo.insert(AccessMode::Read);
        assert!(fifo.try_acquire(&w));
        assert!(!fifo.try_acquire(&r), "reader must wait for the earlier writer");
        fifo.release(&w);
        assert!(fifo.try_acquire(&r));
        fifo.release(&r);
    }

    #[test]
    fn later_reader_can_be_granted_before_earlier_reader_acquires() {
        // FIFO order fixes *priority*, but adjacent readers may be granted in
        // any order among themselves.
        let fifo = LockFifo::new();
        let _r1 = fifo.insert(AccessMode::Read);
        let r2 = fifo.insert(AccessMode::Read);
        assert!(fifo.try_acquire(&r2));
    }

    #[test]
    fn release_of_pending_request_cancels_it() {
        let fifo = LockFifo::new();
        let w1 = fifo.insert(AccessMode::Write);
        let w2 = fifo.insert(AccessMode::Write);
        // Cancel w1 before it was ever acquired: w2 becomes grantable.
        fifo.release(&w1);
        assert!(fifo.try_acquire(&w2));
        fifo.release(&w2);
        assert!(fifo.is_empty());
    }

    #[test]
    fn acquire_timeout_expires_when_blocked() {
        let fifo = LockFifo::new();
        let w1 = fifo.insert(AccessMode::Write);
        let w2 = fifo.insert(AccessMode::Write);
        assert!(fifo.try_acquire(&w1));
        assert!(!fifo.acquire_timeout(&w2, Duration::from_millis(20)));
        fifo.release(&w1);
        assert!(fifo.acquire_timeout(&w2, Duration::from_millis(20)));
        fifo.release(&w2);
    }

    #[test]
    fn blocking_acquire_wakes_up_across_threads() {
        let fifo = Arc::new(LockFifo::new());
        let w1 = fifo.insert(AccessMode::Write);
        let w2 = fifo.insert(AccessMode::Write);
        assert!(fifo.try_acquire(&w1));
        let f2 = Arc::clone(&fifo);
        let handle = std::thread::spawn(move || {
            f2.acquire(&w2); // blocks until w1 released
            f2.release(&w2);
            true
        });
        std::thread::sleep(Duration::from_millis(30));
        fifo.release(&w1);
        assert!(handle.join().unwrap());
        assert!(fifo.is_empty());
    }

    #[test]
    fn fifo_order_is_respected_under_contention() {
        // N threads each post a write request in a known order; the order in
        // which they enter the critical section must match.
        let fifo = Arc::new(LockFifo::new());
        let order = Arc::new(Mutex::new(Vec::new()));
        let tokens: Vec<RequestToken> = (0..8).map(|_| fifo.insert(AccessMode::Write)).collect();
        let mut joins = Vec::new();
        for (i, tok) in tokens.into_iter().enumerate() {
            let fifo = Arc::clone(&fifo);
            let order = Arc::clone(&order);
            joins.push(std::thread::spawn(move || {
                fifo.acquire(&tok);
                order.lock().push(i);
                fifo.release(&tok);
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(*order.lock(), (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn unknown_token_is_harmless() {
        let fifo = LockFifo::new();
        let t = fifo.insert(AccessMode::Write);
        fifo.release(&t);
        // The token has left the queue: state is None, re-release is a no-op,
        // blocking acquire returns immediately, try_acquire refuses.
        assert_eq!(fifo.state_of(&t), None);
        fifo.release(&t);
        fifo.acquire(&t);
        assert!(!fifo.try_acquire(&t));
    }
}
