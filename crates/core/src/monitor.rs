//! Online monitoring hooks: the runtime-side half of the `orwl-adapt`
//! subsystem.
//!
//! The ORWL model gives the runtime a natural observation point: every data
//! access goes through [`Handle::acquire`](crate::handle::Handle::acquire),
//! so the lock layer can report *which task touched which location in which
//! mode* with a single thread-local read plus an atomic check on the fast
//! path.  Three pieces live here:
//!
//! * **task identity** — the runtime tags each computation thread with its
//!   [`TaskId`] ([`enter_task`]); untagged threads (user code outside a
//!   runtime, control threads) emit nothing;
//! * **access sinks** — observers ([`AccessSink`]) registered for the
//!   duration of a run ([`register_sink`]).  The registry is global because
//!   handles are reachable from arbitrary user closures, but sinks are
//!   expected to filter by [`LocationId`] (ids are process-unique), so
//!   concurrent runtimes do not corrupt each other's measurements;
//! * **cooperative re-binding** — a [`RebindPlan`] holding the current
//!   epoch's thread→PU assignment.  Threads cannot be re-bound from the
//!   outside (`sched_setaffinity` binds the *calling* thread), so each task
//!   thread checks the plan's epoch counter at every lock acquisition — a
//!   relaxed atomic load when nothing changed — and re-binds itself at that
//!   natural quiescent point when the placement moved.

use crate::location::LocationId;
use crate::request::AccessMode;
use crate::task::TaskId;
use orwl_topo::binding::Binder;
use orwl_topo::bitmap::CpuSet;
use std::cell::Cell;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// Observer of per-task location accesses.
///
/// Implementations must be cheap and non-blocking: `on_access` runs inside
/// every lock acquisition of every monitored task thread.
pub trait AccessSink: Send + Sync {
    /// Called when `task` is granted `location` in `mode`.
    fn on_access(&self, task: TaskId, location: LocationId, mode: AccessMode);
}

type SinkEntry = (u64, Arc<dyn AccessSink>);

fn sink_registry() -> &'static RwLock<Vec<SinkEntry>> {
    static SINKS: OnceLock<RwLock<Vec<SinkEntry>>> = OnceLock::new();
    SINKS.get_or_init(|| RwLock::new(Vec::new()))
}

static NEXT_SINK_ID: AtomicU64 = AtomicU64::new(0);
/// Fast-path gate: number of registered sinks (avoid taking the registry
/// lock when monitoring is off, which is the common case).
static ACTIVE_SINKS: AtomicU64 = AtomicU64::new(0);

/// RAII registration of an [`AccessSink`]; dropping it unregisters.
pub struct SinkRegistration {
    id: u64,
}

/// Registers `sink` to observe all monitored accesses until the returned
/// registration is dropped.
pub fn register_sink(sink: Arc<dyn AccessSink>) -> SinkRegistration {
    let id = NEXT_SINK_ID.fetch_add(1, Ordering::Relaxed);
    sink_registry().write().unwrap_or_else(|e| e.into_inner()).push((id, sink));
    ACTIVE_SINKS.fetch_add(1, Ordering::SeqCst);
    SinkRegistration { id }
}

impl Drop for SinkRegistration {
    fn drop(&mut self) {
        let mut sinks = sink_registry().write().unwrap_or_else(|e| e.into_inner());
        sinks.retain(|(id, _)| *id != self.id);
        ACTIVE_SINKS.fetch_sub(1, Ordering::SeqCst);
    }
}

/// The published thread→PU assignment of the current adaptation epoch.
///
/// The runtime's monitor thread [`publish`](RebindPlan::publish)es a new
/// assignment; each task thread picks it up cooperatively at its next lock
/// acquisition.
pub struct RebindPlan {
    epoch: AtomicU64,
    /// `assignments[task] = Some(pu)` pins, `None` leaves the thread alone.
    assignments: RwLock<Vec<Option<usize>>>,
    binder: Arc<dyn Binder>,
    rebinds_applied: AtomicU64,
}

impl fmt::Debug for RebindPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RebindPlan")
            .field("epoch", &self.epoch())
            .field("rebinds_applied", &self.rebinds_applied())
            .field("binder", &self.binder.name())
            .finish()
    }
}

impl RebindPlan {
    /// Creates a plan for `n_tasks` threads with no pending re-binding.
    pub fn new(n_tasks: usize, binder: Arc<dyn Binder>) -> Arc<Self> {
        Arc::new(RebindPlan {
            epoch: AtomicU64::new(0),
            assignments: RwLock::new(vec![None; n_tasks]),
            binder,
            rebinds_applied: AtomicU64::new(0),
        })
    }

    /// Publishes a new assignment and advances the epoch so task threads
    /// re-bind at their next quiescent point.
    pub fn publish(&self, assignments: Vec<Option<usize>>) {
        *self.assignments.write().unwrap_or_else(|e| e.into_inner()) = assignments;
        self.epoch.fetch_add(1, Ordering::Release);
    }

    /// The current epoch number (0 = initial placement, nothing published).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Number of thread re-bindings actually applied by task threads.
    pub fn rebinds_applied(&self) -> u64 {
        self.rebinds_applied.load(Ordering::Relaxed)
    }

    fn apply_for(&self, task: TaskId) {
        let target =
            self.assignments.read().unwrap_or_else(|e| e.into_inner()).get(task.0).copied().flatten();
        if let Some(pu) = target {
            // A failed re-bind is not fatal: the thread keeps its previous
            // affinity, exactly like the unmappable case of Algorithm 1.
            if self.binder.bind_current_thread(&CpuSet::singleton(pu)).is_ok() {
                self.rebinds_applied.fetch_add(1, Ordering::Relaxed);
                orwl_obs::emit(orwl_obs::EventKind::Rebind { task: task.0, pu });
            }
        }
    }
}

thread_local! {
    static CURRENT_TASK: Cell<Option<TaskId>> = const { Cell::new(None) };
    static SEEN_EPOCH: Cell<u64> = const { Cell::new(0) };
}

// The rebind plan is behind a thread-local `Cell<Option<Arc<..>>>`-style
// slot; `RefCell` is avoided on the hot path by only touching the slot when
// the epoch counter moved.
thread_local! {
    static REBIND_PLAN: std::cell::RefCell<Option<Arc<RebindPlan>>> = const { std::cell::RefCell::new(None) };
}

/// RAII tag marking the current thread as executing `task`; created by the
/// runtime when it spawns a computation thread.
pub struct TaskGuard {
    _priv: (),
}

/// Tags the calling thread as executing `task`, optionally attaching the
/// runtime's [`RebindPlan`].  Dropping the guard clears the tag.
///
/// The last-seen epoch starts at 0 (the plan's initial epoch), NOT at the
/// plan's current epoch: a re-placement published before this thread got
/// here must be applied at its first lock grant, since the thread bound
/// itself from the by-then-stale initial placement.
pub fn enter_task(task: TaskId, plan: Option<Arc<RebindPlan>>) -> TaskGuard {
    CURRENT_TASK.with(|c| c.set(Some(task)));
    SEEN_EPOCH.with(|c| c.set(0));
    REBIND_PLAN.with(|c| *c.borrow_mut() = plan);
    TaskGuard { _priv: () }
}

impl Drop for TaskGuard {
    fn drop(&mut self) {
        CURRENT_TASK.with(|c| c.set(None));
        REBIND_PLAN.with(|c| *c.borrow_mut() = None);
    }
}

/// The task id the calling thread is tagged with, if any.
pub fn current_task() -> Option<TaskId> {
    CURRENT_TASK.with(|c| c.get())
}

/// The lock layer's hook: called by `Handle::{acquire, try_acquire}` after
/// a grant.  No-op on untagged threads; on tagged threads it applies any
/// pending re-binding and notifies the registered sinks.
pub(crate) fn on_lock_granted(location: LocationId, mode: AccessMode) {
    let Some(task) = CURRENT_TASK.with(|c| c.get()) else { return };

    // Cooperative re-binding: one relaxed atomic load when idle.
    REBIND_PLAN.with(|slot| {
        if let Some(plan) = slot.borrow().as_ref() {
            let epoch = plan.epoch();
            if SEEN_EPOCH.with(|c| c.get()) != epoch {
                SEEN_EPOCH.with(|c| c.set(epoch));
                plan.apply_for(task);
            }
        }
    });

    if ACTIVE_SINKS.load(Ordering::SeqCst) == 0 {
        return;
    }
    let sinks = sink_registry().read().unwrap_or_else(|e| e.into_inner());
    for (_, sink) in sinks.iter() {
        sink.on_access(task, location, mode);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orwl_topo::binding::RecordingBinder;
    use std::sync::Mutex;

    /// Test sink filtering on one location id — tests in this binary run
    /// concurrently and the registry is global, so each test observes only
    /// its own (unique) location, exactly like production sinks do.
    struct CountingSink {
        only: LocationId,
        events: Mutex<Vec<(TaskId, AccessMode)>>,
    }

    impl CountingSink {
        fn new(only: LocationId) -> Arc<Self> {
            Arc::new(CountingSink { only, events: Mutex::new(Vec::new()) })
        }
    }

    impl AccessSink for CountingSink {
        fn on_access(&self, task: TaskId, location: LocationId, mode: AccessMode) {
            if location == self.only {
                self.events.lock().unwrap().push((task, mode));
            }
        }
    }

    #[test]
    fn untagged_threads_emit_nothing() {
        let sink = CountingSink::new(LocationId(u64::MAX - 1));
        let _reg = register_sink(sink.clone());
        on_lock_granted(LocationId(u64::MAX - 1), AccessMode::Read);
        assert!(sink.events.lock().unwrap().is_empty());
    }

    #[test]
    fn tagged_threads_emit_and_clear_on_drop() {
        let loc = LocationId(u64::MAX - 2);
        let sink = CountingSink::new(loc);
        let reg = register_sink(sink.clone());
        {
            let _guard = enter_task(TaskId(3), None);
            assert_eq!(current_task(), Some(TaskId(3)));
            on_lock_granted(loc, AccessMode::Write);
        }
        assert_eq!(current_task(), None);
        on_lock_granted(loc, AccessMode::Write);
        let events = sink.events.lock().unwrap().clone();
        assert_eq!(events, vec![(TaskId(3), AccessMode::Write)]);
        drop(reg);
        // Unregistered sinks receive nothing further.
        let _guard = enter_task(TaskId(3), None);
        on_lock_granted(loc, AccessMode::Write);
        assert_eq!(sink.events.lock().unwrap().len(), 1);
    }

    #[test]
    fn rebind_plan_applies_once_per_epoch() {
        let binder = Arc::new(RecordingBinder::new());
        let plan = RebindPlan::new(2, binder.clone());
        let _guard = enter_task(TaskId(1), Some(Arc::clone(&plan)));

        // Epoch 0: nothing published, nothing applied.
        on_lock_granted(LocationId(90001), AccessMode::Read);
        assert_eq!(plan.rebinds_applied(), 0);

        // Publish a placement: the next grant re-binds, later grants do not.
        plan.publish(vec![None, Some(5)]);
        on_lock_granted(LocationId(90001), AccessMode::Read);
        on_lock_granted(LocationId(90001), AccessMode::Read);
        assert_eq!(plan.rebinds_applied(), 1);
        assert_eq!(binder.anonymous_bindings(), vec![CpuSet::singleton(5)]);

        // A task assigned `None` is left alone.
        plan.publish(vec![None, None]);
        on_lock_granted(LocationId(90001), AccessMode::Read);
        assert_eq!(plan.rebinds_applied(), 1);
        assert_eq!(plan.epoch(), 2);
    }
}
