//! The topology-aware placement add-on (the paper's contribution, glued to
//! the runtime).
//!
//! Given an [`OrwlProgram`], this module extracts the task-to-task
//! communication matrix from the declared location links, runs the selected
//! placement policy (TreeMatch for the paper's "Bind" configuration) on the
//! machine topology, and produces a [`PlacementPlan`] the runtime applies
//! when it spawns its computation and control threads.

use crate::task::OrwlProgram;
use orwl_comm::matrix::CommMatrix;
use orwl_comm::metrics::{hop_bytes, traffic_breakdown, TrafficBreakdown};
use orwl_topo::topology::{LevelSpec, Topology};
use orwl_treematch::mapping::Placement;
use orwl_treematch::policies::{compute_placement, Policy};
use std::sync::OnceLock;

/// Cached Scatter "OS guess" keyed by everything it depends on: the
/// topology's identity/structure and the number of threads mapped.
#[derive(Debug, Clone)]
struct OsGuessCache {
    topo_name: String,
    topo_spec: Vec<LevelSpec>,
    nb_pus: usize,
    order: usize,
    mapping: Vec<usize>,
}

impl OsGuessCache {
    fn matches(&self, topo: &Topology, order: usize) -> bool {
        self.order == order
            && self.nb_pus == topo.nb_pus()
            && self.topo_name == topo.name()
            && self.topo_spec == topo.level_spec()
    }
}

/// A computed placement together with the inputs that produced it.
#[must_use]
#[derive(Debug, Clone)]
pub struct PlacementPlan {
    /// The policy used.
    pub policy: Policy,
    /// The communication matrix extracted from the program.
    pub matrix: CommMatrix,
    /// The thread placement (compute + control threads).
    pub placement: Placement,
    /// Cached "OS guess" mapping for unbound threads (a Scatter placement,
    /// the round-robin spread the OS load balancer converges to), computed
    /// lazily on the first metric call.
    os_guess: OnceLock<OsGuessCache>,
}

impl PlacementPlan {
    /// Creates a plan from its parts.
    pub fn new(policy: Policy, matrix: CommMatrix, placement: Placement) -> Self {
        PlacementPlan { policy, matrix, placement, os_guess: OnceLock::new() }
    }

    fn scatter_guess(&self, topo: &Topology) -> Vec<usize> {
        compute_placement(Policy::Scatter, topo, &self.matrix, 0).compute_mapping_or_zero()
    }

    /// The effective dense thread → PU mapping of the plan: bound threads
    /// keep their binding, unbound threads fall back to the cached
    /// round-robin OS guess.
    #[must_use]
    pub fn effective_mapping(&self, topo: &Topology) -> Vec<usize> {
        let cache = self.os_guess.get_or_init(|| OsGuessCache {
            topo_name: topo.name().to_string(),
            topo_spec: topo.level_spec().to_vec(),
            nb_pus: topo.nb_pus(),
            order: self.matrix.order(),
            mapping: self.scatter_guess(topo),
        });
        if cache.matches(topo, self.matrix.order()) {
            self.placement.compute_mapping_with(|t| cache.mapping[t])
        } else {
            // A different topology (or a mutated matrix) than the cached
            // one: recompute the guess for it without disturbing the cache.
            let fresh = self.scatter_guess(topo);
            self.placement.compute_mapping_with(|t| fresh[t])
        }
    }

    /// Locality breakdown of the plan on `topo`.  Unbound threads are
    /// assumed to be spread round-robin over the NUMA nodes, which is what
    /// the OS load balancer does with a set of runnable threads and no
    /// affinity information.
    #[must_use]
    pub fn breakdown(&self, topo: &Topology) -> TrafficBreakdown {
        traffic_breakdown(&self.matrix, topo, &self.effective_mapping(topo))
    }

    /// Hop-bytes of the plan's matrix under the effective mapping (the
    /// TreeMatch literature's `Σ volume × tree-hops` metric).
    #[must_use]
    pub fn hop_bytes(&self, topo: &Topology) -> f64 {
        hop_bytes(&self.matrix, topo, &self.effective_mapping(topo))
    }
}

/// Extracts the communication matrix of `program` and computes a placement
/// for its tasks (plus `n_control` control threads) on `topo`.
pub fn plan_placement(
    program: &OrwlProgram,
    topo: &Topology,
    policy: Policy,
    n_control: usize,
) -> PlacementPlan {
    let matrix = program.comm_matrix();
    let placement = compute_placement(policy, topo, &matrix, n_control);
    PlacementPlan::new(policy, matrix, placement)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::location::Location;
    use crate::task::{LocationLink, TaskSpec};
    use orwl_topo::synthetic;

    /// A program of 2 clusters of 4 tasks each, chained through locations so
    /// that intra-cluster traffic dominates.
    fn clustered_program() -> OrwlProgram {
        let mut p = OrwlProgram::new();
        for c in 0..2 {
            let locs: Vec<_> = (0..4).map(|i| Location::new(format!("c{c}-l{i}"), 0u64)).collect();
            for i in 0..4 {
                let mut links = vec![LocationLink::write(locs[i].id(), 1000.0)];
                links.push(LocationLink::read(locs[(i + 1) % 4].id(), 1000.0));
                p.add_task(TaskSpec::new(format!("c{c}-t{i}"), links), |_| {});
            }
        }
        p
    }

    #[test]
    fn plan_uses_program_matrix() {
        let p = clustered_program();
        let topo = synthetic::cluster2016_subset(2).unwrap();
        let plan = plan_placement(&p, &topo, Policy::TreeMatch, 1);
        assert_eq!(plan.matrix.order(), 8);
        assert!(plan.matrix.total_volume() > 0.0);
        assert_eq!(plan.placement.n_compute(), 8);
        assert_eq!(plan.placement.n_control(), 1);
        plan.placement.validate_against(&topo).unwrap();
    }

    #[test]
    fn treematch_plan_keeps_clusters_on_one_socket() {
        let p = clustered_program();
        let topo = synthetic::cluster2016_subset(2).unwrap();
        let plan = plan_placement(&p, &topo, Policy::TreeMatch, 0);
        let b = plan.breakdown(&topo);
        // All intra-cluster traffic should stay inside a NUMA node.
        assert_eq!(b.cross_numa, 0.0, "breakdown: {b:?}");
        assert_eq!(b.local_fraction(), 1.0);
    }

    #[test]
    fn nobind_plan_binds_nothing_but_reports_breakdown() {
        let p = clustered_program();
        let topo = synthetic::cluster2016_subset(2).unwrap();
        let plan = plan_placement(&p, &topo, Policy::NoBind, 2);
        assert_eq!(plan.placement.bound_fraction(), 0.0);
        // The breakdown uses the round-robin OS assumption, which spreads the
        // clusters over both sockets — strictly worse locality.
        let b = plan.breakdown(&topo);
        assert!(b.cross_numa > 0.0);
        assert!(b.local_fraction() < 1.0);
    }

    #[test]
    fn repeated_breakdown_calls_are_identical_and_cached() {
        let p = clustered_program();
        let topo = synthetic::cluster2016_subset(2).unwrap();
        // NoBind leaves every thread unbound, so the breakdown exercises the
        // cached Scatter OS-guess path on every call.
        let plan = plan_placement(&p, &topo, Policy::NoBind, 1);
        let first = plan.breakdown(&topo);
        for _ in 0..3 {
            assert_eq!(plan.breakdown(&topo), first);
        }
        assert_eq!(plan.hop_bytes(&topo), plan.hop_bytes(&topo));
        // The cached guess equals a fresh Scatter placement.
        let fresh = compute_placement(Policy::Scatter, &topo, &plan.matrix, 0).compute_mapping_or_zero();
        assert_eq!(plan.effective_mapping(&topo), fresh);
        // Cloning carries the cache without invalidating the result.
        assert_eq!(plan.clone().breakdown(&topo), first);
    }

    #[test]
    fn metrics_with_a_different_topology_recompute_the_guess() {
        let p = clustered_program();
        let a = synthetic::cluster2016_subset(2).unwrap();
        let b = synthetic::laptop();
        let plan = plan_placement(&p, &a, Policy::NoBind, 0);
        let primed = plan.breakdown(&a); // primes the cache for `a`
                                         // A different topology gets a fresh Scatter guess, not the cached one.
        let fresh = compute_placement(Policy::Scatter, &b, &plan.matrix, 0).compute_mapping_or_zero();
        assert_eq!(plan.effective_mapping(&b), fresh);
        // The cache for the original topology is undisturbed.
        assert_eq!(plan.breakdown(&a), primed);
    }

    #[test]
    fn empty_program_yields_empty_plan() {
        let p = OrwlProgram::new();
        let topo = synthetic::laptop();
        let plan = plan_placement(&p, &topo, Policy::TreeMatch, 0);
        assert_eq!(plan.matrix.order(), 0);
        assert_eq!(plan.placement.n_compute(), 0);
    }
}
