//! The topology-aware placement add-on (the paper's contribution, glued to
//! the runtime).
//!
//! Given an [`OrwlProgram`], this module extracts the task-to-task
//! communication matrix from the declared location links, runs the selected
//! placement policy (TreeMatch for the paper's "Bind" configuration) on the
//! machine topology, and produces a [`PlacementPlan`] the runtime applies
//! when it spawns its computation and control threads.

use crate::task::OrwlProgram;
use orwl_comm::matrix::CommMatrix;
use orwl_comm::metrics::{traffic_breakdown, TrafficBreakdown};
use orwl_topo::topology::Topology;
use orwl_treematch::mapping::Placement;
use orwl_treematch::policies::{compute_placement, Policy};

/// A computed placement together with the inputs that produced it.
#[derive(Debug, Clone)]
pub struct PlacementPlan {
    /// The policy used.
    pub policy: Policy,
    /// The communication matrix extracted from the program.
    pub matrix: CommMatrix,
    /// The thread placement (compute + control threads).
    pub placement: Placement,
}

impl PlacementPlan {
    /// Locality breakdown of the plan on `topo`.  Unbound threads are
    /// assumed to be spread round-robin over the NUMA nodes, which is what
    /// the OS load balancer does with a set of runnable threads and no
    /// affinity information.
    pub fn breakdown(&self, topo: &Topology) -> TrafficBreakdown {
        let os_guess = compute_placement(Policy::Scatter, topo, &self.matrix, 0);
        let guess_mapping = os_guess.compute_mapping_or_zero();
        let mapping = self.placement.compute_mapping_with(|t| guess_mapping[t]);
        traffic_breakdown(&self.matrix, topo, &mapping)
    }
}

/// Extracts the communication matrix of `program` and computes a placement
/// for its tasks (plus `n_control` control threads) on `topo`.
pub fn plan_placement(
    program: &OrwlProgram,
    topo: &Topology,
    policy: Policy,
    n_control: usize,
) -> PlacementPlan {
    let matrix = program.comm_matrix();
    let placement = compute_placement(policy, topo, &matrix, n_control);
    PlacementPlan { policy, matrix, placement }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::location::Location;
    use crate::task::{LocationLink, TaskSpec};
    use orwl_topo::synthetic;

    /// A program of 2 clusters of 4 tasks each, chained through locations so
    /// that intra-cluster traffic dominates.
    fn clustered_program() -> OrwlProgram {
        let mut p = OrwlProgram::new();
        for c in 0..2 {
            let locs: Vec<_> = (0..4).map(|i| Location::new(format!("c{c}-l{i}"), 0u64)).collect();
            for i in 0..4 {
                let mut links = vec![LocationLink::write(locs[i].id(), 1000.0)];
                links.push(LocationLink::read(locs[(i + 1) % 4].id(), 1000.0));
                p.add_task(TaskSpec::new(format!("c{c}-t{i}"), links), |_| {});
            }
        }
        p
    }

    #[test]
    fn plan_uses_program_matrix() {
        let p = clustered_program();
        let topo = synthetic::cluster2016_subset(2).unwrap();
        let plan = plan_placement(&p, &topo, Policy::TreeMatch, 1);
        assert_eq!(plan.matrix.order(), 8);
        assert!(plan.matrix.total_volume() > 0.0);
        assert_eq!(plan.placement.n_compute(), 8);
        assert_eq!(plan.placement.n_control(), 1);
        plan.placement.validate_against(&topo).unwrap();
    }

    #[test]
    fn treematch_plan_keeps_clusters_on_one_socket() {
        let p = clustered_program();
        let topo = synthetic::cluster2016_subset(2).unwrap();
        let plan = plan_placement(&p, &topo, Policy::TreeMatch, 0);
        let b = plan.breakdown(&topo);
        // All intra-cluster traffic should stay inside a NUMA node.
        assert_eq!(b.cross_numa, 0.0, "breakdown: {b:?}");
        assert_eq!(b.local_fraction(), 1.0);
    }

    #[test]
    fn nobind_plan_binds_nothing_but_reports_breakdown() {
        let p = clustered_program();
        let topo = synthetic::cluster2016_subset(2).unwrap();
        let plan = plan_placement(&p, &topo, Policy::NoBind, 2);
        assert_eq!(plan.placement.bound_fraction(), 0.0);
        // The breakdown uses the round-robin OS assumption, which spreads the
        // clusters over both sockets — strictly worse locality.
        let b = plan.breakdown(&topo);
        assert!(b.cross_numa > 0.0);
        assert!(b.local_fraction() < 1.0);
    }

    #[test]
    fn empty_program_yields_empty_plan() {
        let p = OrwlProgram::new();
        let topo = synthetic::laptop();
        let plan = plan_placement(&p, &topo, Policy::TreeMatch, 0);
        assert_eq!(plan.matrix.order(), 0);
        assert_eq!(plan.placement.n_compute(), 0);
    }
}
