//! Runtime statistics, shared between tasks, control threads and the
//! runtime itself.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Lock-free counters updated concurrently by tasks and control threads.
#[derive(Debug, Default)]
pub struct RuntimeStats {
    tasks_started: AtomicU64,
    tasks_finished: AtomicU64,
    control_events: AtomicU64,
    lock_acquisitions: AtomicU64,
    wait_nanos: AtomicU64,
}

impl RuntimeStats {
    /// Creates a zeroed statistics block.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that one task started executing.
    pub fn record_task_started(&self) {
        self.tasks_started.fetch_add(1, Ordering::Relaxed);
    }

    /// Records that one task finished executing.
    pub fn record_task_finished(&self) {
        self.tasks_finished.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one event processed by a control thread.
    pub fn record_control_event(&self) {
        self.control_events.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `n` successful lock acquisitions.
    pub fn record_acquisitions(&self, n: u64) {
        self.lock_acquisitions.fetch_add(n, Ordering::Relaxed);
    }

    /// Records time spent blocked waiting for a lock.
    pub fn record_wait(&self, waited: Duration) {
        self.wait_nanos.fetch_add(waited.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Merges a snapshot's counts into these counters (used when partial
    /// runs or per-chunk stats blocks are folded into one run-wide block).
    pub fn absorb(&self, snap: &StatsSnapshot) {
        self.tasks_started.fetch_add(snap.tasks_started, Ordering::Relaxed);
        self.tasks_finished.fetch_add(snap.tasks_finished, Ordering::Relaxed);
        self.control_events.fetch_add(snap.control_events, Ordering::Relaxed);
        self.lock_acquisitions.fetch_add(snap.lock_acquisitions, Ordering::Relaxed);
        self.wait_nanos.fetch_add(snap.total_wait.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Takes an immutable snapshot of the counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            tasks_started: self.tasks_started.load(Ordering::Relaxed),
            tasks_finished: self.tasks_finished.load(Ordering::Relaxed),
            control_events: self.control_events.load(Ordering::Relaxed),
            lock_acquisitions: self.lock_acquisitions.load(Ordering::Relaxed),
            total_wait: Duration::from_nanos(self.wait_nanos.load(Ordering::Relaxed)),
        }
    }
}

/// A point-in-time copy of [`RuntimeStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Tasks that started executing.
    pub tasks_started: u64,
    /// Tasks that finished executing.
    pub tasks_finished: u64,
    /// Events processed by control threads.
    pub control_events: u64,
    /// Successful ORWL lock acquisitions reported by tasks.
    pub lock_acquisitions: u64,
    /// Total time tasks spent blocked waiting for locks.
    pub total_wait: Duration,
}

impl StatsSnapshot {
    /// The element-wise sum of two snapshots.
    #[must_use]
    pub fn merged(&self, other: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            tasks_started: self.tasks_started + other.tasks_started,
            tasks_finished: self.tasks_finished + other.tasks_finished,
            control_events: self.control_events + other.control_events,
            lock_acquisitions: self.lock_acquisitions + other.lock_acquisitions,
            total_wait: self.total_wait + other.total_wait,
        }
    }

    /// Publishes the counters into an observability metrics registry (the
    /// registry generalises this block: same counts, plus histograms and
    /// everything else the run recorded).
    pub fn publish(&self, metrics: &orwl_obs::metrics::MetricsRegistry) {
        metrics.counter("tasks_started").add(self.tasks_started);
        metrics.counter("tasks_finished").add(self.tasks_finished);
        metrics.counter("control_events").add(self.control_events);
        metrics.counter("lock_acquisitions").add(self.lock_acquisitions);
        metrics.counter("lock_wait_total_ns").add(self.total_wait.as_nanos() as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counters_accumulate() {
        let s = RuntimeStats::new();
        s.record_task_started();
        s.record_task_started();
        s.record_task_finished();
        s.record_control_event();
        s.record_acquisitions(5);
        s.record_wait(Duration::from_millis(2));
        s.record_wait(Duration::from_millis(3));
        let snap = s.snapshot();
        assert_eq!(snap.tasks_started, 2);
        assert_eq!(snap.tasks_finished, 1);
        assert_eq!(snap.control_events, 1);
        assert_eq!(snap.lock_acquisitions, 5);
        assert_eq!(snap.total_wait, Duration::from_millis(5));
    }

    #[test]
    fn concurrent_updates_are_not_lost() {
        let s = Arc::new(RuntimeStats::new());
        let mut joins = Vec::new();
        for _ in 0..4 {
            let s = Arc::clone(&s);
            joins.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    s.record_acquisitions(1);
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(s.snapshot().lock_acquisitions, 4000);
    }
}
