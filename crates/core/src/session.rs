//! The unified `Session` front door: one builder, one [`ExecutionBackend`]
//! trait, one [`Report`] — however a program is executed.
//!
//! The paper's pipeline (extract communication matrix → TreeMatch → bind →
//! execute → report) is one conceptual flow, and this module is its single
//! entry point.  A [`Session`] is built once, validated ([`ConfigError`] —
//! no panics, no silent clamping) and then runs [`Workload`]s on whichever
//! backend it was given:
//!
//! * [`ThreadBackend`] — the real event runtime of `orwl_core::runtime`
//!   (one OS thread per task, real binding);
//! * `orwl_adapt::SimBackend` — the discrete-event NUMA simulator, playing
//!   the role of the paper's 192-core testbed.
//!
//! Run behaviour is selected by [`Mode`]: `Static` places once and never
//! re-maps, `Adaptive` closes the monitor → drift → re-place loop online,
//! and `Oracle` re-maps for free at every phase boundary (simulator only —
//! it requires knowing the future).
//!
//! # Example
//!
//! ```
//! use orwl_core::prelude::*;
//! use orwl_core::Location;
//! use orwl_topo::binding::RecordingBinder;
//! use std::sync::Arc;
//!
//! // Four tasks incrementing a shared counter.
//! let counter = Location::new("counter", 0u64);
//! let mut program = OrwlProgram::new();
//! for t in 0..4 {
//!     let loc = Arc::clone(&counter);
//!     program.add_task(
//!         TaskSpec::new(format!("inc-{t}"), vec![LocationLink::write(counter.id(), 8.0)]),
//!         move |_ctx| {
//!             let mut handle = loc.iterative_handle(AccessMode::Write);
//!             for _ in 0..100 {
//!                 *handle.acquire().unwrap() += 1;
//!             }
//!         },
//!     );
//! }
//!
//! // One builder, whatever the backend: topology, policy, control threads,
//! // run mode — validated into a `Session`.
//! let session = Session::builder()
//!     .topology(orwl_topo::synthetic::laptop())
//!     .policy(Policy::TreeMatch)
//!     .control_threads(1)
//!     .binder(Arc::new(RecordingBinder::new()))
//!     .backend(ThreadBackend)
//!     .build()
//!     .unwrap();
//!
//! let report = session.run(program).unwrap();
//! assert_eq!(counter.snapshot(), 400);
//! assert_eq!(report.thread.as_ref().unwrap().stats.tasks_finished, 4);
//! assert!(report.plan.placement.bound_fraction() > 0.99);
//! ```

use crate::error::{ConfigError, OrwlError};
use crate::placement::PlacementPlan;
use crate::runtime::{AdaptReport, AdaptiveSpec, OrwlRuntime, RunReport, RuntimeConfig};
use crate::stats::StatsSnapshot;
use crate::task::OrwlProgram;
use orwl_comm::metrics::TrafficBreakdown;
use orwl_numasim::workload::PhasedWorkload;
use orwl_obs::{ClockKind, ObsConfig, Recorder, RunTelemetry};
use orwl_topo::binding::Binder;
use orwl_topo::topology::Topology;
use orwl_treematch::policies::Policy;
use std::sync::Arc;
use std::time::Duration;

/// How a session executes: place once, adapt online, or follow an oracle.
#[derive(Clone, Debug, Default)]
pub enum Mode {
    /// Compute one placement up front (from the program's declared matrix,
    /// or the first phase of a phased workload) and never re-map — the
    /// paper's static pipeline.
    #[default]
    Static,
    /// Online monitoring, drift detection and epoch-boundary re-placement.
    Adaptive(AdaptiveSpec),
    /// Re-map for free at every phase boundary: the unbeatable reference
    /// adaptive policies are measured against.  Requires a backend that
    /// knows the phase boundaries (the simulator).
    Oracle,
}

impl Mode {
    /// Short machine-friendly name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Mode::Static => "static",
            Mode::Adaptive(_) => "adaptive",
            Mode::Oracle => "oracle",
        }
    }
}

/// A unit of execution a [`Session`] can run.
///
/// Both variants convert implicitly (`session.run(program)` /
/// `session.run(workload)`); backends reject the kind they cannot execute
/// with [`ConfigError::WorkloadMismatch`].
pub enum Workload {
    /// A real ORWL program: tasks with closures, executed by thread
    /// backends.
    Program(OrwlProgram),
    /// A phased task-graph workload, executed by simulator backends.
    Phased(PhasedWorkload),
}

impl Workload {
    /// True when the workload has no tasks to run.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        match self {
            Workload::Program(p) => p.is_empty(),
            Workload::Phased(w) => w.is_empty(),
        }
    }

    /// Short machine-friendly name of the workload kind.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Workload::Program(_) => "program",
            Workload::Phased(_) => "phased",
        }
    }

    /// Structural validation run by [`Session::run`] before dispatch, so a
    /// malformed workload is a typed error rather than a downstream panic.
    fn validate(&self) -> Result<(), ConfigError> {
        match self {
            Workload::Program(p) => {
                if p.is_empty() {
                    return Err(ConfigError::EmptyProgram);
                }
            }
            Workload::Phased(w) => {
                let Some(first) = w.phases.first() else {
                    return Err(ConfigError::EmptyProgram);
                };
                let expected = first.graph.n_tasks();
                if expected == 0 {
                    return Err(ConfigError::EmptyProgram);
                }
                for (phase, p) in w.phases.iter().enumerate() {
                    let got = p.graph.n_tasks();
                    if got != expected {
                        return Err(ConfigError::MismatchedPhases { phase, expected, got });
                    }
                }
            }
        }
        Ok(())
    }
}

impl From<OrwlProgram> for Workload {
    fn from(p: OrwlProgram) -> Self {
        Workload::Program(p)
    }
}

impl From<PhasedWorkload> for Workload {
    fn from(w: PhasedWorkload) -> Self {
        Workload::Phased(w)
    }
}

/// How long a run took, by the backend's own clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RunTime {
    /// Real wall-clock time (thread backends).
    Wall(Duration),
    /// Simulated seconds (simulator backends).
    Simulated(f64),
}

impl RunTime {
    /// The run time in seconds, whichever clock produced it.
    #[must_use]
    pub fn seconds(&self) -> f64 {
        match self {
            RunTime::Wall(d) => d.as_secs_f64(),
            RunTime::Simulated(s) => *s,
        }
    }

    /// The wall-clock duration, when the backend measured real time.
    #[must_use]
    pub fn as_wall(&self) -> Option<Duration> {
        match self {
            RunTime::Wall(d) => Some(*d),
            RunTime::Simulated(_) => None,
        }
    }
}

/// Thread-backend execution details (per-task times and runtime counters).
#[derive(Debug, Clone)]
pub struct ThreadDetails {
    /// Per-task execution time, indexed by task id.
    pub per_task_time: Vec<Duration>,
    /// Snapshot of the runtime counters at the end of the run.
    pub stats: StatsSnapshot,
}

impl ThreadDetails {
    /// The longest task execution time (the critical path lower bound).
    #[must_use]
    pub fn max_task_time(&self) -> Duration {
        self.per_task_time.iter().copied().max().unwrap_or(Duration::ZERO)
    }
}

/// Cumulative inter-node vs intra-node traffic of a multi-node run,
/// reported by cluster backends (`None` on single-machine backends).
///
/// The static, per-iteration analogue is the
/// [`cross_node`](TrafficBreakdown::cross_node) component of the plan's
/// [`TrafficBreakdown`]; this struct carries the *cumulative* split over
/// the whole run, including migration traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ClusterTraffic {
    /// Number of simulated nodes.
    pub n_nodes: usize,
    /// Cumulative hop-bytes of traffic that stayed inside a node.
    pub intra_node_hop_bytes: f64,
    /// Cumulative hop-bytes of traffic that crossed the fabric.
    pub inter_node_hop_bytes: f64,
    /// Cumulative bytes that crossed the fabric (the unweighted cut).
    pub inter_node_bytes: f64,
}

impl ClusterTraffic {
    /// Fraction of the cumulative hop-bytes that crossed the fabric.
    #[must_use]
    pub fn inter_node_fraction(&self) -> f64 {
        let t = self.intra_node_hop_bytes + self.inter_node_hop_bytes;
        if t == 0.0 {
            0.0
        } else {
            self.inter_node_hop_bytes / t
        }
    }
}

/// The unified result of a [`Session`] run, whatever the backend.
#[must_use]
#[derive(Debug, Clone)]
pub struct Report {
    /// Name of the backend that produced the report.
    pub backend: String,
    /// The mode the session ran in (`"static"` / `"adaptive"` / `"oracle"`).
    pub mode: &'static str,
    /// Wall time (thread backends) or simulated time (simulator backends).
    pub time: RunTime,
    /// The initial placement plan (policy, extracted matrix, thread → PU
    /// placement).
    pub plan: PlacementPlan,
    /// Locality breakdown of the plan on the session topology.
    pub breakdown: TrafficBreakdown,
    /// Hop-bytes of the run: the plan's static metric for thread backends,
    /// the cumulative per-iteration hop-bytes (including migration traffic)
    /// for simulator backends.
    pub hop_bytes: f64,
    /// Adaptive-machinery counters; `None` for non-adaptive runs.
    pub adapt: Option<AdaptReport>,
    /// Thread-backend details; `None` for simulated runs.
    pub thread: Option<ThreadDetails>,
    /// Cumulative inter-node vs intra-node traffic split; `None` on
    /// single-machine backends.
    pub fabric: Option<ClusterTraffic>,
    /// Structured run telemetry (events + metrics); `None` unless the
    /// session was built with [`SessionBuilder::observe`].
    pub obs: Option<RunTelemetry>,
}

/// The validated, backend-independent settings of a [`Session`].
#[derive(Clone)]
pub struct SessionConfig {
    /// The machine topology placements are computed against.
    pub topology: Topology,
    /// The placement policy ([`Policy::TreeMatch`] = the paper's "Bind").
    pub policy: Policy,
    /// Number of control threads placed alongside the computation.
    pub control_threads: usize,
    /// How bindings are applied.
    pub binder: Arc<dyn Binder>,
    /// The run mode.
    pub mode: Mode,
    /// Telemetry settings; `None` (the default) records nothing and keeps
    /// the hot paths on their one-load disabled fast path.
    pub observe: Option<ObsConfig>,
}

impl std::fmt::Debug for SessionConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionConfig")
            .field("topology", &self.topology.name())
            .field("policy", &self.policy.name())
            .field("control_threads", &self.control_threads)
            .field("binder", &self.binder.name())
            .field("mode", &self.mode.name())
            .field("observe", &self.observe.is_some())
            .finish()
    }
}

/// An execution substrate a [`Session`] can drive: the real thread runtime,
/// the NUMA simulator, or anything future that can place and run a
/// [`Workload`].
pub trait ExecutionBackend: Send + Sync {
    /// Short machine-friendly backend name (used in reports and errors).
    fn name(&self) -> &'static str;

    /// Executes `workload` under the validated session `config`.
    ///
    /// The session has already rejected empty workloads and invalid
    /// configurations; backends still return
    /// [`ConfigError::UnsupportedMode`] / [`ConfigError::WorkloadMismatch`]
    /// (via [`OrwlError::Config`]) for combinations they cannot execute.
    fn run(&self, config: &SessionConfig, workload: Workload) -> Result<Report, OrwlError>;
}

/// A validated session: the one front door for running ORWL programs and
/// simulated workloads.  Built by [`Session::builder`].
pub struct Session {
    config: SessionConfig,
    backend: Arc<dyn ExecutionBackend>,
}

impl Session {
    /// Starts a builder with the defaults of the paper's "Bind"
    /// configuration: TreeMatch policy, one control thread, the platform's
    /// native binder, static mode.
    pub fn builder() -> SessionBuilder {
        SessionBuilder::default()
    }

    /// The validated settings.
    #[must_use]
    pub fn config(&self) -> &SessionConfig {
        &self.config
    }

    /// The backend's name.
    #[must_use]
    pub fn backend_name(&self) -> &'static str {
        self.backend.name()
    }

    /// Runs a workload to completion and reports on the execution.
    pub fn run(&self, workload: impl Into<Workload>) -> Result<Report, OrwlError> {
        let workload = workload.into();
        workload.validate()?;
        self.backend.run(&self.config, workload)
    }
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("config", &self.config)
            .field("backend", &self.backend.name())
            .finish()
    }
}

/// Fluent builder for [`Session`]; see [`Session::builder`].
#[must_use]
pub struct SessionBuilder {
    topology: Option<Topology>,
    policy: Policy,
    control_threads: usize,
    binder: Option<Arc<dyn Binder>>,
    mode: Mode,
    backend: Option<Arc<dyn ExecutionBackend>>,
    observe: Option<ObsConfig>,
}

impl Default for SessionBuilder {
    fn default() -> Self {
        SessionBuilder {
            topology: None,
            policy: Policy::TreeMatch,
            control_threads: 1,
            binder: None,
            mode: Mode::Static,
            backend: None,
            observe: None,
        }
    }
}

impl SessionBuilder {
    /// Sets the machine topology (required).
    pub fn topology(mut self, topology: Topology) -> Self {
        self.topology = Some(topology);
        self
    }

    /// Sets the placement policy (default: [`Policy::TreeMatch`]).
    pub fn policy(mut self, policy: Policy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the number of control threads (default: 1).
    pub fn control_threads(mut self, n: usize) -> Self {
        self.control_threads = n;
        self
    }

    /// Sets the binder (default: the platform's native binder).
    pub fn binder(mut self, binder: Arc<dyn Binder>) -> Self {
        self.binder = Some(binder);
        self
    }

    /// Selects adaptive mode with the given spec.
    pub fn adaptive(mut self, spec: AdaptiveSpec) -> Self {
        self.mode = Mode::Adaptive(spec);
        self
    }

    /// Sets the run mode explicitly (default: [`Mode::Static`]).
    pub fn mode(mut self, mode: Mode) -> Self {
        self.mode = mode;
        self
    }

    /// Sets the execution backend (required).
    pub fn backend(mut self, backend: impl ExecutionBackend + 'static) -> Self {
        self.backend = Some(Arc::new(backend));
        self
    }

    /// Sets a shared execution backend (required unless
    /// [`backend`](SessionBuilder::backend) was called).
    pub fn backend_shared(mut self, backend: Arc<dyn ExecutionBackend>) -> Self {
        self.backend = Some(backend);
        self
    }

    /// Enables structured run telemetry: the backend records events and
    /// metrics during the run and hangs the drained [`RunTelemetry`] off
    /// [`Report::obs`].  Default: off (the zero-overhead path).
    pub fn observe(mut self, config: ObsConfig) -> Self {
        self.observe = Some(config);
        self
    }

    /// Validates the configuration into a [`Session`].
    pub fn build(self) -> Result<Session, ConfigError> {
        let topology = self.topology.ok_or(ConfigError::MissingTopology)?;
        let backend = self.backend.ok_or(ConfigError::MissingBackend)?;
        let available = topology.nb_pus();
        if self.control_threads > available {
            return Err(ConfigError::ControlThreadOverflow { requested: self.control_threads, available });
        }
        if let Mode::Adaptive(spec) = &self.mode {
            if spec.epoch == Duration::ZERO || spec.epoch_iterations == 0 {
                return Err(ConfigError::ZeroAdaptiveEpoch);
            }
        }
        let binder = self.binder.unwrap_or_else(|| Arc::from(orwl_topo::binding::native_binder()));
        Ok(Session {
            config: SessionConfig {
                topology,
                policy: self.policy,
                control_threads: self.control_threads,
                binder,
                mode: self.mode,
                observe: self.observe,
            },
            backend,
        })
    }
}

/// The real event runtime as an [`ExecutionBackend`]: one OS thread per
/// task, placements applied through the session binder (see
/// [`OrwlRuntime`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct ThreadBackend;

impl ExecutionBackend for ThreadBackend {
    fn name(&self) -> &'static str {
        "threads"
    }

    fn run(&self, config: &SessionConfig, workload: Workload) -> Result<Report, OrwlError> {
        let Workload::Program(program) = workload else {
            return Err(ConfigError::WorkloadMismatch {
                backend: self.name().to_string(),
                expected: "program".to_string(),
            }
            .into());
        };
        let adaptive = match &config.mode {
            Mode::Static => None,
            Mode::Adaptive(spec) => {
                if spec.controller.is_none() {
                    return Err(ConfigError::MissingController.into());
                }
                Some(spec.clone())
            }
            Mode::Oracle => {
                return Err(ConfigError::UnsupportedMode {
                    backend: self.name().to_string(),
                    mode: Mode::Oracle.name().to_string(),
                }
                .into());
            }
        };
        // Observation: a wall-clock recorder, installed globally for the
        // duration of the run so deep hooks (lock waits, rebinds, solve
        // phases) reach it, and handed to the runtime for epoch stamping.
        let recorder = config.observe.map(|cfg| Recorder::new(ClockKind::Wall, cfg));
        let registration = recorder.as_ref().map(orwl_obs::install);
        let runtime = OrwlRuntime::new(RuntimeConfig {
            topology: config.topology.clone(),
            policy: config.policy,
            control_threads: config.control_threads,
            binder: Arc::clone(&config.binder),
            adaptive,
            observer: recorder.clone(),
        });
        let run_result = runtime.run(program);
        drop(registration);
        let RunReport { wall_time, plan, per_task_time, stats, adapt } = run_result?;
        let breakdown = plan.breakdown(&config.topology);
        let hop_bytes = plan.hop_bytes(&config.topology);
        Ok(Report {
            backend: self.name().to_string(),
            mode: config.mode.name(),
            time: RunTime::Wall(wall_time),
            plan,
            breakdown,
            hop_bytes,
            adapt,
            thread: Some(ThreadDetails { per_task_time, stats }),
            fabric: None,
            obs: recorder.map(|r| r.finish(self.name())),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::location::Location;
    use crate::request::AccessMode;
    use crate::runtime::AdaptiveController;
    use crate::task::{LocationLink, TaskSpec};
    use orwl_topo::binding::RecordingBinder;
    use orwl_topo::synthetic;

    fn counter_program(n_tasks: usize, increments: u64) -> (OrwlProgram, Arc<Location<u64>>) {
        let counter = Location::new("counter", 0u64);
        let mut program = OrwlProgram::new();
        for t in 0..n_tasks {
            let loc = Arc::clone(&counter);
            program.add_task(
                TaskSpec::new(format!("inc-{t}"), vec![LocationLink::write(counter.id(), 8.0)]),
                move |_| {
                    let mut h = loc.iterative_handle(AccessMode::Write);
                    for _ in 0..increments {
                        *h.acquire().unwrap() += 1;
                    }
                },
            );
        }
        (program, counter)
    }

    fn thread_session(policy: Policy) -> Session {
        Session::builder()
            .topology(synthetic::laptop())
            .policy(policy)
            .binder(Arc::new(RecordingBinder::new()))
            .backend(ThreadBackend)
            .build()
            .unwrap()
    }

    #[test]
    fn missing_topology_is_rejected() {
        let err = Session::builder().backend(ThreadBackend).build().unwrap_err();
        assert_eq!(err, ConfigError::MissingTopology);
    }

    #[test]
    fn missing_backend_is_rejected() {
        let err = Session::builder().topology(synthetic::laptop()).build().unwrap_err();
        assert_eq!(err, ConfigError::MissingBackend);
    }

    #[test]
    fn control_thread_overflow_is_rejected_not_clamped() {
        let topo = synthetic::laptop(); // 8 PUs
        let err =
            Session::builder().topology(topo).control_threads(9).backend(ThreadBackend).build().unwrap_err();
        assert_eq!(err, ConfigError::ControlThreadOverflow { requested: 9, available: 8 });
    }

    #[test]
    fn zero_adaptive_epoch_is_rejected() {
        let spec = AdaptiveSpec::per_iterations(0);
        let err = Session::builder()
            .topology(synthetic::laptop())
            .adaptive(spec)
            .backend(ThreadBackend)
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::ZeroAdaptiveEpoch);

        let spec = AdaptiveSpec::per_iterations(4);
        let zero_wall = AdaptiveSpec { epoch: Duration::ZERO, ..spec };
        let err = Session::builder()
            .topology(synthetic::laptop())
            .adaptive(zero_wall)
            .backend(ThreadBackend)
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::ZeroAdaptiveEpoch);
    }

    #[test]
    fn empty_program_is_rejected_at_run() {
        let session = thread_session(Policy::NoBind);
        let err = session.run(OrwlProgram::new()).unwrap_err();
        assert_eq!(err, OrwlError::Config(ConfigError::EmptyProgram));
    }

    #[test]
    fn adaptive_without_controller_is_rejected_by_thread_backend() {
        let session = Session::builder()
            .topology(synthetic::laptop())
            .adaptive(AdaptiveSpec::per_iterations(4))
            .backend(ThreadBackend)
            .build()
            .unwrap();
        let (program, _) = counter_program(2, 1);
        let err = session.run(program).unwrap_err();
        assert_eq!(err, OrwlError::Config(ConfigError::MissingController));
    }

    #[test]
    fn oracle_mode_is_unsupported_on_threads() {
        let session = Session::builder()
            .topology(synthetic::laptop())
            .mode(Mode::Oracle)
            .backend(ThreadBackend)
            .build()
            .unwrap();
        let (program, _) = counter_program(2, 1);
        match session.run(program).unwrap_err() {
            OrwlError::Config(ConfigError::UnsupportedMode { backend, mode }) => {
                assert_eq!(backend, "threads");
                assert_eq!(mode, "oracle");
            }
            other => panic!("expected UnsupportedMode, got {other:?}"),
        }
    }

    #[test]
    fn mismatched_phase_task_counts_are_rejected() {
        use orwl_numasim::workload::{Phase, PhasedWorkload};
        let session = thread_session(Policy::TreeMatch);
        let a = PhasedWorkload::rotating_stencil(2, 64.0, 8.0, 16.0, 64.0, &[2]);
        let b = PhasedWorkload::rotating_stencil(3, 64.0, 8.0, 16.0, 64.0, &[2]);
        let malformed = PhasedWorkload {
            phases: vec![
                Phase { graph: a.phases[0].graph.clone(), iterations: 2 },
                Phase { graph: b.phases[0].graph.clone(), iterations: 2 },
            ],
        };
        let err = session.run(malformed).unwrap_err();
        assert_eq!(err, OrwlError::Config(ConfigError::MismatchedPhases { phase: 1, expected: 4, got: 9 }));
    }

    #[test]
    fn phased_workload_is_mismatched_on_threads() {
        let session = thread_session(Policy::TreeMatch);
        let workload = PhasedWorkload::rotating_stencil(2, 64.0, 8.0, 16.0, 64.0, &[2]);
        match session.run(workload).unwrap_err() {
            OrwlError::Config(ConfigError::WorkloadMismatch { backend, expected }) => {
                assert_eq!(backend, "threads");
                assert_eq!(expected, "program");
            }
            other => panic!("expected WorkloadMismatch, got {other:?}"),
        }
    }

    #[test]
    fn thread_backend_runs_and_reports_unified_fields() {
        let session = thread_session(Policy::TreeMatch);
        let (program, counter) = counter_program(4, 200);
        let report = session.run(program).unwrap();
        assert_eq!(counter.snapshot(), 800);
        assert_eq!(report.backend, "threads");
        assert_eq!(report.mode, "static");
        assert!(report.time.as_wall().unwrap() > Duration::ZERO);
        assert!(report.time.seconds() > 0.0);
        assert!(report.plan.placement.bound_fraction() > 0.99);
        let details = report.thread.as_ref().unwrap();
        assert_eq!(details.stats.tasks_finished, 4);
        assert_eq!(details.per_task_time.len(), 4);
        assert!(details.max_task_time().as_secs_f64() <= report.time.seconds());
        assert!(report.adapt.is_none());
        // Breakdown and hop-bytes are consistent with the plan's own metric.
        assert_eq!(report.breakdown, report.plan.breakdown(&session.config().topology));
        assert_eq!(report.hop_bytes, report.plan.hop_bytes(&session.config().topology));
    }

    #[test]
    fn builder_defaults_match_the_papers_bind_configuration() {
        let session =
            Session::builder().topology(synthetic::laptop()).backend(ThreadBackend).build().unwrap();
        assert_eq!(session.config().policy, Policy::TreeMatch);
        assert_eq!(session.config().control_threads, 1);
        assert_eq!(session.config().mode.name(), "static");
        assert_eq!(session.backend_name(), "threads");
        assert!(format!("{session:?}").contains("threads"));
    }

    #[test]
    fn adaptive_thread_session_drives_the_controller() {
        struct CountingController(std::sync::atomic::AtomicU64);
        impl crate::monitor::AccessSink for CountingController {
            fn on_access(&self, _: crate::task::TaskId, _: crate::location::LocationId, _: AccessMode) {}
        }
        impl AdaptiveController for CountingController {
            fn sink(&self) -> Arc<dyn crate::monitor::AccessSink> {
                Arc::new(CountingController(std::sync::atomic::AtomicU64::new(0)))
            }
            fn on_run_start(&self, _: &[TaskSpec], _: &PlacementPlan, _: &orwl_topo::topology::Topology) {}
            fn on_epoch(&self, _epoch: u64) -> Option<orwl_treematch::mapping::Placement> {
                self.0.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                None
            }
        }
        let controller = Arc::new(CountingController(std::sync::atomic::AtomicU64::new(0)));
        let session = Session::builder()
            .topology(synthetic::laptop())
            .binder(Arc::new(RecordingBinder::new()))
            .adaptive(AdaptiveSpec::with_controller(
                Arc::clone(&controller) as Arc<dyn AdaptiveController>,
                Duration::from_millis(5),
            ))
            .backend(ThreadBackend)
            .build()
            .unwrap();
        let counter = Location::new("slow", 0u64);
        let mut program = OrwlProgram::new();
        let loc = Arc::clone(&counter);
        program.add_task(TaskSpec::new("slow", vec![LocationLink::write(counter.id(), 8.0)]), move |_| {
            let mut h = loc.iterative_handle(AccessMode::Write);
            for _ in 0..10 {
                *h.acquire().unwrap() += 1;
                std::thread::sleep(Duration::from_millis(2));
            }
        });
        let report = session.run(program).unwrap();
        let adapt = report.adapt.expect("adaptive run reports counters");
        assert!(adapt.epochs >= 1);
        assert_eq!(adapt.epochs, controller.0.load(std::sync::atomic::Ordering::Relaxed));
    }
}
