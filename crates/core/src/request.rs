//! Lock requests: access modes, states and tokens.

/// How a task intends to access a location.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessMode {
    /// Shared access: adjacent read requests are granted together.
    Read,
    /// Exclusive access.
    Write,
}

impl AccessMode {
    /// True for [`AccessMode::Write`].
    pub fn is_write(self) -> bool {
        self == AccessMode::Write
    }
}

/// Lifecycle of a request inside a location's FIFO, as in the ORWL model:
/// `requested → allocated → released`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestState {
    /// Posted, waiting for its turn.
    Requested,
    /// Granted: the owner may access the data.
    Allocated,
    /// Finished; the slot will be garbage-collected from the FIFO.
    Released,
}

/// A token identifying one posted request.  Tokens are cheap to copy and
/// only meaningful for the FIFO that issued them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestToken {
    seq: u64,
    mode: AccessMode,
}

impl RequestToken {
    pub(crate) fn new(seq: u64, mode: AccessMode) -> Self {
        RequestToken { seq, mode }
    }

    /// Position counter assigned at insertion (monotonically increasing per
    /// FIFO).
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Access mode the request was posted with.
    pub fn mode(&self) -> AccessMode {
        self.mode
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_predicates() {
        assert!(AccessMode::Write.is_write());
        assert!(!AccessMode::Read.is_write());
    }

    #[test]
    fn token_accessors() {
        let t = RequestToken::new(42, AccessMode::Read);
        assert_eq!(t.seq(), 42);
        assert_eq!(t.mode(), AccessMode::Read);
        let copy = t;
        assert_eq!(copy, t);
    }

    #[test]
    fn state_transitions_are_distinct() {
        assert_ne!(RequestState::Requested, RequestState::Allocated);
        assert_ne!(RequestState::Allocated, RequestState::Released);
    }
}
