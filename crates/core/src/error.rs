//! Error type of the ORWL runtime.

use std::fmt;

/// Errors returned by ORWL handles and the runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OrwlError {
    /// `acquire` was called on a handle with no posted request.
    NoPendingRequest,
    /// `request` was called while a request is already pending or held.
    RequestAlreadyPosted,
    /// A write access was attempted through a read guard.
    WriteThroughReadGuard,
    /// The runtime was asked to run a program with no tasks.
    EmptyProgram,
    /// A task referenced a location id that was never registered.
    UnknownLocation(u64),
    /// Thread binding failed (detail in the message).
    Binding(String),
    /// A task panicked; the message carries the task name.
    TaskPanicked(String),
}

impl fmt::Display for OrwlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OrwlError::NoPendingRequest => write!(f, "acquire called without a pending request"),
            OrwlError::RequestAlreadyPosted => write!(f, "a request is already posted on this handle"),
            OrwlError::WriteThroughReadGuard => write!(f, "cannot write through a read guard"),
            OrwlError::EmptyProgram => write!(f, "the program has no tasks"),
            OrwlError::UnknownLocation(id) => write!(f, "unknown location id {id}"),
            OrwlError::Binding(m) => write!(f, "thread binding failed: {m}"),
            OrwlError::TaskPanicked(name) => write!(f, "task {name:?} panicked"),
        }
    }
}

impl std::error::Error for OrwlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        assert!(OrwlError::NoPendingRequest.to_string().contains("pending"));
        assert!(OrwlError::RequestAlreadyPosted.to_string().contains("already"));
        assert!(OrwlError::UnknownLocation(7).to_string().contains('7'));
        assert!(OrwlError::Binding("no cpu".into()).to_string().contains("no cpu"));
        assert!(OrwlError::TaskPanicked("t3".into()).to_string().contains("t3"));
        assert!(OrwlError::EmptyProgram.to_string().contains("no tasks"));
        assert!(OrwlError::WriteThroughReadGuard.to_string().contains("read guard"));
    }
}
