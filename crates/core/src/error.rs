//! Error types of the ORWL runtime and the `Session` front door.

use std::fmt;

/// A configuration rejected by [`Session`](crate::session::Session)
/// validation — every way a builder or a run request can be wrong is a
/// typed variant here, never a panic or a silently clamped value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// `build` was called without a topology.
    MissingTopology,
    /// `build` was called without an execution backend.
    MissingBackend,
    /// Adaptive mode was requested on a backend that needs an
    /// [`AdaptiveController`](crate::runtime::AdaptiveController), but the
    /// [`AdaptiveSpec`](crate::runtime::AdaptiveSpec) carries none.
    MissingController,
    /// The workload handed to `run` has no tasks.
    EmptyProgram,
    /// Adaptive mode with a zero-length epoch (wall-clock or iterations):
    /// the monitor would spin without ever observing anything.
    ZeroAdaptiveEpoch,
    /// More control threads requested than the topology has PUs.
    ControlThreadOverflow {
        /// Control threads requested on the builder.
        requested: usize,
        /// PUs available on the session's topology.
        available: usize,
    },
    /// The backend does not support the requested run mode (e.g. `Oracle`
    /// on the real thread runtime, which cannot look into the future).
    UnsupportedMode {
        /// Backend name.
        backend: String,
        /// Mode name.
        mode: String,
    },
    /// The backend cannot execute this kind of workload (e.g. a phased
    /// task-graph workload handed to the thread runtime).
    WorkloadMismatch {
        /// Backend name.
        backend: String,
        /// The workload kind the backend expects.
        expected: String,
    },
    /// The session topology is not the one the backend models (e.g. a
    /// simulator backend wrapping a different machine).
    TopologyMismatch {
        /// Backend name.
        backend: String,
        /// Name of the topology the backend models.
        expected: String,
        /// Name of the topology the session was built with.
        got: String,
    },
    /// The [`AdaptiveSpec`](crate::runtime::AdaptiveSpec) carries a
    /// controller, but this backend drives adaptation with its own engine
    /// and would silently ignore it.
    UnsupportedController {
        /// Backend name.
        backend: String,
    },
    /// The phases of a phased workload disagree on the task count.
    MismatchedPhases {
        /// Index of the offending phase.
        phase: usize,
        /// Task count of the first phase.
        expected: usize,
        /// Task count of the offending phase.
        got: usize,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::MissingTopology => write!(f, "session builder has no topology"),
            ConfigError::MissingBackend => write!(f, "session builder has no execution backend"),
            ConfigError::MissingController => {
                write!(f, "adaptive mode on this backend requires a controller")
            }
            ConfigError::EmptyProgram => write!(f, "the workload has no tasks"),
            ConfigError::ZeroAdaptiveEpoch => {
                write!(f, "adaptive mode requires a non-zero epoch length")
            }
            ConfigError::ControlThreadOverflow { requested, available } => {
                write!(f, "{requested} control threads requested but the topology has only {available} PUs")
            }
            ConfigError::UnsupportedMode { backend, mode } => {
                write!(f, "backend {backend:?} does not support the {mode:?} run mode")
            }
            ConfigError::WorkloadMismatch { backend, expected } => {
                write!(f, "backend {backend:?} expects a {expected} workload")
            }
            ConfigError::TopologyMismatch { backend, expected, got } => {
                write!(
                    f,
                    "backend {backend:?} models topology {expected:?} but the session was built \
                     with {got:?}"
                )
            }
            ConfigError::UnsupportedController { backend } => {
                write!(
                    f,
                    "backend {backend:?} drives adaptation with its own engine; use \
                     AdaptiveSpec::per_iterations instead of a controller"
                )
            }
            ConfigError::MismatchedPhases { phase, expected, got } => {
                write!(f, "phase {phase} has {got} tasks but the first phase has {expected}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Errors returned by ORWL handles and the runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OrwlError {
    /// `acquire` was called on a handle with no posted request.
    NoPendingRequest,
    /// `request` was called while a request is already pending or held.
    RequestAlreadyPosted,
    /// A write access was attempted through a read guard.
    WriteThroughReadGuard,
    /// The runtime was asked to run a program with no tasks.
    EmptyProgram,
    /// A task referenced a location id that was never registered.
    UnknownLocation(u64),
    /// Thread binding failed (detail in the message).
    Binding(String),
    /// A task panicked; the message carries the task name.
    TaskPanicked(String),
    /// A worker process of a multi-process backend failed (exited, panicked
    /// or stopped responding); `detail` carries the failure reason and the
    /// tail of the worker's stderr.
    WorkerFailed {
        /// Node index of the failed worker.
        node: usize,
        /// Failure reason plus the worker's captured stderr tail.
        detail: String,
    },
    /// The session configuration was rejected (see [`ConfigError`]).
    Config(ConfigError),
}

impl From<ConfigError> for OrwlError {
    fn from(e: ConfigError) -> Self {
        OrwlError::Config(e)
    }
}

impl fmt::Display for OrwlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OrwlError::NoPendingRequest => write!(f, "acquire called without a pending request"),
            OrwlError::RequestAlreadyPosted => write!(f, "a request is already posted on this handle"),
            OrwlError::WriteThroughReadGuard => write!(f, "cannot write through a read guard"),
            OrwlError::EmptyProgram => write!(f, "the program has no tasks"),
            OrwlError::UnknownLocation(id) => write!(f, "unknown location id {id}"),
            OrwlError::Binding(m) => write!(f, "thread binding failed: {m}"),
            OrwlError::TaskPanicked(name) => write!(f, "task {name:?} panicked"),
            OrwlError::WorkerFailed { node, detail } => {
                write!(f, "worker process for node {node} failed: {detail}")
            }
            OrwlError::Config(e) => write!(f, "invalid session configuration: {e}"),
        }
    }
}

impl std::error::Error for OrwlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        assert!(OrwlError::NoPendingRequest.to_string().contains("pending"));
        assert!(OrwlError::RequestAlreadyPosted.to_string().contains("already"));
        assert!(OrwlError::UnknownLocation(7).to_string().contains('7'));
        assert!(OrwlError::Binding("no cpu".into()).to_string().contains("no cpu"));
        assert!(OrwlError::TaskPanicked("t3".into()).to_string().contains("t3"));
        assert!(OrwlError::EmptyProgram.to_string().contains("no tasks"));
        assert!(OrwlError::WriteThroughReadGuard.to_string().contains("read guard"));
        let worker = OrwlError::WorkerFailed { node: 3, detail: "exit code 101".into() };
        assert!(worker.to_string().contains("node 3"));
        assert!(worker.to_string().contains("exit code 101"));
    }

    #[test]
    fn config_errors_convert_and_display() {
        let e: OrwlError = ConfigError::MissingTopology.into();
        assert_eq!(e, OrwlError::Config(ConfigError::MissingTopology));
        assert!(e.to_string().contains("topology"));
        assert!(ConfigError::MissingBackend.to_string().contains("backend"));
        assert!(ConfigError::MissingController.to_string().contains("controller"));
        assert!(ConfigError::EmptyProgram.to_string().contains("no tasks"));
        assert!(ConfigError::ZeroAdaptiveEpoch.to_string().contains("epoch"));
        let overflow = ConfigError::ControlThreadOverflow { requested: 9, available: 8 };
        assert!(overflow.to_string().contains('9') && overflow.to_string().contains('8'));
        let mode = ConfigError::UnsupportedMode { backend: "threads".into(), mode: "oracle".into() };
        assert!(mode.to_string().contains("oracle"));
        let kind = ConfigError::WorkloadMismatch { backend: "numasim".into(), expected: "phased".into() };
        assert!(kind.to_string().contains("phased"));
        let topo = ConfigError::TopologyMismatch {
            backend: "numasim".into(),
            expected: "cluster".into(),
            got: "laptop".into(),
        };
        assert!(topo.to_string().contains("cluster") && topo.to_string().contains("laptop"));
        let ctrl = ConfigError::UnsupportedController { backend: "numasim".into() };
        assert!(ctrl.to_string().contains("per_iterations"));
        let phases = ConfigError::MismatchedPhases { phase: 1, expected: 16, got: 25 };
        assert!(phases.to_string().contains("16") && phases.to_string().contains("25"));
    }
}
