//! JSON support for the `Session` API's report types.
//!
//! The value tree, writer, parser and [`ToJson`] trait themselves live in
//! the dependency-free `orwl-obs` leaf crate (see `orwl_obs::json`) so the
//! observability exporters and the lab share one deterministic
//! implementation; this module re-exports them under the historical
//! `orwl_core::json` path and implements [`ToJson`] for the core report
//! types ([`Report`], [`AdaptReport`], [`ClusterTraffic`], [`RunTime`]), so
//! any backend's result can be logged as one JSON object.  (The
//! `TrafficBreakdown` impl lives next to its type in `orwl-comm`; the
//! orphan rule keeps it out of this crate.)

pub use orwl_obs::json::{Json, JsonError, ToJson};

use crate::runtime::AdaptReport;
use crate::session::{ClusterTraffic, Report, RunTime, ThreadDetails};

impl ToJson for AdaptReport {
    fn to_json(&self) -> Json {
        let mut o = Json::obj();
        o.push("epochs", self.epochs)
            .push("replacements", self.replacements)
            .push("rebinds_applied", self.rebinds_applied)
            .push("node_reshards", self.node_reshards)
            .push("drift_deltas", Json::Arr(self.drift_deltas.iter().map(|&d| Json::Num(d)).collect()));
        o
    }
}

impl ToJson for ClusterTraffic {
    fn to_json(&self) -> Json {
        let mut o = Json::obj();
        o.push("n_nodes", self.n_nodes)
            .push("intra_node_hop_bytes", self.intra_node_hop_bytes)
            .push("inter_node_hop_bytes", self.inter_node_hop_bytes)
            .push("inter_node_bytes", self.inter_node_bytes)
            .push("inter_node_fraction", self.inter_node_fraction());
        o
    }
}

impl ToJson for RunTime {
    /// `{"kind": "wall"|"simulated", "seconds": …}` — note that wall
    /// seconds are inherently non-reproducible; deterministic artifacts
    /// (the lab reporter) null them out instead of embedding this value.
    fn to_json(&self) -> Json {
        let mut o = Json::obj();
        match self {
            RunTime::Wall(d) => o.push("kind", "wall").push("seconds", d.as_secs_f64()),
            RunTime::Simulated(s) => o.push("kind", "simulated").push("seconds", *s),
        };
        o
    }
}

impl ToJson for ThreadDetails {
    fn to_json(&self) -> Json {
        let mut o = Json::obj();
        o.push("tasks_finished", self.stats.tasks_finished)
            .push("max_task_seconds", self.max_task_time().as_secs_f64());
        o
    }
}

impl ToJson for Report {
    fn to_json(&self) -> Json {
        let mut o = Json::obj();
        o.push("backend", self.backend.as_str())
            .push("mode", self.mode)
            .push("policy", self.plan.policy.name())
            .push("time", self.time.to_json())
            .push("hop_bytes", self.hop_bytes)
            .push("breakdown", self.breakdown.to_json())
            .push("adapt", self.adapt.as_ref().map(ToJson::to_json))
            .push("thread", self.thread.as_ref().map(ToJson::to_json))
            .push("fabric", self.fabric.as_ref().map(ToJson::to_json))
            .push("obs", self.obs.as_ref().map(ToJson::to_json));
        o
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orwl_comm::metrics::TrafficBreakdown;

    #[test]
    fn breakdown_and_adapt_reports_serialise_with_stable_keys() {
        let b = TrafficBreakdown {
            same_pu: 1.0,
            same_core: 2.0,
            shared_cache: 3.0,
            same_numa: 4.0,
            cross_numa: 5.0,
            cross_node: 0.0,
        };
        let j = b.to_json();
        assert_eq!(j.get("cross_numa").unwrap().as_f64().unwrap(), 5.0);
        assert!((j.get("local_fraction").unwrap().as_f64().unwrap() - 10.0 / 15.0).abs() < 1e-12);

        let a = AdaptReport {
            epochs: 10,
            replacements: 2,
            rebinds_applied: 0,
            node_reshards: 1,
            drift_deltas: vec![0.1, 0.4],
        };
        let j = a.to_json();
        assert_eq!(j.get("epochs").unwrap().as_f64().unwrap(), 10.0);
        assert_eq!(j.get("drift_deltas").unwrap().as_arr().unwrap().len(), 2);
        let parsed = Json::parse(&j.to_string()).unwrap();
        assert_eq!(parsed, j);
    }

    #[test]
    fn runtime_and_cluster_traffic_serialise() {
        let w = RunTime::Wall(std::time::Duration::from_millis(1500));
        assert_eq!(w.to_json().get("kind").unwrap().as_str().unwrap(), "wall");
        let s = RunTime::Simulated(0.5);
        assert_eq!(s.to_json().get("seconds").unwrap().as_f64().unwrap(), 0.5);
        let t = ClusterTraffic {
            n_nodes: 4,
            intra_node_hop_bytes: 30.0,
            inter_node_hop_bytes: 10.0,
            inter_node_bytes: 5.0,
        };
        let j = t.to_json();
        assert_eq!(j.get("n_nodes").unwrap().as_f64().unwrap(), 4.0);
        assert!((j.get("inter_node_fraction").unwrap().as_f64().unwrap() - 0.25).abs() < 1e-12);
    }
}
