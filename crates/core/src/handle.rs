//! Handles and guards: how a task accesses a location.
//!
//! A [`Handle`] binds one task to one location with a fixed access mode,
//! mirroring `orwl_handle` in the reference C library.  The protocol is
//!
//! 1. [`Handle::request`] — post a request in the location's FIFO (this is
//!    what fixes the global ordering; in iterative programs all tasks post
//!    their initial requests during a deterministic initialisation phase);
//! 2. [`Handle::acquire`] — block until the request is granted; returns an
//!    RAII [`OrwlGuard`] giving access to the data;
//! 3. drop the guard — releases the lock.  For *iterative* handles
//!    (`orwl_handle2` in the C library) a new request is automatically
//!    re-posted at the tail of the FIFO, which yields the periodic schedule
//!    iterative ORWL applications rely on.

use crate::error::OrwlError;
use crate::location::Location;
use crate::request::{AccessMode, RequestToken};
use parking_lot::lock_api::{ArcRwLockReadGuard, ArcRwLockWriteGuard};
use parking_lot::RawRwLock;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A task's handle on a location.
#[derive(Debug)]
pub struct Handle<T> {
    location: Arc<Location<T>>,
    mode: AccessMode,
    iterative: bool,
    pending: Option<RequestToken>,
    /// Cumulated time spent blocked in `acquire` (statistics).
    wait_time: Duration,
    /// Number of successful acquisitions (statistics).
    acquisitions: u64,
}

impl<T> Handle<T> {
    /// Creates a one-shot handle (requests must be re-posted manually).
    pub fn new(location: Arc<Location<T>>, mode: AccessMode) -> Self {
        Handle { location, mode, iterative: false, pending: None, wait_time: Duration::ZERO, acquisitions: 0 }
    }

    /// Creates an iterative handle: every release re-posts a request.
    pub fn new_iterative(location: Arc<Location<T>>, mode: AccessMode) -> Self {
        Handle { location, mode, iterative: true, pending: None, wait_time: Duration::ZERO, acquisitions: 0 }
    }

    /// The location this handle is attached to.
    pub fn location(&self) -> &Arc<Location<T>> {
        &self.location
    }

    /// The access mode of this handle.
    pub fn mode(&self) -> AccessMode {
        self.mode
    }

    /// True when a request is currently posted (or held).
    pub fn has_pending_request(&self) -> bool {
        self.pending.is_some()
    }

    /// Total time spent blocked in [`Handle::acquire`].
    pub fn total_wait_time(&self) -> Duration {
        self.wait_time
    }

    /// Number of accesses granted so far.
    pub fn acquisitions(&self) -> u64 {
        self.acquisitions
    }

    /// Posts a request in the location's FIFO.
    ///
    /// Returns [`OrwlError::RequestAlreadyPosted`] when a request is already
    /// pending — the ORWL model requires exactly one outstanding request per
    /// handle.
    pub fn request(&mut self) -> Result<(), OrwlError> {
        if self.pending.is_some() {
            return Err(OrwlError::RequestAlreadyPosted);
        }
        self.pending = Some(self.location.fifo().insert(self.mode));
        Ok(())
    }

    /// Blocks until the posted request is granted and returns the guard.
    ///
    /// Returns [`OrwlError::NoPendingRequest`] when [`Handle::request`] was
    /// not called first (one-shot handles) and the handle is not iterative.
    /// Iterative handles post their first request lazily on first acquire.
    pub fn acquire(&mut self) -> Result<OrwlGuard<'_, T>, OrwlError> {
        if self.pending.is_none() {
            if self.iterative {
                self.request()?;
            } else {
                return Err(OrwlError::NoPendingRequest);
            }
        }
        let token = self.pending.expect("request posted above");
        let start = Instant::now();
        self.location.fifo().acquire(&token);
        let waited = start.elapsed();
        self.wait_time += waited;
        self.acquisitions += 1;
        if orwl_obs::enabled() {
            orwl_obs::lock_wait(self.location.id().0, waited.as_nanos() as u64);
        }
        crate::monitor::on_lock_granted(self.location.id(), self.mode);
        let data = match self.mode {
            AccessMode::Read => GuardData::Read(self.location.data().read_arc()),
            AccessMode::Write => GuardData::Write(self.location.data().write_arc()),
        };
        Ok(OrwlGuard { handle: self, data: Some(data) })
    }

    /// Non-blocking variant of [`Handle::acquire`]: returns `Ok(None)` when
    /// the request is not grantable yet.
    pub fn try_acquire(&mut self) -> Result<Option<OrwlGuard<'_, T>>, OrwlError> {
        if self.pending.is_none() {
            if self.iterative {
                self.request()?;
            } else {
                return Err(OrwlError::NoPendingRequest);
            }
        }
        let token = self.pending.expect("request posted above");
        if !self.location.fifo().try_acquire(&token) {
            return Ok(None);
        }
        self.acquisitions += 1;
        crate::monitor::on_lock_granted(self.location.id(), self.mode);
        let data = match self.mode {
            AccessMode::Read => GuardData::Read(self.location.data().read_arc()),
            AccessMode::Write => GuardData::Write(self.location.data().write_arc()),
        };
        Ok(Some(OrwlGuard { handle: self, data: Some(data) }))
    }

    /// Cancels the pending request, if any, without accessing the data.
    pub fn cancel(&mut self) {
        if let Some(token) = self.pending.take() {
            self.location.fifo().release(&token);
        }
    }

    /// Called by the guard on drop.
    fn finish_release(&mut self) {
        if let Some(token) = self.pending.take() {
            if self.iterative {
                // Atomically release and re-post so no other handle can slip
                // a request in between and perturb the periodic schedule.
                self.pending = Some(self.location.fifo().release_and_reinsert(&token));
            } else {
                self.location.fifo().release(&token);
            }
        } else if self.iterative {
            self.pending = Some(self.location.fifo().insert(self.mode));
        }
    }
}

impl<T> Drop for Handle<T> {
    fn drop(&mut self) {
        self.cancel();
    }
}

enum GuardData<T> {
    Read(ArcRwLockReadGuard<RawRwLock, T>),
    Write(ArcRwLockWriteGuard<RawRwLock, T>),
}

/// RAII guard giving access to a location's data while the lock is held.
///
/// Dereference it to read; use [`OrwlGuard::as_mut`] (or `DerefMut`, which
/// panics on read guards) to write.  Dropping the guard releases the lock
/// and, for iterative handles, re-posts the next request.
pub struct OrwlGuard<'a, T> {
    handle: &'a mut Handle<T>,
    data: Option<GuardData<T>>,
}

impl<T> OrwlGuard<'_, T> {
    /// Mutable access to the data; `None` for read guards.
    pub fn as_mut(&mut self) -> Option<&mut T> {
        match self.data.as_mut() {
            Some(GuardData::Write(g)) => Some(&mut *g),
            _ => None,
        }
    }

    /// The access mode this guard was obtained with.
    pub fn mode(&self) -> AccessMode {
        self.handle.mode
    }
}

impl<T> std::ops::Deref for OrwlGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        match self.data.as_ref().expect("guard data present until drop") {
            GuardData::Read(g) => g,
            GuardData::Write(g) => g,
        }
    }
}

impl<T> std::ops::DerefMut for OrwlGuard<'_, T> {
    /// # Panics
    /// Panics when the guard was obtained through a read handle.
    fn deref_mut(&mut self) -> &mut T {
        match self.data.as_mut().expect("guard data present until drop") {
            GuardData::Write(g) => &mut *g,
            GuardData::Read(_) => panic!("{}", OrwlError::WriteThroughReadGuard),
        }
    }
}

impl<T> Drop for OrwlGuard<'_, T> {
    fn drop(&mut self) {
        // Drop the data guard before touching the FIFO so a re-posted writer
        // can immediately take the RwLock.
        self.data = None;
        self.handle.finish_release();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn one_shot_write_handle_roundtrip() {
        let loc = Location::new("x", 0i64);
        let mut h = loc.handle(AccessMode::Write);
        assert!(matches!(h.acquire(), Err(OrwlError::NoPendingRequest)));
        h.request().unwrap();
        assert!(matches!(h.request(), Err(OrwlError::RequestAlreadyPosted)));
        {
            let mut g = h.acquire().unwrap();
            *g = 7;
            assert_eq!(*g, 7);
            assert_eq!(g.mode(), AccessMode::Write);
        }
        assert!(!h.has_pending_request(), "one-shot handles do not re-post");
        assert_eq!(loc.snapshot(), 7);
        assert_eq!(h.acquisitions(), 1);
    }

    #[test]
    fn read_guard_cannot_write() {
        let loc = Location::new("x", 5u32);
        let mut h = loc.handle(AccessMode::Read);
        h.request().unwrap();
        let mut g = h.acquire().unwrap();
        assert_eq!(*g, 5);
        assert!(g.as_mut().is_none());
    }

    #[test]
    #[should_panic]
    fn deref_mut_on_read_guard_panics() {
        let loc = Location::new("x", 5u32);
        let mut h = loc.handle(AccessMode::Read);
        h.request().unwrap();
        let mut g = h.acquire().unwrap();
        *g = 6;
    }

    #[test]
    fn iterative_handle_reposts_on_release() {
        let loc = Location::new("x", 0u64);
        let mut h = loc.iterative_handle(AccessMode::Write);
        for i in 1..=5u64 {
            let mut g = h.acquire().unwrap(); // first acquire posts lazily
            *g = i;
            drop(g);
            assert!(h.has_pending_request(), "iterative handle re-posts automatically");
        }
        assert_eq!(loc.snapshot(), 5);
        assert_eq!(h.acquisitions(), 5);
        // The FIFO holds exactly the one re-posted request.
        assert_eq!(loc.fifo().len(), 1);
    }

    #[test]
    fn try_acquire_returns_none_when_blocked() {
        let loc = Location::new("x", 0u8);
        let mut first = loc.handle(AccessMode::Write);
        let mut second = loc.handle(AccessMode::Write);
        first.request().unwrap();
        second.request().unwrap();
        let g = first.acquire().unwrap();
        assert!(second.try_acquire().unwrap().is_none());
        drop(g);
        assert!(second.try_acquire().unwrap().is_some());
    }

    #[test]
    fn cancel_releases_queue_slot() {
        let loc = Location::new("x", 0u8);
        let mut first = loc.handle(AccessMode::Write);
        let mut second = loc.handle(AccessMode::Write);
        first.request().unwrap();
        second.request().unwrap();
        first.cancel();
        assert!(second.try_acquire().unwrap().is_some());
    }

    #[test]
    fn dropping_a_handle_releases_its_request() {
        let loc = Location::new("x", 0u8);
        {
            let mut h = loc.handle(AccessMode::Write);
            h.request().unwrap();
        } // dropped while holding a queued request
        let mut h2 = loc.handle(AccessMode::Write);
        h2.request().unwrap();
        assert!(h2.try_acquire().unwrap().is_some());
    }

    #[test]
    fn writer_excludes_concurrent_writer_across_threads() {
        let loc = Location::new("counter", 0u64);
        let mut joins = Vec::new();
        for _ in 0..4 {
            let loc = Arc::clone(&loc);
            joins.push(thread::spawn(move || {
                let mut h = loc.handle(AccessMode::Write);
                for _ in 0..1000 {
                    h.request().unwrap();
                    let mut g = h.acquire().unwrap();
                    *g += 1;
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(loc.snapshot(), 4000);
    }

    #[test]
    fn readers_and_writers_alternate_correctly() {
        // A writer increments; readers observe only monotonically increasing
        // values and never a torn intermediate (trivially true for u64, but
        // the test exercises the full request/acquire/release protocol under
        // concurrency).
        let loc = Location::new("x", 0u64);
        let writer_loc = Arc::clone(&loc);
        let writer = thread::spawn(move || {
            let mut h = writer_loc.iterative_handle(AccessMode::Write);
            for _ in 0..200 {
                let mut g = h.acquire().unwrap();
                *g += 1;
            }
        });
        let mut readers = Vec::new();
        for _ in 0..3 {
            let loc = Arc::clone(&loc);
            readers.push(thread::spawn(move || {
                let mut h = loc.iterative_handle(AccessMode::Read);
                let mut last = 0u64;
                for _ in 0..100 {
                    let g = h.acquire().unwrap();
                    assert!(*g >= last);
                    last = *g;
                }
            }));
        }
        writer.join().unwrap();
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(loc.snapshot(), 200);
    }

    #[test]
    fn wait_time_accumulates_when_contended() {
        let loc = Location::new("x", 0u8);
        let mut a = loc.handle(AccessMode::Write);
        a.request().unwrap();
        let guard = a.acquire().unwrap();
        let loc2 = Arc::clone(&loc);
        let t = thread::spawn(move || {
            let mut b = loc2.handle(AccessMode::Write);
            b.request().unwrap();
            let g = b.acquire().unwrap();
            drop(g);
            b.total_wait_time()
        });
        thread::sleep(Duration::from_millis(30));
        drop(guard);
        let waited = t.join().unwrap();
        assert!(waited >= Duration::from_millis(20), "waited {waited:?}");
    }
}
