//! ORWL locations: the shared resources tasks synchronise on.
//!
//! A location pairs a data buffer with a [`LockFifo`] controlling access to
//! it.  In the ORWL model every piece of shared state — a matrix block, a
//! halo buffer, a reduction cell — is a location; tasks never share data any
//! other way.

use crate::fifo::LockFifo;
use crate::handle::Handle;
use crate::request::AccessMode;
use parking_lot::RwLock;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Globally unique identifier of a location (unique within the process).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LocationId(pub u64);

static NEXT_LOCATION_ID: AtomicU64 = AtomicU64::new(0);

/// A shared resource guarded by an ordered read-write lock.
///
/// `T` is the payload type (for the LK23 benchmark: a block of the matrix or
/// a frontier buffer).  Locations are always handled through `Arc`.
#[derive(Debug)]
pub struct Location<T> {
    id: LocationId,
    name: String,
    fifo: LockFifo,
    data: Arc<RwLock<T>>,
}

impl<T> Location<T> {
    /// Creates a new location holding `data`.
    pub fn new(name: impl Into<String>, data: T) -> Arc<Self> {
        Arc::new(Location {
            id: LocationId(NEXT_LOCATION_ID.fetch_add(1, Ordering::Relaxed)),
            name: name.into(),
            fifo: LockFifo::new(),
            data: Arc::new(RwLock::new(data)),
        })
    }

    /// The unique id of this location.
    pub fn id(&self) -> LocationId {
        self.id
    }

    /// The human-readable name given at creation.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The request FIFO (exposed for instrumentation and tests).
    pub fn fifo(&self) -> &LockFifo {
        &self.fifo
    }

    /// The underlying storage; used by guards.
    pub(crate) fn data(&self) -> &Arc<RwLock<T>> {
        &self.data
    }

    /// Creates a one-shot handle on this location.
    pub fn handle(self: &Arc<Self>, mode: AccessMode) -> Handle<T> {
        Handle::new(Arc::clone(self), mode)
    }

    /// Creates an iterative handle (the ORWL `handle2`): releasing an
    /// acquired access automatically re-posts a request at the FIFO tail, so
    /// iterative computations keep a periodic access schedule.
    pub fn iterative_handle(self: &Arc<Self>, mode: AccessMode) -> Handle<T> {
        Handle::new_iterative(Arc::clone(self), mode)
    }

    /// Reads the data outside of any ORWL ordering (initialisation and
    /// verification only — never use this during an iterative computation).
    pub fn snapshot(&self) -> T
    where
        T: Clone,
    {
        self.data.read().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn locations_get_unique_ids_and_keep_names() {
        let a = Location::new("block-0", vec![0u8; 4]);
        let b = Location::new("block-1", vec![0u8; 4]);
        assert_ne!(a.id(), b.id());
        assert_eq!(a.name(), "block-0");
        assert!(a.fifo().is_empty());
    }

    #[test]
    fn snapshot_returns_current_contents() {
        let loc = Location::new("x", 41i32);
        assert_eq!(loc.snapshot(), 41);
    }

    #[test]
    fn handles_can_be_created_in_both_modes() {
        let loc = Location::new("x", 0u64);
        let _r = loc.handle(AccessMode::Read);
        let _w = loc.handle(AccessMode::Write);
        let _i = loc.iterative_handle(AccessMode::Write);
    }
}
