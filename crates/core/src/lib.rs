//! # orwl-core — the ORWL runtime with topology-aware placement
//!
//! A from-scratch Rust implementation of the **Ordered Read-Write Locks**
//! (ORWL) task-based programming model (Clauss & Gustedt, JPDC 2010),
//! enriched with the **topology-aware placement add-on** described in
//! *"Optimizing Locality by Topology-aware Placement for a Task Based
//! Programming Model"* (Gustedt, Jeannot, Mansouri — IEEE CLUSTER 2016).
//!
//! ## The model
//!
//! * Shared state lives in [`Location`]s.  Every location owns a FIFO of
//!   lock requests ([`fifo::LockFifo`]).
//! * Tasks access locations through [`Handle`]s: they *post* a request,
//!   *acquire* it when the FIFO grants it (writers exclusively, adjacent
//!   readers together), and *release* it by dropping the guard.  Iterative
//!   handles re-post automatically, producing the periodic, deadlock-free
//!   schedules iterative ORWL applications are built on.
//! * A program ([`OrwlProgram`]) declares, for every task, the locations it
//!   will use and the per-iteration volume — from which the runtime builds
//!   the thread-to-thread communication matrix.
//! * A [`Session`] (built with [`Session::builder`]) is the single front
//!   door: it validates the configuration (topology, policy, control
//!   threads, run mode) and executes workloads on an [`ExecutionBackend`] —
//!   [`ThreadBackend`] for the real event runtime (one thread per task,
//!   TreeMatch placement via crate `orwl-treematch`, binding via
//!   [`orwl_topo::binding`]), or the NUMA simulator backend from
//!   `orwl-adapt`.
//!
//! ## Quick example
//!
//! ```
//! use orwl_core::prelude::*;
//! use std::sync::Arc;
//!
//! // One shared counter location, four incrementing tasks.
//! let counter = Location::new("counter", 0u64);
//! let mut program = OrwlProgram::new();
//! for t in 0..4 {
//!     let loc = Arc::clone(&counter);
//!     program.add_task(
//!         TaskSpec::new(format!("inc-{t}"), vec![LocationLink::write(counter.id(), 8.0)]),
//!         move |_ctx| {
//!             let mut handle = loc.iterative_handle(AccessMode::Write);
//!             for _ in 0..100 {
//!                 let mut guard = handle.acquire().unwrap();
//!                 *guard += 1;
//!             }
//!         },
//!     );
//! }
//!
//! let session = Session::builder()
//!     .topology(orwl_topo::discover::discover())
//!     .policy(Policy::NoBind)
//!     .backend(ThreadBackend)
//!     .build()
//!     .unwrap();
//! let report = session.run(program).unwrap();
//! assert_eq!(counter.snapshot(), 400);
//! assert_eq!(report.thread.unwrap().stats.tasks_finished, 4);
//! ```

pub mod error;
pub mod fifo;
pub mod handle;
pub mod json;
pub mod location;
pub mod monitor;
pub mod placement;
pub mod request;
pub mod runtime;
pub mod session;
pub mod stats;
pub mod task;

pub use error::{ConfigError, OrwlError};
pub use handle::{Handle, OrwlGuard};
pub use json::{Json, JsonError, ToJson};
pub use location::{Location, LocationId};
pub use monitor::{AccessSink, RebindPlan, SinkRegistration};
pub use placement::{plan_placement, PlacementPlan};
pub use request::{AccessMode, RequestState, RequestToken};
pub use runtime::{
    AdaptReport, AdaptiveController, AdaptiveSpec, ControlEvent, OrwlRuntime, RunReport, RuntimeConfig,
};
pub use session::{
    ClusterTraffic, ExecutionBackend, Mode, Report, RunTime, Session, SessionBuilder, SessionConfig,
    ThreadBackend, ThreadDetails, Workload,
};
pub use stats::{RuntimeStats, StatsSnapshot};
pub use task::{LocationLink, OrwlProgram, TaskContext, TaskId, TaskSpec};

/// Convenient glob import of the most commonly used items.
pub mod prelude {
    pub use crate::error::{ConfigError, OrwlError};
    pub use crate::handle::Handle;
    pub use crate::location::Location;
    pub use crate::request::AccessMode;
    pub use crate::runtime::{AdaptiveSpec, OrwlRuntime, RunReport, RuntimeConfig};
    pub use crate::session::{Mode, Report, RunTime, Session, ThreadBackend, Workload};
    pub use crate::task::{LocationLink, OrwlProgram, TaskContext, TaskSpec};
    pub use orwl_treematch::policies::Policy;
}
