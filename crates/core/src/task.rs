//! Tasks and programs.
//!
//! An ORWL *program* is a set of tasks plus the links (handle declarations)
//! that connect them to locations.  The links are what makes the paper's
//! placement add-on possible: the runtime knows, before execution starts,
//! how many bytes each task will move through each location per iteration,
//! and from that derives the thread-to-thread communication matrix fed to
//! the mapping algorithm.

use crate::location::LocationId;
use crate::request::AccessMode;
use crate::stats::RuntimeStats;
use orwl_comm::matrix::CommMatrix;
use orwl_topo::bitmap::CpuSet;
use std::collections::HashMap;
use std::sync::Arc;

/// Index of a task inside its program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub usize);

/// Declaration that a task will access a location every iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LocationLink {
    /// The location accessed.
    pub location: LocationId,
    /// Read or write access.
    pub mode: AccessMode,
    /// Bytes moved through the location per iteration (the paper's
    /// communication-volume weight).
    pub bytes_per_iteration: f64,
}

impl LocationLink {
    /// Convenience constructor for a read link.
    pub fn read(location: LocationId, bytes_per_iteration: f64) -> Self {
        LocationLink { location, mode: AccessMode::Read, bytes_per_iteration }
    }

    /// Convenience constructor for a write link.
    pub fn write(location: LocationId, bytes_per_iteration: f64) -> Self {
        LocationLink { location, mode: AccessMode::Write, bytes_per_iteration }
    }
}

/// Static description of a task: its name and its location links.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskSpec {
    /// Human-readable name (used in reports and error messages).
    pub name: String,
    /// Locations the task will access every iteration.
    pub links: Vec<LocationLink>,
}

impl TaskSpec {
    /// Creates a spec.
    pub fn new(name: impl Into<String>, links: Vec<LocationLink>) -> Self {
        TaskSpec { name: name.into(), links }
    }
}

/// Runtime context passed to every executing task.
#[derive(Debug, Clone)]
pub struct TaskContext {
    /// The task's index in the program.
    pub task_id: TaskId,
    /// The cpuset the task's thread was bound to, when the placement bound
    /// it (`None` under the NoBind policy).
    pub bound_to: Option<CpuSet>,
    /// Shared runtime statistics the task may update.
    pub stats: Arc<RuntimeStats>,
}

/// The closure type executed by a task's thread.
pub type TaskFn = Box<dyn FnOnce(&TaskContext) + Send + 'static>;

/// A complete ORWL program: tasks, their bodies and their links.
#[derive(Default)]
pub struct OrwlProgram {
    specs: Vec<TaskSpec>,
    bodies: Vec<TaskFn>,
}

impl OrwlProgram {
    /// Creates an empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a task and returns its id.
    pub fn add_task(&mut self, spec: TaskSpec, body: impl FnOnce(&TaskContext) + Send + 'static) -> TaskId {
        self.specs.push(spec);
        self.bodies.push(Box::new(body));
        TaskId(self.specs.len() - 1)
    }

    /// Number of tasks.
    pub fn n_tasks(&self) -> usize {
        self.specs.len()
    }

    /// True when the program has no tasks.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Task specifications in id order.
    pub fn specs(&self) -> &[TaskSpec] {
        &self.specs
    }

    /// Consumes the program and returns `(specs, bodies)` for the runtime.
    pub(crate) fn into_parts(self) -> (Vec<TaskSpec>, Vec<TaskFn>) {
        (self.specs, self.bodies)
    }

    /// Builds the task-to-task communication matrix from the declared links,
    /// exactly as the paper's placement add-on does: for every location, the
    /// data written by its writers flows to each of its readers, weighted by
    /// the reader's declared per-iteration volume.
    pub fn comm_matrix(&self) -> CommMatrix {
        build_comm_matrix(&self.specs)
    }
}

impl std::fmt::Debug for OrwlProgram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OrwlProgram").field("n_tasks", &self.n_tasks()).finish()
    }
}

/// Builds the communication matrix of a set of task specs (see
/// [`OrwlProgram::comm_matrix`]).
pub fn build_comm_matrix(specs: &[TaskSpec]) -> CommMatrix {
    let n = specs.len();
    let mut m = CommMatrix::zeros(n);
    // location -> (writers, readers) with their declared volumes.
    let mut writers: HashMap<LocationId, Vec<(usize, f64)>> = HashMap::new();
    let mut readers: HashMap<LocationId, Vec<(usize, f64)>> = HashMap::new();
    for (t, spec) in specs.iter().enumerate() {
        for link in &spec.links {
            match link.mode {
                AccessMode::Write => {
                    writers.entry(link.location).or_default().push((t, link.bytes_per_iteration))
                }
                AccessMode::Read => {
                    readers.entry(link.location).or_default().push((t, link.bytes_per_iteration))
                }
            }
        }
    }
    for (loc, ws) in &writers {
        if let Some(rs) = readers.get(loc) {
            for &(w, _wbytes) in ws {
                for &(r, rbytes) in rs {
                    if w != r {
                        m.add(w, r, rbytes);
                    }
                }
            }
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::location::Location;

    #[test]
    fn add_task_assigns_sequential_ids() {
        let mut p = OrwlProgram::new();
        assert!(p.is_empty());
        let a = p.add_task(TaskSpec::new("a", vec![]), |_| {});
        let b = p.add_task(TaskSpec::new("b", vec![]), |_| {});
        assert_eq!(a, TaskId(0));
        assert_eq!(b, TaskId(1));
        assert_eq!(p.n_tasks(), 2);
        assert_eq!(p.specs()[1].name, "b");
        assert!(format!("{p:?}").contains("n_tasks"));
    }

    #[test]
    fn comm_matrix_links_writer_to_readers() {
        // Task 0 writes a frontier location that tasks 1 and 2 read.
        let loc = Location::new("frontier", vec![0.0f64; 16]);
        let specs = vec![
            TaskSpec::new("producer", vec![LocationLink::write(loc.id(), 128.0)]),
            TaskSpec::new("left", vec![LocationLink::read(loc.id(), 128.0)]),
            TaskSpec::new("right", vec![LocationLink::read(loc.id(), 64.0)]),
        ];
        let m = build_comm_matrix(&specs);
        assert_eq!(m.order(), 3);
        assert_eq!(m.get(0, 1), 128.0);
        assert_eq!(m.get(0, 2), 64.0);
        assert_eq!(m.get(1, 0), 0.0);
        assert_eq!(m.get(1, 2), 0.0);
    }

    #[test]
    fn comm_matrix_ignores_self_communication() {
        // A task that both writes and reads its own block produces no
        // off-diagonal volume.
        let loc = Location::new("block", vec![0.0f64; 16]);
        let specs = vec![TaskSpec::new(
            "solo",
            vec![LocationLink::write(loc.id(), 100.0), LocationLink::read(loc.id(), 100.0)],
        )];
        let m = build_comm_matrix(&specs);
        assert_eq!(m.total_volume(), 0.0);
    }

    #[test]
    fn comm_matrix_of_chain_of_tasks() {
        // Three tasks in a chain through two locations: 0 → 1 → 2.
        let l01 = Location::new("l01", 0u8);
        let l12 = Location::new("l12", 0u8);
        let specs = vec![
            TaskSpec::new("t0", vec![LocationLink::write(l01.id(), 8.0)]),
            TaskSpec::new("t1", vec![LocationLink::read(l01.id(), 8.0), LocationLink::write(l12.id(), 8.0)]),
            TaskSpec::new("t2", vec![LocationLink::read(l12.id(), 8.0)]),
        ];
        let m = build_comm_matrix(&specs);
        assert_eq!(m.get(0, 1), 8.0);
        assert_eq!(m.get(1, 2), 8.0);
        assert_eq!(m.get(0, 2), 0.0);
        assert_eq!(m.total_volume(), 16.0);
    }

    #[test]
    fn link_constructors_set_modes() {
        let loc = Location::new("x", 0u8);
        assert_eq!(LocationLink::read(loc.id(), 4.0).mode, AccessMode::Read);
        assert_eq!(LocationLink::write(loc.id(), 4.0).mode, AccessMode::Write);
    }

    #[test]
    fn program_comm_matrix_uses_specs() {
        let loc = Location::new("shared", 0u64);
        let mut p = OrwlProgram::new();
        p.add_task(TaskSpec::new("w", vec![LocationLink::write(loc.id(), 32.0)]), |_| {});
        p.add_task(TaskSpec::new("r", vec![LocationLink::read(loc.id(), 32.0)]), |_| {});
        let m = p.comm_matrix();
        assert_eq!(m.get(0, 1), 32.0);
    }
}
