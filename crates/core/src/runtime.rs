//! The event-based ORWL runtime.
//!
//! The runtime executes an [`OrwlProgram`]: it computes a placement for the
//! program's tasks (and for its own control threads), spawns one thread per
//! task — exactly as the reference ORWL library runs each operation on an
//! independent thread — binds every thread according to the placement, and
//! runs a small pool of *control threads* that drain the runtime's event
//! channel (task lifecycle notifications, progress accounting).  Control
//! threads are deliberately real threads doing real work because the
//! paper's Algorithm 1 places them alongside the computation threads.

use crate::error::OrwlError;
use crate::monitor::{self, AccessSink, RebindPlan};
use crate::placement::{plan_placement, PlacementPlan};
use crate::stats::{RuntimeStats, StatsSnapshot};
use crate::task::{OrwlProgram, TaskContext, TaskId, TaskSpec};
use crossbeam::channel;
use orwl_topo::binding::{Binder, NoopBinder};
use orwl_topo::topology::Topology;
use orwl_treematch::mapping::Placement;
use orwl_treematch::policies::Policy;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The brain of an adaptive run, implemented by `orwl_adapt::AdaptiveEngine`
/// (kept as a trait here so `orwl-core` does not depend on `orwl-adapt`).
///
/// The runtime drives it: `on_run_start` once with the initial plan, then
/// `on_epoch` at every epoch boundary from the monitor thread.  Returning a
/// new [`Placement`] from `on_epoch` publishes it to the task threads, which
/// re-bind cooperatively at their next lock acquisition.
pub trait AdaptiveController: Send + Sync {
    /// The access sink to register for the duration of the run.
    fn sink(&self) -> Arc<dyn AccessSink>;

    /// Called once before threads start, with the program's task specs, the
    /// initial placement plan and the machine topology.
    fn on_run_start(&self, specs: &[TaskSpec], plan: &PlacementPlan, topo: &Topology);

    /// Called at every epoch boundary; `epoch` counts from 1.  Returns a
    /// replacement [`Placement`] when the controller decides to migrate.
    fn on_epoch(&self, epoch: u64) -> Option<Placement>;
}

/// Adaptive-mode settings, shared by every execution backend: real-time
/// backends monitor in wall-clock [`epoch`](AdaptiveSpec::epoch)s driven by
/// a [`controller`](AdaptiveSpec::controller); discrete (simulated) backends
/// monitor every [`epoch_iterations`](AdaptiveSpec::epoch_iterations)
/// iterations with their own built-in engine.
#[derive(Clone)]
pub struct AdaptiveSpec {
    /// The drift-detection / re-placement engine, for backends that need an
    /// external brain (the thread runtime).  Discrete backends carry their
    /// own engine and reject controller-bearing specs
    /// ([`ConfigError::UnsupportedController`](crate::error::ConfigError)).
    pub controller: Option<Arc<dyn AdaptiveController>>,
    /// Wall-clock length of one monitoring epoch (real-time backends).
    pub epoch: Duration,
    /// Iterations per monitoring epoch (discrete backends).
    pub epoch_iterations: usize,
}

impl AdaptiveSpec {
    /// Iterations per epoch used when a spec is built for the thread
    /// runtime without an explicit override.
    pub const DEFAULT_EPOCH_ITERATIONS: usize = 4;
    /// Wall-clock epoch used when a spec is built for a simulator backend
    /// without an explicit override.
    pub const DEFAULT_EPOCH: Duration = Duration::from_millis(15);

    /// A spec for real-time backends: `controller` drives the adaptation,
    /// one epoch per `epoch` of wall time.
    #[must_use]
    pub fn with_controller(controller: Arc<dyn AdaptiveController>, epoch: Duration) -> Self {
        AdaptiveSpec { controller: Some(controller), epoch, epoch_iterations: Self::DEFAULT_EPOCH_ITERATIONS }
    }

    /// A spec for discrete backends: one epoch every `epoch_iterations`
    /// simulated iterations, the backend's own engine doing the adaptation.
    #[must_use]
    pub fn per_iterations(epoch_iterations: usize) -> Self {
        AdaptiveSpec { controller: None, epoch: Self::DEFAULT_EPOCH, epoch_iterations }
    }

    /// Replaces the iteration-epoch length.
    #[must_use]
    pub fn with_epoch_iterations(mut self, epoch_iterations: usize) -> Self {
        self.epoch_iterations = epoch_iterations;
        self
    }
}

impl std::fmt::Debug for AdaptiveSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdaptiveSpec")
            .field("controller", &self.controller.as_ref().map(|_| "<dyn AdaptiveController>"))
            .field("epoch", &self.epoch)
            .field("epoch_iterations", &self.epoch_iterations)
            .finish()
    }
}

/// Counters describing the adaptive machinery's activity during a run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AdaptReport {
    /// Epoch boundaries the monitor processed.
    pub epochs: u64,
    /// Re-placements published (i.e. `on_epoch` returned `Some`).
    pub replacements: u64,
    /// Individual thread re-bindings applied by task threads (real thread
    /// backends only; simulated migrations re-bind atomically).
    pub rebinds_applied: u64,
    /// Re-placements that moved at least one task to a *different node*
    /// (cluster backends only — node-level re-sharding is strictly more
    /// expensive than intra-node re-binding and is counted separately).
    pub node_reshards: u64,
    /// Per-epoch structural drift deltas, when the backend records them
    /// (the simulator backend does; the thread runtime's controller keeps
    /// its own timeline).
    pub drift_deltas: Vec<f64>,
}

/// Configuration of a runtime instance.
#[derive(Clone)]
pub struct RuntimeConfig {
    /// The machine topology placements are computed against.
    pub topology: Topology,
    /// The placement policy ([`Policy::TreeMatch`] = the paper's "Bind",
    /// [`Policy::NoBind`] = the unbound baseline).
    pub policy: Policy,
    /// Number of control threads the runtime starts.
    pub control_threads: usize,
    /// How bindings are applied (real `sched_setaffinity`, recording, or
    /// no-op).
    pub binder: Arc<dyn Binder>,
    /// Online monitoring + adaptive re-placement, when enabled.
    pub adaptive: Option<AdaptiveSpec>,
    /// Telemetry recorder the runtime stamps epoch boundaries into and
    /// publishes its final counters to, when observation is enabled.
    pub observer: Option<Arc<orwl_obs::Recorder>>,
}

impl RuntimeConfig {
    /// A configuration with the paper's defaults for `topology` and
    /// `policy`: one control thread, no-op binding (callers supply a real
    /// binder with [`with_binder`](RuntimeConfig::with_binder)), no
    /// adaptation.  The `Session` builder is the public front door; this
    /// constructor serves code that drives [`OrwlRuntime`] directly.
    pub fn new(topology: Topology, policy: Policy) -> Self {
        RuntimeConfig {
            topology,
            policy,
            control_threads: 1,
            binder: Arc::new(NoopBinder),
            adaptive: None,
            observer: None,
        }
    }

    /// Replaces the policy.
    #[must_use]
    pub fn with_policy(mut self, policy: Policy) -> Self {
        self.policy = policy;
        self
    }

    /// Replaces the number of control threads.
    #[must_use]
    pub fn with_control_threads(mut self, n: usize) -> Self {
        self.control_threads = n;
        self
    }

    /// Replaces the binder.
    #[must_use]
    pub fn with_binder(mut self, binder: Arc<dyn Binder>) -> Self {
        self.binder = binder;
        self
    }

    /// Attaches a telemetry recorder.
    #[must_use]
    pub fn with_observer(mut self, observer: Arc<orwl_obs::Recorder>) -> Self {
        self.observer = Some(observer);
        self
    }
}

impl std::fmt::Debug for RuntimeConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RuntimeConfig")
            .field("topology", &self.topology.name())
            .field("policy", &self.policy.name())
            .field("control_threads", &self.control_threads)
            .field("binder", &self.binder.name())
            .field("adaptive", &self.adaptive.as_ref().map(|a| a.epoch))
            .field("observer", &self.observer.is_some())
            .finish()
    }
}

/// Events flowing from computation threads to control threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlEvent {
    /// A task's thread started executing.
    TaskStarted(TaskId),
    /// A task's thread finished executing.
    TaskFinished(TaskId),
}

/// Result of running a program.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Wall-clock time of the whole run (placement + execution + join).
    pub wall_time: Duration,
    /// The placement that was applied.
    pub plan: PlacementPlan,
    /// Per-task execution time, indexed by task id.
    pub per_task_time: Vec<Duration>,
    /// Snapshot of the runtime counters at the end of the run.
    pub stats: StatsSnapshot,
    /// Adaptive-machinery counters; `None` for non-adaptive runs.
    pub adapt: Option<AdaptReport>,
}

impl RunReport {
    /// The longest task execution time (the critical path lower bound).
    #[must_use]
    pub fn max_task_time(&self) -> Duration {
        self.per_task_time.iter().copied().max().unwrap_or(Duration::ZERO)
    }
}

/// The ORWL runtime.
#[derive(Debug)]
pub struct OrwlRuntime {
    config: RuntimeConfig,
}

impl OrwlRuntime {
    /// Creates a runtime with the given configuration.
    pub fn new(config: RuntimeConfig) -> Self {
        OrwlRuntime { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &RuntimeConfig {
        &self.config
    }

    /// Runs a program to completion and reports on the execution.
    ///
    /// Every task runs on its own OS thread (the ORWL execution model); the
    /// calling thread blocks until all tasks and control threads have
    /// finished.
    pub fn run(&self, program: OrwlProgram) -> Result<RunReport, OrwlError> {
        if program.is_empty() {
            return Err(OrwlError::EmptyProgram);
        }
        let started = Instant::now();

        // 1. Placement: extract the communication matrix and map threads.
        let plan =
            plan_placement(&program, &self.config.topology, self.config.policy, self.config.control_threads);
        let compute_cpusets = plan.placement.compute_cpusets();
        let control_cpusets = plan.placement.control_cpusets();

        let stats = Arc::new(RuntimeStats::new());
        let (event_tx, event_rx) = channel::unbounded::<ControlEvent>();

        // 1b. Adaptive mode: hand the controller the initial plan, register
        //     its access sink for the duration of the run, and start the
        //     epoch monitor thread.  Task threads pick re-placements up
        //     cooperatively through the shared RebindPlan.
        let rebind_plan = self
            .config
            .adaptive
            .as_ref()
            .map(|_| RebindPlan::new(program.n_tasks(), Arc::clone(&self.config.binder)));
        let mut sink_registration = None;
        let mut monitor_thread = None;
        let monitor_stop = Arc::new(std::sync::Mutex::new(false));
        let monitor_cv = Arc::new(std::sync::Condvar::new());
        let epochs = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let replacements = Arc::new(std::sync::atomic::AtomicU64::new(0));
        if let Some(spec) = &self.config.adaptive {
            let controller = Arc::clone(
                spec.controller
                    .as_ref()
                    .ok_or(OrwlError::Config(crate::error::ConfigError::MissingController))?,
            );
            controller.on_run_start(program.specs(), &plan, &self.config.topology);
            sink_registration = Some(monitor::register_sink(controller.sink()));
            let epoch_len = spec.epoch;
            let plan_handle = Arc::clone(rebind_plan.as_ref().expect("rebind plan exists in adaptive mode"));
            let stop = Arc::clone(&monitor_stop);
            let cv = Arc::clone(&monitor_cv);
            let epochs = Arc::clone(&epochs);
            let replacements = Arc::clone(&replacements);
            let observer = self.config.observer.clone();
            monitor_thread = Some(
                std::thread::Builder::new()
                    .name("orwl-adapt-monitor".to_string())
                    .spawn(move || {
                        let mut epoch_no = 0u64;
                        'epochs: loop {
                            // Sleep out the full epoch: a spurious condvar
                            // wakeup re-waits on the remaining deadline
                            // instead of being miscounted as a boundary.
                            let deadline = Instant::now() + epoch_len;
                            let mut guard = stop.lock().unwrap_or_else(|e| e.into_inner());
                            loop {
                                if *guard {
                                    break 'epochs;
                                }
                                let now = Instant::now();
                                if now >= deadline {
                                    break;
                                }
                                let (g, _) =
                                    cv.wait_timeout(guard, deadline - now).unwrap_or_else(|e| e.into_inner());
                                guard = g;
                            }
                            drop(guard);
                            epoch_no += 1;
                            epochs.store(epoch_no, std::sync::atomic::Ordering::Relaxed);
                            if let Some(obs) = &observer {
                                obs.record(orwl_obs::EventKind::Epoch { epoch: epoch_no, bytes: 0.0 });
                            }
                            if let Some(placement) = controller.on_epoch(epoch_no) {
                                replacements.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                                plan_handle.publish(placement.compute);
                            }
                        }
                    })
                    .expect("spawning the adapt monitor thread cannot fail"),
            );
        }

        // 2. Control threads: bind them per the placement and let them drain
        //    the event channel until every sender is gone.
        let mut control_joins = Vec::new();
        for k in 0..self.config.control_threads {
            let rx = event_rx.clone();
            let stats = Arc::clone(&stats);
            let binder = Arc::clone(&self.config.binder);
            let cpuset = control_cpusets.get(k).cloned().flatten();
            control_joins.push(
                std::thread::Builder::new()
                    .name(format!("orwl-control-{k}"))
                    .spawn(move || {
                        if let Some(cs) = cpuset {
                            // Binding failures are not fatal for control
                            // threads; the OS fallback is what the paper
                            // describes for the unmappable case.
                            let _ = binder.bind_current_thread(&cs);
                        }
                        while rx.recv().is_ok() {
                            stats.record_control_event();
                        }
                    })
                    .expect("spawning a control thread cannot fail"),
            );
        }
        drop(event_rx);

        // 3. Computation threads: one per task, bound per the placement.
        let (specs, bodies) = program.into_parts();
        let mut task_joins = Vec::new();
        for (idx, (spec, body)) in specs.iter().cloned().zip(bodies).enumerate() {
            let cpuset = compute_cpusets.get(idx).cloned().flatten();
            let binder = Arc::clone(&self.config.binder);
            let stats = Arc::clone(&stats);
            let tx = event_tx.clone();
            let task_id = TaskId(idx);
            let task_rebind = rebind_plan.clone();
            let join = std::thread::Builder::new()
                .name(format!("orwl-task-{}", spec.name))
                .spawn(move || {
                    if let Some(cs) = &cpuset {
                        binder.bind_current_thread(cs).map_err(|e| OrwlError::Binding(e.to_string()))?;
                    }
                    let _monitor_tag = monitor::enter_task(task_id, task_rebind);
                    let ctx = TaskContext { task_id, bound_to: cpuset, stats: Arc::clone(&stats) };
                    let _ = tx.send(ControlEvent::TaskStarted(task_id));
                    stats.record_task_started();
                    let t0 = Instant::now();
                    body(&ctx);
                    let elapsed = t0.elapsed();
                    stats.record_task_finished();
                    let _ = tx.send(ControlEvent::TaskFinished(task_id));
                    Ok::<Duration, OrwlError>(elapsed)
                })
                .expect("spawning a task thread cannot fail");
            task_joins.push((spec.name.clone(), join));
        }
        drop(event_tx);

        // 4. Join computation threads, collecting per-task times.
        let mut per_task_time = Vec::with_capacity(task_joins.len());
        let mut first_error = None;
        for (name, join) in task_joins {
            match join.join() {
                Ok(Ok(elapsed)) => per_task_time.push(elapsed),
                Ok(Err(e)) => {
                    per_task_time.push(Duration::ZERO);
                    first_error.get_or_insert(e);
                }
                Err(_) => {
                    per_task_time.push(Duration::ZERO);
                    first_error.get_or_insert(OrwlError::TaskPanicked(name));
                }
            }
        }

        // 5. Control threads exit once every event sender is dropped.
        for join in control_joins {
            let _ = join.join();
        }

        // 6. Stop the adaptive machinery: wake the monitor thread, join it,
        //    and unregister the access sink.
        let adapt = monitor_thread.map(|join| {
            *monitor_stop.lock().unwrap_or_else(|e| e.into_inner()) = true;
            monitor_cv.notify_all();
            let _ = join.join();
            AdaptReport {
                epochs: epochs.load(std::sync::atomic::Ordering::Relaxed),
                replacements: replacements.load(std::sync::atomic::Ordering::Relaxed),
                rebinds_applied: rebind_plan.as_ref().map(|p| p.rebinds_applied()).unwrap_or(0),
                node_reshards: 0,
                drift_deltas: Vec::new(),
            }
        });
        drop(sink_registration);

        if let Some(e) = first_error {
            return Err(e);
        }
        let snapshot = stats.snapshot();
        if let Some(obs) = &self.config.observer {
            snapshot.publish(obs.metrics());
        }
        Ok(RunReport { wall_time: started.elapsed(), plan, per_task_time, stats: snapshot, adapt })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::location::Location;
    use crate::request::AccessMode;
    use crate::task::{LocationLink, TaskSpec};
    use orwl_topo::binding::RecordingBinder;
    use orwl_topo::synthetic;

    fn counter_program(n_tasks: usize, increments: u64) -> (OrwlProgram, Arc<Location<u64>>) {
        let counter = Location::new("counter", 0u64);
        let mut program = OrwlProgram::new();
        for t in 0..n_tasks {
            let loc = Arc::clone(&counter);
            program.add_task(
                TaskSpec::new(format!("inc-{t}"), vec![LocationLink::write(counter.id(), 8.0)]),
                move |ctx| {
                    let mut h = loc.iterative_handle(AccessMode::Write);
                    for _ in 0..increments {
                        let mut g = h.acquire().unwrap();
                        *g += 1;
                    }
                    ctx.stats.record_acquisitions(increments);
                },
            );
        }
        (program, counter)
    }

    #[test]
    fn empty_program_is_rejected() {
        let rt = OrwlRuntime::new(RuntimeConfig::new(synthetic::laptop(), Policy::NoBind));
        assert!(matches!(rt.run(OrwlProgram::new()), Err(OrwlError::EmptyProgram)));
    }

    #[test]
    fn runtime_executes_all_tasks_nobind() {
        let (program, counter) = counter_program(4, 500);
        let rt = OrwlRuntime::new(RuntimeConfig::new(synthetic::laptop(), Policy::NoBind));
        let report = rt.run(program).unwrap();
        assert_eq!(counter.snapshot(), 4 * 500);
        assert_eq!(report.per_task_time.len(), 4);
        assert_eq!(report.stats.tasks_started, 4);
        assert_eq!(report.stats.tasks_finished, 4);
        assert_eq!(report.stats.lock_acquisitions, 4 * 500);
        // Two lifecycle events per task were processed by control threads.
        assert_eq!(report.stats.control_events, 8);
        assert!(report.wall_time > Duration::ZERO);
        assert!(report.max_task_time() <= report.wall_time);
        assert_eq!(report.plan.placement.bound_fraction(), 0.0);
    }

    #[test]
    fn runtime_with_recording_binder_applies_treematch_placement() {
        let (program, counter) = counter_program(4, 100);
        let binder = Arc::new(RecordingBinder::new());
        let config = RuntimeConfig::new(synthetic::laptop(), Policy::TreeMatch)
            .with_binder(binder.clone() as Arc<dyn Binder>)
            .with_control_threads(1);
        let rt = OrwlRuntime::new(config);
        let report = rt.run(program).unwrap();
        assert_eq!(counter.snapshot(), 400);
        // All 4 compute threads were bound (laptop has 8 PUs), plus possibly
        // the control thread.
        assert!(binder.anonymous_bindings().len() >= 4, "bindings: {:?}", binder.anonymous_bindings());
        assert!(report.plan.placement.bound_fraction() > 0.99);
        assert_eq!(report.plan.policy.name(), "treematch");
    }

    #[test]
    fn stencil_like_program_produces_nonzero_matrix() {
        // 4 tasks in a ring, each writing its own frontier read by the next.
        let frontiers: Vec<_> = (0..4).map(|i| Location::new(format!("f{i}"), vec![0.0f64; 64])).collect();
        let mut program = OrwlProgram::new();
        for t in 0..4 {
            let me = Arc::clone(&frontiers[t]);
            let prev = Arc::clone(&frontiers[(t + 3) % 4]);
            program.add_task(
                TaskSpec::new(
                    format!("ring-{t}"),
                    vec![
                        LocationLink::write(frontiers[t].id(), 512.0),
                        LocationLink::read(frontiers[(t + 3) % 4].id(), 512.0),
                    ],
                ),
                move |_| {
                    let mut wh = me.iterative_handle(AccessMode::Write);
                    let mut rh = prev.iterative_handle(AccessMode::Read);
                    for i in 0..20 {
                        {
                            let mut g = wh.acquire().unwrap();
                            g[0] = i as f64;
                        }
                        {
                            let g = rh.acquire().unwrap();
                            assert!(g[0] >= 0.0);
                        }
                    }
                },
            );
        }
        let rt = OrwlRuntime::new(
            RuntimeConfig::new(synthetic::cluster2016_subset(1).unwrap(), Policy::TreeMatch)
                .with_binder(Arc::new(RecordingBinder::new())),
        );
        let report = rt.run(program).unwrap();
        assert_eq!(report.plan.matrix.order(), 4);
        assert!(report.plan.matrix.total_volume() > 0.0);
        report.plan.placement.validate_against(&rt.config().topology).unwrap();
    }

    #[test]
    fn task_panic_is_reported_with_name() {
        let mut program = OrwlProgram::new();
        program.add_task(TaskSpec::new("ok", vec![]), |_| {});
        program.add_task(TaskSpec::new("boom", vec![]), |_| panic!("intentional"));
        let rt = OrwlRuntime::new(RuntimeConfig::new(synthetic::laptop(), Policy::NoBind));
        match rt.run(program) {
            Err(OrwlError::TaskPanicked(name)) => assert_eq!(name, "boom"),
            other => panic!("expected TaskPanicked, got {other:?}"),
        }
    }

    #[test]
    fn zero_control_threads_is_supported() {
        let (program, counter) = counter_program(2, 50);
        let rt =
            OrwlRuntime::new(RuntimeConfig::new(synthetic::laptop(), Policy::NoBind).with_control_threads(0));
        let report = rt.run(program).unwrap();
        assert_eq!(counter.snapshot(), 100);
        assert_eq!(report.stats.control_events, 0);
    }

    #[test]
    fn config_builders_compose() {
        let cfg = RuntimeConfig::new(synthetic::laptop(), Policy::NoBind)
            .with_policy(Policy::Packed)
            .with_control_threads(3);
        assert_eq!(cfg.policy, Policy::Packed);
        assert_eq!(cfg.control_threads, 3);
        assert!(format!("{cfg:?}").contains("packed"));
    }
}
