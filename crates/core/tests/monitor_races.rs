//! Race tests for the two global observation registries the runtime hangs
//! off its hot path: the monitor's access-sink list and the obs recorder
//! list, plus the lock-free `RuntimeStats` merging used when per-chunk
//! blocks fold into a run-wide one.
//!
//! These tests churn registrations from many threads *while runs are
//! executing* — the scenario the RAII registration design must survive:
//! no lost unregistration, no observation after drop, no torn counters.

use orwl_core::prelude::*;
use orwl_core::stats::{RuntimeStats, StatsSnapshot};
use orwl_core::{AccessSink, LocationId, TaskId};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

struct CountingSink(AtomicU64);

impl AccessSink for CountingSink {
    fn on_access(&self, _task: TaskId, _location: LocationId, _mode: AccessMode) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }
}

fn hammer_program(tasks: usize, iterations: usize) -> (Arc<Location<u64>>, OrwlProgram) {
    let counter = Location::new("race-counter", 0u64);
    let mut program = OrwlProgram::new();
    for t in 0..tasks {
        let loc = Arc::clone(&counter);
        program.add_task(
            TaskSpec::new(format!("w{t}"), vec![LocationLink::write(counter.id(), 8.0)]),
            move |_| {
                let mut h = loc.iterative_handle(AccessMode::Write);
                for _ in 0..iterations {
                    *h.acquire().unwrap() += 1;
                }
            },
        );
    }
    (counter, program)
}

fn run(program: OrwlProgram) -> Report {
    Session::builder()
        .topology(orwl_topo::synthetic::laptop())
        .policy(Policy::TreeMatch)
        .binder(Arc::new(orwl_topo::binding::RecordingBinder::new()))
        .backend(ThreadBackend)
        .build()
        .unwrap()
        .run(program)
        .unwrap()
}

#[test]
fn sink_churn_during_active_runs_neither_crashes_nor_leaks_observations() {
    // Churn threads register and immediately drop counting sinks while the
    // runtime is mid-run granting locks on every acquisition.
    let stop = Arc::new(AtomicU64::new(0));
    let churned = Arc::new(CountingSink(AtomicU64::new(0)));
    let mut churners = Vec::new();
    for _ in 0..4 {
        let stop = Arc::clone(&stop);
        let sink = Arc::clone(&churned);
        churners.push(std::thread::spawn(move || {
            let mut cycles = 0u64;
            while stop.load(Ordering::Relaxed) == 0 {
                let registration =
                    orwl_core::monitor::register_sink(Arc::clone(&sink) as Arc<dyn AccessSink>);
                std::thread::yield_now();
                drop(registration);
                cycles += 1;
            }
            cycles
        }));
    }

    for _ in 0..3 {
        let (counter, program) = hammer_program(4, 50);
        let _ = run(program);
        assert_eq!(counter.snapshot(), 4 * 50);
    }

    stop.store(1, Ordering::Relaxed);
    let cycles: u64 = churners.into_iter().map(|j| j.join().unwrap()).sum();
    assert!(cycles > 0, "churn threads must have cycled at least once");
    let observed_during_churn = churned.0.load(Ordering::Relaxed);

    // Every churned registration was dropped: a run after the churn must
    // not reach the churned sink at all...
    let (_, program) = hammer_program(2, 20);
    let _ = run(program);
    assert_eq!(churned.0.load(Ordering::Relaxed), observed_during_churn, "a dropped sink kept observing");

    // ...while the registry itself remains fully functional.
    let probe = Arc::new(CountingSink(AtomicU64::new(0)));
    let registration = orwl_core::monitor::register_sink(Arc::clone(&probe) as Arc<dyn AccessSink>);
    let (_, program) = hammer_program(2, 20);
    let _ = run(program);
    drop(registration);
    assert_eq!(probe.0.load(Ordering::Relaxed), 2 * 20, "a live sink must see every grant");
}

#[test]
fn obs_recorder_churn_during_observed_emission_is_clean() {
    // Emitter threads fire events through the global gate while other
    // threads install and drop recorders: no panic, and a recorder only
    // holds events stamped between its install and drop.
    let stop = Arc::new(AtomicU64::new(0));
    let mut emitters = Vec::new();
    for _ in 0..4 {
        let stop = Arc::clone(&stop);
        emitters.push(std::thread::spawn(move || {
            while stop.load(Ordering::Relaxed) == 0 {
                orwl_obs::emit(orwl_obs::EventKind::Rebind { task: 1, pu: 2 });
                std::thread::yield_now();
            }
        }));
    }

    for _ in 0..50 {
        let recorder = orwl_obs::Recorder::new(orwl_obs::ClockKind::Wall, orwl_obs::ObsConfig::default());
        let registration = orwl_obs::install(&recorder);
        std::thread::yield_now();
        drop(registration);
        let telemetry = recorder.finish("race");
        for event in &telemetry.events {
            assert!(matches!(event.kind, orwl_obs::EventKind::Rebind { task: 1, pu: 2 }));
        }
    }

    stop.store(1, Ordering::Relaxed);
    for j in emitters {
        j.join().unwrap();
    }
    // All recorders are gone: the fast path is a plain disabled load again
    // and emission is a no-op.
    assert!(!orwl_obs::enabled(), "recorder churn must leave the global gate closed");
    orwl_obs::emit(orwl_obs::EventKind::Rebind { task: 0, pu: 0 });
}

#[test]
fn runtime_stats_merge_concurrently_without_losing_counts() {
    // Writers hammer a shared block while absorbers concurrently fold
    // fixed snapshots into it — the exact pattern of per-chunk stats being
    // merged into the run-wide block while tasks still record.
    let stats = Arc::new(RuntimeStats::new());
    let chunk = StatsSnapshot {
        tasks_started: 2,
        tasks_finished: 2,
        control_events: 1,
        lock_acquisitions: 10,
        total_wait: Duration::from_nanos(500),
    };
    let mut joins = Vec::new();
    for _ in 0..4 {
        let stats = Arc::clone(&stats);
        joins.push(std::thread::spawn(move || {
            for _ in 0..1000 {
                stats.record_acquisitions(1);
                stats.record_wait(Duration::from_nanos(3));
            }
        }));
    }
    for _ in 0..4 {
        let stats = Arc::clone(&stats);
        joins.push(std::thread::spawn(move || {
            for _ in 0..250 {
                stats.absorb(&chunk);
            }
        }));
    }
    for j in joins {
        j.join().unwrap();
    }
    let snap = stats.snapshot();
    assert_eq!(snap.lock_acquisitions, 4 * 1000 + 4 * 250 * 10);
    assert_eq!(snap.tasks_started, 4 * 250 * 2);
    assert_eq!(snap.control_events, 4 * 250);
    assert_eq!(snap.total_wait, Duration::from_nanos(4 * 1000 * 3 + 4 * 250 * 500));

    // merged() is the pure counterpart of absorb(): summing the same
    // snapshots sequentially reaches the same totals.
    let mut folded = StatsSnapshot {
        tasks_started: 0,
        tasks_finished: 0,
        control_events: 0,
        lock_acquisitions: 4000,
        total_wait: Duration::from_nanos(12_000),
    };
    for _ in 0..1000 {
        folded = folded.merged(&chunk);
    }
    assert_eq!(folded, snap);
}
