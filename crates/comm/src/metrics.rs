//! Locality metrics: how good is a thread → PU mapping for a given
//! communication matrix on a given topology?
//!
//! These metrics quantify what the paper's placement strategy optimises:
//! keep heavy communication inside shared caches and NUMA nodes, push only
//! light traffic across sockets.  They are used by the tests (TreeMatch must
//! beat naive placements), by the ablation benchmarks and by the simulator's
//! reports.

use crate::matrix::CommMatrix;
use orwl_topo::distance::{DistanceMatrix, LevelCosts};
use orwl_topo::object::ObjectType;
use orwl_topo::topology::Topology;

/// A placement of threads onto processing units: `mapping[t]` is the OS
/// index of the PU thread `t` runs on.  Several threads may share a PU
/// (oversubscription).
pub type PuMapping = Vec<usize>;

/// Total communication cost of a mapping: `Σ m[i][j] · dist(pu_i, pu_j)`
/// where `dist` is the relative per-byte cost from the topology-derived
/// [`DistanceMatrix`].  Lower is better; `0` means all traffic stays on one
/// core.
pub fn mapping_cost(m: &CommMatrix, dist: &DistanceMatrix, mapping: &[usize]) -> f64 {
    assert!(mapping.len() >= m.order(), "mapping must cover every thread of the matrix");
    let mut cost = 0.0;
    for i in 0..m.order() {
        for j in 0..m.order() {
            let v = m.get(i, j);
            if v != 0.0 {
                cost += v * dist.cost(mapping[i], mapping[j]);
            }
        }
    }
    cost
}

/// Hop-bytes metric: `Σ m[i][j] · hops(pu_i, pu_j)` where `hops` is the
/// number of tree edges between the two PUs.  This is the metric used in
/// the TreeMatch literature.
pub fn hop_bytes(m: &CommMatrix, topo: &Topology, mapping: &[usize]) -> f64 {
    assert!(mapping.len() >= m.order(), "mapping must cover every thread of the matrix");
    let mut cost = 0.0;
    for i in 0..m.order() {
        for j in 0..m.order() {
            let v = m.get(i, j);
            if v != 0.0 {
                cost += v * topo.hop_distance(mapping[i], mapping[j]) as f64;
            }
        }
    }
    cost
}

/// Breakdown of the traffic of a mapping by the deepest hardware level the
/// two endpoints share.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TrafficBreakdown {
    /// Volume exchanged between threads mapped on the same PU.
    pub same_pu: f64,
    /// Volume between different PUs of the same core (hyperthreads).
    pub same_core: f64,
    /// Volume between cores sharing a cache (L1/L2/L3) but not a core.
    pub shared_cache: f64,
    /// Volume within one NUMA node / package, not covered above.
    pub same_numa: f64,
    /// Volume crossing NUMA nodes (within one machine).
    pub cross_numa: f64,
    /// Volume crossing *machine* boundaries — the inter-node fabric traffic
    /// of a multi-node (cluster) topology, where the depth-1 level is one
    /// `Group` per node.  Always `0` on single-machine topologies.
    pub cross_node: f64,
}

impl orwl_obs::ToJson for TrafficBreakdown {
    fn to_json(&self) -> orwl_obs::Json {
        let mut o = orwl_obs::Json::obj();
        o.push("same_pu", self.same_pu)
            .push("same_core", self.same_core)
            .push("shared_cache", self.shared_cache)
            .push("same_numa", self.same_numa)
            .push("cross_numa", self.cross_numa)
            .push("cross_node", self.cross_node)
            .push("local_fraction", self.local_fraction());
        o
    }
}

impl TrafficBreakdown {
    /// Total volume accounted for.
    pub fn total(&self) -> f64 {
        self.same_pu + self.same_core + self.shared_cache + self.same_numa + self.cross_numa + self.cross_node
    }

    /// Fraction of the traffic that stays within a NUMA node (including
    /// same-core and same-PU traffic).  This is the quantity the paper's
    /// placement maximises.
    pub fn local_fraction(&self) -> f64 {
        let t = self.total();
        if t == 0.0 {
            return 1.0;
        }
        (t - self.cross_numa - self.cross_node) / t
    }

    /// Fraction of the traffic that stays within one machine of a cluster
    /// (`1.0` on single-machine topologies).  This is the quantity the
    /// two-level placement's partitioning stage minimises the complement of.
    pub fn intra_node_fraction(&self) -> f64 {
        let t = self.total();
        if t == 0.0 {
            return 1.0;
        }
        (t - self.cross_node) / t
    }
}

/// Computes the [`TrafficBreakdown`] of a mapping.
///
/// On a cluster topology flattened with one `Group` per node at depth 1
/// (see `orwl_topo::cluster::ClusterTopology::flatten`), traffic whose
/// endpoints share only the root is classified as
/// [`cross_node`](TrafficBreakdown::cross_node); on single-machine
/// topologies it stays in [`cross_numa`](TrafficBreakdown::cross_numa).
pub fn traffic_breakdown(m: &CommMatrix, topo: &Topology, mapping: &[usize]) -> TrafficBreakdown {
    assert!(mapping.len() >= m.order(), "mapping must cover every thread of the matrix");
    // A `Group` level right below the machine root marks a flattened
    // multi-node cluster: only then does "shares nothing but the root"
    // mean crossing a machine boundary.
    let node_level_is_group = topo.objects_at_depth(1).next().map(|o| o.obj_type) == Some(ObjectType::Group);
    let mut out = TrafficBreakdown::default();
    for i in 0..m.order() {
        for j in 0..m.order() {
            let v = m.get(i, j);
            if v == 0.0 {
                continue;
            }
            let (a, b) = (mapping[i], mapping[j]);
            if a == b {
                out.same_pu += v;
                continue;
            }
            let depth = topo.shared_level_of_pus(a, b);
            let ty = topo.objects_at_depth(depth).next().map(|o| o.obj_type);
            match ty {
                Some(ObjectType::Core) | Some(ObjectType::PU) => out.same_core += v,
                Some(t) if t.is_cache() => out.shared_cache += v,
                // Sharing only the per-node Group of a flattened cluster
                // means "same machine, nothing deeper": NUMA was crossed.
                Some(ObjectType::Group) if node_level_is_group && depth == 1 => out.cross_numa += v,
                Some(ObjectType::NumaNode) | Some(ObjectType::Package) | Some(ObjectType::Group) => {
                    out.same_numa += v
                }
                _ if node_level_is_group => out.cross_node += v,
                _ => out.cross_numa += v,
            }
        }
    }
    out
}

/// Convenience wrapper: mapping cost with the default per-level costs.
pub fn mapping_cost_default(m: &CommMatrix, topo: &Topology, mapping: &[usize]) -> f64 {
    let dist = DistanceMatrix::from_topology(topo, &LevelCosts::default());
    mapping_cost(m, &dist, mapping)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns;
    use orwl_topo::synthetic;

    #[test]
    fn chain_mapped_contiguously_beats_scattered() {
        let topo = synthetic::cluster2016_subset(2).unwrap(); // 16 cores, 2 sockets
        let m = patterns::chain(8, 100.0);
        // Contiguous: all 8 threads on socket 0.
        let contiguous: Vec<usize> = (0..8).collect();
        // Scattered: alternate sockets.
        let scattered: Vec<usize> = (0..8).map(|i| if i % 2 == 0 { i / 2 } else { 8 + i / 2 }).collect();
        assert!(mapping_cost_default(&m, &topo, &contiguous) < mapping_cost_default(&m, &topo, &scattered));
        assert!(hop_bytes(&m, &topo, &contiguous) < hop_bytes(&m, &topo, &scattered));
    }

    #[test]
    fn breakdown_accounts_for_all_traffic() {
        let topo = synthetic::cluster2016_subset(2).unwrap();
        let m = patterns::all_to_all(16, 1.0);
        let mapping: Vec<usize> = (0..16).collect();
        let b = traffic_breakdown(&m, &topo, &mapping);
        assert!((b.total() - m.total_volume()).abs() < 1e-9);
        assert!(b.cross_numa > 0.0);
        assert!(b.local_fraction() < 1.0);
    }

    #[test]
    fn breakdown_all_local_when_single_socket() {
        let topo = synthetic::cluster2016_subset(1).unwrap();
        let m = patterns::all_to_all(8, 1.0);
        let mapping: Vec<usize> = (0..8).collect();
        let b = traffic_breakdown(&m, &topo, &mapping);
        assert_eq!(b.cross_numa, 0.0);
        assert_eq!(b.local_fraction(), 1.0);
    }

    #[test]
    fn flattened_cluster_splits_cross_node_from_cross_numa() {
        // Two "nodes" of two sockets each, flattened with a Group per node.
        let topo = synthetic::from_synthetic("mini-cluster", "group:2 numa:2 core:2 pu:1").unwrap();
        let m = patterns::chain(3, 10.0);
        // Thread 0 and 1 on node 0 (different sockets), thread 2 on node 1.
        let b = traffic_breakdown(&m, &topo, &[0, 2, 4]);
        let link = m.get(0, 1) + m.get(1, 0);
        assert_eq!(b.cross_numa, link, "same node, different sockets");
        assert_eq!(b.cross_node, link, "different nodes");
        assert_eq!(b.same_numa, 0.0);
        assert!((b.total() - m.total_volume()).abs() < 1e-9);
        assert!((b.intra_node_fraction() - 0.5).abs() < 1e-9);
        assert_eq!(b.local_fraction(), 0.0);
        // On a single machine the same traffic is all intra-node.
        let single = synthetic::from_synthetic("single", "numa:4 core:2 pu:1").unwrap();
        let bs = traffic_breakdown(&m, &single, &[0, 2, 4]);
        assert_eq!(bs.cross_node, 0.0);
        assert_eq!(bs.intra_node_fraction(), 1.0);
        assert_eq!(bs.cross_numa, m.total_volume());
    }

    #[test]
    fn same_pu_traffic_is_free_in_mapping_cost() {
        let topo = synthetic::laptop();
        let m = patterns::all_to_all(4, 10.0);
        // Everything on PU 0.
        let mapping = vec![0; 4];
        assert_eq!(mapping_cost_default(&m, &topo, &mapping), 0.0);
        let b = traffic_breakdown(&m, &topo, &mapping);
        assert_eq!(b.same_pu, m.total_volume());
        assert_eq!(b.local_fraction(), 1.0);
    }

    #[test]
    fn empty_matrix_has_zero_cost_and_full_locality() {
        let topo = synthetic::laptop();
        let m = CommMatrix::zeros(4);
        let mapping = vec![0, 1, 2, 3];
        assert_eq!(mapping_cost_default(&m, &topo, &mapping), 0.0);
        assert_eq!(hop_bytes(&m, &topo, &mapping), 0.0);
        assert_eq!(traffic_breakdown(&m, &topo, &mapping).local_fraction(), 1.0);
    }

    #[test]
    fn smt_siblings_count_as_same_core() {
        let topo = synthetic::dual_socket_smt();
        let m = patterns::chain(2, 50.0);
        // PUs 0 and 1 are hyperthreads of core 0.
        let b = traffic_breakdown(&m, &topo, &[0, 1]);
        assert_eq!(b.same_core, m.total_volume());
        assert_eq!(b.cross_numa, 0.0);
    }

    #[test]
    #[should_panic]
    fn mapping_shorter_than_matrix_panics() {
        let topo = synthetic::laptop();
        let m = patterns::chain(4, 1.0);
        hop_bytes(&m, &topo, &[0, 1]);
    }
}
