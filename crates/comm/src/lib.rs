//! # orwl-comm — communication matrices and locality metrics
//!
//! The topology-aware placement of the paper is computed from two inputs:
//! the hardware topology (crate `orwl-topo`) and a **weighted communication
//! matrix** describing how much data every pair of threads exchanges per
//! iteration.  This crate provides that matrix type together with:
//!
//! * [`patterns`] — generators for the workloads used in the evaluation
//!   (2-D 9-point stencil à la Livermore Kernel 23, ring, all-to-all,
//!   clustered, random);
//! * [`aggregate`](mod@aggregate) — the `AggregateComMatrix` step of Algorithm 1 (collapse
//!   a matrix over groups of threads);
//! * [`metrics`] — mapping-quality metrics (communication cost, hop-bytes,
//!   traffic breakdown per hardware level).
//!
//! # Example
//!
//! ```
//! use orwl_comm::patterns::{stencil_2d, StencilSpec};
//! use orwl_comm::metrics::hop_bytes;
//! use orwl_topo::synthetic;
//!
//! // An 8×8 grid of LK23-style block tasks.
//! let spec = StencilSpec::nine_point_blocks(8, 2048, 8);
//! let matrix = stencil_2d(&spec);
//! assert_eq!(matrix.order(), 64);
//!
//! // Identity placement on a 64-core machine.
//! let topo = synthetic::quad_socket_l3_groups();
//! let mapping: Vec<usize> = (0..64).collect();
//! assert!(hop_bytes(&matrix, &topo, &mapping) > 0.0);
//! ```

pub mod aggregate;
pub mod matrix;
pub mod metrics;
pub mod patterns;

pub use aggregate::{aggregate, Groups};
pub use matrix::CommMatrix;
pub use metrics::{hop_bytes, mapping_cost, traffic_breakdown, PuMapping, TrafficBreakdown};
pub use patterns::StencilSpec;
