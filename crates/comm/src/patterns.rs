//! Generators for common communication patterns.
//!
//! The evaluation of the paper uses a 2-D stencil (the block-decomposed
//! Livermore Kernel 23): every block task exchanges its edges and corners
//! with its eight neighbours.  This module generates that matrix as well as
//! the classic patterns (ring, all-to-all, random, clustered) used by the
//! ablation benchmarks and the property tests.

use crate::matrix::CommMatrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Description of a 2-D block-stencil workload: a `rows × cols` grid of
/// tasks, each exchanging halo data with its neighbours every iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StencilSpec {
    /// Number of task rows in the grid.
    pub rows: usize,
    /// Number of task columns in the grid.
    pub cols: usize,
    /// Bytes exchanged with each edge-adjacent neighbour (N, S, E, W) per
    /// iteration.
    pub edge_volume: f64,
    /// Bytes exchanged with each corner-adjacent neighbour (NE, NW, SE, SW)
    /// per iteration; zero gives a 5-point stencil.
    pub corner_volume: f64,
}

impl StencilSpec {
    /// A 9-point stencil over a square grid of `side × side` tasks where each
    /// task owns a `block_side × block_side` tile of `elem_bytes`-wide
    /// elements — the shape of the paper's LK23 decomposition.
    pub fn nine_point_blocks(side: usize, block_side: usize, elem_bytes: usize) -> Self {
        StencilSpec {
            rows: side,
            cols: side,
            edge_volume: (block_side * elem_bytes) as f64,
            corner_volume: elem_bytes as f64,
        }
    }

    /// Total number of tasks in the grid.
    pub fn tasks(&self) -> usize {
        self.rows * self.cols
    }

    /// Linear task index of grid cell `(r, c)` in row-major order.
    pub fn task_at(&self, r: usize, c: usize) -> usize {
        r * self.cols + c
    }
}

/// Builds the task × task communication matrix of a 2-D stencil.
///
/// The matrix is symmetric by construction (halos are exchanged both ways).
pub fn stencil_2d(spec: &StencilSpec) -> CommMatrix {
    let n = spec.tasks();
    let mut m = CommMatrix::zeros(n);
    for r in 0..spec.rows {
        for c in 0..spec.cols {
            let me = spec.task_at(r, c);
            // Edge neighbours.
            let edge_offsets: [(isize, isize); 4] = [(-1, 0), (1, 0), (0, -1), (0, 1)];
            for (dr, dc) in edge_offsets {
                if let Some(other) = neighbor(spec, r, c, dr, dc) {
                    m.add(me, other, spec.edge_volume);
                }
            }
            // Corner neighbours.
            let corner_offsets: [(isize, isize); 4] = [(-1, -1), (-1, 1), (1, -1), (1, 1)];
            for (dr, dc) in corner_offsets {
                if let Some(other) = neighbor(spec, r, c, dr, dc) {
                    m.add(me, other, spec.corner_volume);
                }
            }
        }
    }
    m
}

fn neighbor(spec: &StencilSpec, r: usize, c: usize, dr: isize, dc: isize) -> Option<usize> {
    let nr = r as isize + dr;
    let nc = c as isize + dc;
    if nr < 0 || nc < 0 || nr >= spec.rows as isize || nc >= spec.cols as isize {
        None
    } else {
        Some(spec.task_at(nr as usize, nc as usize))
    }
}

/// A unidirectional ring: task `i` sends `volume` bytes to task `(i+1) % n`.
pub fn ring(n: usize, volume: f64) -> CommMatrix {
    let mut m = CommMatrix::zeros(n);
    if n < 2 {
        return m;
    }
    for i in 0..n {
        m.add(i, (i + 1) % n, volume);
    }
    m
}

/// Every task sends `volume` bytes to every other task.
pub fn all_to_all(n: usize, volume: f64) -> CommMatrix {
    let mut m = CommMatrix::zeros(n);
    for i in 0..n {
        for j in 0..n {
            if i != j {
                m.set(i, j, volume);
            }
        }
    }
    m
}

/// `groups` clusters of `group_size` tasks each; tasks exchange
/// `intra_volume` with every member of their own cluster and `inter_volume`
/// with every task of the next cluster (ring of clusters).  This is the
/// classic pattern where topology-aware placement has the largest payoff.
pub fn clustered(groups: usize, group_size: usize, intra_volume: f64, inter_volume: f64) -> CommMatrix {
    let n = groups * group_size;
    let mut m = CommMatrix::zeros(n);
    for g in 0..groups {
        for a in 0..group_size {
            for b in 0..group_size {
                if a != b {
                    m.add(g * group_size + a, g * group_size + b, intra_volume);
                }
            }
            if groups > 1 {
                let next = (g + 1) % groups;
                m.add(g * group_size + a, next * group_size + a, inter_volume);
            }
        }
    }
    m
}

/// A random symmetric matrix: each unordered pair gets a volume drawn
/// uniformly from `[0, max_volume)` with probability `density`.  The
/// generator is seeded so experiments are reproducible.
pub fn random_symmetric(n: usize, density: f64, max_volume: f64, seed: u64) -> CommMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut m = CommMatrix::zeros(n);
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.gen::<f64>() < density {
                let v = rng.gen::<f64>() * max_volume;
                m.set(i, j, v);
                m.set(j, i, v);
            }
        }
    }
    m
}

/// A *directional* stencil: east/west halos carry `horizontal` bytes per
/// iteration, north/south halos carry `vertical` bytes, diagonal halos
/// carry `spec.corner_volume` (the `edge_volume` field of `spec` is ignored
/// in favour of the explicit per-axis volumes).
///
/// Directionally-swept solvers (ADI, line relaxation, LK23-style pipelined
/// sweeps) produce exactly this shape: the halo traffic is dominated by the
/// current sweep axis.  Note that for the *uniform* stencil a 90° rotation
/// is an automorphism of the communication graph — it changes nothing — so
/// the anisotropy is what makes [`stencil_2d_rotated`] a genuine phase
/// change for the adaptive-placement evaluation.
pub fn stencil_2d_directional(spec: &StencilSpec, horizontal: f64, vertical: f64) -> CommMatrix {
    let n = spec.tasks();
    let mut m = CommMatrix::zeros(n);
    for r in 0..spec.rows {
        for c in 0..spec.cols {
            let me = spec.task_at(r, c);
            for (dr, dc, volume) in
                [(-1isize, 0isize, vertical), (1, 0, vertical), (0, -1, horizontal), (0, 1, horizontal)]
            {
                if let Some(other) = neighbor(spec, r, c, dr, dc) {
                    m.add(me, other, volume);
                }
            }
            for (dr, dc) in [(-1isize, -1isize), (-1, 1), (1, -1), (1, 1)] {
                if let Some(other) = neighbor(spec, r, c, dr, dc) {
                    m.add(me, other, spec.corner_volume);
                }
            }
        }
    }
    m
}

/// The directional stencil after a quarter (90°) rotation of the sweep
/// direction: horizontal and vertical halo volumes swap axes.  This is the
/// "rotated stencil" phase change used by `orwl-adapt`'s evaluation — same
/// tasks, same total traffic, different heavy neighbours.
pub fn stencil_2d_rotated(spec: &StencilSpec, horizontal: f64, vertical: f64) -> CommMatrix {
    stencil_2d_directional(spec, vertical, horizontal)
}

/// The two matrices of the canonical *rotating-sweep* stencil workload: a
/// `side × side` grid of tasks whose sweep axis carries `heavy` bytes per
/// halo and whose cross axis carries `light` bytes (diagonals carry
/// `light / 8`), before and after a 90° rotation of the sweep direction.
///
/// This is the phase-change workload of the adaptive-placement evaluation;
/// keeping its construction here guarantees the simulator harness, the
/// examples and the tests all measure exactly the same drift.
pub fn rotating_sweep_matrices(side: usize, heavy: f64, light: f64) -> (CommMatrix, CommMatrix) {
    let spec = StencilSpec { rows: side, cols: side, edge_volume: 0.0, corner_volume: light / 8.0 };
    (stencil_2d_directional(&spec, heavy, light), stencil_2d_rotated(&spec, heavy, light))
}

/// An irregular *power-law* communication graph: degrees follow a rich-get-
/// richer preferential-attachment process, so a few tasks concentrate most
/// of the edges — the shape of sparse-matrix, graph-analytics and
/// master-worker-ish workloads that stencil-tuned placement handles worst.
///
/// Construction (deterministic for a given `seed`): tasks join one at a
/// time; each new task draws `edges_per_task` partners among the existing
/// tasks with probability proportional to their current degree (plus one,
/// so isolated tasks stay reachable).  Each edge carries a volume drawn
/// uniformly from `(0, max_volume]`; the matrix is symmetric.
pub fn power_law(n: usize, edges_per_task: usize, max_volume: f64, seed: u64) -> CommMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut m = CommMatrix::zeros(n);
    if n < 2 {
        return m;
    }
    let mut degree = vec![1.0f64; n]; // +1 smoothing: everyone is reachable
    for joiner in 1..n {
        for _ in 0..edges_per_task.max(1) {
            // Roulette-wheel draw over the already-joined tasks.
            let mut ticket = rng.gen::<f64>() * degree[..joiner].iter().sum::<f64>();
            let mut partner = 0;
            for (t, &d) in degree[..joiner].iter().enumerate() {
                ticket -= d;
                if ticket <= 0.0 {
                    partner = t;
                    break;
                }
            }
            let volume = (1.0 - rng.gen::<f64>()) * max_volume; // (0, max]
            m.add(joiner, partner, volume);
            m.add(partner, joiner, volume);
            degree[joiner] += 1.0;
            degree[partner] += 1.0;
        }
    }
    m
}

/// An owner-skewed *hotspot* pattern: `hubs` owner tasks hold the hot data
/// and every other task exchanges `spoke_volume` bytes with its (seeded,
/// randomly chosen) owner, while the owners gossip `hub_volume` bytes with
/// each other all-to-all.  This is the contended-lock / parameter-server
/// shape: placement should pack each owner with its clients, not spread
/// them.
pub fn hotspot(n: usize, hubs: usize, hub_volume: f64, spoke_volume: f64, seed: u64) -> CommMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut m = CommMatrix::zeros(n);
    let hubs = hubs.clamp(1, n.max(1));
    if n < 2 {
        return m;
    }
    // Hubs are tasks 0..hubs; they gossip pairwise.
    for a in 0..hubs {
        for b in 0..hubs {
            if a != b {
                m.set(a, b, hub_volume);
            }
        }
    }
    // Every spoke picks one owner, uniformly at random (seeded).
    for spoke in hubs..n {
        let owner = rng.gen_index(hubs);
        m.add(spoke, owner, spoke_volume);
        m.add(owner, spoke, spoke_volume);
    }
    m
}

/// The convex blend `(1-t)·a + t·b` of two equally-sized matrices — the
/// building block of *drifting-mix* workloads whose pattern morphs
/// gradually from one shape into another across phases, instead of
/// switching abruptly like the rotated stencil.
///
/// # Panics
/// Panics when the matrices differ in order.
pub fn blend(a: &CommMatrix, b: &CommMatrix, t: f64) -> CommMatrix {
    assert_eq!(a.order(), b.order(), "blend requires equally-sized matrices");
    let mut out = a.scaled(1.0 - t);
    out.add_scaled(b, t);
    out
}

/// A 1-D chain: task `i` exchanges `volume` bytes with `i+1` (both ways).
pub fn chain(n: usize, volume: f64) -> CommMatrix {
    let mut m = CommMatrix::zeros(n);
    for i in 0..n.saturating_sub(1) {
        m.add(i, i + 1, volume);
        m.add(i + 1, i, volume);
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stencil_interior_task_has_eight_neighbors() {
        let spec = StencilSpec { rows: 4, cols: 4, edge_volume: 100.0, corner_volume: 1.0 };
        let m = stencil_2d(&spec);
        assert_eq!(m.order(), 16);
        // Task (1,1) = index 5 is interior: 4 edges + 4 corners.
        let me = spec.task_at(1, 1);
        let nonzero = (0..16).filter(|&j| m.get(me, j) > 0.0).count();
        assert_eq!(nonzero, 8);
        assert_eq!(m.get(me, spec.task_at(0, 1)), 100.0); // north edge
        assert_eq!(m.get(me, spec.task_at(0, 0)), 1.0); // NW corner
        assert!(m.is_symmetric());
    }

    #[test]
    fn stencil_corner_task_has_three_neighbors() {
        let spec = StencilSpec { rows: 3, cols: 3, edge_volume: 10.0, corner_volume: 1.0 };
        let m = stencil_2d(&spec);
        let corner = spec.task_at(0, 0);
        let nonzero = (0..9).filter(|&j| m.get(corner, j) > 0.0).count();
        assert_eq!(nonzero, 3); // E, S edges + SE corner
    }

    #[test]
    fn stencil_total_volume_formula() {
        // For an R×C grid: horizontal edges 2*R*(C-1), vertical 2*C*(R-1),
        // diagonals 4*(R-1)*(C-1) directed pairs... easier: symmetry check +
        // hand count on a 2×2 grid (each task: 2 edges + 1 corner).
        let spec = StencilSpec { rows: 2, cols: 2, edge_volume: 5.0, corner_volume: 1.0 };
        let m = stencil_2d(&spec);
        assert_eq!(m.total_volume(), 4.0 * (2.0 * 5.0 + 1.0));
    }

    #[test]
    fn nine_point_blocks_volumes() {
        let spec = StencilSpec::nine_point_blocks(8, 2048, 8);
        assert_eq!(spec.tasks(), 64);
        assert_eq!(spec.edge_volume, 2048.0 * 8.0);
        assert_eq!(spec.corner_volume, 8.0);
    }

    #[test]
    fn five_point_stencil_has_no_corner_traffic() {
        let spec = StencilSpec { rows: 3, cols: 3, edge_volume: 10.0, corner_volume: 0.0 };
        let m = stencil_2d(&spec);
        let center = spec.task_at(1, 1);
        let nonzero = (0..9).filter(|&j| m.get(center, j) > 0.0).count();
        assert_eq!(nonzero, 4);
    }

    #[test]
    fn ring_pattern() {
        let m = ring(4, 8.0);
        assert_eq!(m.get(0, 1), 8.0);
        assert_eq!(m.get(3, 0), 8.0);
        assert_eq!(m.get(1, 0), 0.0);
        assert_eq!(m.total_volume(), 32.0);
        assert_eq!(ring(1, 8.0).total_volume(), 0.0);
        assert_eq!(ring(0, 8.0).order(), 0);
    }

    #[test]
    fn all_to_all_pattern() {
        let m = all_to_all(4, 2.0);
        assert_eq!(m.total_volume(), (4.0 * 3.0) * 2.0);
        assert_eq!(m.get(2, 2), 0.0);
        assert!(m.is_symmetric());
    }

    #[test]
    fn clustered_pattern_prefers_intra_cluster() {
        let m = clustered(4, 4, 100.0, 1.0);
        assert_eq!(m.order(), 16);
        // Intra-cluster edge.
        assert_eq!(m.get(0, 1), 100.0);
        // Inter-cluster edge toward the next cluster.
        assert_eq!(m.get(0, 4), 1.0);
        // No edge to a non-adjacent cluster.
        assert_eq!(m.get(0, 8), 0.0);
        // Single-cluster case has no inter traffic.
        let single = clustered(1, 3, 10.0, 99.0);
        assert_eq!(single.total_volume(), 3.0 * 2.0 * 10.0);
    }

    #[test]
    fn random_symmetric_is_reproducible_and_symmetric() {
        let a = random_symmetric(16, 0.5, 100.0, 42);
        let b = random_symmetric(16, 0.5, 100.0, 42);
        let c = random_symmetric(16, 0.5, 100.0, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.is_symmetric());
        // Density 0 gives the empty matrix; density 1 the full one.
        assert_eq!(random_symmetric(8, 0.0, 10.0, 1).total_volume(), 0.0);
        let full = random_symmetric(8, 1.1, 10.0, 1);
        for i in 0..8 {
            for j in 0..8 {
                if i != j {
                    assert!(full.get(i, j) > 0.0);
                }
            }
        }
    }

    #[test]
    fn directional_stencil_weights_axes_independently() {
        let spec = StencilSpec { rows: 3, cols: 3, edge_volume: 0.0, corner_volume: 1.0 };
        let m = stencil_2d_directional(&spec, 100.0, 5.0);
        let center = spec.task_at(1, 1);
        assert_eq!(m.get(center, spec.task_at(1, 0)), 100.0); // west
        assert_eq!(m.get(center, spec.task_at(1, 2)), 100.0); // east
        assert_eq!(m.get(center, spec.task_at(0, 1)), 5.0); // north
        assert_eq!(m.get(center, spec.task_at(2, 1)), 5.0); // south
        assert_eq!(m.get(center, spec.task_at(0, 0)), 1.0); // corner
        assert!(m.is_symmetric());
        // Uniform volumes reproduce the classic stencil.
        let uniform = StencilSpec { rows: 3, cols: 3, edge_volume: 7.0, corner_volume: 1.0 };
        assert_eq!(stencil_2d_directional(&uniform, 7.0, 7.0), stencil_2d(&uniform));
    }

    #[test]
    fn rotation_swaps_axes_and_is_a_real_phase_change() {
        let spec = StencilSpec { rows: 4, cols: 4, edge_volume: 0.0, corner_volume: 2.0 };
        let a = stencil_2d_directional(&spec, 100.0, 5.0);
        let b = stencil_2d_rotated(&spec, 100.0, 5.0);
        // Same total traffic, symmetric, but a different matrix...
        assert_eq!(a.total_volume(), b.total_volume());
        assert!(b.is_symmetric());
        assert_ne!(a, b);
        // ...while rotating the *uniform* stencil is an automorphism (the
        // degenerate case the adaptive evaluation must avoid).
        let u = stencil_2d_directional(&spec, 5.0, 5.0);
        assert_eq!(stencil_2d_rotated(&spec, 5.0, 5.0), u);
        // Rotating twice restores the original pattern.
        assert_eq!(stencil_2d_rotated(&spec, 5.0, 100.0), a);
    }

    #[test]
    fn rotating_sweep_matrices_are_a_rotated_pair() {
        let (a, b) = rotating_sweep_matrices(4, 100.0, 4.0);
        let spec = StencilSpec { rows: 4, cols: 4, edge_volume: 0.0, corner_volume: 0.5 };
        assert_eq!(a, stencil_2d_directional(&spec, 100.0, 4.0));
        assert_eq!(b, stencil_2d_rotated(&spec, 100.0, 4.0));
        assert_eq!(a.total_volume(), b.total_volume());
        assert_ne!(a, b);
    }

    #[test]
    fn power_law_concentrates_degree_and_is_reproducible() {
        let a = power_law(64, 2, 1000.0, 7);
        let b = power_law(64, 2, 1000.0, 7);
        let c = power_law(64, 2, 1000.0, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.is_symmetric());
        // Preferential attachment: the heaviest-degree task sees far more
        // partners than the median task.
        let degrees: Vec<usize> = (0..64).map(|i| (0..64).filter(|&j| a.get(i, j) > 0.0).count()).collect();
        let max = *degrees.iter().max().unwrap();
        let mut sorted = degrees.clone();
        sorted.sort_unstable();
        let median = sorted[32];
        assert!(max >= 3 * median, "no hub emerged: max {max}, median {median}");
        // Degenerate sizes are quiet.
        assert_eq!(power_law(1, 3, 10.0, 1).total_volume(), 0.0);
        assert_eq!(power_law(0, 3, 10.0, 1).order(), 0);
    }

    #[test]
    fn hotspot_wires_spokes_to_owners() {
        let m = hotspot(16, 2, 50.0, 500.0, 3);
        assert!(m.is_symmetric());
        // Hubs gossip with each other.
        assert_eq!(m.get(0, 1), 50.0);
        // Every spoke talks to exactly one hub and to nobody else.
        for spoke in 2..16 {
            let partners: Vec<usize> = (0..16).filter(|&j| m.get(spoke, j) > 0.0).collect();
            assert_eq!(partners.len(), 1, "spoke {spoke} has partners {partners:?}");
            assert!(partners[0] < 2);
            assert_eq!(m.get(spoke, partners[0]), 500.0);
        }
        // Deterministic per seed.
        assert_eq!(m, hotspot(16, 2, 50.0, 500.0, 3));
        assert_ne!(m, hotspot(16, 2, 50.0, 500.0, 4));
        // Hub count is clamped into [1, n].
        let single = hotspot(4, 0, 10.0, 5.0, 1);
        assert_eq!(single.get(1, 0), 5.0);
    }

    #[test]
    fn blend_interpolates_between_patterns() {
        let a = ring(4, 100.0);
        let b = all_to_all(4, 10.0);
        let mid = blend(&a, &b, 0.5);
        assert_eq!(mid.get(0, 1), 0.5 * 100.0 + 0.5 * 10.0);
        assert_eq!(mid.get(0, 2), 5.0);
        assert_eq!(blend(&a, &b, 0.0), a);
        assert_eq!(blend(&a, &b, 1.0), b);
    }

    #[test]
    fn chain_pattern() {
        let m = chain(3, 4.0);
        assert!(m.is_symmetric());
        assert_eq!(m.get(0, 1), 4.0);
        assert_eq!(m.get(1, 2), 4.0);
        assert_eq!(m.get(0, 2), 0.0);
        assert_eq!(chain(1, 4.0).total_volume(), 0.0);
    }
}
