//! Aggregation of communication matrices over groups of threads.
//!
//! This is the `AggregateComMatrix` step of Algorithm 1 in the paper: after
//! threads have been grouped by affinity at one level of the topology tree,
//! the matrix is collapsed so that the next (upper) level works on the
//! traffic *between groups*.

use crate::matrix::CommMatrix;

/// A partition of threads into groups.  `groups[g]` lists the thread
/// indices belonging to group `g`.  Threads may be omitted (e.g. a thread
/// mapped nowhere), but no thread may appear in two groups.
pub type Groups = Vec<Vec<usize>>;

/// Reusable buffers of [`aggregate_into`], so the per-level aggregation of
/// `tree_match_assign` allocates nothing once warm.
#[derive(Debug, Default, Clone)]
pub struct AggregateScratch {
    owner: Vec<usize>,
}

/// Collapses `m` according to `groups`: entry `(a, b)` of the result is the
/// total volume sent from any member of group `a` to any member of group
/// `b`.  The diagonal of the result therefore holds the *intra-group*
/// volume, which the grouping step at the upper level ignores.
///
/// # Panics
/// Panics when a thread index is out of range or appears in two groups.
pub fn aggregate(m: &CommMatrix, groups: &Groups) -> CommMatrix {
    let mut agg = CommMatrix::zeros(groups.len());
    aggregate_into(m, groups, &mut AggregateScratch::default(), &mut agg);
    agg
}

/// In-place variant of [`aggregate`]: fills `out` (reshaped to
/// `groups.len()`) reusing both `out`'s buffer and the `scratch` owner
/// table, so repeated aggregation — once per tree level, every placement —
/// stops allocating.  Produces bit-identical entries to [`aggregate`]
/// (same accumulation order).
///
/// # Panics
/// Panics when a thread index is out of range or appears in two groups.
pub fn aggregate_into(m: &CommMatrix, groups: &Groups, scratch: &mut AggregateScratch, out: &mut CommMatrix) {
    let owner = &mut scratch.owner;
    owner.clear();
    owner.resize(m.order(), usize::MAX);
    for (g, members) in groups.iter().enumerate() {
        for &t in members {
            assert!(t < m.order(), "thread index {t} out of range for matrix of order {}", m.order());
            assert!(owner[t] == usize::MAX, "thread {t} appears in more than one group");
            owner[t] = g;
        }
    }
    out.reset_to_order(groups.len());
    for i in 0..m.order() {
        if owner[i] == usize::MAX {
            continue;
        }
        for j in 0..m.order() {
            if owner[j] == usize::MAX {
                continue;
            }
            let v = m.get(i, j);
            if v != 0.0 {
                out.add(owner[i], owner[j], v);
            }
        }
    }
}

/// Volume exchanged between members of the same group (the traffic that the
/// grouping "keeps local"), summed over all groups.
pub fn intra_group_volume(m: &CommMatrix, groups: &Groups) -> f64 {
    let agg = aggregate(m, groups);
    (0..agg.order()).map(|g| agg.get(g, g)).sum()
}

/// Volume exchanged between members of different groups (the traffic that
/// will have to cross the upper topology level).
pub fn inter_group_volume(m: &CommMatrix, groups: &Groups) -> f64 {
    let agg = aggregate(m, groups);
    let mut total = 0.0;
    for a in 0..agg.order() {
        for b in 0..agg.order() {
            if a != b {
                total += agg.get(a, b);
            }
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns;

    #[test]
    fn aggregate_pairs_of_a_chain() {
        // Chain 0-1-2-3 with volume 1 each way.  Grouping {0,1},{2,3} keeps
        // two links internal and one link external.
        let m = patterns::chain(4, 1.0);
        let groups = vec![vec![0, 1], vec![2, 3]];
        let agg = aggregate(&m, &groups);
        assert_eq!(agg.order(), 2);
        assert_eq!(agg.get(0, 0), 2.0); // 0↔1 both directions
        assert_eq!(agg.get(1, 1), 2.0);
        assert_eq!(agg.get(0, 1), 1.0); // 1→2
        assert_eq!(agg.get(1, 0), 1.0); // 2→1
        assert_eq!(intra_group_volume(&m, &groups), 4.0);
        assert_eq!(inter_group_volume(&m, &groups), 2.0);
        // Total volume is conserved by aggregation.
        assert_eq!(agg.total_volume(), m.total_volume());
    }

    #[test]
    fn aggregate_with_bad_grouping_is_worse() {
        let m = patterns::chain(4, 1.0);
        let good = vec![vec![0, 1], vec![2, 3]];
        let bad = vec![vec![0, 2], vec![1, 3]];
        assert!(inter_group_volume(&m, &good) < inter_group_volume(&m, &bad));
    }

    #[test]
    fn aggregate_ignores_unassigned_threads() {
        let m = patterns::all_to_all(4, 1.0);
        let groups = vec![vec![0], vec![1]];
        let agg = aggregate(&m, &groups);
        // Only the 0↔1 traffic survives.
        assert_eq!(agg.total_volume(), 2.0);
    }

    #[test]
    fn aggregate_singleton_groups_is_identity_like() {
        let m = patterns::random_symmetric(6, 0.8, 10.0, 7);
        let groups: Groups = (0..6).map(|i| vec![i]).collect();
        let agg = aggregate(&m, &groups);
        assert_eq!(agg, m);
    }

    #[test]
    fn aggregate_into_reuses_buffers_and_matches_aggregate() {
        let m = patterns::random_symmetric(9, 0.7, 25.0, 13);
        let groups = vec![vec![0, 4, 8], vec![1, 2], vec![3, 5, 6, 7]];
        let mut scratch = AggregateScratch::default();
        let mut out = CommMatrix::zeros(17); // stale shape on purpose
        aggregate_into(&m, &groups, &mut scratch, &mut out);
        assert_eq!(out, aggregate(&m, &groups));
        // A second call with a smaller matrix reuses the buffers cleanly.
        let m2 = patterns::chain(4, 1.0);
        let groups2 = vec![vec![0, 1], vec![2, 3]];
        aggregate_into(&m2, &groups2, &mut scratch, &mut out);
        assert_eq!(out, aggregate(&m2, &groups2));
    }

    #[test]
    #[should_panic]
    fn aggregate_rejects_duplicate_membership() {
        let m = CommMatrix::zeros(3);
        aggregate(&m, &vec![vec![0, 1], vec![1, 2]]);
    }

    #[test]
    #[should_panic]
    fn aggregate_rejects_out_of_range() {
        let m = CommMatrix::zeros(3);
        aggregate(&m, &vec![vec![0, 7]]);
    }
}
