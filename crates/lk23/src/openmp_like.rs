//! The OpenMP-style baseline: a fork-join parallel loop over rows.
//!
//! The paper compares the ORWL implementations against an OpenMP version
//! "of equivalent abstraction": a `parallel for` over the grid rows with
//! static scheduling, no topology awareness, and an implicit barrier at the
//! end of every sweep.  This module reproduces that structure with plain
//! threads: every iteration forks `n_threads` workers, hands each a
//! contiguous band of rows of the destination buffer, joins them (the
//! barrier), and swaps the buffers.
//!
//! The update is the same Jacobi sweep as the sequential reference, so the
//! result is verified to be *identical* to `reference_jacobi`.

use crate::kernel::{update_point, Grid};

/// Runs `iterations` LK23 sweeps over `initial` using `n_threads` fork-join
/// workers and returns the final grid.
///
/// # Panics
/// Panics when `n_threads` is zero.
pub fn run_openmp_like(initial: &Grid, iterations: usize, n_threads: usize) -> Grid {
    assert!(n_threads > 0, "at least one worker thread is required");
    let rows = initial.rows();
    let cols = initial.cols();
    let mut src = initial.clone();
    let mut dst = Grid::zeros(rows, cols);

    for _ in 0..iterations {
        {
            // Split the destination into contiguous row bands, one per
            // worker (OpenMP static scheduling).
            let src_ref = &src;
            let bands = split_rows_mut(dst.as_mut_slice(), rows, cols, n_threads);
            std::thread::scope(|scope| {
                for (row_start, band) in bands {
                    scope.spawn(move || {
                        compute_band(src_ref, band, row_start, cols);
                    });
                }
            });
            // Implicit barrier: `scope` joins every worker before returning.
        }
        std::mem::swap(&mut src, &mut dst);
    }
    src
}

/// Splits a row-major buffer into up to `parts` contiguous row bands.
/// Returns `(first_row, band_slice)` pairs; bands are non-empty.
fn split_rows_mut(data: &mut [f64], rows: usize, cols: usize, parts: usize) -> Vec<(usize, &mut [f64])> {
    let parts = parts.min(rows).max(1);
    let base = rows / parts;
    let rem = rows % parts;
    let mut out = Vec::with_capacity(parts);
    let mut rest = data;
    let mut row = 0usize;
    for p in 0..parts {
        let band_rows = base + usize::from(p < rem);
        let (band, tail) = rest.split_at_mut(band_rows * cols);
        out.push((row, band));
        row += band_rows;
        rest = tail;
    }
    out
}

/// Computes the Jacobi update of the rows `[row_start, row_start + band_rows)`
/// into `band`, reading the previous iterate from `src`.
fn compute_band(src: &Grid, band: &mut [f64], row_start: usize, cols: usize) {
    let rows = src.rows();
    let band_rows = band.len() / cols;
    for lr in 0..band_rows {
        let r = row_start + lr;
        for c in 0..cols {
            let v = if r == 0 || c == 0 || r == rows - 1 || c == cols - 1 {
                src.get(r, c)
            } else {
                update_point(src, r, c)
            };
            band[lr * cols + c] = v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::reference_jacobi;

    #[test]
    fn single_thread_matches_reference_exactly() {
        let g0 = Grid::initial(32, 32);
        let parallel = run_openmp_like(&g0, 4, 1);
        let reference = reference_jacobi(&g0, 4);
        assert_eq!(parallel.max_abs_diff(&reference), 0.0);
    }

    #[test]
    fn multi_threaded_matches_reference_exactly() {
        let g0 = Grid::initial(48, 40);
        for threads in [2, 3, 4, 7] {
            let parallel = run_openmp_like(&g0, 3, threads);
            let reference = reference_jacobi(&g0, 3);
            assert_eq!(parallel.max_abs_diff(&reference), 0.0, "mismatch with {threads} threads");
        }
    }

    #[test]
    fn more_threads_than_rows_is_handled() {
        let g0 = Grid::initial(6, 6);
        let parallel = run_openmp_like(&g0, 2, 64);
        let reference = reference_jacobi(&g0, 2);
        assert_eq!(parallel.max_abs_diff(&reference), 0.0);
    }

    #[test]
    fn zero_iterations_returns_initial_grid() {
        let g0 = Grid::initial(16, 16);
        assert_eq!(run_openmp_like(&g0, 0, 4), g0);
    }

    #[test]
    #[should_panic]
    fn zero_threads_panics() {
        run_openmp_like(&Grid::initial(8, 8), 1, 0);
    }

    #[test]
    fn band_splitting_covers_all_rows_without_overlap() {
        let rows = 11;
        let cols = 4;
        let mut data = vec![0.0; rows * cols];
        let bands = split_rows_mut(&mut data, rows, cols, 3);
        assert_eq!(bands.len(), 3);
        let mut covered = 0;
        let mut expected_start = 0;
        for (start, band) in &bands {
            assert_eq!(*start, expected_start);
            assert_eq!(band.len() % cols, 0);
            covered += band.len() / cols;
            expected_start += band.len() / cols;
        }
        assert_eq!(covered, rows);
    }
}
