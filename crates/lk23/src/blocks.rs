//! Block decomposition of the LK23 grid.
//!
//! The ORWL implementation of the paper decomposes the matrix into blocks;
//! each block has one *main* operation performing the computation and eight
//! *frontier* sub-operations exporting its edges and corners to the
//! neighbouring blocks.  This module provides the decomposition geometry,
//! the per-pair communication volumes, and [`BlockView`] — a block's local
//! storage with a one-cell ghost ring used by the ORWL implementation.

use crate::kernel::{coeff, Grid, RELAXATION};
use orwl_comm::matrix::CommMatrix;
use std::ops::Range;

/// The eight neighbour directions of a block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Row above.
    North,
    /// Row below.
    South,
    /// Column to the right.
    East,
    /// Column to the left.
    West,
    /// Upper-right corner.
    NorthEast,
    /// Upper-left corner.
    NorthWest,
    /// Lower-right corner.
    SouthEast,
    /// Lower-left corner.
    SouthWest,
}

impl Direction {
    /// All eight directions, edges first.
    pub fn all() -> [Direction; 8] {
        [
            Direction::North,
            Direction::South,
            Direction::East,
            Direction::West,
            Direction::NorthEast,
            Direction::NorthWest,
            Direction::SouthEast,
            Direction::SouthWest,
        ]
    }

    /// The `(row, col)` offset of the neighbouring block in this direction.
    pub fn offset(self) -> (isize, isize) {
        match self {
            Direction::North => (-1, 0),
            Direction::South => (1, 0),
            Direction::East => (0, 1),
            Direction::West => (0, -1),
            Direction::NorthEast => (-1, 1),
            Direction::NorthWest => (-1, -1),
            Direction::SouthEast => (1, 1),
            Direction::SouthWest => (1, -1),
        }
    }

    /// The direction a neighbour uses to refer back to this block.
    pub fn opposite(self) -> Direction {
        match self {
            Direction::North => Direction::South,
            Direction::South => Direction::North,
            Direction::East => Direction::West,
            Direction::West => Direction::East,
            Direction::NorthEast => Direction::SouthWest,
            Direction::NorthWest => Direction::SouthEast,
            Direction::SouthEast => Direction::NorthWest,
            Direction::SouthWest => Direction::NorthEast,
        }
    }

    /// True for the four corner directions.
    pub fn is_corner(self) -> bool {
        matches!(
            self,
            Direction::NorthEast | Direction::NorthWest | Direction::SouthEast | Direction::SouthWest
        )
    }
}

/// Geometry of a block decomposition of a `grid_rows × grid_cols` grid into
/// `blocks_r × blocks_c` blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockDecomposition {
    /// Grid rows.
    pub grid_rows: usize,
    /// Grid columns.
    pub grid_cols: usize,
    /// Blocks per column of blocks (vertical count).
    pub blocks_r: usize,
    /// Blocks per row of blocks (horizontal count).
    pub blocks_c: usize,
}

impl BlockDecomposition {
    /// Creates a decomposition; block sizes need not divide evenly (trailing
    /// blocks absorb the remainder).
    ///
    /// # Errors
    /// Fails when any dimension is zero or there are more blocks than rows
    /// or columns.
    pub fn new(grid_rows: usize, grid_cols: usize, blocks_r: usize, blocks_c: usize) -> Result<Self, String> {
        if grid_rows == 0 || grid_cols == 0 || blocks_r == 0 || blocks_c == 0 {
            return Err("all dimensions must be non-zero".to_string());
        }
        if blocks_r > grid_rows || blocks_c > grid_cols {
            return Err(format!(
                "cannot split a {grid_rows}x{grid_cols} grid into {blocks_r}x{blocks_c} blocks"
            ));
        }
        Ok(BlockDecomposition { grid_rows, grid_cols, blocks_r, blocks_c })
    }

    /// Number of blocks.
    pub fn n_blocks(&self) -> usize {
        self.blocks_r * self.blocks_c
    }

    /// Linear index of block `(bi, bj)`.
    pub fn block_index(&self, bi: usize, bj: usize) -> usize {
        bi * self.blocks_c + bj
    }

    /// Block coordinates of a linear index.
    pub fn block_coords(&self, idx: usize) -> (usize, usize) {
        (idx / self.blocks_c, idx % self.blocks_c)
    }

    /// Global row range of block row `bi`.
    pub fn row_range(&self, bi: usize) -> Range<usize> {
        split_range(self.grid_rows, self.blocks_r, bi)
    }

    /// Global column range of block column `bj`.
    pub fn col_range(&self, bj: usize) -> Range<usize> {
        split_range(self.grid_cols, self.blocks_c, bj)
    }

    /// The neighbour of block `idx` in the given direction, if it exists.
    pub fn neighbor(&self, idx: usize, dir: Direction) -> Option<usize> {
        let (bi, bj) = self.block_coords(idx);
        let (dr, dc) = dir.offset();
        let ni = bi as isize + dr;
        let nj = bj as isize + dc;
        if ni < 0 || nj < 0 || ni >= self.blocks_r as isize || nj >= self.blocks_c as isize {
            None
        } else {
            Some(self.block_index(ni as usize, nj as usize))
        }
    }

    /// The block × block communication matrix: for every pair of adjacent
    /// blocks, the number of bytes of halo data exchanged per iteration
    /// (edge length × `elem_bytes` for edge neighbours, `elem_bytes` for
    /// corner neighbours) — exactly the matrix the ORWL runtime derives from
    /// the frontier locations.
    pub fn comm_matrix(&self, elem_bytes: usize) -> CommMatrix {
        let n = self.n_blocks();
        let mut m = CommMatrix::zeros(n);
        for idx in 0..n {
            let (bi, bj) = self.block_coords(idx);
            let rows = self.row_range(bi).len();
            let cols = self.col_range(bj).len();
            for dir in Direction::all() {
                if let Some(other) = self.neighbor(idx, dir) {
                    let bytes = if dir.is_corner() {
                        elem_bytes as f64
                    } else {
                        match dir {
                            Direction::North | Direction::South => cols as f64 * elem_bytes as f64,
                            _ => rows as f64 * elem_bytes as f64,
                        }
                    };
                    m.add(idx, other, bytes);
                }
            }
        }
        m
    }
}

fn split_range(total: usize, parts: usize, idx: usize) -> Range<usize> {
    let base = total / parts;
    let rem = total % parts;
    // The first `rem` parts get one extra element.
    let start = idx * base + idx.min(rem);
    let len = base + usize::from(idx < rem);
    start..start + len
}

/// A block's local storage: the interior cells plus a one-cell ghost ring
/// holding the neighbours' frontier data.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockView {
    /// Global row of the first interior cell.
    pub row0: usize,
    /// Global column of the first interior cell.
    pub col0: usize,
    /// Interior rows.
    pub rows: usize,
    /// Interior columns.
    pub cols: usize,
    /// `(rows + 2) × (cols + 2)` storage including the ghost ring.
    data: Vec<f64>,
}

impl BlockView {
    /// Extracts a block (without ghost data) from a full grid.
    pub fn from_grid(grid: &Grid, row_range: Range<usize>, col_range: Range<usize>) -> Self {
        let rows = row_range.len();
        let cols = col_range.len();
        let mut view = BlockView {
            row0: row_range.start,
            col0: col_range.start,
            rows,
            cols,
            data: vec![0.0; (rows + 2) * (cols + 2)],
        };
        for (lr, gr) in row_range.clone().enumerate() {
            for (lc, gc) in col_range.clone().enumerate() {
                view.set_interior(lr, lc, grid.get(gr, gc));
            }
        }
        view
    }

    #[inline]
    fn idx(&self, padded_r: usize, padded_c: usize) -> usize {
        padded_r * (self.cols + 2) + padded_c
    }

    /// Interior cell accessor (`r` in `0..rows`, `c` in `0..cols`).
    #[inline]
    pub fn interior(&self, r: usize, c: usize) -> f64 {
        self.data[self.idx(r + 1, c + 1)]
    }

    /// Interior cell mutator.
    #[inline]
    pub fn set_interior(&mut self, r: usize, c: usize, v: f64) {
        let i = self.idx(r + 1, c + 1);
        self.data[i] = v;
    }

    /// The block's own frontier values in a direction: the outermost
    /// interior row/column (edges) or cell (corners), in increasing
    /// row/column order.  This is what the block *exports* to its
    /// neighbours.
    pub fn edge(&self, dir: Direction) -> Vec<f64> {
        match dir {
            Direction::North => (0..self.cols).map(|c| self.interior(0, c)).collect(),
            Direction::South => (0..self.cols).map(|c| self.interior(self.rows - 1, c)).collect(),
            Direction::West => (0..self.rows).map(|r| self.interior(r, 0)).collect(),
            Direction::East => (0..self.rows).map(|r| self.interior(r, self.cols - 1)).collect(),
            Direction::NorthWest => vec![self.interior(0, 0)],
            Direction::NorthEast => vec![self.interior(0, self.cols - 1)],
            Direction::SouthWest => vec![self.interior(self.rows - 1, 0)],
            Direction::SouthEast => vec![self.interior(self.rows - 1, self.cols - 1)],
        }
    }

    /// Installs the frontier received from the neighbour in direction `dir`
    /// into the ghost ring.
    ///
    /// # Panics
    /// Panics when the slice length does not match the edge length
    /// (edges: `cols`/`rows` elements, corners: 1 element).
    pub fn set_ghost(&mut self, dir: Direction, values: &[f64]) {
        match dir {
            Direction::North => {
                assert_eq!(values.len(), self.cols);
                for (c, &v) in values.iter().enumerate() {
                    let i = self.idx(0, c + 1);
                    self.data[i] = v;
                }
            }
            Direction::South => {
                assert_eq!(values.len(), self.cols);
                for (c, &v) in values.iter().enumerate() {
                    let i = self.idx(self.rows + 1, c + 1);
                    self.data[i] = v;
                }
            }
            Direction::West => {
                assert_eq!(values.len(), self.rows);
                for (r, &v) in values.iter().enumerate() {
                    let i = self.idx(r + 1, 0);
                    self.data[i] = v;
                }
            }
            Direction::East => {
                assert_eq!(values.len(), self.rows);
                for (r, &v) in values.iter().enumerate() {
                    let i = self.idx(r + 1, self.cols + 1);
                    self.data[i] = v;
                }
            }
            Direction::NorthWest => {
                assert_eq!(values.len(), 1);
                let i = self.idx(0, 0);
                self.data[i] = values[0];
            }
            Direction::NorthEast => {
                assert_eq!(values.len(), 1);
                let i = self.idx(0, self.cols + 1);
                self.data[i] = values[0];
            }
            Direction::SouthWest => {
                assert_eq!(values.len(), 1);
                let i = self.idx(self.rows + 1, 0);
                self.data[i] = values[0];
            }
            Direction::SouthEast => {
                assert_eq!(values.len(), 1);
                let i = self.idx(self.rows + 1, self.cols + 1);
                self.data[i] = values[0];
            }
        }
    }

    /// Padded-coordinate read used by the update (ghost ring included).
    #[inline]
    fn padded(&self, pr: usize, pc: usize) -> f64 {
        self.data[self.idx(pr, pc)]
    }

    /// Computes one Jacobi LK23 update of this block into `dst`, using the
    /// ghost ring for out-of-block neighbours.  Cells on the *global* grid
    /// boundary keep their value (same rule as the sequential reference).
    pub fn update_into(&self, dst: &mut BlockView, grid_rows: usize, grid_cols: usize) {
        assert_eq!(self.rows, dst.rows);
        assert_eq!(self.cols, dst.cols);
        for r in 0..self.rows {
            for c in 0..self.cols {
                let gr = self.row0 + r;
                let gc = self.col0 + c;
                if gr == 0 || gc == 0 || gr == grid_rows - 1 || gc == grid_cols - 1 {
                    dst.set_interior(r, c, self.interior(r, c));
                    continue;
                }
                let (pr, pc) = (r + 1, c + 1);
                let qa = self.padded(pr, pc + 1) * coeff(0, gr, gc)
                    + self.padded(pr, pc - 1) * coeff(1, gr, gc)
                    + self.padded(pr + 1, pc) * coeff(2, gr, gc)
                    + self.padded(pr - 1, pc) * coeff(3, gr, gc)
                    + coeff(4, gr, gc);
                let za = self.interior(r, c);
                dst.set_interior(r, c, za + RELAXATION * (qa - za));
            }
        }
    }

    /// Copies the interior back into the full grid.
    pub fn write_back(&self, grid: &mut Grid) {
        for r in 0..self.rows {
            for c in 0..self.cols {
                grid.set(self.row0 + r, self.col0 + c, self.interior(r, c));
            }
        }
    }

    /// Bytes of one edge exchange in a direction (`f64` elements).
    pub fn edge_bytes(&self, dir: Direction) -> f64 {
        (self.edge(dir).len() * std::mem::size_of::<f64>()) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{reference_jacobi, Grid};

    #[test]
    fn directions_have_consistent_opposites() {
        for dir in Direction::all() {
            assert_eq!(dir.opposite().opposite(), dir);
            let (dr, dc) = dir.offset();
            let (or, oc) = dir.opposite().offset();
            assert_eq!((dr + or, dc + oc), (0, 0));
        }
        assert!(Direction::NorthEast.is_corner());
        assert!(!Direction::North.is_corner());
    }

    #[test]
    fn decomposition_geometry_even_split() {
        let d = BlockDecomposition::new(16, 16, 4, 4).unwrap();
        assert_eq!(d.n_blocks(), 16);
        assert_eq!(d.row_range(0), 0..4);
        assert_eq!(d.row_range(3), 12..16);
        assert_eq!(d.block_index(2, 3), 11);
        assert_eq!(d.block_coords(11), (2, 3));
    }

    #[test]
    fn decomposition_geometry_uneven_split() {
        let d = BlockDecomposition::new(10, 7, 3, 2).unwrap();
        // Rows: 10 = 4 + 3 + 3, Cols: 7 = 4 + 3.
        assert_eq!(d.row_range(0), 0..4);
        assert_eq!(d.row_range(1), 4..7);
        assert_eq!(d.row_range(2), 7..10);
        assert_eq!(d.col_range(0), 0..4);
        assert_eq!(d.col_range(1), 4..7);
        // Ranges tile the grid exactly.
        let total: usize = (0..3).map(|bi| d.row_range(bi).len()).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn decomposition_rejects_degenerate_inputs() {
        assert!(BlockDecomposition::new(0, 8, 2, 2).is_err());
        assert!(BlockDecomposition::new(8, 8, 0, 2).is_err());
        assert!(BlockDecomposition::new(8, 8, 9, 2).is_err());
    }

    #[test]
    fn neighbors_respect_grid_borders() {
        let d = BlockDecomposition::new(12, 12, 3, 3).unwrap();
        let center = d.block_index(1, 1);
        for dir in Direction::all() {
            assert!(d.neighbor(center, dir).is_some());
        }
        let corner = d.block_index(0, 0);
        assert_eq!(d.neighbor(corner, Direction::North), None);
        assert_eq!(d.neighbor(corner, Direction::West), None);
        assert_eq!(d.neighbor(corner, Direction::NorthWest), None);
        assert_eq!(d.neighbor(corner, Direction::South), Some(d.block_index(1, 0)));
        assert_eq!(d.neighbor(corner, Direction::SouthEast), Some(d.block_index(1, 1)));
    }

    #[test]
    fn comm_matrix_matches_stencil_pattern() {
        let d = BlockDecomposition::new(64, 64, 4, 4).unwrap();
        let m = d.comm_matrix(8);
        // Matches the generic 9-point stencil generator for square blocks.
        let spec = orwl_comm::patterns::StencilSpec::nine_point_blocks(4, 16, 8);
        let expected = orwl_comm::patterns::stencil_2d(&spec);
        assert_eq!(m, expected);
    }

    #[test]
    fn block_view_roundtrips_grid_data() {
        let grid = Grid::initial(12, 12);
        let d = BlockDecomposition::new(12, 12, 3, 3).unwrap();
        let mut reconstructed = Grid::zeros(12, 12);
        for idx in 0..d.n_blocks() {
            let (bi, bj) = d.block_coords(idx);
            let view = BlockView::from_grid(&grid, d.row_range(bi), d.col_range(bj));
            view.write_back(&mut reconstructed);
        }
        assert_eq!(reconstructed.max_abs_diff(&grid), 0.0);
    }

    #[test]
    fn edges_and_ghosts_have_matching_shapes() {
        let grid = Grid::initial(8, 12);
        let view = BlockView::from_grid(&grid, 0..4, 0..6);
        assert_eq!(view.edge(Direction::North).len(), 6);
        assert_eq!(view.edge(Direction::East).len(), 4);
        assert_eq!(view.edge(Direction::SouthEast).len(), 1);
        assert_eq!(view.edge_bytes(Direction::North), 48.0);
        assert_eq!(view.edge_bytes(Direction::NorthWest), 8.0);
        let mut other = BlockView::from_grid(&grid, 4..8, 0..6);
        // The south edge of the top block becomes the north ghost of the
        // bottom block.
        other.set_ghost(Direction::North, &view.edge(Direction::South));
        assert_eq!(other.padded(0, 1), view.interior(3, 0));
    }

    #[test]
    #[should_panic]
    fn ghost_with_wrong_length_panics() {
        let grid = Grid::initial(8, 8);
        let mut view = BlockView::from_grid(&grid, 0..4, 0..4);
        view.set_ghost(Direction::North, &[1.0, 2.0]);
    }

    #[test]
    fn blocked_update_matches_sequential_reference_one_iteration() {
        // Decompose, exchange ghosts once, update every block, reassemble:
        // must equal one sequential Jacobi sweep exactly.
        let n = 24;
        let grid = Grid::initial(n, n);
        let d = BlockDecomposition::new(n, n, 3, 4).unwrap();
        let mut views: Vec<BlockView> = (0..d.n_blocks())
            .map(|idx| {
                let (bi, bj) = d.block_coords(idx);
                BlockView::from_grid(&grid, d.row_range(bi), d.col_range(bj))
            })
            .collect();
        // Halo exchange.
        let snapshots = views.clone();
        for (idx, view) in views.iter_mut().enumerate() {
            for dir in Direction::all() {
                if let Some(nb) = d.neighbor(idx, dir) {
                    let values = snapshots[nb].edge(dir.opposite());
                    view.set_ghost(dir, &values);
                }
            }
        }
        // Update and reassemble.
        let mut result = Grid::zeros(n, n);
        for view in &views {
            let mut dst = view.clone();
            view.update_into(&mut dst, n, n);
            dst.write_back(&mut result);
        }
        let reference = reference_jacobi(&grid, 1);
        assert_eq!(result.max_abs_diff(&reference), 0.0);
    }
}
