//! # orwl-lk23 — the Livermore Kernel 23 benchmark
//!
//! The validation workload of the paper: a 2-D implicit hydrodynamics
//! fragment (LINPACK loop 23) decomposed into blocks, with one main
//! operation and eight frontier operations per block, implemented three
//! ways:
//!
//! * a **sequential reference** ([`kernel`]) used to verify every parallel
//!   implementation bit-for-bit;
//! * an **OpenMP-like fork-join baseline** ([`openmp_like`]) — a parallel
//!   loop over row bands with an implicit barrier per sweep;
//! * the **ORWL implementation** ([`orwl_impl`]) — block tasks exchanging
//!   frontier locations through ordered read-write locks, run by the
//!   `orwl-core` runtime under any placement policy (Bind / NoBind);
//! * **simulator models** ([`sim_model`]) that replay the same decomposition
//!   and placements on the simulated 24-socket machine to regenerate the
//!   paper's Figure 1 at full scale (16384², 192 cores, 100 iterations).
//!
//! ```
//! use orwl_lk23::kernel::{Grid, reference_jacobi};
//! use orwl_lk23::blocks::BlockDecomposition;
//! use orwl_lk23::orwl_impl::run_orwl;
//! use orwl_core::prelude::*;
//!
//! let initial = Grid::initial(32, 32);
//! let decomp = BlockDecomposition::new(32, 32, 2, 2).unwrap();
//! let session = Session::builder()
//!     .topology(orwl_topo::synthetic::laptop())
//!     .policy(Policy::NoBind)
//!     .backend(ThreadBackend)
//!     .build()
//!     .unwrap();
//! let (result, _report) = run_orwl(&initial, decomp, 3, &session).unwrap();
//! assert_eq!(result.max_abs_diff(&reference_jacobi(&initial, 3)), 0.0);
//! ```

pub mod blocks;
pub mod kernel;
pub mod openmp_like;
pub mod orwl_impl;
pub mod sim_model;

pub use blocks::{BlockDecomposition, BlockView, Direction};
pub use kernel::{reference_gauss_seidel, reference_jacobi, Grid};
pub use openmp_like::run_openmp_like;
pub use orwl_impl::{build_program, run_orwl, Lk23OrwlProgram};
pub use sim_model::{simulate_implementation, ImplKind, Lk23Workload};
